"""THM31: cost of computing the maximal rewriting (2EXPTIME upper bound).

Two families exhibit the two exponentials of Theorem 3.1:

* ``(a+b)*.a.(a+b)^k`` — determinizing ``E0`` costs ``2^k`` states
  (the classic subset-construction blowup; step (i));
* view alphabets over it — complementing ``A'`` adds the second
  exponential (step (iii)).

The benchmark sweeps ``k``, asserts the doubly-exponential shape (state
counts at least double per increment) and measures the ablation of
minimizing ``Ad`` before building ``A'``.
"""

import pytest

from repro.core import ViewSet, maximal_rewriting
from repro.regex.parser import parse


def blowup_query(k: int) -> str:
    return "(a+b)*.a." + ".".join(["(a+b)"] * k)


VIEWS = ViewSet({"e1": "a", "e2": "b", "e3": "a.b"})


@pytest.mark.parametrize("k", [2, 4, 6])
def test_rewriting_scaling(benchmark, k):
    result = benchmark(maximal_rewriting, blowup_query(k), VIEWS)
    # The deterministic automaton grows exponentially with k — the first
    # exponential of Theorem 3.1.
    assert result.stats["ad_states"] >= 2 ** k


def test_ad_growth_is_exponential(benchmark):
    from repro.core.rewriter import build_ad

    sizes = benchmark.pedantic(
        lambda: [build_ad(blowup_query(k), VIEWS).num_states for k in (2, 3, 4, 5)],
        iterations=1,
        rounds=1,
    )
    print("\n  k=2..5 |Ad|:", sizes)
    for prev, nxt in zip(sizes, sizes[1:]):
        assert nxt >= 2 * prev - 2  # doubling shape


@pytest.mark.parametrize("minimize_ad", [True, False])
def test_ablation_minimize_ad(benchmark, minimize_ad):
    result = benchmark(
        maximal_rewriting, blowup_query(4), VIEWS, minimize_ad=minimize_ad
    )
    assert not result.is_empty()


def test_minimizing_ad_never_hurts_result_size(benchmark):
    def compare():
        with_min = maximal_rewriting(blowup_query(4), VIEWS, minimize_ad=True)
        without = maximal_rewriting(blowup_query(4), VIEWS, minimize_ad=False)
        return with_min.automaton.num_states, without.automaton.num_states

    minimized, plain = benchmark.pedantic(compare, iterations=1, rounds=1)
    assert minimized <= plain


@pytest.mark.parametrize("num_views", [1, 2, 4])
def test_scaling_in_number_of_views(benchmark, num_views):
    views = ViewSet.from_list(
        ["a", "b", "a.b", "b.a"][:num_views]
    )
    result = benchmark(maximal_rewriting, "(a.b)*", views)
    assert result.stats["a_prime_transitions"] >= 0


def test_view_language_size_dominates_step2(benchmark):
    # A single view with a large language: step 2 explores the product.
    views = ViewSet({"e1": "(a+b).(a+b).(a+b).(a+b)"})
    result = benchmark(maximal_rewriting, "(a+b)*", views)
    assert result.accepts(("e1", "e1"))
