"""THM31: cost of computing the maximal rewriting (2EXPTIME upper bound).

Two families exhibit the two exponentials of Theorem 3.1:

* ``(a+b)*.a.(a+b)^k`` — determinizing ``E0`` costs ``2^k`` states
  (the classic subset-construction blowup; step (i));
* view alphabets over it — complementing ``A'`` adds the second
  exponential (step (iii)).

The benchmark sweeps ``k``, asserts the doubly-exponential shape (state
counts at least double per increment), measures the ablation of
minimizing ``Ad`` before building ``A'``, and *gates* the compiled
bitmask pipeline: on the scaling family it must beat the retained naive
oracle by >= 5x while producing an isomorphic minimized rewriting on
every benchmarked instance (``test_compiled_pipeline_speedup``).
"""

import time

import pytest

from repro.automata import are_isomorphic
from repro.automata.compiled import relation_cache_clear
from repro.core import ViewSet, maximal_rewriting, naive_maximal_rewriting
from repro.regex.parser import parse


def blowup_query(k: int) -> str:
    return "(a+b)*.a." + ".".join(["(a+b)"] * k)


VIEWS = ViewSet({"e1": "a", "e2": "b", "e3": "a.b"})

# The gate family adds star-shaped views: their product with Ad is where
# the naive per-source relation BFS burns its time, which is exactly the
# workload the all-sources bitset BFS is built for.
GATE_VIEWS = ViewSet(
    {"e1": "a", "e2": "b", "e3": "a.b", "e4": "a.(a+b)*.b", "e5": "b.(a+b)*.a"}
)

#: Required advantage of the compiled pipeline over the naive oracle.
REQUIRED_SPEEDUP = 5.0


def _best_of(fn, repeats: int):
    best = None
    result = None
    for _ in range(repeats):
        # The compiled pipeline memoizes (Ad, view) relations; clear so
        # every repetition pays full cost and the comparison is honest.
        relation_cache_clear()
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


@pytest.mark.parametrize("k", [6, 7], ids=["k6", "k7"])
def test_compiled_pipeline_speedup(k):
    """>= 5x over the naive oracle, with isomorphic minimized results."""
    query = blowup_query(k)
    naive_time, naive_result = _best_of(
        lambda: naive_maximal_rewriting(query, GATE_VIEWS), repeats=2
    )
    compiled_time, compiled_result = _best_of(
        lambda: maximal_rewriting(query, GATE_VIEWS), repeats=2
    )
    # Both results are minimized total DFAs over Sigma_E: equal languages
    # must yield isomorphic automata (Myhill-Nerode), and do.
    assert are_isomorphic(compiled_result.automaton, naive_result.automaton)
    speedup = naive_time / compiled_time
    print(
        f"\n  k={k}: naive {naive_time:.3f}s, compiled {compiled_time:.3f}s, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= REQUIRED_SPEEDUP


@pytest.mark.parametrize("k", [2, 4, 6])
def test_rewriting_scaling(benchmark, k):
    result = benchmark(maximal_rewriting, blowup_query(k), VIEWS)
    # The deterministic automaton grows exponentially with k — the first
    # exponential of Theorem 3.1.
    assert result.stats["ad_states"] >= 2 ** k


def test_ad_growth_is_exponential(benchmark):
    from repro.core.rewriter import build_ad

    sizes = benchmark.pedantic(
        lambda: [build_ad(blowup_query(k), VIEWS).num_states for k in (2, 3, 4, 5)],
        iterations=1,
        rounds=1,
    )
    print("\n  k=2..5 |Ad|:", sizes)
    for prev, nxt in zip(sizes, sizes[1:]):
        assert nxt >= 2 * prev - 2  # doubling shape


@pytest.mark.parametrize("minimize_ad", [True, False])
def test_ablation_minimize_ad(benchmark, minimize_ad):
    result = benchmark(
        maximal_rewriting, blowup_query(4), VIEWS, minimize_ad=minimize_ad
    )
    assert not result.is_empty()


def test_minimizing_ad_never_hurts_result_size(benchmark):
    def compare():
        with_min = maximal_rewriting(blowup_query(4), VIEWS, minimize_ad=True)
        without = maximal_rewriting(blowup_query(4), VIEWS, minimize_ad=False)
        return with_min.automaton.num_states, without.automaton.num_states

    minimized, plain = benchmark.pedantic(compare, iterations=1, rounds=1)
    assert minimized <= plain


@pytest.mark.parametrize("num_views", [1, 2, 4])
def test_scaling_in_number_of_views(benchmark, num_views):
    views = ViewSet.from_list(
        ["a", "b", "a.b", "b.a"][:num_views]
    )
    result = benchmark(maximal_rewriting, "(a.b)*", views)
    assert result.stats["a_prime_transitions"] >= 0


def test_view_language_size_dominates_step2(benchmark):
    # A single view with a large language: step 2 explores the product.
    views = ViewSet({"e1": "(a+b).(a+b).(a+b).(a+b)"})
    result = benchmark(maximal_rewriting, "(a+b)*", views)
    assert result.accepts(("e1", "e1"))
