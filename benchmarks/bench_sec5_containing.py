"""SEC5: the dual (containing) rewriting is one exponential cheaper.

The contained rewriting complements ``A'`` (second exponential); the
existential rewriting keeps ``A'``'s nondeterminism.  The benchmark
measures both on the same instances and asserts the structural claim: the
existential automaton never exceeds ``Ad``'s state count, while the
contained one may blow up.
"""

import pytest

from repro.core import ViewSet, maximal_rewriting
from repro.core.containing import existential_rewriting

INSTANCES = {
    "fig1": ("a.(b.a+c)*", {"e1": "a", "e2": "a.c*.b", "e3": "c"}),
    "blowup": (
        "(a+b)*.a.(a+b).(a+b).(a+b)",
        {"e1": "a", "e2": "b", "e3": "a.b"},
    ),
    "chains": ("(a.b)*.c", {"e1": "a.b", "e2": "a.b.a.b", "e3": "c"}),
}


@pytest.mark.parametrize("name", list(INSTANCES))
def test_contained_rewriting(benchmark, name):
    e0, views = INSTANCES[name]
    result = benchmark(maximal_rewriting, e0, ViewSet(views))
    assert result.stats["rewriting_states"] >= 1


@pytest.mark.parametrize("name", list(INSTANCES))
def test_containing_rewriting(benchmark, name):
    e0, views = INSTANCES[name]
    result = benchmark(existential_rewriting, e0, ViewSet(views))
    # no complementation: the automaton lives on Ad's states
    assert result.automaton.num_states <= result.ad.num_states


@pytest.mark.parametrize("name", list(INSTANCES))
def test_coverage_check(benchmark, name):
    e0, views = INSTANCES[name]
    result = existential_rewriting(e0, ViewSet(views))
    verdict = benchmark(result.covers)
    assert isinstance(verdict, bool)


def test_size_comparison_series(benchmark):
    def build_series():
        rows = []
        for name, (e0, views) in INSTANCES.items():
            contained = maximal_rewriting(e0, ViewSet(views))
            containing = existential_rewriting(e0, ViewSet(views))
            rows.append(
                (
                    name,
                    contained.automaton.num_states,
                    containing.automaton.num_states,
                )
            )
        return rows

    rows = benchmark.pedantic(build_series, iterations=1, rounds=1)
    print("\n  instance   contained-DFA  existential-NFA")
    for name, contained_size, containing_size in rows:
        print(f"  {name:<10} {contained_size:13d}  {containing_size:15d}")
