"""THM35: the 2EXPSPACE reduction's building blocks.

Full verification of Theorem 3.5 requires deciding exact-rewriting
existence on instances whose encoded rows have length ``1 + 2^n*2^(2^n)``
— doubly exponential even at n=1 — so, as in the paper, the benchmark
regenerates the *construction* (polynomial size) and times the word-level
checks of the component expressions' expansion-form claims.
"""

import pytest

from repro.automata.containment import is_contained
from repro.automata.thompson import to_nfa
from repro.core.expansion import word_expansion_nfa
from repro.reductions import TilingSystem, tilde, twoexpspace_reduction


def border_system() -> TilingSystem:
    return TilingSystem(
        tiles=("s", "f", "l", "r"),
        horizontal=frozenset({("s", "r"), ("r", "l"), ("l", "r"), ("r", "f")}),
        vertical=frozenset({("s", "l"), ("l", "l"), ("r", "r"), ("r", "f")}),
        t_start="s",
        t_final="f",
        t_left="l",
        t_right="r",
    )


def test_reduction_construction(benchmark):
    reduction = benchmark(twoexpspace_reduction, border_system(), 1)
    assert reduction.row_length == 1 + 2 * 4


def test_construction_size_growth(benchmark):
    sizes = benchmark.pedantic(
        lambda: [
            twoexpspace_reduction(border_system(), n).e0.size() for n in (1, 2, 3)
        ],
        iterations=1,
        rounds=1,
    )
    print("\n  n  |E0|:", sizes)
    for prev, nxt in zip(sizes, sizes[1:]):
        assert nxt < prev * 8  # polynomial in n


@pytest.fixture(scope="module")
def reduction():
    return twoexpspace_reduction(border_system(), 1)


def test_horizontal_error_check(benchmark, reduction):
    target = to_nfa(reduction.e_h)
    word = (tilde("l"), tilde("s"))

    def check():
        return is_contained(word_expansion_nfa(word, reduction.views), target)

    assert benchmark(check)


def test_start_error_check(benchmark, reduction):
    target = to_nfa(reduction.e_s)
    word = (tilde("r"), "b010")

    def check():
        return is_contained(word_expansion_nfa(word, reduction.views), target)

    assert benchmark(check)


def test_error_word_is_rewriting_of_e0(benchmark, reduction):
    e0 = to_nfa(reduction.e0)
    word = (tilde("l"), tilde("s"))

    def check():
        return is_contained(word_expansion_nfa(word, reduction.views), e0)

    assert benchmark(check)
