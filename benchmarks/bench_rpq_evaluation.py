"""INTRO: regular path query evaluation and view-based answering.

The introduction's scenario: travel queries over a labelled web graph.
Benchmarks direct evaluation scaling (product reachability is polynomial),
view materialization, and answering through a rewriting — asserting the
soundness containment from Definition 4.3 on every run.

Also compares the compiled engine (:mod:`repro.rpq.engine`) against the
naive per-source oracle (:func:`repro.rpq.naive_evaluate`) on the 1k-node /
5k-edge random-graph workload, asserting identical answer sets and a >= 5x
speedup (measured here at ~25-90x depending on query selectivity).
"""

import random
import time

import pytest

from repro.regex.ast import concat, star, sym
from repro.rpq import (
    RPQ,
    Pred,
    RPQViews,
    Theory,
    evaluate,
    naive_evaluate,
    random_graph,
    rewrite_rpq,
)
from repro.rpq.formulas import TOP

LABELS = ["rome", "jerusalem", "paris", "link", "restaurant"]

THEORY = Theory(
    domain=set(LABELS),
    predicates={
        "City": {"rome", "jerusalem", "paris"},
        "Restaurant": {"restaurant"},
    },
)

INTRO_QUERY = RPQ(
    concat(
        star(sym(TOP)),
        sym("rome") + sym("jerusalem"),
        star(sym(TOP)),
        sym(Pred("Restaurant")),
    ),
    name="intro",
)


@pytest.mark.parametrize("num_nodes,num_edges", [(20, 60), (60, 180), (180, 540)])
def test_direct_evaluation_scaling(benchmark, num_nodes, num_edges):
    db = random_graph(random.Random(num_nodes), num_nodes, LABELS, num_edges)
    answers = benchmark(evaluate, db, INTRO_QUERY, THEORY)
    assert isinstance(answers, frozenset)


def test_view_materialization(benchmark):
    db = random_graph(random.Random(7), 60, LABELS, 180)
    views = RPQViews(
        {
            "vHoly": RPQ(sym("rome") + sym("jerusalem")),
            "vRest": RPQ(sym(Pred("Restaurant"))),
            "vNav": RPQ(star(sym("link"))),
        }
    )
    extensions = benchmark(views.materialize, db, THEORY)
    assert set(extensions) == {"vHoly", "vRest", "vNav"}


def test_answering_via_rewriting_is_sound(benchmark):
    db = random_graph(random.Random(13), 60, LABELS, 180)
    views = RPQViews(
        {
            "vHoly": RPQ(sym("rome") + sym("jerusalem")),
            "vRest": RPQ(sym(Pred("Restaurant"))),
            "vNav": RPQ(star(sym("link"))),
        }
    )
    result = rewrite_rpq(INTRO_QUERY, views, THEORY)
    extensions = views.materialize(db, THEORY)
    via_views = benchmark(result.answer, db, extensions)
    direct = evaluate(db, INTRO_QUERY, THEORY)
    assert via_views <= direct  # Definition 4.3 soundness


def test_rewriting_construction_for_intro_query(benchmark):
    views = RPQViews(
        {
            "vHoly": RPQ(sym("rome") + sym("jerusalem")),
            "vRest": RPQ(sym(Pred("Restaurant"))),
            "vNav": RPQ(star(sym("link"))),
        }
    )
    result = benchmark(rewrite_rpq, INTRO_QUERY, views, THEORY)
    assert not result.is_empty()


@pytest.mark.parametrize("query_text", ["link*", "link.link.link", "(link+rome)*"])
def test_plain_query_evaluation(benchmark, query_text):
    db = random_graph(random.Random(3), 80, LABELS, 240)
    answers = benchmark(evaluate, db, query_text)
    assert isinstance(answers, frozenset)


# ----------------------------------------------------------------------
# Compiled engine vs naive oracle (the ISSUE 1 acceptance workload)
# ----------------------------------------------------------------------


def _best_of(runs, fn, *args):
    """Best wall-clock of ``runs`` calls — damps scheduler noise on the
    fast (engine) side, whose single-run time is milliseconds."""
    best = None
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn(*args)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return result, best


@pytest.mark.parametrize("num_nodes,num_edges", [(300, 1500), (1000, 5000)])
def test_engine_scaling_on_random_graphs(benchmark, num_nodes, num_edges):
    db = random_graph(random.Random(num_nodes), num_nodes, LABELS, num_edges)
    query = RPQ("link.(link+rome)*.restaurant")
    answers = benchmark(evaluate, db, query)
    assert isinstance(answers, frozenset)


@pytest.mark.parametrize(
    "query_text",
    ["(link+rome)*", "link.(link+rome)*.restaurant"],
)
def test_engine_vs_naive_speedup_1k(query_text):
    """Engine >= 5x faster than the oracle on 1k nodes / 5k edges.

    Single timed runs (the naive side takes ~10s; repetition via
    pytest-benchmark would make the suite unreasonably slow), with the
    answer sets required to be identical.
    """
    db = random_graph(random.Random(99), 1000, LABELS, 5000)
    query = RPQ(query_text)

    engine_answers, engine_seconds = _best_of(3, evaluate, db, query)

    start = time.perf_counter()
    naive_answers = naive_evaluate(db, query)
    naive_seconds = time.perf_counter() - start

    assert engine_answers == naive_answers
    speedup = naive_seconds / engine_seconds
    print(
        f"\n[{query_text}] engine {engine_seconds:.3f}s, "
        f"naive {naive_seconds:.3f}s, speedup {speedup:.1f}x, "
        f"answers {len(engine_answers)}"
    )
    assert speedup >= 5.0, (
        f"engine only {speedup:.1f}x faster than naive_evaluate "
        f"(engine {engine_seconds:.3f}s vs naive {naive_seconds:.3f}s)"
    )


def test_engine_vs_naive_formula_query_speedup():
    """The intro-style formula query: compile-time resolution dominates."""
    db = random_graph(random.Random(42), 500, LABELS, 2500)
    engine_answers, engine_seconds = _best_of(3, evaluate, db, INTRO_QUERY, THEORY)

    start = time.perf_counter()
    naive_answers = naive_evaluate(db, INTRO_QUERY, THEORY)
    naive_seconds = time.perf_counter() - start

    assert engine_answers == naive_answers
    speedup = naive_seconds / engine_seconds
    print(
        f"\n[intro/theory, 500 nodes] engine {engine_seconds:.3f}s, "
        f"naive {naive_seconds:.3f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0
