"""INTRO: regular path query evaluation and view-based answering.

The introduction's scenario: travel queries over a labelled web graph.
Benchmarks direct evaluation scaling (product reachability is polynomial),
view materialization, and answering through a rewriting — asserting the
soundness containment from Definition 4.3 on every run.
"""

import random

import pytest

from repro.regex.ast import concat, star, sym
from repro.rpq import (
    RPQ,
    Pred,
    RPQViews,
    Theory,
    evaluate,
    random_graph,
    rewrite_rpq,
)
from repro.rpq.formulas import TOP

LABELS = ["rome", "jerusalem", "paris", "link", "restaurant"]

THEORY = Theory(
    domain=set(LABELS),
    predicates={
        "City": {"rome", "jerusalem", "paris"},
        "Restaurant": {"restaurant"},
    },
)

INTRO_QUERY = RPQ(
    concat(
        star(sym(TOP)),
        sym("rome") + sym("jerusalem"),
        star(sym(TOP)),
        sym(Pred("Restaurant")),
    ),
    name="intro",
)


@pytest.mark.parametrize("num_nodes,num_edges", [(20, 60), (60, 180), (180, 540)])
def test_direct_evaluation_scaling(benchmark, num_nodes, num_edges):
    db = random_graph(random.Random(num_nodes), num_nodes, LABELS, num_edges)
    answers = benchmark(evaluate, db, INTRO_QUERY, THEORY)
    assert isinstance(answers, frozenset)


def test_view_materialization(benchmark):
    db = random_graph(random.Random(7), 60, LABELS, 180)
    views = RPQViews(
        {
            "vHoly": RPQ(sym("rome") + sym("jerusalem")),
            "vRest": RPQ(sym(Pred("Restaurant"))),
            "vNav": RPQ(star(sym("link"))),
        }
    )
    extensions = benchmark(views.materialize, db, THEORY)
    assert set(extensions) == {"vHoly", "vRest", "vNav"}


def test_answering_via_rewriting_is_sound(benchmark):
    db = random_graph(random.Random(13), 60, LABELS, 180)
    views = RPQViews(
        {
            "vHoly": RPQ(sym("rome") + sym("jerusalem")),
            "vRest": RPQ(sym(Pred("Restaurant"))),
            "vNav": RPQ(star(sym("link"))),
        }
    )
    result = rewrite_rpq(INTRO_QUERY, views, THEORY)
    extensions = views.materialize(db, THEORY)
    via_views = benchmark(result.answer, db, extensions)
    direct = evaluate(db, INTRO_QUERY, THEORY)
    assert via_views <= direct  # Definition 4.3 soundness


def test_rewriting_construction_for_intro_query(benchmark):
    views = RPQViews(
        {
            "vHoly": RPQ(sym("rome") + sym("jerusalem")),
            "vRest": RPQ(sym(Pred("Restaurant"))),
            "vNav": RPQ(star(sym("link"))),
        }
    )
    result = benchmark(rewrite_rpq, INTRO_QUERY, views, THEORY)
    assert not result.is_empty()


@pytest.mark.parametrize("query_text", ["link*", "link.link.link", "(link+rome)*"])
def test_plain_query_evaluation(benchmark, query_text):
    db = random_graph(random.Random(3), 80, LABELS, 240)
    answers = benchmark(evaluate, db, query_text)
    assert isinstance(answers, frozenset)
