"""INCREMENTAL: delta-driven re-answering vs full recompute (gates for
ISSUE 5 — insert trickle — and ISSUE 6 — mixed insert/delete trickle).

The serving regime under test: a long-lived :class:`QuerySession` over a
:class:`MaterializedViewStore` holding the elementary-view extensions of
a >= 50k-edge workload graph, receiving a trickle of single-tuple
updates, each followed by a full all-pairs ``answer()``.  The memoized
answer set dies with every version bump either way; what the
incremental session keeps is the *sweep state*
(:class:`~repro.rpq.incremental.DeltaSweepState`), patched from each
delta — insertions resume the semi-naive sweep, deletions run
delete-rederive — instead of recomputed from zero.

Two headline gates, each over 200 interleaved update+answer steps drawn
from the seeded update stream: the incremental session must be
**>= 10x** faster than an identical session with ``incremental=False``
(which pays one full sweep per update), and both must produce
**byte-identical sorted answers at every step** — plus a final direct
check against ``engine.evaluate_all_sorted`` on the live view graph.
The insert-only gate pins the ISSUE 5 fast path; the mixed gate
(~20% deletions) pins that deletions no longer fall off it.

Measured locally (grid family, 50k edges, query ``r.d``): full recompute
~250 ms/step, incremental ~4.5 ms/step insert-only and ~5 ms/step on
the 20%-delete mix — ~50x either way.
"""

import time

import pytest

from repro.rpq import RPQViews, Theory, make_graph, make_update_stream
from repro.rpq import engine as engine_mod
from repro.rpq.evaluation import sort_pairs
from repro.service import MaterializedViewStore, QuerySession

SEED = 20260730
NUM_EDGES = 50_000
NUM_UPDATES = 200
# A short bounded query keeps one full sweep in the hundreds of
# milliseconds, so 200 baseline recomputes stay CI-sized; longer queries
# only widen the gap in the incremental session's favour.
FAMILY, LABELS, QUERY = "grid", ("r", "d"), "r.d"


def _elementary_extensions(db):
    """Per-label edge sets as view extensions (sorted: both stores must
    intern nodes in the same order for byte-identical answers)."""
    extensions = {f"v_{label}": [] for label in LABELS}
    for source, label, target in db.edges():
        extensions[f"v_{label}"].append((source, target))
    return {symbol: sorted(pairs) for symbol, pairs in extensions.items()}


def _answer_bytes(pairs):
    return "\n".join(f"{x}\t{y}" for x, y in pairs).encode()


def _session_pair():
    """(incremental session, full-recompute session), over twin stores
    loaded with identical extensions in identical order."""
    db = make_graph(FAMILY, seed=SEED, edges=NUM_EDGES)
    assert db.num_edges >= NUM_EDGES
    extensions = _elementary_extensions(db)
    theory = Theory.trivial(set(LABELS))
    views = RPQViews({f"v_{label}": label for label in LABELS})
    incremental_store = MaterializedViewStore(extensions)
    full_store = MaterializedViewStore(extensions)
    incremental = QuerySession(incremental_store, views, theory)
    full = QuerySession(full_store, views, theory, incremental=False)
    return incremental, full


def test_incremental_trickle_speedup_on_50k_edge_store():
    """The acceptance gate: >= 10x over 200 insert+answer steps, answers
    byte-identical at every step."""
    incremental, full = _session_pair()
    updates = make_update_stream(
        FAMILY,
        SEED,
        count=NUM_UPDATES,
        base={s: incremental.store.extension(s) for s in incremental.store.symbols},
        delete_fraction=0.0,
    )
    assert all(op.op == "insert" for op in updates)

    # Warm both sessions: the initial full sweep is the price either
    # strategy pays once, before the trickle starts.
    assert incremental.answer_sorted(QUERY) == full.answer_sorted(QUERY)
    assert incremental.stats["full_recomputes"] == 1

    incremental_seconds = full_seconds = 0.0
    for op in updates:
        assert incremental.store.add(op.symbol, op.source, op.target)
        assert full.store.add(op.symbol, op.source, op.target)
        start = time.perf_counter()
        incremental_answers = incremental.answer(QUERY)
        incremental_seconds += time.perf_counter() - start
        start = time.perf_counter()
        full_answers = full.answer(QUERY)
        full_seconds += time.perf_counter() - start
        assert _answer_bytes(
            sort_pairs(incremental.store.graph, incremental_answers)
        ) == _answer_bytes(sort_pairs(full.store.graph, full_answers))

    # Every step was absorbed as a delta, none fell back to a rebuild.
    assert incremental.stats["incremental_updates"] == NUM_UPDATES
    assert incremental.stats["full_recomputes"] == 1
    assert incremental.stats["delta_edges_applied"] == NUM_UPDATES
    assert full.stats["full_recomputes"] == 1 + NUM_UPDATES

    # The retained state still matches a from-scratch engine sweep over
    # the live view graph (the rewriting is a language over view symbols).
    final_plan_nfa = incremental.plan(QUERY).automaton.to_nfa()
    final_compiled = engine_mod.compile_automaton(
        final_plan_nfa, None, incremental.store.graph.domain(), plain_symbols=True
    )
    assert _answer_bytes(incremental.answer_sorted(QUERY)) == _answer_bytes(
        engine_mod.evaluate_all_sorted(incremental.store.graph, final_compiled)
    )

    speedup = full_seconds / incremental_seconds
    print(
        f"\nincremental maintenance ({FAMILY}, {NUM_EDGES} edges, "
        f"{NUM_UPDATES} single-tuple inserts, query {QUERY!r}):\n"
        f"  full recompute {full_seconds:.3f}s "
        f"({full_seconds / NUM_UPDATES * 1000:.1f} ms/step)\n"
        f"  incremental    {incremental_seconds:.3f}s "
        f"({incremental_seconds / NUM_UPDATES * 1000:.1f} ms/step)\n"
        f"  -> {speedup:.1f}x"
    )
    assert speedup >= 10.0, (
        f"incremental re-answering only {speedup:.2f}x over full recompute "
        f"(full {full_seconds:.3f}s, incremental {incremental_seconds:.3f}s)"
    )


def test_mixed_trickle_speedup_on_50k_edge_store():
    """The ISSUE 6 gate: the same >= 10x bar with ~20% of the trickle
    being deletions (plus delete-then-reinsert pressure), answers
    byte-identical at every step, and no step falling back to a full
    rebuild."""
    incremental, full = _session_pair()
    updates = make_update_stream(
        FAMILY,
        SEED,
        count=NUM_UPDATES,
        base={s: incremental.store.extension(s) for s in incremental.store.symbols},
        delete_fraction=0.2,
        reinsert_fraction=0.5,
    )
    num_deletes = sum(op.op == "delete" for op in updates)
    assert 0 < num_deletes < NUM_UPDATES  # genuinely mixed

    assert incremental.answer_sorted(QUERY) == full.answer_sorted(QUERY)
    assert incremental.stats["full_recomputes"] == 1

    incremental_seconds = full_seconds = 0.0
    for op in updates:
        if op.op == "insert":
            assert incremental.store.add(op.symbol, op.source, op.target)
            assert full.store.add(op.symbol, op.source, op.target)
        else:
            assert incremental.store.remove(op.symbol, op.source, op.target)
            assert full.store.remove(op.symbol, op.source, op.target)
        start = time.perf_counter()
        incremental_answers = incremental.answer(QUERY)
        incremental_seconds += time.perf_counter() - start
        start = time.perf_counter()
        full_answers = full.answer(QUERY)
        full_seconds += time.perf_counter() - start
        assert _answer_bytes(
            sort_pairs(incremental.store.graph, incremental_answers)
        ) == _answer_bytes(sort_pairs(full.store.graph, full_answers))

    # Deletions are absorbed by delete-rederive, never by a rebuild.
    assert incremental.stats["incremental_updates"] == NUM_UPDATES
    assert incremental.stats["incremental_deletes"] == num_deletes
    assert incremental.stats["full_recomputes"] == 1
    assert incremental.stats["delta_edges_applied"] == NUM_UPDATES
    assert full.stats["full_recomputes"] == 1 + NUM_UPDATES

    final_plan_nfa = incremental.plan(QUERY).automaton.to_nfa()
    final_compiled = engine_mod.compile_automaton(
        final_plan_nfa, None, incremental.store.graph.domain(), plain_symbols=True
    )
    assert _answer_bytes(incremental.answer_sorted(QUERY)) == _answer_bytes(
        engine_mod.evaluate_all_sorted(incremental.store.graph, final_compiled)
    )

    speedup = full_seconds / incremental_seconds
    print(
        f"\nmixed maintenance ({FAMILY}, {NUM_EDGES} edges, {NUM_UPDATES} "
        f"ops incl. {num_deletes} deletes, query {QUERY!r}):\n"
        f"  full recompute {full_seconds:.3f}s "
        f"({full_seconds / NUM_UPDATES * 1000:.1f} ms/step)\n"
        f"  incremental    {incremental_seconds:.3f}s "
        f"({incremental_seconds / NUM_UPDATES * 1000:.1f} ms/step)\n"
        f"  -> {speedup:.1f}x"
    )
    assert speedup >= 10.0, (
        f"mixed incremental re-answering only {speedup:.2f}x over full "
        f"recompute (full {full_seconds:.3f}s, incremental "
        f"{incremental_seconds:.3f}s)"
    )


@pytest.mark.slow
@pytest.mark.parametrize("family,labels,query", [
    ("chain", ("a", "b"), "a.b"),
    ("layered_dag", ("a", "b"), "a.b"),
])
def test_incremental_trickle_speedup_other_families(family, labels, query):
    """The same gate shape on other families (smaller step counts: the
    point is that the speedup is structural, not grid-specific)."""
    db = make_graph(family, seed=SEED, edges=NUM_EDGES)
    extensions = {f"v_{label}": [] for label in labels}
    for source, label, target in db.edges():
        extensions[f"v_{label}"].append((source, target))
    extensions = {s: sorted(p) for s, p in extensions.items()}
    theory = Theory.trivial(set(labels))
    views = RPQViews({f"v_{label}": label for label in labels})
    incremental = QuerySession(MaterializedViewStore(extensions), views, theory)
    full = QuerySession(
        MaterializedViewStore(extensions), views, theory, incremental=False
    )
    updates = make_update_stream(
        family,
        SEED,
        count=40,
        base={s: incremental.store.extension(s) for s in incremental.store.symbols},
        delete_fraction=0.0,
    )
    assert incremental.answer_sorted(query) == full.answer_sorted(query)
    incremental_seconds = full_seconds = 0.0
    for op in updates:
        incremental.store.add(op.symbol, op.source, op.target)
        full.store.add(op.symbol, op.source, op.target)
        start = time.perf_counter()
        incremental_answers = incremental.answer(query)
        incremental_seconds += time.perf_counter() - start
        start = time.perf_counter()
        full_answers = full.answer(query)
        full_seconds += time.perf_counter() - start
        assert sort_pairs(incremental.store.graph, incremental_answers) == (
            sort_pairs(full.store.graph, full_answers)
        )
    speedup = full_seconds / incremental_seconds
    print(f"\n{family}: {speedup:.1f}x over {len(updates)} inserts")
    assert speedup >= 10.0, f"{family}: only {speedup:.2f}x"
