"""THM33: the EXPSPACE tiling reduction and the non-emptiness algorithm.

Regenerates the Theorem 3.3 claim at n=1: the maximal rewriting of the
constructed instance is non-empty exactly when the tiling system admits a
corridor tiling.  Benchmarks the construction itself, the lazy
non-emptiness decision (the paper's EXPSPACE algorithm), and the full
rewriting pipeline it avoids.
"""

import pytest

from repro.core import has_nonempty_rewriting, maximal_rewriting
from repro.core.emptiness import nonempty_rewriting_witness
from repro.reductions import TilingSystem, expspace_reduction, solve_corridor_tiling


def test_reduction_construction(benchmark):
    system = TilingSystem(
        tiles=("a", "b"),
        horizontal=frozenset({("a", "b")}),
        vertical=frozenset({("a", "a"), ("b", "b")}),
        t_start="a",
        t_final="b",
    )
    reduction = benchmark(expspace_reduction, system, 1)
    # polynomial-size instance
    assert reduction.e0.size() < 5000


def test_construction_size_growth(benchmark):
    system = TilingSystem(
        tiles=("a", "b"),
        horizontal=frozenset({("a", "b")}),
        vertical=frozenset({("a", "a"), ("b", "b")}),
        t_start="a",
        t_final="b",
    )
    sizes = benchmark.pedantic(
        lambda: [expspace_reduction(system, n).e0.size() for n in (1, 2, 3, 4)],
        iterations=1,
        rounds=1,
    )
    print("\n  n=1..4 |E0|:", sizes)
    # Polynomial in n: each step grows by far less than a constant factor
    # of 8 (cubic-ish data, nothing exponential).
    for prev, nxt in zip(sizes, sizes[1:]):
        assert nxt < prev * 8


@pytest.mark.parametrize("case", ["solvable", "unsolvable"])
def test_lazy_nonemptiness_decision(benchmark, case, expspace_pair):
    solvable, unsolvable = expspace_pair
    reduction = solvable if case == "solvable" else unsolvable
    expected = case == "solvable"
    verdict = benchmark.pedantic(
        has_nonempty_rewriting,
        args=(reduction.e0, reduction.views),
        iterations=1,
        rounds=1,
    )
    assert verdict == expected
    # ground truth: brute-force tiling search agrees
    assert (
        solve_corridor_tiling(reduction.system, reduction.width, 4) is not None
    ) == expected


def test_full_rewriting_pipeline_solvable(benchmark, expspace_pair):
    solvable, _ = expspace_pair
    result = benchmark.pedantic(
        maximal_rewriting,
        args=(solvable.e0, solvable.views),
        iterations=1,
        rounds=1,
    )
    witness = result.shortest_word()
    assert solvable.word_describes_tiling(witness)


def test_witness_extraction(benchmark, expspace_pair):
    solvable, _ = expspace_pair
    witness = benchmark.pedantic(
        nonempty_rewriting_witness,
        args=(solvable.e0, solvable.views),
        iterations=1,
        rounds=1,
    )
    assert witness is not None
    assert solvable.word_describes_tiling(witness)
