"""SHARDED: ParallelEvaluator vs the single-process engine (ISSUE 4 gate).

The headline gate: on a workload-generated graph with >= 50k edges, the
sharded evaluator — running its *sequential* k-shard fallback, i.e. with
no process-level parallelism at all — must answer a bounded query mix at
least 2x faster than :func:`repro.rpq.engine.evaluate_all_sorted`, with
**byte-identical sorted answer sets**.  The speedup is algorithmic:
shard ``i`` packs its source sets into ``(hi - lo)``-bit masks instead
of ``num_nodes``-bit masks, so every big-int delta/merge in the product
sweep costs ~1/k of the monolithic sweep's.  Worker processes then
multiply that on multi-core hosts (reported here, not gated — CI boxes
may expose a single core).

Measured locally (single core, grid family, 50k edges, k=8): 2.8-5.7x
per query, ~3.4x end to end including the partition build; chain-family
sweeps exceed 15x (the masks there are widest relative to the work).
"""

import time

import pytest

from repro.rpq import RPQ, ParallelEvaluator, make_graph, make_queries
from repro.rpq import engine as engine_mod

SEED = 20260730
NUM_SHARDS = 8


def _compiled(db, query):
    return engine_mod.compile_automaton(
        RPQ(query).eps_free_nfa(), None, db.domain()
    )


def _answer_bytes(pairs):
    return "\n".join(f"{x}\t{y}" for x, y in pairs).encode()


def _bounded_queries(family, count=3):
    # Dedupe while keeping seeded order; single-label queries stay in
    # (they are the common case in real mixes and the engine's best case,
    # so they make the gate harder, not easier).
    queries = []
    for query in make_queries(family, SEED, count=12, include_starred=False):
        if query not in queries:
            queries.append(query)
    return queries[:count]


def test_sharded_speedup_on_50k_edge_grid():
    """The acceptance gate: >= 2x on >= 50k edges, answers byte-identical."""
    db = make_graph("grid", seed=SEED, edges=50_000)
    assert db.num_edges >= 50_000
    queries = _bounded_queries("grid")
    compiled = {query: _compiled(db, query) for query in queries}

    build_start = time.perf_counter()
    evaluator = ParallelEvaluator(db, num_shards=NUM_SHARDS, workers=1)
    build_seconds = time.perf_counter() - build_start

    mono_seconds = sharded_seconds = 0.0
    print()
    print(
        f"grid: {db.num_nodes} nodes, {db.num_edges} edges, "
        f"k={NUM_SHARDS} shards ({evaluator.sharded.num_cut_edges} cut edges, "
        f"partition built in {build_seconds:.3f}s)"
    )
    for query in queries:
        start = time.perf_counter()
        mono = engine_mod.evaluate_all_sorted(db, compiled[query])
        mono_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        sharded = evaluator.evaluate_all_sorted(compiled[query])
        sharded_elapsed = time.perf_counter() - start
        assert _answer_bytes(sharded) == _answer_bytes(mono)
        mono_seconds += mono_elapsed
        sharded_seconds += sharded_elapsed
        print(
            f"  {query!r}: engine {mono_elapsed:.3f}s, "
            f"sharded {sharded_elapsed:.3f}s "
            f"({mono_elapsed / sharded_elapsed:.2f}x), "
            f"{len(mono)} answers identical"
        )

    speedup = mono_seconds / sharded_seconds
    end_to_end = mono_seconds / (sharded_seconds + build_seconds)
    print(
        f"  total: engine {mono_seconds:.3f}s, sharded {sharded_seconds:.3f}s "
        f"-> {speedup:.2f}x sweep, {end_to_end:.2f}x incl. partition build"
    )
    assert speedup >= 2.0, (
        f"sharded sweep only {speedup:.2f}x over the single-process engine "
        f"(engine {mono_seconds:.3f}s, sharded {sharded_seconds:.3f}s)"
    )
    assert end_to_end >= 2.0, (
        f"with the one-time partition build amortized over "
        f"{len(queries)} queries, speedup fell to {end_to_end:.2f}x"
    )


def test_pool_workers_agree_and_are_reported():
    """The process-pool path on the same 50k-edge workload: answers must
    be identical; wall-clock is reported, not gated (single-core CI
    boxes cannot promise a pool speedup)."""
    db = make_graph("grid", seed=SEED, edges=50_000)
    query = _bounded_queries("grid", count=1)[0]
    compiled = _compiled(db, query)
    sequential = ParallelEvaluator(db, num_shards=NUM_SHARDS, workers=1)
    pooled = ParallelEvaluator(db, num_shards=NUM_SHARDS, workers=4)

    start = time.perf_counter()
    expected = sequential.evaluate_all_sorted(compiled)
    sequential_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    got = pooled.evaluate_all_sorted(compiled)
    pooled_elapsed = time.perf_counter() - start
    assert _answer_bytes(got) == _answer_bytes(expected)
    print(
        f"\npool: sequential {sequential_elapsed:.3f}s, "
        f"4 workers {pooled_elapsed:.3f}s on {query!r} "
        f"({len(expected)} answers identical)"
    )


@pytest.mark.slow
@pytest.mark.parametrize("family", ["chain", "scale_free", "layered_dag"])
def test_sharded_speedup_across_families(family):
    """The same gate on every other workload family (chain is the
    extreme case: 50k+1 nodes means 50k-bit monolithic masks)."""
    db = make_graph(family, seed=SEED, edges=50_000)
    assert db.num_edges >= 50_000
    query = _bounded_queries(family, count=1)[0]
    compiled = _compiled(db, query)
    evaluator = ParallelEvaluator(db, num_shards=NUM_SHARDS, workers=1)

    start = time.perf_counter()
    mono = engine_mod.evaluate_all_sorted(db, compiled)
    mono_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    sharded = evaluator.evaluate_all_sorted(compiled)
    sharded_elapsed = time.perf_counter() - start
    assert _answer_bytes(sharded) == _answer_bytes(mono)
    speedup = mono_elapsed / sharded_elapsed
    print(
        f"\n{family}: {db.num_nodes} nodes, engine {mono_elapsed:.3f}s, "
        f"sharded {sharded_elapsed:.3f}s ({speedup:.2f}x) on {query!r}"
    )
    assert speedup >= 2.0, f"{family}: only {speedup:.2f}x"
