"""SEC42OPT: the RPQ rewriting strategies of Section 4.2.

Compares (i) full grounding of the views (``Q*``), (ii) the grounding-free
product construction, and (iii) constant partitioning, on theories with
growing domains.  The paper's claim: the product construction instantiates
formulae "only to those constants that are actually necessary", and
partitioning shrinks the alphabet "generally much smaller" — the shape
asserted here is that partitioned alphabets collapse to the number of
signature classes, independent of |D|.
"""

import pytest

from repro.regex.ast import concat, star, sym
from repro.rpq import RPQ, Pred, RPQViews, Theory, rewrite_rpq
from repro.rpq.formulas import TOP


def make_theory(domain_size: int) -> Theory:
    domain = {f"c{i}" for i in range(domain_size)}
    return Theory(
        domain=domain,
        predicates={
            "P": {f"c{i}" for i in range(domain_size) if i % 2 == 0},
            "Q": {f"c{i}" for i in range(domain_size) if i % 3 == 0},
        },
    )


Q0 = RPQ(concat(sym(Pred("P")), star(sym(Pred("Q")))))
VIEWS = RPQViews(
    {
        "v1": RPQ(sym(Pred("P"))),
        "v2": RPQ(sym(Pred("Q"))),
        "v3": RPQ(concat(sym(Pred("P")), sym(Pred("Q")))),
    }
)


@pytest.mark.parametrize("strategy", ["ground", "product"])
@pytest.mark.parametrize("domain_size", [6, 24, 96])
def test_strategies_over_domain_growth(benchmark, strategy, domain_size):
    theory = make_theory(domain_size)
    result = benchmark(rewrite_rpq, Q0, VIEWS, theory, strategy=strategy)
    assert not result.is_empty()


@pytest.mark.parametrize("domain_size", [6, 24, 96])
def test_partitioning_collapses_alphabet(benchmark, domain_size):
    theory = make_theory(domain_size)
    result = benchmark(
        rewrite_rpq, Q0, VIEWS, theory, strategy="product", partition=True
    )
    # Signatures over {P, Q}: at most 4 classes regardless of |D|.
    assert result.stats["alphabet_size"] <= 4


def test_partitioning_series(benchmark):
    def build_series():
        series = []
        for domain_size in (6, 24, 96):
            theory = make_theory(domain_size)
            full = rewrite_rpq(Q0, VIEWS, theory, partition=False)
            small = rewrite_rpq(Q0, VIEWS, theory, partition=True)
            series.append(
                (domain_size, full.stats["alphabet_size"], small.stats["alphabet_size"])
            )
        return series

    rows = benchmark.pedantic(build_series, iterations=1, rounds=1)
    print("\n  |D|  full-alphabet  partitioned")
    for domain_size, full_size, small_size in rows:
        print(f"  {domain_size:4d}  {full_size:13.0f}  {small_size:11.0f}")
    # Shape: the full alphabet tracks |D|; the partitioned one is constant.
    assert rows[-1][1] == 96
    assert rows[0][2] == rows[-1][2]


def test_wildcard_queries_benefit_most(benchmark):
    theory = make_theory(48)
    q0 = RPQ(concat(star(sym(TOP)), sym(Pred("P"))))
    result = benchmark(
        rewrite_rpq, q0, VIEWS, theory, strategy="product", partition=True
    )
    assert result.stats["alphabet_size"] <= 4
