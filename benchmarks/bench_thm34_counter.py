"""THM34: polynomial instances with doubly-exponential rewritings.

Regenerates the Theorem 3.4 series: instance size vs rewriting-word
length.  The instance (``E0^n`` + views) grows polynomially in ``n`` while
the unique shortest rewriting word grows as ``2^n * 2^(2^n)``:

    n   |E0^n| (AST nodes)   shortest rewriting word
    1   ~4.3k                8
    2   ~7.2k                64
    3   ~10.6k               2048

The full pipeline is exercised at n=1 (the word is verified symbol by
symbol); larger n are reported at construction level only — running the
2EXPTIME pipeline on them is the very point of the lower bound.
"""

import pytest

from repro.core import maximal_rewriting
from repro.reductions import counter_reduction, counter_word


@pytest.mark.parametrize("n", [1, 2, 3])
def test_instance_construction(benchmark, n):
    reduction = benchmark(counter_reduction, n)
    assert reduction.word_length == 2 ** n * 2 ** (2 ** n)


def test_series_instance_size_vs_word_length(benchmark):
    def build_series():
        series = []
        for n in (1, 2, 3):
            reduction = counter_reduction(n)
            series.append((n, reduction.e0.size(), reduction.word_length))
        return series

    rows = benchmark.pedantic(build_series, iterations=1, rounds=1)
    print("\n  n  |E0^n|  |w_C|")
    for n, size, length in rows:
        print(f"  {n}  {size:6d}  {length}")
    # Shape: instance grows polynomially, word length doubly exponentially.
    (n1, s1, l1), (n2, s2, l2), (n3, s3, l3) = rows
    assert s3 < s1 * 20  # polynomial instance growth
    assert l2 / l1 == 8 and l3 / l2 == 32  # 2^n * 2^(2^n) series


def test_counter_word_generation(benchmark):
    word = benchmark(counter_word, 3)
    assert len(word) == 8 * 256


def test_full_pipeline_n1(benchmark, counter_n1):
    result = benchmark.pedantic(
        maximal_rewriting,
        args=(counter_n1.e0, counter_n1.views),
        iterations=1,
        rounds=1,
    )
    shortest = result.shortest_word()
    assert shortest == counter_word(1)
    assert len(shortest) >= 2 ** (2 ** 1)
