"""FIG1: regenerate Figure 1 / Examples 2.2-2.3 and time each phase.

The paper's only figure shows the three automata of the construction
(``Ad``, ``A'`` and the rewriting).  These benchmarks rebuild them and
assert the reported artifacts: the rewriting is ``e2*.e1.e3*`` and exact;
dropping the view ``c`` yields ``e2*.e1``, not exact.
"""

from repro.core import ViewSet, maximal_rewriting
from repro.core.rewriter import build_a_prime, build_ad
from repro.regex.printer import to_string

E0 = "a.(b.a+c)*"


def test_fig1_full_construction(benchmark, fig1_views):
    result = benchmark(maximal_rewriting, E0, fig1_views)
    assert to_string(result.regex()) == "e2*.e1.e3*"


def test_fig1_step1_ad(benchmark, fig1_views):
    ad = benchmark(build_ad, E0, fig1_views)
    assert ad.is_total()
    assert ad.num_states == 3


def test_fig1_step2_a_prime(benchmark, fig1_views):
    ad = build_ad(E0, fig1_views)
    a_prime = benchmark(build_a_prime, ad, fig1_views)
    assert a_prime.finals == ad.states - ad.finals


def test_fig1_step3_complement(benchmark, fig1_views):
    from repro.automata.operations import complement

    ad = build_ad(E0, fig1_views)
    a_prime = build_a_prime(ad, fig1_views)
    rewriting = benchmark(complement, a_prime, fig1_views.symbols)
    assert rewriting.accepts(("e2", "e1", "e3"))


def test_fig1_exactness_check(benchmark, fig1_views):
    result = maximal_rewriting(E0, fig1_views)
    assert benchmark(result.is_exact)


def test_fig1_without_view_c(benchmark):
    views = ViewSet({"e1": "a", "e2": "a.c*.b"})
    result = benchmark(maximal_rewriting, E0, views)
    assert to_string(result.regex()) == "e2*.e1"
    assert not result.is_exact()
