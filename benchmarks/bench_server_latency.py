"""SERVER: closed-loop multi-tenant latency/throughput, oracle-checked.

The ISSUE 9 acceptance gate, run end to end over real HTTP: a seeded
closed-loop query/update mix (concurrent reader clients plus a writer
client per tenant, two tenants at least) driven against
:class:`repro.service.server.RPQServer` must

* sustain a throughput floor with a bounded p99 latency,
* finish with zero 5xx responses (429s are admission control working,
  not failures), and
* serve answers *byte-identical* to a single-threaded oracle that
  replays each tenant's accepted writes in sequence order and
  re-answers every read at its pinned store version
  (:func:`repro.service.loadgen.replay_oracle` — it raises on any
  divergence, so the differential check is not optional here).

The floors are deliberately coarse (10x under local measurements, which
show thousands of requests per second and single-digit-millisecond
p99s): the gate exists to catch an event loop blocked by a sweep, a
version pin torn by interleaving, or an oracle mismatch — not to police
CI hardware.

Run with ``-s`` to see the report::

    PYTHONPATH=src python -m pytest benchmarks/bench_server_latency.py -s
"""

from repro.service.loadgen import run_server_benchmark

# Coarse floors/ceilings, far from locally measured values (see above).
THROUGHPUT_FLOOR_RPS = 50.0
P99_CEILING_MS = 500.0


def test_server_latency_gate_two_tenants_concurrent_mix():
    report = run_server_benchmark(
        families=("grid", "chain"),
        seed=20260808,
        edges=240,
        requests_per_tenant=150,
        write_fraction=0.2,
        batch_size=2,
        readers_per_tenant=3,
    )
    print()
    for line in report.lines():
        print(line)

    assert len(report.tenants) >= 2
    assert report.requests >= 300
    assert report.updates > 0, "the mix must exercise the write path"
    assert report.errors == 0, (
        f"{report.errors} non-2xx/non-429 responses — the server must "
        "degrade (429) or answer, never fail"
    )
    # Every accepted read matched the single-threaded replay byte for
    # byte (replay_oracle raised otherwise); make the coverage explicit.
    assert report.oracle_checked == report.queries
    assert report.oracle_checked > 0
    assert report.throughput >= THROUGHPUT_FLOOR_RPS, (
        f"throughput {report.throughput:.1f} req/s under the "
        f"{THROUGHPUT_FLOOR_RPS} req/s floor"
    )
    assert report.p99_ms <= P99_CEILING_MS, (
        f"p99 {report.p99_ms:.1f} ms over the {P99_CEILING_MS} ms ceiling"
    )


def test_server_latency_gate_holds_under_sharded_tenants():
    """The same gate with sharded (sequential-worker) evaluation on, so
    the bench also covers the parallel-evaluator serving path."""
    report = run_server_benchmark(
        families=("grid",),
        seed=7,
        edges=200,
        requests_per_tenant=80,
        write_fraction=0.15,
        readers_per_tenant=2,
        parallelism=3,
        workers=1,
    )
    print()
    for line in report.lines():
        print(line)
    assert report.errors == 0
    assert report.oracle_checked == report.queries > 0
    assert report.throughput >= THROUGHPUT_FLOOR_RPS / 2
    assert report.p99_ms <= P99_CEILING_MS * 2
