"""VECTORIZED: numpy block-bitmatrix kernel vs the big-int engine (gate).

The headline gate: on a graph with >= 1M edges, the vectorized kernel
(``backend="numpy"`` — uint64 block matrices, padded CSR gather/reduce,
adjacency-bitmap seeding) must answer ``evaluate_all_sorted`` at least
**10x faster** than the big-int sweep, **byte-identical** answers.  The
snapshot/plan warm-up is excluded from the timed run (a serving session
pays it once per store version, not per query; ``GraphDB.to_csr`` is
cached until the next effective mutation).

The companion matrix test pins byte-identity where it is cheap to be
exhaustive: bigint/numpy x sequential/sharded x incremental all decode
to the same sorted answer list on a mid-size workload graph.

Measured locally (single core, 1500 nodes, ~1.54M edges, query
``a.a.b``): big-int 2.19s vs numpy 0.16s — **13.5x** — over 24k answers.
"""

import random
import time

from repro.rpq import RPQ, ParallelEvaluator, make_graph, make_queries
from repro.rpq import engine as engine_mod
from repro.rpq.graphdb import GraphDB
from repro.rpq.incremental import DeltaSweepState, NumpyDeltaSweepState

SEED = 20260808
GATE_RATIO = 10.0


def _compiled(db, query):
    return engine_mod.compile_automaton(
        RPQ(query).eps_free_nfa(), None, db.domain()
    )


def _answer_bytes(pairs):
    return "\n".join(f"{x}\t{y}" for x, y in pairs).encode()


def _dense_graph(num_nodes=1500, draws=2_600_000):
    """A dense two-label graph: ~1.5M deduplicated ``a`` edges plus a
    sparse ``b`` fringe, so ``a.a.b`` sweeps the dense relation twice
    and projects through the fringe."""
    rng = random.Random(SEED)
    db = GraphDB()
    names = [f"n{i}" for i in range(num_nodes)]
    for name in names:
        db.add_node(name)
    choice = rng.choice
    for _ in range(draws):
        db.add_edge(choice(names), "a", choice(names))
    for i in range(16):
        db.add_edge(names[(i * 131) % num_nodes], "b", names[(i * 37) % num_nodes])
    return db


def test_vectorized_sweep_gate_on_million_edge_graph():
    """The acceptance gate: >= 10x at >= 1M edges, byte-identical."""
    build_start = time.perf_counter()
    db = _dense_graph()
    build_seconds = time.perf_counter() - build_start
    assert db.num_edges >= 1_000_000
    compiled = _compiled(db, "a.a.b")

    # Warm the frozen snapshot, gather plans, and adjacency bitmaps —
    # per-version state, amortized across every query at that version.
    warm_start = time.perf_counter()
    warm = engine_mod.evaluate_all_sorted(db, compiled, backend="numpy")
    warm_seconds = time.perf_counter() - warm_start

    # Best-of-three for the sub-second side: at this scale a single
    # numpy run is within scheduler-noise range, while the big-int run
    # is seconds long and steady, so one sample suffices there.
    vec_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        vec = engine_mod.evaluate_all_sorted(db, compiled, backend="numpy")
        vec_seconds = min(vec_seconds, time.perf_counter() - start)

    start = time.perf_counter()
    big = engine_mod.evaluate_all_sorted(db, compiled, backend="bigint")
    big_seconds = time.perf_counter() - start

    assert _answer_bytes(vec) == _answer_bytes(big)
    assert _answer_bytes(warm) == _answer_bytes(big)
    ratio = big_seconds / vec_seconds
    print()
    print(
        f"dense: {db.num_nodes} nodes, {db.num_edges} edges "
        f"(built in {build_seconds:.1f}s), query 'a.a.b', "
        f"{len(vec)} answers"
    )
    print(
        f"  big-int {big_seconds:.3f}s, numpy {vec_seconds:.3f}s "
        f"(cold {warm_seconds:.3f}s) -> {ratio:.1f}x"
    )
    assert ratio >= GATE_RATIO, (
        f"vectorized sweep only {ratio:.1f}x over big-int "
        f"({vec_seconds:.3f}s vs {big_seconds:.3f}s); gate is "
        f"{GATE_RATIO:.0f}x"
    )

    # The other consumers of the same snapshot must agree byte for byte
    # on the gate graph too: the sharded tier and the incremental state.
    with ParallelEvaluator(db, num_shards=4, backend="numpy") as evaluator:
        assert _answer_bytes(evaluator.evaluate_all_sorted(compiled)) == (
            _answer_bytes(big)
        )
    state = NumpyDeltaSweepState(db, compiled)
    assert _answer_bytes(state.answers_sorted()) == _answer_bytes(big)


def test_backend_matrix_byte_identity():
    """bigint/numpy x sequential/sharded x incremental, one answer set."""
    db = make_graph("grid", seed=SEED, edges=20_000)
    query = make_queries("grid", SEED, count=1, include_starred=False)[0]
    compiled = _compiled(db, query)
    reference = _answer_bytes(
        engine_mod.evaluate_all_sorted(db, compiled, backend="bigint")
    )
    variants = {
        "engine/numpy": lambda: engine_mod.evaluate_all_sorted(
            db, compiled, backend="numpy"
        ),
        "incremental/bigint": lambda: DeltaSweepState(
            db, compiled
        ).answers_sorted(),
        "incremental/numpy": lambda: NumpyDeltaSweepState(
            db, compiled
        ).answers_sorted(),
    }
    for backend in ("bigint", "numpy"):
        for shards in (1, 3):
            def sharded(backend=backend, shards=shards):
                with ParallelEvaluator(db, shards, backend=backend) as ev:
                    return ev.evaluate_all_sorted(compiled)

            variants[f"sharded/{backend}/k={shards}"] = sharded
    print()
    for name, run in variants.items():
        start = time.perf_counter()
        answers = run()
        elapsed = time.perf_counter() - start
        print(f"  {name}: {elapsed:.3f}s, {len(answers)} answers")
        assert _answer_bytes(answers) == reference, f"{name} diverged"
