"""Shared fixtures for the benchmark suite.

Heavy artifacts (the Section 3.2 instances and their rewritings) are built
once per session; the benchmarks then measure the interesting phases
separately and check the *shape* of the paper's claims (who wins, growth
factors) rather than absolute times.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def fig1_views():
    from repro.core import ViewSet

    return ViewSet({"e1": "a", "e2": "a.c*.b", "e3": "c"})


@pytest.fixture(scope="session")
def expspace_pair():
    """Theorem 3.3 instances at n=1: (solvable, unsolvable)."""
    from repro.reductions import TilingSystem, expspace_reduction

    solvable = TilingSystem(
        tiles=("a", "b"),
        horizontal=frozenset({("a", "b")}),
        vertical=frozenset({("a", "a"), ("b", "b")}),
        t_start="a",
        t_final="b",
    )
    unsolvable = TilingSystem(
        tiles=("a", "b"),
        horizontal=frozenset({("a", "b")}),
        vertical=frozenset({("a", "a"), ("b", "b")}),
        t_start="a",
        t_final="a",
    )
    return (
        expspace_reduction(solvable, 1),
        expspace_reduction(unsolvable, 1),
    )


@pytest.fixture(scope="session")
def counter_n1():
    from repro.reductions import counter_reduction

    return counter_reduction(1)
