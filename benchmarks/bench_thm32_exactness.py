"""THM32: exactness checking — on-the-fly vs explicit complement.

Theorem 3.2's point is that materializing ``complement(B)`` costs a third
exponential, while an on-the-fly product search stays in 2EXPSPACE.  The
benchmark compares both implementations on instances where ``B`` has
nontrivial nondeterminism and asserts the on-the-fly variant explores no
more states (and empirically runs faster on the larger instances).
"""

import time

import pytest

from repro.core import ViewSet, maximal_rewriting
from repro.core.exactness import is_exact

INSTANCES = {
    "fig1": ("a.(b.a+c)*", {"e1": "a", "e2": "a.c*.b", "e3": "c"}),
    "wide-union": (
        "(a+b+c)*",
        {"e1": "a+b", "e2": "b+c", "e3": "c+a", "e4": "a.b.c"},
    ),
    "deep-star": (
        "((a.b)*.c)*",
        {"e1": "a.b", "e2": "(a.b)*.c", "e3": "c.c"},
    ),
}


@pytest.mark.parametrize("name", list(INSTANCES))
@pytest.mark.parametrize("method", ["on_the_fly", "explicit"])
def test_exactness_methods(benchmark, name, method):
    e0, views = INSTANCES[name]
    result = maximal_rewriting(e0, ViewSet(views))
    verdict = benchmark(is_exact, result, method)
    # both methods must agree — correctness is asserted in the test suite,
    # the benchmark pins it per instance
    assert verdict == is_exact(result, "on_the_fly")


def test_on_the_fly_wins_on_blowup_instance(benchmark):
    # B's determinization is exponential here; the lazy product only
    # explores reachable subsets.
    e0 = "(a+b)*.a.(a+b).(a+b).(a+b)"
    views = ViewSet({"e1": "a", "e2": "b"})
    result = maximal_rewriting(e0, views)

    def race():
        started = time.perf_counter()
        lazy_verdict = is_exact(result, "on_the_fly")
        lazy_time = time.perf_counter() - started
        started = time.perf_counter()
        explicit_verdict = is_exact(result, "explicit")
        explicit_time = time.perf_counter() - started
        return lazy_verdict, lazy_time, explicit_verdict, explicit_time

    lazy_verdict, lazy_time, explicit_verdict, explicit_time = benchmark.pedantic(
        race, iterations=1, rounds=1
    )
    assert lazy_verdict == explicit_verdict
    print(f"\n  on-the-fly: {lazy_time:.4f}s, explicit: {explicit_time:.4f}s")
    # Shape claim: lazy never an order of magnitude slower; typically faster.
    assert lazy_time <= explicit_time * 10


@pytest.mark.parametrize("name", list(INSTANCES))
def test_counterexample_extraction(benchmark, name):
    from repro.core.exactness import exactness_counterexample

    e0, views = INSTANCES[name]
    result = maximal_rewriting(e0, ViewSet(views))
    witness = benchmark(exactness_counterexample, result)
    assert (witness is None) == result.is_exact()
