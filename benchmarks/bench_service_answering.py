"""SERVICE: warm QuerySession vs cold per-query rewrite+evaluate.

The ISSUE 3 acceptance gates:

* on a 1000-node view graph with 24 queries, the warm serving path of
  :class:`repro.service.QuerySession` must be >= 5x faster than a cold
  loop that pays ``rewrite_rpq`` + extension conversion + evaluation per
  query, with identical answer sets in every regime (the shared harness
  in :mod:`repro.service.bench` raises on any mismatch);
* a :class:`repro.service.RewritePlanCache` directory written by one
  process must serve a *fresh* process: same answers, zero plan builds —
  the child forbids its builder hook outright, so any fallback to
  re-determinization fails loudly.

Measured locally: steady-state speedup in the thousands (answer memo
hits), with plan warm-up two orders of magnitude below one cold pass.
The data-update regime (plans warm, evaluation freshly invalidated) is
reported for context; evaluation dominates there by design, so its
speedup is modest — the service's win is never re-running construction.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.service import MaterializedViewStore, QuerySession, RewritePlanCache
from repro.service.bench import (
    QUERIES,
    default_workload,
    run_service_benchmark,
)

SRC = Path(__file__).resolve().parent.parent / "src"


def test_warm_session_speedup_1k_nodes():
    """The headline gate: >= 5x on 1k nodes / 24 queries, answers equal."""
    report = run_service_benchmark(num_nodes=1000, num_edges=5000)
    print()
    for line in report.lines():
        print(line)
    assert report.num_queries >= 20
    assert report.plan_stats["built"] == report.num_queries
    # The harness already raised if any regime disagreed on any query.
    assert report.steady_speedup >= 5.0, (
        f"warm session only {report.steady_speedup:.1f}x over the cold loop "
        f"(cold {report.cold_seconds:.3f}s, warm {report.warm_steady_seconds:.3f}s)"
    )


_CHILD_SCRIPT = """
import json, sys
from repro.service import MaterializedViewStore, QuerySession, RewritePlanCache
from repro.service.bench import QUERIES, VIEW_DEFS, LABELS
from repro.rpq import RPQViews, Theory

plan_dir, extensions_path = sys.argv[1], sys.argv[2]
with open(extensions_path, encoding="utf-8") as handle:
    raw = json.load(handle)
extensions = {v: {tuple(pair) for pair in pairs} for v, pairs in raw.items()}

cache = RewritePlanCache(plan_dir)
def _forbid(*args, **kwargs):
    raise AssertionError("fresh process fell back to plan construction")
cache._builder = _forbid

session = QuerySession(
    MaterializedViewStore(extensions),
    RPQViews(dict(VIEW_DEFS)),
    Theory.trivial(set(LABELS)),
    plans=cache,
)
answers = {q: sorted(map(list, session.answer(q))) for q in QUERIES}
print(json.dumps({"answers": answers, "stats": cache.stats}))
"""


def test_plan_cache_disk_round_trip_fresh_process(tmp_path):
    """Plans written by this process serve a fresh one with no rebuilds."""
    views, theory, extensions = default_workload(num_nodes=300, num_edges=1500)
    plan_dir = tmp_path / "plans"
    cache = RewritePlanCache(plan_dir)
    store = MaterializedViewStore(extensions)
    session = QuerySession(store, views, theory, plans=cache)
    expected = {q: sorted(map(list, session.answer(q))) for q in QUERIES}
    assert cache.stats["built"] == len(QUERIES)
    assert cache.stats["saved"] == len(QUERIES)

    extensions_path = tmp_path / "extensions.json"
    extensions_path.write_text(
        json.dumps({v: sorted(map(list, pairs)) for v, pairs in extensions.items()})
    )
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, str(plan_dir), str(extensions_path)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC)},
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["stats"]["built"] == 0
    assert payload["stats"]["loaded"] == len(QUERIES)
    assert payload["answers"] == expected
    print(
        f"\nfresh process: {payload['stats']['loaded']} plans loaded from disk, "
        f"0 built, answers identical on {len(QUERIES)} queries"
    )
