"""RECOVERY: checkpoint+replay restart cost and the fsync write tax.

The ISSUE 10 acceptance gates for the durability layer, measured rather
than asserted structurally:

* **recovery time** — a tenant with a rolled checkpoint and a live WAL
  suffix must come back through :func:`repro.service.recovery.recover_store`
  in bounded time, landing on the exact pre-crash snapshot (the
  correctness half is byte-compared here too, so a fast-but-wrong
  recovery cannot pass);
* **fsync overhead** — the durable serving path with the default
  ``fsync="batch"`` group-commit policy must stay within 30% of the
  ``fsync="off"`` throughput on the same closed-loop oracle-checked
  mix (:func:`repro.service.loadgen.run_server_benchmark`).  This is
  the bound that makes "durable by default" a shippable setting rather
  than a benchmark footnote.

The wall-clock ceilings are deliberately coarse (an order of magnitude
above local measurements) — they catch an accidentally quadratic replay
or a per-record fsync sneaking into the batch path, not slow CI boxes.

Run with ``-s`` to see the report::

    PYTHONPATH=src python -m pytest benchmarks/bench_recovery.py -s
"""

from __future__ import annotations

import time

from repro.service.loadgen import run_server_benchmark
from repro.service.recovery import TenantDurability, recover_store

RECOVERY_CEILING_SECONDS = 30.0
BATCH_OVER_OFF_FLOOR = 0.70  # batch must keep >= 70% of off's throughput
WRITES = 400


def _build_tenant_dir(directory) -> tuple[int, object]:
    """Seed a tenant, push WRITES single-tuple batches through the WAL
    with checkpoints rolling, and return (version, snapshot)."""
    durability = TenantDurability(directory, checkpoint_every_bytes=16 * 1024)
    store = durability.open_or_recover(
        {"q1": [("u", "v"), ("w", "v")], "q2": [("v", "z")]}
    )
    for index in range(WRITES):
        store.add("q1", f"n{index}", "v")
        durability.wal.commit()
        durability.maybe_checkpoint(store)
    version, snapshot = store.snapshot()
    durability.close()
    return version, snapshot


def test_recovery_time_and_fidelity(tmp_path):
    version, snapshot = _build_tenant_dir(tmp_path)

    start = time.perf_counter()
    result = recover_store(tmp_path)
    elapsed = time.perf_counter() - start

    recovered_version, recovered_snapshot = result.store.snapshot()
    print()
    print(
        f"recovery: {WRITES} writes -> version {recovered_version} "
        f"(checkpoint v{result.checkpoint_version}, "
        f"{result.replayed} WAL records replayed) in {elapsed * 1e3:.1f} ms"
    )
    assert recovered_version == version
    assert recovered_snapshot == snapshot
    assert result.wal_error is None
    assert result.quarantined == []
    assert elapsed <= RECOVERY_CEILING_SECONDS, (
        f"recovery took {elapsed:.1f}s, over the "
        f"{RECOVERY_CEILING_SECONDS:.0f}s ceiling"
    )


def test_fsync_batch_overhead_within_30_percent(tmp_path):
    """Group commit keeps durable serving within 30% of the no-sync
    throughput.  Both runs are full oracle-checked closed loops, so the
    comparison also re-proves answer fidelity under each policy."""
    reports = {}
    for policy in ("off", "batch"):
        reports[policy] = run_server_benchmark(
            families=("grid",),
            seed=20260808,
            edges=200,
            requests_per_tenant=120,
            write_fraction=0.3,
            readers_per_tenant=2,
            data_dir=str(tmp_path / policy),
            fsync=policy,
        )
    print()
    for policy, report in reports.items():
        print(
            f"fsync={policy:<5} {report.throughput:8.1f} req/s   "
            f"p99 {report.p99_ms:6.1f} ms   updates {report.updates}"
        )
        assert report.errors == 0
        assert report.oracle_checked == report.queries > 0
        assert report.updates > 0

    ratio = reports["batch"].throughput / reports["off"].throughput
    print(f"batch/off throughput ratio: {ratio:.2f}")
    assert ratio >= BATCH_OVER_OFF_FLOOR, (
        f"fsync=batch throughput is {ratio:.0%} of fsync=off — the "
        f"group-commit path must keep at least {BATCH_OVER_OFF_FLOOR:.0%}"
    )
