"""Tiling systems and a brute-force solver (Section 3.2 substrate).

The paper's lower bounds reduce from *corridor tiling* problems: a tiling
system is a finite set of tile types with horizontal and vertical adjacency
relations, and the question is whether a ``width x k`` region (for some
``k``) can be tiled with distinguished corner tiles — EXPSPACE-complete for
width ``2^n`` (Theorem 3.3) and 2EXPSPACE-complete for width ``2^(2^n)``
with border constraints (Theorem 3.5).

The brute-force solver here decides tiny instances exactly; the tests use
it as the ground truth against which the regular-expression reductions are
validated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Iterator, Sequence

__all__ = ["TilingSystem", "solve_corridor_tiling", "is_valid_tiling"]

Tile = str


@dataclass(frozen=True)
class TilingSystem:
    """Tile types with horizontal/vertical adjacency relations.

    ``horizontal`` contains the allowed pairs ``(left, right)`` of tiles
    adjacent within a row; ``vertical`` the allowed pairs ``(below, above)``
    of vertically adjacent tiles (row ``r`` below row ``r+1``).
    """

    tiles: tuple[Tile, ...]
    horizontal: frozenset[tuple[Tile, Tile]]
    vertical: frozenset[tuple[Tile, Tile]]
    t_start: Tile = field(default="")
    t_final: Tile = field(default="")
    t_left: Tile = field(default="")  # left-border tile (Theorem 3.5)
    t_right: Tile = field(default="")  # right-border tile (Theorem 3.5)

    def __post_init__(self) -> None:
        if len(set(self.tiles)) != len(self.tiles):
            raise ValueError("duplicate tile types")
        tile_set = set(self.tiles)
        for name, relation in (("horizontal", self.horizontal), ("vertical", self.vertical)):
            for left, right in relation:
                if left not in tile_set or right not in tile_set:
                    raise ValueError(f"{name} relation mentions unknown tiles: {(left, right)}")
        for corner in (self.t_start, self.t_final, self.t_left, self.t_right):
            if corner and corner not in tile_set:
                raise ValueError(f"corner tile {corner!r} is not a tile type")

    def h_ok(self, left: Tile, right: Tile) -> bool:
        return (left, right) in self.horizontal

    def v_ok(self, below: Tile, above: Tile) -> bool:
        return (below, above) in self.vertical


def is_valid_tiling(
    system: TilingSystem,
    rows: Sequence[Sequence[Tile]],
    width: int,
    check_corners: bool = True,
) -> bool:
    """Is ``rows`` a valid ``width x len(rows)`` tiling of the system?

    Row 0 is the *bottom* row (the paper places the start tile at position
    (0, 0), the bottom-left corner, and the final tile at the top-right).
    """
    if not rows or any(len(row) != width for row in rows):
        return False
    tile_set = set(system.tiles)
    for row in rows:
        if any(tile not in tile_set for tile in row):
            return False
        for left, right in zip(row, row[1:]):
            if not system.h_ok(left, right):
                return False
    for below_row, above_row in zip(rows, rows[1:]):
        for below, above in zip(below_row, above_row):
            if not system.v_ok(below, above):
                return False
    if check_corners:
        if system.t_start and rows[0][0] != system.t_start:
            return False
        if system.t_final and rows[-1][-1] != system.t_final:
            return False
    return True


def solve_corridor_tiling(
    system: TilingSystem, width: int, max_rows: int
) -> list[list[Tile]] | None:
    """Find a valid ``width x k`` tiling with ``1 <= k <= max_rows``.

    Exhaustive search with row-by-row extension: enumerate rows consistent
    horizontally, then chain them under the vertical relation.  Exponential
    in ``width`` — adequate for the tiny instances the tests use.
    """
    rows = list(_enumerate_rows(system, width))
    if not rows:
        return None
    start_rows = [
        row for row in rows if not system.t_start or row[0] == system.t_start
    ]
    final_ok = lambda row: not system.t_final or row[-1] == system.t_final

    # Breadth-first over row sequences, deduplicating on the frontier row
    # (only the last row constrains extensions).
    frontier: dict[tuple[Tile, ...], list[list[Tile]]] = {}
    for row in start_rows:
        if final_ok(row):
            return [list(row)]
        frontier.setdefault(row, [list(row)])
    for _depth in range(1, max_rows):
        next_frontier: dict[tuple[Tile, ...], list[list[Tile]]] = {}
        for below, stack in frontier.items():
            for above in rows:
                if all(
                    system.v_ok(b, a) for b, a in zip(below, above)
                ):
                    if final_ok(above):
                        return stack + [list(above)]
                    if above not in next_frontier:
                        next_frontier[above] = stack + [list(above)]
        frontier = next_frontier
        if not frontier:
            return None
    return None


def _enumerate_rows(system: TilingSystem, width: int) -> Iterator[tuple[Tile, ...]]:
    """All horizontally consistent rows of the given width."""
    for row in product(system.tiles, repeat=width):
        if all(system.h_ok(left, right) for left, right in zip(row, row[1:])):
            yield row
