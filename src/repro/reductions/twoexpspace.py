"""Theorem 3.5: building blocks of the 2EXPSPACE-hardness reduction.

The reduction maps a width-``2^(2^n)`` corridor tiling problem (with border
tiles ``tL`` / ``tR`` and corner tiles ``tS`` / ``tF``) to the question of
whether an *exact* rewriting exists.  Its ingredients, implemented here
literally from the paper:

* the doubly-exponential *yardstick*: the counter word ``w_C`` of
  Theorem 3.4, whose expressions are reused with every block
  sub-expression widened by ``+ Delta`` (``E0^{C Delta}``), so that the
  counter machinery coexists with tile symbols;
* the error-detecting expressions ``E0^V, E0^H, E0^S, E0^F, E0^L, E0^R``
  over ``Sigma = Sigma^C + ~Delta + Delta``: their rewritings generate
  exactly the candidate tilings that exhibit a vertical / horizontal /
  start / final / left-border / right-border error;
* the top-level instance ``E0 = E0^1 + Delta*`` with views
  ``re(e) = re_C(e) + Delta`` for counter symbols and
  ``re(~t) = ~t + t`` for tile symbols.

If no tiling exists every candidate has an error and the maximal rewriting
of ``E0^1`` already covers ``Delta*``, making the rewriting exact; a valid
tiling is a ``Delta``-word no rewriting can produce, so the rewriting is
not exact (the paper's Theorem 3.5).  The full decision procedure is
doubly-exponential even for ``n = 1`` (rows of length ``1 + 2*2^(2^1)``),
so the test-suite validates the *components*: sizes are polynomial in
``n``, and the expansion claims ("``exp(w) subseteq L(E0^X)`` precisely
when ``w`` has the stated form") are checked word-by-word for the
tractable expressions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.alphabet import ViewSet
from ..regex.ast import Regex, any_of, concat, star, sym, union
from .blocks import (
    bits,
    block_view_expr,
    counter_bad_conditions,
    highlight_bad_conditions,
    MARKER,
)
from .counter import COUNTER_SYMBOLS, _build_e_good
from .tiling import TilingSystem

__all__ = ["TwoExpspaceReduction", "twoexpspace_reduction", "tilde"]


def tilde(tile: str) -> str:
    """The marked copy ``~t`` of a tile symbol."""
    return f"~{tile}"


@dataclass
class TwoExpspaceReduction:
    """The Theorem 3.5 instance with all intermediate expressions."""

    system: TilingSystem
    n: int
    e0: Regex
    views: ViewSet
    e0_counter_delta: Regex  # E0^{C Delta}: the +Delta-widened yardstick
    e_v: Regex
    e_h: Regex
    e_s: Regex
    e_f: Regex
    e_l: Regex
    e_r: Regex

    @property
    def row_length(self) -> int:
        """``1 + 2^n * 2^(2^n)`` — symbols per encoded tiling row."""
        width = 2 ** self.n
        return 1 + width * 2 ** width


def twoexpspace_reduction(system: TilingSystem, n: int) -> TwoExpspaceReduction:
    """Build the Theorem 3.5 instance for ``system`` and ``n >= 1``.

    ``system`` must designate the four distinguished tiles: ``t_start``
    (bottom-left), ``t_final`` (top-right); the left/right border tiles are
    taken to be the first two tiles whose pair closes rows, i.e. the caller
    provides them via the ``TilingSystem`` as the tiles named in
    ``system.t_start``/``system.t_final`` plus the ``tL``/``tR`` convention
    below: the reduction requires ``(tR, tL)`` to be horizontally allowed.
    """
    if n < 1:
        raise ValueError("the construction needs n >= 1")
    tiles = list(system.tiles)
    delta = any_of(tiles)
    delta_c = list(COUNTER_SYMBOLS)

    # --- The yardstick E0^{C Delta}: counter expressions, blocks + Delta ---
    bad_terms = counter_bad_conditions(n, delta_c, extra=delta)
    bad_terms.extend(highlight_bad_conditions(n, delta_c, extra=delta))
    # Good-side expressions widened the same way: every block alternative
    # gains "+ Delta".  We rebuild them via the counter module's generator,
    # then widen mechanically.
    good = _build_e_good(n)
    e0_cd = union(union(*bad_terms), _widen_blocks(good, n, delta))

    # --- Block alphabet pieces ---
    b_c = concat(sym(MARKER), bits(3 * n + 1), any_of(delta_c))  # B^C
    b_c_delta = union(b_c, delta)
    b_c_delta_star = star(b_c_delta)

    def tile_or_tilde(tile: str) -> Regex:
        return union(sym(tilde(tile)), sym(tile))

    # --- Error detectors ---
    v_bad_pairs = [
        (t1, t2)
        for t1 in tiles
        for t2 in tiles
        if (t1, t2) not in system.vertical
    ]
    e_v = concat(
        b_c_delta_star,
        union(
            *(
                concat(
                    tile_or_tilde(t1), b_c_delta, e0_cd, tile_or_tilde(t2)
                )
                for t1, t2 in v_bad_pairs
            )
        )
        if v_bad_pairs
        else _empty(),
        b_c_delta_star,
    )

    h_bad_pairs = [
        (t1, t2)
        for t1 in tiles
        for t2 in tiles
        if (t1, t2) not in system.horizontal
    ]
    e_h = concat(
        b_c_delta_star,
        union(
            *(
                concat(tile_or_tilde(t1), tile_or_tilde(t2))
                for t1, t2 in h_bad_pairs
            )
        )
        if h_bad_pairs
        else _empty(),
        b_c_delta_star,
    )

    e_s = concat(
        union(*(tile_or_tilde(t) for t in tiles if t != system.t_start)),
        b_c_delta_star,
    )
    e_f = concat(
        star(concat(b_c_delta, e0_cd)),
        e0_cd,
        union(*(tile_or_tilde(t) for t in tiles if t != system.t_final)),
    )
    t_left = system.t_left or system.t_start
    t_right = system.t_right or system.t_final
    e_l = concat(
        star(concat(b_c_delta, e0_cd)),
        b_c_delta,
        e0_cd,
        union(*(tile_or_tilde(t) for t in tiles if t != t_left)),
        b_c_delta_star,
    )
    e_r = concat(
        star(concat(b_c_delta, e0_cd)),
        e0_cd,
        union(*(tile_or_tilde(t) for t in tiles if t != t_right)),
        b_c_delta,
        b_c_delta_star,
    )

    e0_1 = union(e_v, e_h, e_s, e_f, e_l, e_r)
    e0 = union(e0_1, star(delta))

    views: dict[str, Regex] = {}
    for symbol in delta_c:
        views[symbol] = union(block_view_expr(n, symbol), delta)
    for tile in tiles:
        views[tilde(tile)] = union(sym(tilde(tile)), sym(tile))
    return TwoExpspaceReduction(
        system=system,
        n=n,
        e0=e0,
        views=ViewSet(views),
        e0_counter_delta=e0_cd,
        e_v=e_v,
        e_h=e_h,
        e_s=e_s,
        e_f=e_f,
        e_l=e_l,
        e_r=e_r,
    )


def _widen_blocks(expr: Regex, n: int, delta: Regex) -> Regex:
    """Add ``+ Delta`` to every block sub-expression of a counter regex.

    The counter's good-side expressions are concatenations/unions/stars of
    block patterns, each of which is a ``Concat`` starting with the ``$``
    marker (fixed length 3n+3).  Those sub-terms — and only those — receive
    the ``+ Delta`` alternative, following the paper's note that ``E0^C``
    "is composed of subexpressions that generate words of length 3n+3".
    """
    from ..regex.ast import Concat, EmptySet, Epsilon, Star, Symbol, Union

    def widen(node: Regex) -> Regex:
        if isinstance(node, Concat):
            if node.parts and node.parts[0] == sym(MARKER):
                return union(node, delta)
            return concat(*(widen(part) for part in node.parts))
        if isinstance(node, Union):
            return union(*(widen(part) for part in node.parts))
        if isinstance(node, Star):
            return star(widen(node.inner))
        if isinstance(node, (Symbol, Epsilon, EmptySet)):
            return node
        raise TypeError(f"unknown Regex node: {node!r}")

    return widen(expr)


def _empty() -> Regex:
    from ..regex.ast import EMPTY

    return EMPTY
