"""Theorem 3.3: tiling existence reduces to rewriting non-emptiness.

Given a tiling system ``T`` and a number ``n``, the construction produces a
regular expression ``E0`` and views ``E`` (all of size polynomial in ``T``
and ``n``) over ``Sigma = {$, 0, 1} + Delta`` such that a Delta-word
``e_1...e_a`` has all its expansions inside ``L(E0)`` — i.e. belongs to the
maximal rewriting — iff it describes a ``2^n x k`` T-tiling (read row by
row, bottom row first).

Every view is ``re(t) = $.(0+1)^{3n+1}.t``: a block whose 3n+1 free bits
carry an n-bit position counter (column index), its increment bookkeeping
(carry/next bits) and a highlight bit.  ``E0 = E_bad + E_good``:

* ``E_bad`` detects malformed counters or highlightings (conditions 1-7);
* ``E_good`` accepts well-formed words exactly when the highlighted tiles
  respect the adjacency relations and the corner tiles are right.

Variants
--------
``variant="strict"`` (default) — two amendments that make the reduction
*literally* correct, where the paper's printed construction glosses over
degenerate words:

1. condition (2) ("last position not all ones") is moved out of ``E_bad``
   and enforced as a position anchor on the final block of every ``E_good``
   pattern.  As printed, a word whose length is not a multiple of ``2^n``
   has *every* expansion bad, hence lands in the rewriting vacuously;
2. condition (7-i) requires at least one block, so the empty word is not
   vacuously rewritable.

``variant="paper"`` — the construction exactly as printed (used by tests to
exhibit the degeneracy, and by the size benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.alphabet import ViewSet
from ..regex.ast import Regex, concat, star, union
from .blocks import (
    any_block,
    block,
    block_view_expr,
    counter_bad_conditions,
    highlight_bad_conditions,
)
from .tiling import TilingSystem

__all__ = ["ExpspaceReduction", "expspace_reduction", "tiling_word"]

VARIANTS = ("strict", "paper")


@dataclass
class ExpspaceReduction:
    """The instance ``(E0, E)`` produced from a tiling system and ``n``."""

    system: TilingSystem
    n: int
    variant: str
    e0: Regex
    views: ViewSet
    e_bad: Regex
    e_good: Regex

    @property
    def width(self) -> int:
        """The row width ``2^n`` of the encoded tilings."""
        return 2 ** self.n

    def word_describes_tiling(self, word: Sequence[str]) -> bool:
        """Ground truth: does the Delta-word describe a valid T-tiling?"""
        from .tiling import is_valid_tiling

        width = self.width
        if len(word) == 0 or len(word) % width != 0:
            return False
        rows = [list(word[i : i + width]) for i in range(0, len(word), width)]
        return is_valid_tiling(self.system, rows, width)


def tiling_word(rows: Sequence[Sequence[str]]) -> tuple[str, ...]:
    """Flatten a tiling (bottom row first) into its describing Delta-word."""
    return tuple(tile for row in rows for tile in row)


def expspace_reduction(
    system: TilingSystem, n: int, variant: str = "strict"
) -> ExpspaceReduction:
    """Build the Theorem 3.3 instance for ``system`` and ``n >= 1``."""
    if n < 1:
        raise ValueError("the construction needs n >= 1")
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; expected one of {VARIANTS}")
    if not system.t_start or not system.t_final:
        raise ValueError("Theorem 3.3 needs distinguished start/final tiles")

    tiles = list(system.tiles)
    strict = variant == "strict"

    bad_terms = counter_bad_conditions(n, tiles, include_end_anchor=not strict)
    highlight_terms = highlight_bad_conditions(n, tiles)
    if not strict:
        # The paper's (7-i) is a plain star and accepts the empty word too.
        highlight_terms[0] = star(block(n, tiles, highlight=0))
    bad_terms.extend(highlight_terms)
    e_bad = union(*bad_terms)

    e_good = _build_e_good(system, n, strict)

    e0 = union(e_bad, e_good)
    views = ViewSet({tile: block_view_expr(n, tile) for tile in tiles})
    return ExpspaceReduction(
        system=system,
        n=n,
        variant=variant,
        e0=e0,
        views=views,
        e_bad=e_bad,
        e_good=e_good,
    )


def _build_e_good(system: TilingSystem, n: int, strict: bool) -> Regex:
    """The good-word acceptor: anchors + one case per highlight placement."""
    tiles = list(system.tiles)
    t_start, t_final = system.t_start, system.t_final
    h_pairs = sorted(system.horizontal)
    v_pairs = sorted(system.vertical)

    final_pos = "ones" if strict else None

    first_u = block(n, [t_start], highlight=0)
    first_h = block(n, [t_start], highlight=1)
    last_u = block(n, [t_final], position=final_pos, highlight=0)
    last_h = block(n, [t_final], position=final_pos, highlight=1)
    unhighlighted = block(n, tiles, highlight=0)
    u_star = star(unhighlighted)

    def h_pair(t1: str, t2: str, t2_last: bool = False) -> Regex:
        right = block(
            n, [t2], position=final_pos if t2_last else None, highlight=0
        )
        return concat(block(n, [t1], highlight=1), right)

    terms: list[Regex] = []

    # --- Horizontal checks: one highlight at the left tile of the pair ---
    mid_pairs = [h_pair(t1, t2) for t1, t2 in h_pairs]
    if mid_pairs:
        # generic: highlight neither at the first block nor ending at the last
        terms.append(concat(first_u, u_star, union(*mid_pairs), u_star, last_u))
    start_pairs = [h_pair(t_start, t2) for t1, t2 in h_pairs if t1 == t_start]
    if start_pairs:
        # highlight at the very first block
        terms.append(concat(union(*start_pairs), u_star, last_u))
    end_pairs = [h_pair(t1, t_final, t2_last=True) for t1, t2 in h_pairs if t2 == t_final]
    if end_pairs:
        # the pair's right tile is the last block
        terms.append(concat(first_u, u_star, union(*end_pairs)))
    if (t_start, t_final) in system.horizontal:
        # two-block word: first highlighted, second last
        terms.append(h_pair(t_start, t_final, t2_last=True))

    # --- Vertical checks: two highlights, 2^n blocks apart ---
    def v_pair(t1: str, t2: str) -> Regex:
        return concat(
            block(n, [t1], highlight=1), u_star, block(n, [t2], highlight=1)
        )

    mid_v = [v_pair(t1, t2) for t1, t2 in v_pairs]
    if mid_v:
        terms.append(concat(first_u, u_star, union(*mid_v), u_star, last_u))
    start_v = [
        concat(first_h, u_star, block(n, [t2], highlight=1))
        for t1, t2 in v_pairs
        if t1 == t_start
    ]
    if start_v:
        terms.append(concat(union(*start_v), u_star, last_u))
    end_v = [
        concat(block(n, [t1], highlight=1), u_star, last_h)
        for t1, t2 in v_pairs
        if t2 == t_final
    ]
    if end_v:
        terms.append(concat(first_u, u_star, union(*end_v)))

    if not terms:
        # No adjacency pair is ever allowed: no good word is acceptable.
        from ..regex.ast import EMPTY

        return EMPTY
    return union(*terms)
