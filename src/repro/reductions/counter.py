"""Theorem 3.4: a polynomial family whose shortest rewriting is doubly
exponential.

For each ``n >= 1`` the construction yields ``E0^n`` and views ``E^n`` of
combined size polynomial in ``n`` whose Sigma_E-maximal rewriting is
exactly ``(w_C)^+`` — one or more repetitions of the word ``w_C``
describing the complete run of a ``2^n``-bit counter: ``2^(2^n)``
configurations of ``2^n`` symbols each.  The shortest rewriting word is
therefore ``w_C`` itself, of length ``2^n * 2^(2^n) >= 2^(2^n)``, which is
what Theorem 3.4's pumping argument needs.  (Repetitions arise because all
constraints are local: after the all-ones configuration the counter may
wrap to zero and run again, and no polynomially-sized local check can tell
"final configuration then end" from "final configuration then wrap" in the
middle of a word.  The paper's construction has the same property.)

The view alphabet is the paper's eight symbols ``b_pcx`` — a position, a
carry and a next bit of the big counter.  Each expands to a block
``$.(0+1)^{3n+1}.b_pcx`` whose free bits carry the *inner* n-bit counter of
Theorem 3.3; the inner counter's highlight machinery compares symbols that
are exactly ``2^n`` apart (same inner position, at most one wrap between),
which is how the construction relates consecutive configurations:

* within a configuration (adjacent symbols): carry propagation
  ``c' = c AND p`` plus the per-symbol law ``x = p XOR c``, checked by
  single-highlight (horizontal-style) good words;
* across configurations (``2^n`` apart): ``p' = x``, checked by
  double-highlight (vertical-style) good words;
* boundary symbols are anchored: the first symbol is ``b011`` (bit 0 of
  value 0 being incremented) and the last is ``b110`` (top bit of the
  all-ones final value); the first/last configurations are forced to
  all-zero/all-one positions by configuration-local variants of the
  horizontal relation.

As in :mod:`repro.reductions.expspace`, the good-side patterns anchor the
final block at inner position ``1^n`` so that degenerate-length words are
rejected rather than vacuously accepted.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.alphabet import ViewSet
from ..regex.ast import Regex, concat, star, union
from .blocks import (
    block,
    block_view_expr,
    counter_bad_conditions,
    highlight_bad_conditions,
)

__all__ = [
    "CounterReduction",
    "counter_reduction",
    "counter_word",
    "COUNTER_SYMBOLS",
    "symbol_bits",
]

COUNTER_SYMBOLS = tuple(
    f"b{p}{c}{x}" for p in "01" for c in "01" for x in "01"
)

FIRST_SYMBOL = "b011"  # bit 0 of configuration 0: p=0, c=1, x=1
LAST_SYMBOL = "b110"  # top bit of the all-ones final configuration


def symbol_bits(symbol: str) -> tuple[int, int, int]:
    """The ``(position, carry, next)`` components of a counter symbol."""
    return (int(symbol[1]), int(symbol[2]), int(symbol[3]))


def _legal(symbol: str) -> bool:
    p, c, x = symbol_bits(symbol)
    return x == (p ^ c)


def _h_step(left: str, right: str) -> bool:
    """Adjacent symbols within a configuration: carry propagation."""
    p, c, _x = symbol_bits(left)
    _p2, c2, _x2 = symbol_bits(right)
    return _legal(left) and _legal(right) and c2 == (c & p)


def _v_step(below: str, above: str) -> bool:
    """Symbols 2^n apart: the next configuration's position bit."""
    _p, _c, x = symbol_bits(below)
    p2, _c2, _x2 = symbol_bits(above)
    return p2 == x


@dataclass
class CounterReduction:
    """The Theorem 3.4 instance ``(E0^n, E^n)``."""

    n: int
    e0: Regex
    views: ViewSet
    e_bad: Regex
    e_good: Regex

    @property
    def configuration_length(self) -> int:
        return 2 ** self.n

    @property
    def word_length(self) -> int:
        """``2^n * 2^(2^n)`` — the length of the unique rewriting word."""
        return self.configuration_length * 2 ** self.configuration_length


def counter_word(n: int) -> tuple[str, ...]:
    """The unique rewriting word ``w_C`` of the Theorem 3.4 instance.

    Configuration ``r`` contributes ``2^n`` symbols, least-significant bit
    first: symbol ``i`` of configuration ``r`` is ``b_pcx`` with ``p`` the
    i-th bit of ``r``, ``c`` the i-th carry of the increment ``r -> r+1``
    and ``x = p XOR c`` the i-th bit of ``r + 1``.
    """
    width = 2 ** n
    symbols: list[str] = []
    for value in range(2 ** width):
        carry = 1
        for i in range(width):
            p = (value >> i) & 1
            c = carry
            x = p ^ c
            carry = c & p
            symbols.append(f"b{p}{c}{x}")
    return tuple(symbols)


def counter_reduction(n: int) -> CounterReduction:
    """Build the Theorem 3.4 instance for ``n >= 1``."""
    if n < 1:
        raise ValueError("the construction needs n >= 1")
    symbols = list(COUNTER_SYMBOLS)

    bad_terms = counter_bad_conditions(n, symbols)
    bad_terms.extend(highlight_bad_conditions(n, symbols))
    e_bad = union(*bad_terms)
    e_good = _build_e_good(n)
    e0 = union(e_bad, e_good)
    views = ViewSet({s: block_view_expr(n, s) for s in symbols})
    return CounterReduction(n=n, e0=e0, views=views, e_bad=e_bad, e_good=e_good)


def _build_e_good(n: int) -> Regex:
    """Good-word acceptor: anchored, configuration-aware adjacency checks.

    Case split on the placement of the highlight(s); "first / middle / last
    configuration" is expressed by counting inner-position-zero blocks
    before/after the highlighted pair (a block starts a configuration iff
    its inner position is ``0^n``).
    """
    symbols = list(COUNTER_SYMBOLS)

    # Symbol relations.
    h_any = [(a, b) for a in symbols for b in symbols if _h_step(a, b)]
    h_first = [
        (a, b)
        for a, b in h_any
        if symbol_bits(a)[0] == 0 and symbol_bits(b)[0] == 0
    ]
    h_last = [
        (a, b)
        for a, b in h_any
        if symbol_bits(a)[0] == 1 and symbol_bits(b)[0] == 1
    ]
    h_config_start = [(a, b) for a, b in h_any if symbol_bits(a)[1] == 1]
    h_config_start_last = [(a, b) for a, b in h_config_start if (a, b) in h_last]
    v_any = [(a, b) for a in symbols for b in symbols if _v_step(a, b)]

    first_u = block(n, [FIRST_SYMBOL], highlight=0)
    first_h = block(n, [FIRST_SYMBOL], highlight=1)
    last_u = block(n, [LAST_SYMBOL], position="ones", highlight=0)
    last_h = block(n, [LAST_SYMBOL], position="ones", highlight=1)
    u_any = block(n, symbols, highlight=0)
    u_nonzero = block(n, symbols, position="nonzero", highlight=0)
    u_zero = block(n, symbols, position="zero", highlight=0)
    u_star = star(u_any)
    nz_star = star(u_nonzero)

    def pair(left: str, right: str, left_position: str | None = None) -> Regex:
        return concat(
            block(n, [left], position=left_position, highlight=1),
            block(n, [right], highlight=0),
        )

    terms: list[Regex] = []

    # --- Horizontal-style checks (single highlight at the left symbol) ---
    # h = 0: the anchored first block is highlighted.
    h0 = [pair(a, b) for a, b in h_first if a == FIRST_SYMBOL]
    if h0:
        terms.append(concat(union(*h0), u_star, last_u))
    # h >= 1 inside the first configuration (no zero-position block between
    # block 0 and the pair): positions all 0.
    t = [pair(a, b, left_position="nonzero") for a, b in h_first]
    if t:
        terms.append(concat(first_u, nz_star, union(*t), u_star, last_u))
    # h at a configuration start (middle configuration): carry-in is 1.
    t = [pair(a, b, left_position="zero") for a, b in h_config_start]
    if t:
        terms.append(
            concat(first_u, u_star, union(*t), u_star, u_zero, u_star, last_u)
        )
    # h at the start of the last configuration.
    t = [pair(a, b, left_position="zero") for a, b in h_config_start_last]
    if t:
        terms.append(concat(first_u, u_star, union(*t), nz_star, last_u))
    # ... with the pair's right element being the anchored last block
    # (n = 1 only: configurations have length 2, so the last block directly
    # follows the last configuration's start).
    t = [
        concat(block(n, [a], position="zero", highlight=1), last_u)
        for a, b in h_config_start_last
        if b == LAST_SYMBOL
    ]
    if t:
        terms.append(concat(first_u, u_star, union(*t)))
    # h mid-configuration, middle configuration (a zero before and after).
    t = [pair(a, b, left_position="nonzero") for a, b in h_any]
    if t:
        terms.append(
            concat(
                first_u, u_star, u_zero, u_star, union(*t), u_star, u_zero,
                u_star, last_u,
            )
        )
    # h mid-configuration, last configuration (zero before, none after).
    t = [pair(a, b, left_position="nonzero") for a, b in h_last]
    if t:
        terms.append(
            concat(first_u, u_star, u_zero, nz_star, union(*t), nz_star, last_u)
        )
    # ... with the pair's right element being the anchored last block.
    t = [
        concat(block(n, [a], position="nonzero", highlight=1), last_u)
        for a, b in h_last
        if b == LAST_SYMBOL
    ]
    if t:
        terms.append(concat(first_u, u_star, u_zero, nz_star, union(*t)))

    # --- Vertical-style checks (two highlights, 2^n blocks apart) ---
    # h = 0: the first block is highlighted.
    t = [
        concat(first_h, u_star, block(n, [b], highlight=1))
        for a, b in v_any
        if a == FIRST_SYMBOL
    ]
    if t:
        terms.append(concat(union(*t), u_star, last_u))
    # generic: both highlights strictly inside.
    t = [
        concat(
            block(n, [a], highlight=1), u_star, block(n, [b], highlight=1)
        )
        for a, b in v_any
    ]
    if t:
        terms.append(concat(first_u, u_star, union(*t), u_star, last_u))
    # k = a: the upper highlight is the anchored last block.
    t = [
        concat(block(n, [a], highlight=1), u_star, last_h)
        for a, b in v_any
        if b == LAST_SYMBOL
    ]
    if t:
        terms.append(concat(first_u, u_star, union(*t)))

    return union(*terms)
