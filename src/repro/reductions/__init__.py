"""Lower-bound constructions of Section 3.2.

* :func:`expspace_reduction` — Theorem 3.3: corridor tiling (width 2^n)
  reduces to non-emptiness of the maximal rewriting (EXPSPACE-hardness);
* :func:`counter_reduction` — Theorem 3.4: a polynomial family whose only
  rewriting word has length ``2^n * 2^(2^n)``;
* :func:`twoexpspace_reduction` — Theorem 3.5: corridor tiling of width
  ``2^(2^n)`` reduces to existence of an exact rewriting
  (2EXPSPACE-hardness);
* :class:`TilingSystem` / :func:`solve_corridor_tiling` — the tiling
  substrate with a brute-force ground-truth solver.
"""

from .counter import (
    COUNTER_SYMBOLS,
    CounterReduction,
    counter_reduction,
    counter_word,
    symbol_bits,
)
from .expspace import ExpspaceReduction, expspace_reduction, tiling_word
from .tiling import TilingSystem, is_valid_tiling, solve_corridor_tiling
from .twoexpspace import TwoExpspaceReduction, tilde, twoexpspace_reduction

__all__ = [
    "TilingSystem",
    "solve_corridor_tiling",
    "is_valid_tiling",
    "ExpspaceReduction",
    "expspace_reduction",
    "tiling_word",
    "CounterReduction",
    "counter_reduction",
    "counter_word",
    "COUNTER_SYMBOLS",
    "symbol_bits",
    "TwoExpspaceReduction",
    "twoexpspace_reduction",
    "tilde",
]
