"""Block-pattern builders shared by the Section 3.2 constructions.

All three lower-bound reductions encode words as sequences of *blocks*

    $ . p_0..p_{n-1} . c_0..c_{n-1} . x_0..x_{n-1} . h . t

— a ``$`` marker, ``n`` position bits, ``n`` carry bits, ``n`` next bits
(together an n-bit counter with increment bookkeeping), one highlight bit,
and a trailing tile symbol (block length ``3n + 3``).  Bits are indexed from
0 at the least-significant position, matching the paper's convention.

This module provides regex combinators for individual blocks with selected
constraints (position class, highlight value, tile subset) and for the
counter-consistency "bad word" detectors (the paper's conditions 1-6), so
that the Theorem 3.3/3.4/3.5 constructions read like the paper's formulas.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from ..regex.ast import (
    Regex,
    any_of,
    concat,
    power,
    star,
    sym,
    union,
    word,
)

__all__ = [
    "MARKER",
    "ZERO",
    "ONE",
    "bits",
    "zeros",
    "ones",
    "nonzero_bits",
    "block",
    "any_block",
    "counter_bad_conditions",
    "highlight_bad_conditions",
    "block_view_expr",
]

MARKER = "$"
ZERO = "0"
ONE = "1"


def bits(count: int) -> Regex:
    """``(0+1)^count`` — any ``count`` bits."""
    return power(any_of([ZERO, ONE]), count)


def zeros(count: int) -> Regex:
    """``0^count``."""
    return word([ZERO] * count)


def ones(count: int) -> Regex:
    """``1^count``."""
    return word([ONE] * count)


def nonzero_bits(count: int) -> Regex:
    """``count`` bits that are not all zero."""
    if count < 1:
        raise ValueError("need at least one bit")
    return union(
        *(
            concat(bits(i), sym(ONE), bits(count - 1 - i))
            for i in range(count)
        )
    )


def _position_part(n: int, position: str | None) -> Regex:
    if position is None:
        return bits(n)
    if position == "zero":
        return zeros(n)
    if position == "ones":
        return ones(n)
    if position == "nonzero":
        return nonzero_bits(n)
    if position == "not_ones":
        # position with at least one 0 bit
        return union(
            *(
                concat(bits(i), sym(ZERO), bits(n - 1 - i))
                for i in range(n)
            )
        )
    raise ValueError(f"unknown position class {position!r}")


def _tile_part(tiles: Hashable | Iterable[Hashable]) -> Regex:
    if isinstance(tiles, (str, bytes)) or not isinstance(tiles, Iterable):
        return sym(tiles)
    tiles = list(tiles)
    if not tiles:
        raise ValueError("empty tile set in block pattern")
    return any_of(tiles)


def block(
    n: int,
    tiles: Hashable | Iterable[Hashable],
    position: str | None = None,
    highlight: int | None = None,
    extra: Regex | None = None,
) -> Regex:
    """One block: ``$ . <position> . (0+1)^{2n} . <highlight> . <tile>``.

    ``position`` selects a class for the n position bits (``None`` = any,
    ``"zero"``, ``"ones"``, ``"nonzero"``, ``"not_ones"``); ``highlight``
    fixes the highlight bit; ``tiles`` restricts the tile symbol.  ``extra``
    adds an alternative to the whole block (used by Theorem 3.5's
    ``+ Delta`` wrapping).
    """
    hl = bits(1) if highlight is None else sym(ONE if highlight else ZERO)
    result = concat(
        sym(MARKER), _position_part(n, position), bits(2 * n), hl, _tile_part(tiles)
    )
    if extra is not None:
        result = union(result, extra)
    return result


def any_block(n: int, tiles: Sequence[Hashable], extra: Regex | None = None) -> Regex:
    """The paper's ``B = $ . (0+1)^{3n+1} . Delta``."""
    return block(n, tiles, extra=extra)


def block_view_expr(n: int, tile: Hashable) -> Regex:
    """The view ``re(e) = $ . (0+1)^{3n+1} . e`` of Theorems 3.3/3.4."""
    return concat(sym(MARKER), bits(3 * n + 1), sym(tile))


def counter_bad_conditions(
    n: int,
    tiles: Sequence[Hashable],
    include_end_anchor: bool = False,
    extra: Regex | None = None,
) -> list[Regex]:
    """Detectors for counter errors — the paper's conditions (1)-(6).

    Each returned expression matches only words violating the respective
    condition.  Condition (2) — "the last block's position is not all ones"
    — is included only with ``include_end_anchor=True``: as printed it makes
    every word of length not a multiple of ``2^n`` *vacuously* rewritable
    (all its expansions become bad), so the default 'strict' variant of the
    reductions moves the end anchor into the good-side expressions instead
    (see :mod:`repro.reductions.expspace`).

    ``extra`` is threaded into every block sub-expression (Theorem 3.5's
    ``+ Delta``).
    """
    delta = list(tiles)
    b_any = any_block(n, delta, extra=extra)
    b_star = star(b_any)
    tile_any = _tile_part(delta)
    conditions: list[Regex] = []

    def wrap_block(body: Regex) -> Regex:
        return body if extra is None else union(body, extra)

    # (1) some position bit of the first block is 1
    cond1_blocks = [
        wrap_block(
            concat(sym(MARKER), bits(i), sym(ONE), bits(3 * n - i), tile_any)
        )
        for i in range(n)
    ]
    conditions.append(concat(union(*cond1_blocks), b_star))

    if include_end_anchor:
        # (2) some position bit of the last block is 0
        cond2_blocks = [
            wrap_block(
                concat(sym(MARKER), bits(i), sym(ZERO), bits(3 * n - i), tile_any)
            )
            for i in range(n)
        ]
        conditions.append(concat(b_star, union(*cond2_blocks)))

    # (3) carry bit 0 of some block is 0
    cond3_block = wrap_block(
        concat(sym(MARKER), bits(n), sym(ZERO), bits(2 * n), tile_any)
    )
    conditions.append(concat(b_star, cond3_block, b_star))

    # (4) carry(w,i) != carry(w,i-1) AND position(w,i-1)
    cond4_blocks: list[Regex] = []
    for i in range(1, n):
        for p_bit in (ZERO, ONE):
            for c_bit in (ZERO, ONE):
                expected = ONE if (p_bit == ONE and c_bit == ONE) else ZERO
                wrong = ZERO if expected == ONE else ONE
                cond4_blocks.append(
                    wrap_block(
                        concat(
                            sym(MARKER),
                            bits(i - 1),
                            sym(p_bit),
                            bits(n - i),
                            bits(i - 1),
                            sym(c_bit),
                            sym(wrong),
                            bits(n - 1 - i),
                            bits(n + 1),
                            tile_any,
                        )
                    )
                )
    if cond4_blocks:
        conditions.append(concat(b_star, union(*cond4_blocks), b_star))

    # (5) next(w,i) != position(w,i) xor carry(w,i)
    cond5_blocks: list[Regex] = []
    for i in range(n):
        for p_bit in (ZERO, ONE):
            for c_bit in (ZERO, ONE):
                wrong_next = ZERO if (p_bit != c_bit) else ONE
                cond5_blocks.append(
                    wrap_block(
                        concat(
                            sym(MARKER),
                            bits(i),
                            sym(p_bit),
                            bits(n - 1 - i),
                            bits(i),
                            sym(c_bit),
                            bits(n - 1 - i),
                            bits(i),
                            sym(wrong_next),
                            bits(n - 1 - i),
                            bits(1),
                            tile_any,
                        )
                    )
                )
    conditions.append(concat(b_star, union(*cond5_blocks), b_star))

    # (6) position(w_j, i) != next(w_{j-1}, i)
    cond6_pairs: list[Regex] = []
    for i in range(n):
        for b_bit, b_neg in ((ZERO, ONE), (ONE, ZERO)):
            first = wrap_block(
                concat(
                    sym(MARKER),
                    bits(2 * n),
                    bits(i),
                    sym(b_bit),
                    bits(n - 1 - i),
                    bits(1),
                    tile_any,
                )
            )
            second = wrap_block(
                concat(
                    sym(MARKER),
                    bits(i),
                    sym(b_neg),
                    bits(n - 1 - i),
                    bits(2 * n),
                    bits(1),
                    tile_any,
                )
            )
            cond6_pairs.append(concat(first, second))
    conditions.append(concat(b_star, union(*cond6_pairs), b_star))

    return conditions


def highlight_bad_conditions(
    n: int,
    tiles: Sequence[Hashable],
    extra: Regex | None = None,
) -> list[Regex]:
    """Detectors for invalid highlighting — the paper's condition (7).

    (i)   no highlight bit is on (one-or-more blocks: the empty word must
          stay outside ``L(E0)`` so that the empty Sigma_E word is not
          vacuously rewritable);
    (ii)  a single highlight at a block whose position is all ones;
    (iii) at least three highlights;
    (iv)  two highlights with at least two all-zero-position blocks strictly
          between them (i.e. more than ``2^n`` blocks apart);
    (v)   two highlights at blocks with different positions;
    (vi)  two highlights at all-zero positions with a zero-position block
          strictly between them.

    Condition (vi) is an amendment: the paper characterizes "exactly 2^n
    apart" as "equal positions with at most one zero-position block
    between", but for highlights at position ``0^n`` a *2*2^n* gap also has
    exactly one zero-position block between (the intermediate wrap), so two
    counter-periods would otherwise pass as one.  The extra detector closes
    that gap; without it the Theorem 3.4 instance rejects its own counter
    word (a mis-spaced "vertical" comparison at distance ``2*2^n`` fails
    the good-side relation test).
    """
    delta = list(tiles)
    b_any = any_block(n, delta, extra=extra)
    b_star = star(b_any)
    unhighlighted = block(n, delta, highlight=0, extra=extra)
    highlighted = block(n, delta, highlight=1, extra=extra)
    zero_pos = block(n, delta, position="zero", extra=extra)
    u_star = star(unhighlighted)
    tile_any = _tile_part(delta)

    conditions: list[Regex] = [
        # (i) no highlights at all (non-empty)
        concat(unhighlighted, u_star),
        # (ii) one highlight, at position 1^n
        concat(
            u_star,
            block(n, delta, position="ones", highlight=1, extra=extra),
            u_star,
        ),
        # (iii) three or more highlights
        concat(b_star, highlighted, b_star, highlighted, b_star, highlighted, b_star),
        # (iv) two highlights, >= 2 zero-position blocks strictly between
        concat(
            b_star, highlighted, b_star, zero_pos, b_star, zero_pos, b_star,
            highlighted, b_star,
        ),
        # (vi) two highlights at zero positions with a zero strictly between
        concat(
            b_star,
            block(n, delta, position="zero", highlight=1, extra=extra),
            b_star,
            zero_pos,
            b_star,
            block(n, delta, position="zero", highlight=1, extra=extra),
            b_star,
        ),
    ]
    # (v) two highlights at blocks whose positions differ in bit i
    cond5_pairs: list[Regex] = []
    for i in range(n):
        for b_bit, b_neg in ((ZERO, ONE), (ONE, ZERO)):
            first = concat(
                sym(MARKER), bits(i), sym(b_bit), bits(3 * n - 1 - i), sym(ONE), tile_any
            )
            second = concat(
                sym(MARKER), bits(i), sym(b_neg), bits(3 * n - 1 - i), sym(ONE), tile_any
            )
            if extra is not None:
                first = union(first, extra)
                second = union(second, extra)
            cond5_pairs.append(concat(first, b_star, second))
    conditions.append(concat(b_star, union(*cond5_pairs), b_star))
    return conditions
