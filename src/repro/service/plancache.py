"""Persistent cache of compiled rewrite plans.

Computing the Sigma_Q-maximal rewriting of an RPQ (Theorem 4.2) is the
expensive, data-independent half of view-based answering: grounding,
determinization into ``Ad``, the ``A'`` construction, complementation and
minimization.  The result — the rewriting DFA together with ``Ad``,
``A'``, and the grounding alphabet — depends only on the (query,
view-set, theory, options) tuple, never on the view data, so a serving
process should compute it at most once *ever*.

:class:`RewritePlanCache` realizes that:

* plans are keyed by a canonical serialization of their inputs
  (:func:`repro.automata.serialization.automaton_fingerprint` over the
  query and view automata, plus the theory's domain/predicate tables and
  the construction options), so the key is stable across processes;
* an in-memory table serves repeated lookups in O(1);
* with a ``directory``, every built plan is persisted as one JSON file
  (via the dict serialization of :mod:`repro.automata.serialization`) and
  cache misses consult the disk before building — a warm process never
  re-runs subset construction for a query it has seen in any prior run.

Plans whose automata use non-string symbols (e.g. formula-labelled view
definitions) cannot take the JSON path; they are cached in memory only
and counted under ``stats["unserializable"]``.
"""

from __future__ import annotations

import contextlib
import hashlib
import itertools
import json
import logging
import os
from pathlib import Path
from typing import Any, Hashable, Iterable, Mapping

from ..automata.serialization import (
    automaton_fingerprint,
    dfa_from_dict,
    dfa_to_dict,
    nfa_from_dict,
    nfa_to_dict,
)
from ..rpq import rewriting as _rewriting
from ..rpq.query import RPQ, QuerySpec
from ..rpq.rewriting import RPQRewritingResult
from ..rpq.theory import Theory
from ..rpq.views import RPQViews

__all__ = ["RewritePlanCache", "plan_key", "plan_to_dict", "plan_from_dict"]

_FORMAT = 1

_logger = logging.getLogger(__name__)

# Scratch-file serial within this process.  Combined with the pid it
# makes every _persist write go through a name no other writer — thread,
# process, or the same cache persisting twice — can be using, so
# concurrent persists of the same key can never interleave bytes in one
# scratch file and publish a corrupt plan via os.replace.
_TMP_SERIAL = itertools.count()


def _theory_payload(theory: Theory, encode=None) -> dict[str, Any]:
    """The theory's tables in canonical (repr-sorted) order.

    One shared encoding for both uses: the persisted plan payload keeps
    raw values (``encode=None``), the cache key encodes every value with
    ``repr`` so non-string domains still key deterministically.
    """
    enc = encode if encode is not None else (lambda value: value)
    return {
        "domain": [enc(a) for a in sorted(theory.domain, key=repr)],
        "predicates": {
            name: [
                enc(a)
                for a in sorted(theory.predicate_extension(name), key=repr)
            ]
            for name in theory.predicate_names
        },
    }


def plan_key(
    query: QuerySpec,
    views: RPQViews,
    theory: Theory,
    strategy: str = "product",
    partition: bool = False,
) -> str:
    """The canonical cache key of a (query, view-set, theory, options) tuple.

    Built from structural fingerprints of the query automaton and every
    view automaton plus the theory tables, so it is deterministic across
    processes: parsing the same regex strings always yields identically
    numbered Thompson NFAs, hence identical fingerprints.
    """
    rpq = query if isinstance(query, RPQ) else RPQ(query)
    payload = {
        "format": _FORMAT,
        "query": automaton_fingerprint(rpq.nfa()),
        "views": sorted(
            (repr(symbol), automaton_fingerprint(views.rpq(symbol).nfa()))
            for symbol in views.symbols
        ),
        "theory": _theory_payload(theory, encode=repr),
        "strategy": strategy,
        "partition": partition,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def plan_to_dict(result: RPQRewritingResult, query_text: str | None = None) -> dict:
    """Serialize a compiled plan to a JSON-friendly dict.

    Raises ``TypeError`` when any involved automaton uses non-string
    symbols (the dict serialization's restriction).
    """
    views_payload = {}
    for symbol in result.views.symbols:
        if not isinstance(symbol, str):
            raise TypeError(f"view symbol {symbol!r} is not a string")
        views_payload[symbol] = nfa_to_dict(result.views.rpq(symbol).nfa())
    # The theory tables must round-trip through JSON *and* rebuild into a
    # Theory (hashable domain constants) — require strings outright, like
    # the automata serialization does, instead of discovering the problem
    # at load time in another process.
    non_string = [a for a in result.theory.domain if not isinstance(a, str)]
    if non_string:
        raise TypeError(
            f"theory domain has non-string constants: {non_string[:3]!r}"
        )
    return {
        "format": _FORMAT,
        "query": query_text,
        "automaton": dfa_to_dict(result.automaton),
        "ad": dfa_to_dict(result.ad),
        "a_prime": nfa_to_dict(result.a_prime),
        "alphabet_used": sorted(result.alphabet_used),
        "views": views_payload,
        "view_order": [str(s) for s in result.views.symbols],
        "theory": _theory_payload(result.theory),
        "stats": {k: v for k, v in result.stats.items()},
    }


def plan_from_dict(data: Mapping[str, Any]) -> RPQRewritingResult:
    """Rebuild a compiled plan from :func:`plan_to_dict` output.

    Reconstruction is pure deserialization — no grounding, no subset
    construction, no minimization is re-run.
    """
    if not isinstance(data, Mapping):
        # A corrupt file can decode to *any* JSON value (a list, a bare
        # string); reject it as a ValueError so cache loads treat it
        # like every other corruption instead of surfacing a puzzling
        # AttributeError from the key lookups below.
        raise ValueError(
            f"plan payload is {type(data).__name__}, expected an object"
        )
    if data.get("format") != _FORMAT:
        raise ValueError(f"unsupported plan format: {data.get('format')!r}")
    views = RPQViews(
        {symbol: RPQ(nfa_from_dict(data["views"][symbol]), name=symbol)
         for symbol in data["view_order"]}
    )
    theory = Theory(
        domain=data["theory"]["domain"],
        predicates=data["theory"]["predicates"],
    )
    return RPQRewritingResult(
        automaton=dfa_from_dict(data["automaton"]),
        views=views,
        theory=theory,
        ad=dfa_from_dict(data["ad"]),
        a_prime=nfa_from_dict(data["a_prime"]),
        alphabet_used=frozenset(data["alphabet_used"]),
        stats=dict(data.get("stats", {})),
    )


class RewritePlanCache:
    """Memory + optional-disk cache of :class:`RPQRewritingResult` plans.

    ``directory`` enables persistence: plans are written as
    ``<key>.json`` files on build and read back on miss, so the cache
    survives process restarts.  ``stats`` counts ``hits`` (memory),
    ``loaded`` (disk), ``built`` (full construction), ``saved``, and
    ``unserializable`` (memory-only plans).
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        strategy: str = "product",
        partition: bool = False,
    ):
        if strategy not in _rewriting.STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected {_rewriting.STRATEGIES}"
            )
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.strategy = strategy
        self.partition = partition
        self._plans: dict[str, RPQRewritingResult] = {}
        self.stats = {
            "hits": 0,
            "loaded": 0,
            "built": 0,
            "saved": 0,
            "unserializable": 0,
            "load_errors": 0,
        }
        # Patchable builder hook: tests (and the benchmark's fresh-process
        # round-trip check) replace it to prove the load path never falls
        # back to a full construction.
        self._builder = _rewriting.rewrite_rpq

    def __len__(self) -> int:
        return len(self._plans)

    def key(self, query: QuerySpec, views: RPQViews, theory: Theory) -> str:
        return plan_key(
            query, views, theory, strategy=self.strategy, partition=self.partition
        )

    def _path(self, key: str) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / f"{key}.json"

    def get(
        self,
        query: QuerySpec,
        views: RPQViews,
        theory: Theory,
        key: str | None = None,
    ) -> RPQRewritingResult | None:
        """The cached plan for the tuple, or ``None`` (no building).

        ``key`` may be supplied by callers that already computed it
        (:class:`~repro.service.session.QuerySession` memoizes keys per
        query) to avoid re-fingerprinting the inputs.
        """
        if key is None:
            key = self.key(query, views, theory)
        plan = self._plans.get(key)
        if plan is not None:
            self.stats["hits"] += 1
            return plan
        path = self._path(key)
        if path is not None and path.exists():
            try:
                with open(path, encoding="utf-8") as handle:
                    plan = plan_from_dict(json.load(handle))
            except (OSError, ValueError, KeyError, TypeError, AttributeError) as exc:
                # Stale format, truncated write, corrupt JSON, or a
                # payload of the wrong JSON shape: warn and treat as a
                # miss so the caller rebuilds this one plan (and
                # _persist overwrites the bad file) instead of a single
                # damaged entry killing session startup for every query.
                _logger.warning(
                    "skipping corrupt plan-cache entry %s (%s: %s); "
                    "the plan will be recomputed",
                    path,
                    type(exc).__name__,
                    exc,
                )
                self.stats["load_errors"] += 1
                return None
            self._plans[key] = plan
            self.stats["loaded"] += 1
            return plan
        return None

    def get_or_build(
        self,
        query: QuerySpec,
        views: RPQViews,
        theory: Theory,
        key: str | None = None,
    ) -> RPQRewritingResult:
        """The plan for the tuple, building (and persisting) it on miss."""
        if key is None:
            key = self.key(query, views, theory)
        plan = self.get(query, views, theory, key=key)
        if plan is not None:
            return plan
        plan = self._builder(
            query,
            views,
            theory,
            strategy=self.strategy,
            partition=self.partition,
        )
        self.stats["built"] += 1
        self._plans[key] = plan
        self._persist(key, plan, query)
        return plan

    def _persist(
        self, key: str, plan: RPQRewritingResult, query: QuerySpec
    ) -> None:
        path = self._path(key)
        if path is None:
            return
        query_text = query if isinstance(query, str) else None
        try:
            # Encode fully before touching the filesystem, so a plan JSON
            # cannot encode is counted (not crashed on) and never leaves a
            # partial file behind.
            text = json.dumps(plan_to_dict(plan, query_text=query_text))
        except TypeError:
            self.stats["unserializable"] += 1
            return
        # Unique per (process, call) scratch name: two writers racing on
        # the same key each stage a complete file and the last os.replace
        # wins atomically — both outcomes are valid plans.  A shared
        # ``path.with_suffix(".tmp")`` name would let writer B truncate
        # the scratch mid-write of writer A, and whoever replaces first
        # publishes the other's half-written JSON.
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{next(_TMP_SERIAL)}.tmp"
        )
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        self.stats["saved"] += 1

    def warm(
        self,
        queries: Iterable[QuerySpec],
        views: RPQViews,
        theory: Theory,
    ) -> list[RPQRewritingResult]:
        """Ensure plans exist for all ``queries`` (build or load each)."""
        return [self.get_or_build(q, views, theory) for q in queries]

    def __repr__(self) -> str:
        where = f", dir={str(self.directory)!r}" if self.directory else ""
        return f"RewritePlanCache(plans={len(self._plans)}{where})"
