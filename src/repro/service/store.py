"""Materialized view storage for the answering service (Section 4's scenario).

In the paper's data-integration regime the answering engine never touches
the base database: it only sees the *extensions* of the materialized views
``Q1..Qk`` — sets of node pairs, one per view symbol of ``Sigma_Q`` — and
evaluates rewritings over the graph those extensions induce.

:class:`MaterializedViewStore` is the long-lived home of that data.  It
wraps a single :class:`~repro.rpq.graphdb.GraphDB` whose edge labels are
the view symbols, so the engine's label-first indexes double as per-view
indexes (one bulk set union expands a whole frontier through one view),
and keeps the per-view pair sets alongside for exact membership and
round-tripping.  Every successful mutation bumps a version counter, which
is what lets :class:`~repro.service.session.QuerySession` invalidate
cached *evaluation* state on data changes while never touching compiled
rewrite plans (plans depend only on the query, the views, and the theory
— not on the data).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from ..rpq.evaluation import ans
from ..rpq.graphdb import GraphDB
from ..rpq.views import view_graph

__all__ = ["MaterializedViewStore", "answer_on_extensions"]

Pair = tuple[Hashable, Hashable]


def answer_on_extensions(
    language, extensions: Mapping[Hashable, Iterable[Pair]]
) -> frozenset[Pair]:
    """Evaluate a rewriting over view extensions alone (no base access).

    The one shared implementation of "interpret each view symbol as its
    extension, then evaluate the Sigma_Q language on the induced graph" —
    used by :meth:`repro.rpq.rewriting.RPQRewritingResult.answer`, by
    :func:`repro.rpq.answering.answer_with_views`, and by the service's
    :class:`~repro.service.session.QuerySession` (which additionally keeps
    the induced graph alive in a :class:`MaterializedViewStore` instead of
    rebuilding it per call).
    """
    return ans(language, view_graph(extensions))


class MaterializedViewStore:
    """Versioned, incrementally updatable materialized view extensions.

    The store accepts tuples one at a time (:meth:`add` / :meth:`remove`),
    in bulk (:meth:`add_many` / :meth:`remove_many` / :meth:`replace`), or
    wholesale from a database via :meth:`load`.  Reads
    (:attr:`graph`, :meth:`extension`, :meth:`snapshot`) always reflect
    the current :attr:`version`.
    """

    def __init__(
        self, extensions: Mapping[Hashable, Iterable[Pair]] | None = None
    ):
        self._graph = GraphDB()
        self._pairs: dict[Hashable, set[Pair]] = {}
        self._version = 0
        if extensions:
            for symbol, pairs in extensions.items():
                self.add_many(symbol, pairs)

    # ------------------------------------------------------------------
    # Mutation (every effective change bumps the version)
    # ------------------------------------------------------------------
    def add(self, symbol: Hashable, source: Hashable, target: Hashable) -> bool:
        """Add one tuple to the extension of ``symbol``; ``True`` if new."""
        pairs = self._pairs.setdefault(symbol, set())
        if (source, target) in pairs:
            return False
        pairs.add((source, target))
        self._graph.add_edge(source, symbol, target)
        self._version += 1
        return True

    def remove(
        self, symbol: Hashable, source: Hashable, target: Hashable
    ) -> bool:
        """Remove one tuple from the extension of ``symbol``, if present.

        The node universe is append-only (mirroring ``GraphDB``'s dense
        interning): a node whose last tuple is removed stays a node of
        :attr:`graph`, so rewritings accepting the empty word keep
        reporting its reflexive pair, exactly as the paper's ``ans``
        does for isolated database nodes.
        """
        pairs = self._pairs.get(symbol)
        if pairs is None or (source, target) not in pairs:
            return False
        pairs.discard((source, target))
        if not pairs:
            del self._pairs[symbol]
        self._graph.remove_edge(source, symbol, target)
        self._version += 1
        return True

    def add_many(self, symbol: Hashable, pairs: Iterable[Pair]) -> int:
        """Add tuples in bulk; returns how many were actually new.

        Bumps the version at most once, so a batch load invalidates
        downstream evaluation caches a single time.
        """
        existing = self._pairs.setdefault(symbol, set())
        added = 0
        for source, target in pairs:
            if (source, target) in existing:
                continue
            existing.add((source, target))
            self._graph.add_edge(source, symbol, target)
            added += 1
        if not existing:
            del self._pairs[symbol]
        if added:
            self._version += 1
        return added

    def remove_many(self, symbol: Hashable, pairs: Iterable[Pair]) -> int:
        """Remove tuples in bulk; returns how many were actually removed."""
        existing = self._pairs.get(symbol)
        if not existing:
            return 0
        removed = 0
        for source, target in pairs:
            if (source, target) not in existing:
                continue
            existing.discard((source, target))
            self._graph.remove_edge(source, symbol, target)
            removed += 1
        if not existing:
            del self._pairs[symbol]
        if removed:
            self._version += 1
        return removed

    def replace(self, symbol: Hashable, pairs: Iterable[Pair]) -> None:
        """Swap the whole extension of ``symbol`` (a view refresh)."""
        new_pairs = set(pairs)
        old_pairs = self._pairs.get(symbol, set())
        if new_pairs == old_pairs:
            return
        for source, target in old_pairs - new_pairs:
            self._graph.remove_edge(source, symbol, target)
        for source, target in new_pairs - old_pairs:
            self._graph.add_edge(source, symbol, target)
        if new_pairs:
            self._pairs[symbol] = new_pairs
        else:
            self._pairs.pop(symbol, None)
        self._version += 1

    def load(self, views, db: GraphDB, theory=None) -> None:
        """Materialize every view of ``views`` over ``db`` into the store.

        The warehouse-refresh path: each view extension is replaced by its
        answer on the base database (``views`` is an
        :class:`~repro.rpq.views.RPQViews`; ``theory`` is required when
        the views use formulae).
        """
        for symbol, pairs in views.materialize(db, theory).items():
            self.replace(symbol, pairs)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone change counter; equal versions imply equal contents."""
        return self._version

    @property
    def graph(self) -> GraphDB:
        """The live view graph (labels = view symbols).  Do not mutate."""
        return self._graph

    @property
    def symbols(self) -> frozenset[Hashable]:
        """View symbols with a non-empty extension."""
        return frozenset(self._pairs)

    @property
    def num_tuples(self) -> int:
        return sum(len(pairs) for pairs in self._pairs.values())

    def extension(self, symbol: Hashable) -> frozenset[Pair]:
        """The current extension of ``symbol`` (empty if unknown)."""
        return frozenset(self._pairs.get(symbol, ()))

    def snapshot(self) -> tuple[int, dict[Hashable, frozenset[Pair]]]:
        """An immutable ``(version, extensions)`` copy of the store."""
        return (
            self._version,
            {symbol: frozenset(pairs) for symbol, pairs in self._pairs.items()},
        )

    def __contains__(self, symbol: Hashable) -> bool:
        return symbol in self._pairs

    def __repr__(self) -> str:
        return (
            f"MaterializedViewStore(views={len(self._pairs)}, "
            f"tuples={self.num_tuples}, version={self._version})"
        )
