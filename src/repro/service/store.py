"""Materialized view storage for the answering service (Section 4's scenario).

In the paper's data-integration regime the answering engine never touches
the base database: it only sees the *extensions* of the materialized views
``Q1..Qk`` — sets of node pairs, one per view symbol of ``Sigma_Q`` — and
evaluates rewritings over the graph those extensions induce.

:class:`MaterializedViewStore` is the long-lived home of that data.  It
wraps a single :class:`~repro.rpq.graphdb.GraphDB` whose edge labels are
the view symbols, so the engine's label-first indexes double as per-view
indexes (one bulk set union expands a whole frontier through one view),
and keeps the per-view pair sets alongside for exact membership and
round-tripping.  Every successful mutation bumps a version counter and
appends the tuple-level changes to a bounded change log
(:meth:`MaterializedViewStore.delta_since`), which is what lets
:class:`~repro.service.session.QuerySession` treat data changes
precisely: compiled rewrite plans are never touched (they depend only on
the query, the views, and the theory — not on the data), and replayable
deltas *patch* retained evaluation state forward
(:class:`~repro.rpq.incremental.DeltaSweepState` absorbs insertions by
resuming the semi-naive sweep and deletions by delete-rederive); only
compacted-away history drops that state for a full recompute.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

from ..rpq.evaluation import ans
from ..rpq.graphdb import GraphDB
from ..rpq.views import view_graph

__all__ = ["MaterializedViewStore", "StoreDelta", "answer_on_extensions"]

Pair = tuple[Hashable, Hashable]
Change = tuple[Hashable, Hashable, Hashable]  # (symbol, source, target)


@dataclass(frozen=True)
class StoreDelta:
    """The tuple-level changes between two store versions.

    Returned by :meth:`MaterializedViewStore.delta_since`.  Each list is
    in application order, but the interleaving *between* the two lists
    is not preserved — a mixed delta is not a replayable script.  It is
    still patchable: consumers apply the insertions first and then
    absorb the deletions with delete-rederive
    (:meth:`~repro.rpq.incremental.DeltaSweepState.apply_deletions`),
    which reads the live graph and therefore tolerates the lost
    ordering.  A tuple inserted and later deleted inside the window
    appears in both lists; the lists are not netted against each other.
    An empty delta (both tuples empty) means the store has not changed
    since ``base_version``.
    """

    base_version: int
    version: int
    insertions: tuple[Change, ...]
    deletions: tuple[Change, ...]

    @property
    def num_changes(self) -> int:
        return len(self.insertions) + len(self.deletions)

    @property
    def pure_insertions(self) -> bool:
        """Can evaluation state be patched forward (no deletions)?"""
        return not self.deletions


def answer_on_extensions(
    language, extensions: Mapping[Hashable, Iterable[Pair]]
) -> frozenset[Pair]:
    """Evaluate a rewriting over view extensions alone (no base access).

    The one shared implementation of "interpret each view symbol as its
    extension, then evaluate the Sigma_Q language on the induced graph" —
    used by :meth:`repro.rpq.rewriting.RPQRewritingResult.answer`, by
    :func:`repro.rpq.answering.answer_with_views`, and by the service's
    :class:`~repro.service.session.QuerySession` (which additionally keeps
    the induced graph alive in a :class:`MaterializedViewStore` instead of
    rebuilding it per call).
    """
    return ans(language, view_graph(extensions))


class MaterializedViewStore:
    """Versioned, incrementally updatable materialized view extensions.

    The store accepts tuples one at a time (:meth:`add` / :meth:`remove`),
    in bulk (:meth:`add_many` / :meth:`remove_many` / :meth:`replace`), or
    wholesale from a database via :meth:`load`.  Reads
    (:attr:`graph`, :meth:`extension`, :meth:`snapshot`) always reflect
    the current :attr:`version`.

    Every effective tuple change is also appended to a bounded change
    log (at most ``log_limit`` entries; compaction drops the oldest),
    so a consumer that remembers the version it last saw can ask
    :meth:`delta_since` for exactly what changed instead of diffing
    snapshots — the feed behind incremental answer maintenance.

    With a :class:`~repro.service.wal.WriteAheadLog` attached
    (:meth:`attach_wal`, or the ``wal`` constructor argument), every
    version bump additionally frames its effective changes into one WAL
    record *before the mutation returns* — the durability feed behind
    crash recovery (:mod:`repro.service.recovery`).  The record's
    durability depends on the log's fsync policy; a caller that must
    acknowledge the write calls ``wal.commit()`` (the serving front end
    does this once per write request).
    """

    def __init__(
        self,
        extensions: Mapping[Hashable, Iterable[Pair]] | None = None,
        *,
        log_limit: int = 100_000,
        wal=None,
    ):
        if log_limit < 0:
            raise ValueError(f"log_limit must be >= 0, got {log_limit}")
        self._graph = GraphDB()
        self._pairs: dict[Hashable, set[Pair]] = {}
        self._version = 0
        # Change log: (version-after-change, is_insert, symbol, source,
        # target), oldest first, trimmed to log_limit entries.  The log
        # is complete for base versions >= _log_start; older baselines
        # can no longer be replayed (delta_since returns None).
        self._log: deque[tuple[int, bool, Hashable, Hashable, Hashable]] = (
            deque()
        )
        self._log_limit = log_limit
        self._log_start = 0
        self._wal = None
        if extensions:
            for symbol, pairs in extensions.items():
                self.add_many(symbol, pairs)
        # Attached after the seed load on purpose: the initial
        # extensions belong in the recovery checkpoint, not the WAL
        # (recovery re-seeds from the checkpoint and replays only what
        # changed after it).
        self._wal = wal

    # ------------------------------------------------------------------
    # Mutation (every effective change bumps the version)
    # ------------------------------------------------------------------
    def _record(
        self,
        is_insert: bool,
        symbol: Hashable,
        source: Hashable,
        target: Hashable,
    ) -> None:
        """Append one change (tagged with the already-bumped version) and
        compact: dropping an entry of version ``w`` means deltas can only
        be replayed from baselines ``>= w`` from now on."""
        self._log.append((self._version, is_insert, symbol, source, target))
        while len(self._log) > self._log_limit:
            dropped_version = self._log.popleft()[0]
            if dropped_version > self._log_start:
                self._log_start = dropped_version

    def _append_wal(self, changes: list[tuple[bool, Hashable, Hashable, Hashable]]) -> None:
        """Frame one version bump's effective changes as one WAL record.

        Called after the in-memory mutation and the change-log append,
        so the record describes exactly what this bump did; durability
        of the frame follows the log's fsync policy (the caller commits
        before acknowledging).  Symbols and endpoints must be strings
        for the JSON frame — the serving stack's contract (the same one
        plan persistence imposes).
        """
        if self._wal is None:
            return
        self._wal.append(
            (
                ("insert" if is_insert else "delete", symbol, source, target)
                for is_insert, symbol, source, target in changes
            ),
            self._version,
        )

    def add(self, symbol: Hashable, source: Hashable, target: Hashable) -> bool:
        """Add one tuple to the extension of ``symbol``; ``True`` if new."""
        pairs = self._pairs.setdefault(symbol, set())
        if (source, target) in pairs:
            return False
        pairs.add((source, target))
        self._graph.add_edge(source, symbol, target)
        self._version += 1
        self._record(True, symbol, source, target)
        self._append_wal([(True, symbol, source, target)])
        return True

    def remove(
        self, symbol: Hashable, source: Hashable, target: Hashable
    ) -> bool:
        """Remove one tuple from the extension of ``symbol``, if present.

        The node universe is append-only (mirroring ``GraphDB``'s dense
        interning): a node whose last tuple is removed stays a node of
        :attr:`graph`, so rewritings accepting the empty word keep
        reporting its reflexive pair, exactly as the paper's ``ans``
        does for isolated database nodes.
        """
        pairs = self._pairs.get(symbol)
        if pairs is None or (source, target) not in pairs:
            return False
        pairs.discard((source, target))
        if not pairs:
            del self._pairs[symbol]
        self._graph.remove_edge(source, symbol, target)
        self._version += 1
        self._record(False, symbol, source, target)
        self._append_wal([(False, symbol, source, target)])
        return True

    @staticmethod
    def _as_pairs(pairs: Iterable[Pair]) -> list[Pair]:
        """Materialize and shape-check bulk input before any mutation.

        A generator that raises mid-iteration, an element that is not a
        2-tuple, or an unhashable endpoint must leave the store untouched
        at an unchanged version — "equal versions imply equal contents"
        holds even across failed bulk calls.  Unpacking checks the shape;
        the throwaway set checks hashability.
        """
        materialized = [(source, target) for source, target in pairs]
        set(materialized)
        return materialized

    def add_many(self, symbol: Hashable, pairs: Iterable[Pair]) -> int:
        """Add tuples in bulk; returns how many were actually new.

        Bumps the version at most once, so a batch load invalidates
        downstream evaluation caches a single time.  The input is
        materialized and validated up front (:meth:`_as_pairs`): a bad
        batch raises without touching the store.
        """
        pairs = self._as_pairs(pairs)
        existing = self._pairs.setdefault(symbol, set())
        added: list[Pair] = []
        for source, target in pairs:
            if (source, target) in existing:
                continue
            existing.add((source, target))
            self._graph.add_edge(source, symbol, target)
            added.append((source, target))
        if not existing:
            del self._pairs[symbol]
        if added:
            self._version += 1
            for source, target in added:
                self._record(True, symbol, source, target)
            self._append_wal(
                [(True, symbol, source, target) for source, target in added]
            )
        return len(added)

    def remove_many(self, symbol: Hashable, pairs: Iterable[Pair]) -> int:
        """Remove tuples in bulk; returns how many were actually removed.

        Like :meth:`add_many`, the input is materialized and validated
        before any mutation (a poisoned batch raises with the store
        untouched)."""
        pairs = self._as_pairs(pairs)
        existing = self._pairs.get(symbol)
        if not existing:
            return 0
        removed: list[Pair] = []
        for source, target in pairs:
            if (source, target) not in existing:
                continue
            existing.discard((source, target))
            self._graph.remove_edge(source, symbol, target)
            removed.append((source, target))
        if not existing:
            del self._pairs[symbol]
        if removed:
            self._version += 1
            for source, target in removed:
                self._record(False, symbol, source, target)
            self._append_wal(
                [(False, symbol, source, target) for source, target in removed]
            )
        return len(removed)

    def replace(self, symbol: Hashable, pairs: Iterable[Pair]) -> None:
        """Swap the whole extension of ``symbol`` (a view refresh).

        The new extension is materialized and validated before the old
        one is touched, so a failing input leaves the view as it was."""
        new_pairs = set(self._as_pairs(pairs))
        old_pairs = self._pairs.get(symbol, set())
        if new_pairs == old_pairs:
            return
        dropped = old_pairs - new_pairs
        gained = new_pairs - old_pairs
        for source, target in dropped:
            self._graph.remove_edge(source, symbol, target)
        for source, target in gained:
            self._graph.add_edge(source, symbol, target)
        if new_pairs:
            self._pairs[symbol] = new_pairs
        else:
            self._pairs.pop(symbol, None)
        self._version += 1
        changes = [(False, symbol, source, target) for source, target in dropped]
        changes += [(True, symbol, source, target) for source, target in gained]
        for is_insert, _symbol, source, target in changes:
            self._record(is_insert, symbol, source, target)
        self._append_wal(changes)

    def load(self, views, db: GraphDB, theory=None) -> None:
        """Materialize every view of ``views`` over ``db`` into the store.

        The warehouse-refresh path: each view extension is replaced by its
        answer on the base database (``views`` is an
        :class:`~repro.rpq.views.RPQViews`; ``theory`` is required when
        the views use formulae).
        """
        for symbol, pairs in views.materialize(db, theory).items():
            self.replace(symbol, pairs)

    # ------------------------------------------------------------------
    # Durability (checkpoint restore + WAL replay; repro.service.recovery)
    # ------------------------------------------------------------------
    @property
    def wal(self):
        """The attached :class:`~repro.service.wal.WriteAheadLog`, or
        ``None`` for a purely in-memory store."""
        return self._wal

    def attach_wal(self, wal) -> None:
        """Start framing every future version bump into ``wal``.

        The store's current contents are *not* written to the log —
        they are the checkpoint's job.  Attach right after construction
        (or after :meth:`restore`) and before the first served write.
        """
        self._wal = wal

    @classmethod
    def restore(
        cls,
        nodes: Iterable[Hashable],
        extensions: Mapping[Hashable, Iterable[Pair]],
        version: int,
        *,
        log_limit: int = 100_000,
    ) -> "MaterializedViewStore":
        """Rebuild a store from checkpointed state, byte-exactly.

        ``nodes`` must be the checkpointed interning table *in order*:
        the node universe is re-interned before any tuple is added, so
        the dense ids — and with them the engine's documented answer
        order — are identical to the process that wrote the checkpoint.
        The version counter is pinned to the checkpointed ``version``
        and the change log starts empty with its replay horizon there
        (consumers holding older versions correctly see "too stale").
        No WAL records are produced; attach a log afterwards.
        """
        if version < 0:
            raise ValueError(f"version must be >= 0, got {version}")
        store = cls(log_limit=log_limit)
        for node in nodes:
            store._graph.add_node(node)
        for symbol, pairs in extensions.items():
            materialized = store._as_pairs(pairs)
            if not materialized:
                continue
            existing = store._pairs.setdefault(symbol, set())
            for source, target in materialized:
                if (source, target) in existing:
                    continue
                existing.add((source, target))
                store._graph.add_edge(source, symbol, target)
        store._version = version
        store._log_start = version
        return store

    def apply_wal_changes(
        self, ops: Iterable[tuple[str, Hashable, Hashable, Hashable]], version: int
    ) -> int:
        """Replay one WAL record: apply its changes under one version bump.

        The recovery path.  Unlike :meth:`add`/:meth:`remove` (which
        bump the version once per call) a WAL record is *one* version
        bump covering all its changes — exactly how the original
        mutation logged it — so the replayed store's version counter
        retraces the pre-crash counter step for step, and every version
        a pre-crash response pinned is a version the replay passes
        through.  Changes must be effective (an insert of a present
        tuple or a delete of an absent one means the record does not
        follow from this state) and ``version`` must move forward; a
        violation raises ``ValueError`` with the store untouched, which
        recovery treats like a torn tail.  No WAL echo is produced.
        Returns the number of changes applied.
        """
        if version <= self._version:
            raise ValueError(
                f"replayed version {version} does not advance the store "
                f"(at {self._version})"
            )
        staged = [(op, symbol, source, target) for op, symbol, source, target in ops]
        for op, symbol, source, target in staged:
            pairs = self._pairs.get(symbol, set())
            present = (source, target) in pairs
            if op == "insert" and present:
                raise ValueError(
                    f"replayed insert of present tuple {(symbol, source, target)!r}"
                )
            if op == "delete" and not present:
                raise ValueError(
                    f"replayed delete of absent tuple {(symbol, source, target)!r}"
                )
            if op not in ("insert", "delete"):
                raise ValueError(f"unknown replay op {op!r}")
        for op, symbol, source, target in staged:
            if op == "insert":
                self._pairs.setdefault(symbol, set()).add((source, target))
                self._graph.add_edge(source, symbol, target)
            else:
                pairs = self._pairs[symbol]
                pairs.discard((source, target))
                if not pairs:
                    del self._pairs[symbol]
                self._graph.remove_edge(source, symbol, target)
        self._version = version
        for op, symbol, source, target in staged:
            self._record(op == "insert", symbol, source, target)
        return len(staged)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone change counter; equal versions imply equal contents."""
        return self._version

    @property
    def graph(self) -> GraphDB:
        """The live view graph (labels = view symbols).  Do not mutate."""
        return self._graph

    @property
    def symbols(self) -> frozenset[Hashable]:
        """View symbols with a non-empty extension."""
        return frozenset(self._pairs)

    @property
    def num_tuples(self) -> int:
        return sum(len(pairs) for pairs in self._pairs.values())

    def extension(self, symbol: Hashable) -> frozenset[Pair]:
        """The current extension of ``symbol`` (empty if unknown)."""
        return frozenset(self._pairs.get(symbol, ()))

    def snapshot(self) -> tuple[int, dict[Hashable, frozenset[Pair]]]:
        """An immutable ``(version, extensions)`` copy of the store."""
        return (
            self._version,
            {symbol: frozenset(pairs) for symbol, pairs in self._pairs.items()},
        )

    # ------------------------------------------------------------------
    # Change log (what lets evaluation state be patched, not rebuilt)
    # ------------------------------------------------------------------
    @property
    def log_size(self) -> int:
        """How many change entries the bounded log currently holds."""
        return len(self._log)

    @property
    def oldest_replayable_version(self) -> int:
        """The smallest base version :meth:`delta_since` still accepts.

        Starts at 0 and moves forward as compaction trims the log; a
        consumer whose last-seen version fell behind it must do a full
        recompute."""
        return self._log_start

    def delta_since(self, version: int) -> StoreDelta | None:
        """The tuple-level changes from ``version`` to :attr:`version`.

        Returns ``None`` — the *too stale, recompute from scratch*
        signal — when ``version`` is from the future (a different store,
        or a rolled-back one) or predates the log's compaction horizon
        (:attr:`oldest_replayable_version`).  A returned
        :attr:`StoreDelta.pure_insertions` delta replays exactly:
        applying its insertions to the contents at ``version`` yields
        the current contents.  A delta containing deletions does not
        preserve the interleaving of inserts and deletes, so it cannot
        be replayed as a script — consumers patch it instead (insertions
        first, then delete-rederive over the live graph; see
        :class:`StoreDelta`).
        """
        if version > self._version or version < self._log_start:
            return None
        # Scan newest-first and stop at the consumer's version: entries
        # are version-ordered, so the cost is O(|delta|), not O(log) —
        # a store carrying a large history answers a one-tuple delta in
        # constant time.
        changes: list[tuple[bool, Change]] = []
        for entry_version, is_insert, symbol, source, target in reversed(
            self._log
        ):
            if entry_version <= version:
                break
            changes.append((is_insert, (symbol, source, target)))
        changes.reverse()
        return StoreDelta(
            base_version=version,
            version=self._version,
            insertions=tuple(
                change for is_insert, change in changes if is_insert
            ),
            deletions=tuple(
                change for is_insert, change in changes if not is_insert
            ),
        )

    def __contains__(self, symbol: Hashable) -> bool:
        return symbol in self._pairs

    def __repr__(self) -> str:
        return (
            f"MaterializedViewStore(views={len(self._pairs)}, "
            f"tuples={self.num_tuples}, version={self._version})"
        )
