"""Reference workload + harness for the serving-layer benchmark.

One deterministic scenario, shared by ``repro serve-bench`` (the CLI
verb) and ``benchmarks/bench_service_answering.py`` (the CI gate): a
random base database, a fixed mediated schema of five views, and a
24-query workload answered two ways —

* **cold** — the pre-service regime: every query pays
  ``rewrite_rpq`` + extension→graph conversion + evaluation from
  scratch, with all process-level caches cleared first (what a
  one-shot script does per query);
* **warm** — the service regime: one :class:`QuerySession` over one
  :class:`MaterializedViewStore`, with plans cached.  Measured twice:
  right after a data update (plans warm, evaluation state freshly
  invalidated) and again at steady state (answer memo hits).

Answers from every regime must be identical; the harness raises
otherwise, so the speedups it reports are never bought with wrong
results.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Hashable

from ..automata.compiled import relation_cache_clear
from ..rpq import engine as _engine
from ..rpq.graphdb import random_graph
from ..rpq.rewriting import rewrite_rpq
from ..rpq.theory import Theory
from ..rpq.views import RPQViews
from .plancache import RewritePlanCache
from .session import QuerySession
from .store import MaterializedViewStore, answer_on_extensions

__all__ = ["ServiceBenchReport", "default_workload", "run_service_benchmark"]

LABELS = ("a", "b", "c")

VIEW_DEFS = {
    "va": "a",
    "vb": "b",
    "vc": "c",
    "vab": "a.b",
    "vbc": "b.c",
}

QUERIES = (
    "a.b",
    "a.b.c",
    "(a.b)*",
    "a.(b+c)*",
    "(a+b)*.c",
    "c*.a.(b+c)*",
    "a*.b",
    "(b.c)*",
    "a.(b.c)*",
    "(a+b+c)*",
    "b.c.a",
    "(a.b+b.c)*",
    "a.b+b.c",
    "c.(a+b)*.c",
    "a.a*",
    "(c+a.b)*",
    "b*.c*",
    "a.(b+c.a)*",
    "(a.b.c)*",
    "b.(a+c)*.b",
    "a+b.c*",
    "(b+c)*.a",
    "c.c*",
    "a.b.(c+a)*",
)


@dataclass
class ServiceBenchReport:
    """Timings (seconds) and cache statistics of one benchmark run."""

    num_nodes: int
    num_edges: int
    num_queries: int
    cold_seconds: float
    warm_build_seconds: float
    warm_fresh_seconds: float
    warm_steady_seconds: float
    plan_stats: dict[str, int] = field(default_factory=dict)
    session_stats: dict[str, int] = field(default_factory=dict)

    @property
    def fresh_speedup(self) -> float:
        """Cold vs warm-with-fresh-evaluation (plans cached, data changed)."""
        return self.cold_seconds / self.warm_fresh_seconds

    @property
    def steady_speedup(self) -> float:
        """Cold vs steady-state serving (plans + answer memo warm)."""
        return self.cold_seconds / self.warm_steady_seconds

    def lines(self) -> list[str]:
        per_query = self.cold_seconds / self.num_queries
        return [
            f"workload: {self.num_queries} queries over a view graph of "
            f"{self.num_nodes} nodes / {self.num_edges} base edges",
            f"cold rewrite+evaluate loop: {self.cold_seconds:.3f}s "
            f"({per_query * 1000:.1f}ms/query)",
            f"warm-up (plan builds):      {self.warm_build_seconds:.3f}s",
            f"warm, evaluation fresh:     {self.warm_fresh_seconds:.3f}s "
            f"({self.fresh_speedup:.1f}x)",
            f"warm, steady state:         {self.warm_steady_seconds:.3f}s "
            f"({self.steady_speedup:.1f}x)",
            f"plan cache: {self.plan_stats}",
            f"session:    {self.session_stats}",
        ]


def default_workload(
    num_nodes: int = 1000, num_edges: int = 5000, seed: int = 20260730
):
    """The benchmark scenario: (views, theory, extensions) + query list."""
    theory = Theory.trivial(set(LABELS))
    views = RPQViews(dict(VIEW_DEFS))
    db = random_graph(random.Random(seed), num_nodes, list(LABELS), num_edges)
    extensions = views.materialize(db, theory)
    return views, theory, extensions


def run_service_benchmark(
    num_nodes: int = 1000,
    num_edges: int = 5000,
    num_queries: int = len(QUERIES),
    seed: int = 20260730,
    plan_dir: str | None = None,
) -> ServiceBenchReport:
    """Run the cold-vs-warm comparison; raises on any answer mismatch."""
    if not 1 <= num_queries <= len(QUERIES):
        raise ValueError(f"num_queries must be in 1..{len(QUERIES)}")
    queries = QUERIES[:num_queries]
    views, theory, extensions = default_workload(num_nodes, num_edges, seed)

    # Cold: per query, a fresh process would have empty caches — model it
    # by clearing the engine-compilation and kernel-relation memos, then
    # paying rewrite + conversion + evaluation in full.
    cold_answers: list[frozenset] = []
    started = time.perf_counter()
    for query in queries:
        _engine.compile_cache_clear()
        relation_cache_clear()
        result = rewrite_rpq(query, views, theory)
        cold_answers.append(answer_on_extensions(result.automaton, extensions))
    cold_seconds = time.perf_counter() - started

    # Warm: one store + one session; plans built once at startup.
    store = MaterializedViewStore(extensions)
    plans = RewritePlanCache(plan_dir)
    session = QuerySession(store, views, theory, plans=plans)
    _engine.compile_cache_clear()
    relation_cache_clear()
    started = time.perf_counter()
    session.warm(queries)
    warm_build_seconds = time.perf_counter() - started

    # A data change invalidates evaluation state but no plans: the next
    # pass re-evaluates every query against the new version.  The probe
    # tuple connects nodes the store already knows — node interning is
    # append-only, so a brand-new node name would survive the removal and
    # shift the reflexive answers of epsilon-accepting rewritings.
    probe: tuple[Hashable, Hashable] | None = None
    known = sorted(store.graph.nodes, key=repr)[:50]
    existing = store.extension("va")
    for source in known:
        for target in known:
            if (source, target) not in existing:
                probe = (source, target)
                break
        if probe:
            break
    if probe is None:
        raise AssertionError("could not find a free probe tuple")
    store.add("va", *probe)
    store.remove("va", *probe)
    built_before = plans.stats["built"]
    started = time.perf_counter()
    warm_fresh = session.answer_many(queries)
    warm_fresh_seconds = time.perf_counter() - started

    started = time.perf_counter()
    warm_steady = session.answer_many(queries)
    warm_steady_seconds = time.perf_counter() - started
    if plans.stats["built"] != built_before:
        raise AssertionError("data update must not invalidate rewrite plans")

    for query, cold, fresh, steady in zip(
        queries, cold_answers, warm_fresh, warm_steady
    ):
        if not (cold == fresh == steady):
            raise AssertionError(f"answer mismatch for query {query!r}")

    return ServiceBenchReport(
        num_nodes=num_nodes,
        num_edges=num_edges,
        num_queries=len(queries),
        cold_seconds=cold_seconds,
        warm_build_seconds=warm_build_seconds,
        warm_fresh_seconds=warm_fresh_seconds,
        warm_steady_seconds=warm_steady_seconds,
        plan_stats=dict(plans.stats),
        session_stats=dict(session.stats),
    )
