"""Closed-loop load generation and differential checking for the server.

The serving front end's correctness claim is strong — every response
carries the store version it was pinned to, and a response at version
``v`` must hold *exactly* the answers of a single-threaded store that
absorbed the first writes up to ``v`` — so the load generator is built
to check it, not just to produce load:

* :func:`make_tenant_workload` turns a seeded workload family into a
  tenant: views materialized over a seeded graph become the store's
  initial extensions, and :func:`~repro.rpq.workload.make_traffic_mix`
  becomes the tenant's request stream (a query/update mix honouring the
  workload module's determinism contract).
* :func:`run_loadgen` drives the mix closed-loop over HTTP: one writer
  client per tenant sends the update batches in stream order (retrying
  429s, so the write sequence applies exactly once, in order), while
  several reader clients race the query ops against it.  Readers treat
  429 as a recorded outcome, not an error — that is admission control
  doing its job.
* :func:`replay_oracle` then replays each tenant's accepted writes on a
  fresh single-threaded store/session and re-answers every accepted
  read at its pinned version, comparing the JSON payloads byte for
  byte.  Any interleaving bug — a torn read, a version misreport, an
  incremental-maintenance divergence — shows up as a mismatch here.
* :func:`replay_crash_oracle` is the crash-aware variant behind the
  ``kill -9`` fault-injection tests: it tolerates an interrupted run
  (acked writes are a prefix; at most one unacked batch may have
  reached the WAL) and positions an oracle at the recovered version so
  every recovered answer can be byte-checked against it.

:func:`run_server_benchmark` bundles the three into the repeatable
harness behind ``benchmarks/bench_server_latency.py``: N tenants,
concurrent readers plus a writer per tenant, a throughput floor and a
p99 ceiling, and the oracle check over every served answer.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from dataclasses import dataclass
from typing import Iterable

from ..rpq.theory import Theory
from ..rpq.views import RPQViews
from ..rpq.workload import TrafficOp, make_graph, make_traffic_mix, make_views
from .server import RPQServer, TenantConfig
from .session import QuerySession
from .store import MaterializedViewStore

__all__ = [
    "LoadGenReport",
    "TenantWorkload",
    "make_tenant_config",
    "make_tenant_workload",
    "replay_crash_oracle",
    "replay_oracle",
    "run_loadgen",
    "run_server_benchmark",
]


@dataclass(frozen=True)
class TenantWorkload:
    """One tenant's serving scenario: its config plus its request stream."""

    name: str
    config: TenantConfig
    traffic: tuple[TrafficOp, ...]


def make_tenant_config(
    family: str,
    seed: int,
    *,
    edges: int = 240,
    plan_dir=None,
    parallelism: int | None = None,
    workers: int = 1,
    incremental: bool = True,
    backend: str = "auto",
    max_queue: int = 64,
    log_limit: int = 100_000,
) -> TenantConfig:
    """A tenant seeded from a workload family.

    The family's seeded views are materialized over its seeded graph and
    become the tenant's initial extensions — sorted into canonical
    order, so the store's node-interning order (and hence the engine's
    documented answer order) is identical in every process that builds
    the same tenant.  The theory is trivial over the family alphabet,
    which make_views guarantees yields exact rewritings for every query
    over that alphabet.
    """
    views_map = dict(make_views(family, seed))
    views = RPQViews(views_map)
    alphabet: set[str] = set()
    for symbol in views.symbols:
        alphabet |= set(views.rpq(symbol).alphabet())
    theory = Theory.trivial(alphabet)
    db = make_graph(family, seed, edges=edges)
    extensions = {
        symbol: sorted(pairs)
        for symbol, pairs in views.materialize(db, theory).items()
    }
    return TenantConfig(
        views=views,
        theory=theory,
        extensions=extensions,
        plan_dir=plan_dir,
        parallelism=parallelism,
        workers=workers,
        incremental=incremental,
        backend=backend,
        max_queue=max_queue,
        log_limit=log_limit,
    )


def make_tenant_workload(
    name: str,
    family: str,
    seed: int,
    *,
    edges: int = 240,
    requests: int = 120,
    write_fraction: float = 0.2,
    batch_size: int = 2,
    query_count: int = 6,
    **config_knobs,
) -> TenantWorkload:
    """A tenant config plus a matching seeded traffic mix."""
    config = make_tenant_config(family, seed, edges=edges, **config_knobs)
    traffic = make_traffic_mix(
        family,
        seed,
        count=requests,
        base=config.extensions,
        query_count=query_count,
        write_fraction=write_fraction,
        batch_size=batch_size,
    )
    return TenantWorkload(name=name, config=config, traffic=traffic)


# ----------------------------------------------------------------------
# The HTTP client side
# ----------------------------------------------------------------------


class _Client:
    """A minimal keep-alive HTTP/1.1 JSON client on asyncio streams."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            with contextlib.suppress(Exception):
                await self.writer.wait_closed()
            self.reader = self.writer = None

    async def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict]:
        if self.writer is None:
            await self.connect()
        assert self.reader is not None and self.writer is not None
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            "Host: loadgen\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        )
        self.writer.write(head.encode("latin-1") + body)
        await self.writer.drain()
        status_line = await self.reader.readline()
        status = int(status_line.split()[1])
        headers: dict[str, str] = {}
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        data = await self.reader.readexactly(length) if length else b""
        return status, (json.loads(data) if data else {})


def _query_payload(op: TrafficOp) -> dict:
    payload: dict = {"query": op.query}
    if op.source is not None:
        payload["source"] = op.source
    if op.target is not None:
        payload["target"] = op.target
    return payload


def _update_payload(op: TrafficOp) -> dict:
    return {
        "ops": [
            {
                "op": update.op,
                "symbol": update.symbol,
                "source": update.source,
                "target": update.target,
            }
            for update in op.updates
        ]
    }


async def run_loadgen(
    host: str,
    port: int,
    workloads: Iterable[TenantWorkload],
    *,
    readers_per_tenant: int = 2,
) -> tuple[list[dict], float]:
    """Drive every tenant's traffic closed-loop; returns (records, wall).

    Per tenant: one writer client sends the mix's update batches in
    stream order (retrying on 429 so each batch is accepted exactly
    once, preserving the stream's consistency-by-construction), and
    ``readers_per_tenant`` reader clients split the query ops
    round-robin.  Each record is a dict with the tenant, kind, traffic
    index, HTTP status, latency in seconds, and the decoded response.
    """
    records: list[dict] = []

    async def send(
        client: _Client, workload: TenantWorkload, index: int, op: TrafficOp
    ) -> dict:
        if op.kind == "update":
            path = f"/tenants/{workload.name}/update"
            payload = _update_payload(op)
        else:
            path = f"/tenants/{workload.name}/query"
            payload = _query_payload(op)
        start = time.monotonic()
        status, response = await client.request("POST", path, payload)
        record = {
            "tenant": workload.name,
            "kind": op.kind,
            "op_index": index,
            "status": status,
            "latency": time.monotonic() - start,
            "response": response,
        }
        records.append(record)
        return record

    async def writer(workload: TenantWorkload) -> None:
        client = _Client(host, port)
        try:
            for index, op in enumerate(workload.traffic):
                if op.kind != "update" or not op.updates:
                    continue
                while True:
                    record = await send(client, workload, index, op)
                    if record["status"] != 429:
                        break
                    # Admission shed us; the stream must still apply in
                    # order, so back off and retry the same batch.
                    await asyncio.sleep(0.005)
        finally:
            await client.close()

    async def reader(workload: TenantWorkload, jobs: list[tuple[int, TrafficOp]]) -> None:
        client = _Client(host, port)
        try:
            for index, op in jobs:
                await send(client, workload, index, op)
        finally:
            await client.close()

    tasks = []
    for workload in workloads:
        tasks.append(writer(workload))
        query_jobs = [
            (index, op)
            for index, op in enumerate(workload.traffic)
            if op.kind == "query"
        ]
        lanes = max(1, readers_per_tenant)
        for lane in range(lanes):
            jobs = query_jobs[lane::lanes]
            if jobs:
                tasks.append(reader(workload, jobs))
    start = time.monotonic()
    await asyncio.gather(*tasks)
    return records, time.monotonic() - start


# ----------------------------------------------------------------------
# The differential oracle
# ----------------------------------------------------------------------


def replay_oracle(workload: TenantWorkload, records: list[dict]) -> int:
    """Re-answer every accepted read on a single-threaded replay.

    Replays the tenant's accepted write batches, in sequence order, on a
    fresh store built from the same extensions, and at each read's
    pinned version re-answers the query on a fresh session — comparing
    the serialized payloads byte for byte.  Raises AssertionError on any
    divergence; returns the number of reads checked.
    """
    mine = [
        record
        for record in records
        if record["tenant"] == workload.name and record["status"] == 200
    ]
    writes = sorted(
        (record for record in mine if record["kind"] == "update"),
        key=lambda record: record["response"]["seq"],
    )
    write_ops = [op for op in workload.traffic if op.kind == "update"]
    if len(writes) != len(write_ops):
        raise AssertionError(
            f"tenant {workload.name!r}: {len(write_ops)} update batches "
            f"sent but {len(writes)} accepted — the writer must retry "
            "until every batch lands"
        )
    reads = sorted(
        (record for record in mine if record["kind"] == "query"),
        key=lambda record: record["response"]["version"],
    )
    config = workload.config
    store = MaterializedViewStore(
        config.extensions or {}, log_limit=config.log_limit
    )
    session = QuerySession(
        store,
        config.views,
        config.theory,
        incremental=config.incremental,
        backend=config.backend,
    )

    cursor = 0

    def apply_next_batch() -> None:
        nonlocal cursor
        record, op = writes[cursor], write_ops[cursor]
        applied = 0
        for update in op.updates:
            if update.op == "insert":
                applied += store.add(update.symbol, update.source, update.target)
            else:
                applied += store.remove(
                    update.symbol, update.source, update.target
                )
        response = record["response"]
        if store.version != response["version"] or applied != response["applied"]:
            raise AssertionError(
                f"tenant {workload.name!r} write #{cursor}: server reported "
                f"version={response['version']} applied={response['applied']}, "
                f"replay reached version={store.version} applied={applied}"
            )
        cursor += 1

    checked = 0
    for read in reads:
        response = read["response"]
        version = response["version"]
        while store.version < version and cursor < len(writes):
            apply_next_batch()
        if store.version != version:
            raise AssertionError(
                f"tenant {workload.name!r}: a read was pinned at version "
                f"{version}, but the single-threaded replay can only reach "
                f"{store.version} — the server misreported its pin"
            )
        expected = _expected_payload(session, response)
        got = {key: response.get(key) for key in expected}
        if json.dumps(got, sort_keys=True) != json.dumps(expected, sort_keys=True):
            raise AssertionError(
                f"tenant {workload.name!r} query {response['query']!r} "
                f"({response['mode']}) at version {version} diverged from "
                f"the oracle:\n  served: {got}\n  oracle: {expected}"
            )
        checked += 1
    while cursor < len(writes):
        apply_next_batch()
    return checked


def replay_crash_oracle(
    workload: TenantWorkload,
    acked_writes: list[dict],
    recovered_version: int,
) -> tuple[MaterializedViewStore, QuerySession]:
    """The durability oracle: check a recovered tenant against its stream.

    After a ``kill -9`` and restart, a durable tenant's recovered
    version must account for **every** acknowledged write and **at most
    one** unacknowledged batch beyond them: the load generator drives
    one synchronous writer per tenant (send, await the 200, send the
    next), so the batches acknowledged before the kill are a prefix of
    the update stream, and the only write the crash can have caught
    mid-flight — applied and logged but never acknowledged — is the
    single next batch.  Anything less than the acked prefix is
    acknowledged-write loss; anything more than one extra batch means
    writes were acknowledged that the client never saw.

    ``acked_writes`` holds the ``response`` payloads (seq, version,
    applied) of the update batches acknowledged before the kill.
    Replays the stream single-threaded, verifies each acked batch's
    reported version/applied byte-for-byte, rolls forward through the
    optional in-flight batch to ``recovered_version``, and returns the
    oracle ``(store, session)`` positioned there — ready for answer
    comparison against the recovered server.  Raises AssertionError on
    any violation.
    """
    write_ops = [
        op for op in workload.traffic if op.kind == "update" and op.updates
    ]
    acked = sorted(acked_writes, key=lambda response: response["seq"])
    seqs = [response["seq"] for response in acked]
    if seqs != list(range(1, len(seqs) + 1)):
        raise AssertionError(
            f"tenant {workload.name!r}: acknowledged write seqs {seqs} are "
            "not the prefix 1..k — the crash harness must drive a single "
            "synchronous writer"
        )
    config = workload.config
    store = MaterializedViewStore(
        config.extensions or {}, log_limit=config.log_limit
    )
    session = QuerySession(
        store,
        config.views,
        config.theory,
        incremental=config.incremental,
        backend=config.backend,
    )

    def apply_batch(index: int) -> int:
        applied = 0
        for update in write_ops[index].updates:
            if update.op == "insert":
                applied += store.add(
                    update.symbol, update.source, update.target
                )
            else:
                applied += store.remove(
                    update.symbol, update.source, update.target
                )
        return applied

    for index, response in enumerate(acked):
        applied = apply_batch(index)
        if (
            store.version != response["version"]
            or applied != response["applied"]
        ):
            raise AssertionError(
                f"tenant {workload.name!r} acked write #{index + 1}: server "
                f"reported version={response['version']} "
                f"applied={response['applied']}, replay reached "
                f"version={store.version} applied={applied}"
            )
    if store.version > recovered_version:
        raise AssertionError(
            f"tenant {workload.name!r}: ACKNOWLEDGED WRITE LOST — the "
            f"acked prefix ends at version {store.version} but recovery "
            f"only reached version {recovered_version}"
        )
    in_flight = 0
    cursor = len(acked)
    while store.version < recovered_version and cursor < len(write_ops):
        apply_batch(cursor)
        cursor += 1
        in_flight += 1
    if store.version != recovered_version:
        raise AssertionError(
            f"tenant {workload.name!r}: recovered version "
            f"{recovered_version} is not reachable from the update stream "
            f"(replay passed it, landing on {store.version}) — recovery "
            "materialized state the stream never produced"
        )
    if in_flight > 1:
        raise AssertionError(
            f"tenant {workload.name!r}: {in_flight} unacknowledged batches "
            "survived the crash, but a synchronous writer can have at most "
            "one in flight"
        )
    return store, session


def _expected_payload(session: QuerySession, response: dict) -> dict:
    query, mode = response["query"], response["mode"]
    if mode == "all":
        return {
            "answers": [
                [str(x), str(y)] for x, y in session.answer_sorted(query)
            ]
        }
    if mode == "single_source":
        return {
            "targets": sorted(
                str(y) for y in session.answer_from(query, response["source"])
            )
        }
    return {
        "found": session.answer_pair(
            query, response["source"], response["target"]
        )
    }


# ----------------------------------------------------------------------
# The benchmark harness
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LoadGenReport:
    """What one closed-loop run did and how fast it went."""

    tenants: tuple[str, ...]
    requests: int
    queries: int
    updates: int
    rejected: int
    errors: int
    wall_seconds: float
    throughput: float
    p50_ms: float
    p99_ms: float
    oracle_checked: int

    def lines(self) -> list[str]:
        return [
            (
                f"server loadgen: {len(self.tenants)} tenants "
                f"({', '.join(self.tenants)}), {self.requests} requests "
                f"in {self.wall_seconds:.2f}s"
            ),
            (
                f"  throughput: {self.throughput:.1f} req/s "
                f"(queries={self.queries}, updates={self.updates}, "
                f"rejected={self.rejected}, errors={self.errors})"
            ),
            f"  latency: p50={self.p50_ms:.2f} ms  p99={self.p99_ms:.2f} ms",
            (
                f"  oracle: {self.oracle_checked} served answers matched "
                "the single-threaded replay byte for byte"
            ),
        ]


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = round(fraction * (len(sorted_values) - 1))
    return sorted_values[index]


def run_server_benchmark(
    *,
    families: tuple[str, ...] = ("grid", "chain"),
    seed: int = 20260808,
    edges: int = 240,
    requests_per_tenant: int = 120,
    write_fraction: float = 0.2,
    batch_size: int = 2,
    readers_per_tenant: int = 2,
    max_queue: int = 64,
    parallelism: int | None = None,
    workers: int = 1,
    backend: str = "auto",
    data_dir=None,
    fsync: str = "batch",
) -> LoadGenReport:
    """Serve N seeded tenants, hammer them closed-loop, check every answer.

    Starts an :class:`~repro.service.server.RPQServer` on an ephemeral
    port inside one event loop, runs :func:`run_loadgen` against it
    (concurrent readers plus a writer per tenant), then replays every
    tenant through :func:`replay_oracle`.  The returned report carries
    throughput and latency percentiles over *accepted* requests; 429s
    are counted, not timed.  ``data_dir``/``fsync`` switch the server
    into durable mode, which is how ``benchmarks/bench_recovery.py``
    measures the write-path overhead of WAL commits per fsync policy.
    """
    workloads = [
        make_tenant_workload(
            f"t{index}-{family}",
            family,
            seed + index,
            edges=edges,
            requests=requests_per_tenant,
            write_fraction=write_fraction,
            batch_size=batch_size,
            max_queue=max_queue,
            parallelism=parallelism,
            workers=workers,
            backend=backend,
        )
        for index, family in enumerate(families)
    ]

    async def main() -> tuple[list[dict], float]:
        server = RPQServer(
            {workload.name: workload.config for workload in workloads},
            data_dir=data_dir,
            fsync=fsync,
        )
        await server.start()
        try:
            return await run_loadgen(
                server.host,
                server.port,
                workloads,
                readers_per_tenant=readers_per_tenant,
            )
        finally:
            await server.aclose()

    records, wall = asyncio.run(main())
    oracle_checked = sum(
        replay_oracle(workload, records) for workload in workloads
    )
    accepted = [record for record in records if record["status"] == 200]
    latencies = sorted(record["latency"] for record in accepted)
    return LoadGenReport(
        tenants=tuple(workload.name for workload in workloads),
        requests=len(records),
        queries=sum(
            1 for record in accepted if record["kind"] == "query"
        ),
        updates=sum(
            1 for record in accepted if record["kind"] == "update"
        ),
        rejected=sum(1 for record in records if record["status"] == 429),
        errors=sum(
            1
            for record in records
            if record["status"] not in (200, 429)
        ),
        wall_seconds=wall,
        throughput=(len(accepted) / wall) if wall > 0 else 0.0,
        p50_ms=_percentile(latencies, 0.50) * 1000.0,
        p99_ms=_percentile(latencies, 0.99) * 1000.0,
        oracle_checked=oracle_checked,
    )
