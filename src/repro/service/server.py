"""The async multi-tenant serving front end (ROADMAP open item 2).

:class:`RPQServer` multiplexes many tenants — each one a
:class:`~repro.service.store.MaterializedViewStore` plus a
:class:`~repro.service.session.QuerySession` over its own view set —
behind one asyncio HTTP/JSON listener.  The concurrency design is
*executor confinement*: every tenant owns a single-thread executor, and
every admitted request (query or update batch) runs on that one thread
in admission order.  That one decision buys the two properties the
serving regime needs:

**Snapshot isolation by version pinning.**  A read admitted after k
write batches executes after exactly those k batches — nothing else can
run on the tenant thread in between — so the store version it observes
is the version current at admission, captured on the tenant thread
immediately before answering and echoed in the response.  A response
carrying ``version: v`` therefore means *exactly* "the answers of a
store that has absorbed the first writes up to version v", which is
what lets the load generator's single-threaded oracle replay
(:func:`repro.service.loadgen.replay_oracle`) check every served answer
byte for byte.

**A non-blocking event loop.**  Sweeps — full, sharded, or incremental
— run on tenant threads via ``run_in_executor``; the loop only parses,
validates, routes, and serializes.  A tenant grinding through an
expensive all-pairs sweep delays its own queue, never another tenant's
health checks.

Admission control is a bounded per-tenant pending counter: a request
arriving while ``max_queue`` requests are queued or in flight is
rejected with HTTP 429 before it touches the tenant thread, so overload
sheds load instead of growing an unbounded backlog.  The counter lives
on the event loop and is checked and bumped with no ``await`` in
between, so admission is atomic without locks.

Writes funnel through the store's tuple-level mutations and hence
through the bounded change log, keeping every tenant on the session's
incremental fast path (semi-naive insert resume + delete-rederive);
only a compacted-away log falls back to a full recompute, and a worker
failure inside a sharded sweep degrades that tenant to sequential
evaluation — both are service-level non-events, not errors.

**Durability** is opt-in via ``data_dir``: each tenant then owns a
subdirectory with a write-ahead log and rolling checkpoints
(:mod:`repro.service.wal` / :mod:`repro.service.recovery`).  Every
mutation is framed into the WAL by the store itself, and the update
handler commits the batch — per the ``fsync`` policy — *on the tenant
thread, before the executor future resolves*, so an HTTP 200 for a
write means the batch is recoverable.  Startup recovers every tenant
from its directory (config extensions seed only a fresh directory);
``/shutdown`` drains in-flight requests, rolls a final checkpoint per
tenant, and joins the executors without cancelling queued writes.
Request parsing is bounded too: bodies beyond ``max_request_bytes``
draw a 413 and malformed Content-Length a 400, before any buffering.

The HTTP surface (all bodies JSON)::

    GET  /health                     liveness + per-tenant versions
    GET  /stats                      server + per-tenant counters
    GET  /tenants/<name>/stats       one tenant's counters
    POST /tenants/<name>/query       {"query": E0[, "source": x[, "target": y]]}
    POST /tenants/<name>/update      {"ops": [{"op": "insert"|"delete",
                                               "symbol": v, "source": x,
                                               "target": y}, ...]}
    POST /shutdown                   graceful stop

Run it inside an event loop (:meth:`RPQServer.start` /
:meth:`RPQServer.serve_until_shutdown`), or from synchronous code via
:func:`run_in_thread`, which returns a :class:`ServerHandle` with the
URL and a blocking ``stop()``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Mapping

from ..rpq.query import QuerySpec, RPQ
from ..rpq.theory import Theory
from ..rpq.views import RPQViews
from .plancache import RewritePlanCache
from .recovery import TenantDurability
from .session import QuerySession
from .store import MaterializedViewStore
from .wal import FSYNC_POLICIES

__all__ = ["RPQServer", "ServerHandle", "Tenant", "TenantConfig", "run_in_thread"]

Pair = tuple[Hashable, Hashable]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


@dataclass(frozen=True)
class _BadRequest:
    """A request the parser rejects before routing (400/413).

    Unlike a clean EOF (``None`` from ``_read_request``), the client is
    owed an error response; the connection is closed after sending it,
    since the unread remainder of an oversized or malformed request
    would otherwise be parsed as the next request's head.
    """

    status: int
    error: str


@dataclass
class TenantConfig:
    """Everything needed to stand up one tenant's serving state.

    ``views``/``theory`` fix the tenant's mediated schema;
    ``extensions`` seeds its store.  The remaining knobs mirror
    :class:`~repro.service.session.QuerySession` (``parallelism``,
    ``workers``, ``incremental``, ``backend``, ``plan_dir``) and the
    store (``log_limit``), plus ``max_queue`` — the admission bound:
    how many requests may be queued or in flight on the tenant's
    executor before new ones are rejected with 429.
    """

    views: RPQViews | Mapping[Hashable, QuerySpec]
    theory: Theory
    extensions: Mapping[Hashable, Iterable[Pair]] | None = None
    plan_dir: Any = None
    parallelism: int | None = None
    workers: int = 1
    incremental: bool = True
    backend: str = "auto"
    max_queue: int = 64
    log_limit: int = 100_000

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")


class Tenant:
    """One tenant's serving state: store + session + its executor thread.

    All query evaluation and all store mutation happen on the tenant's
    single executor thread, in submission order — the confinement that
    makes version pinning exact (see the module docstring).  The event
    loop only reads ``pending``/``served`` counters and the store's
    version property, both safe to observe racily for stats.
    """

    def __init__(
        self,
        name: str,
        config: TenantConfig,
        durability: TenantDurability | None = None,
    ):
        self.name = name
        self.config = config
        self.durability = durability
        if durability is not None:
            # Durable tenant: the data directory is the source of truth.
            # A fresh directory is seeded from config.extensions and
            # checkpointed; an existing one recovers the acknowledged
            # state and ignores config.extensions entirely.
            self.store = durability.open_or_recover(
                config.extensions or {}, log_limit=config.log_limit
            )
        else:
            self.store = MaterializedViewStore(
                config.extensions or {}, log_limit=config.log_limit
            )
        plans = (
            RewritePlanCache(config.plan_dir)
            if config.plan_dir is not None
            else None
        )
        self.session = QuerySession(
            self.store,
            config.views,
            config.theory,
            plans=plans,
            parallelism=config.parallelism,
            workers=config.workers,
            incremental=config.incremental,
            backend=config.backend,
        )
        self.symbols = frozenset(self.session.views.symbols)
        # The alphabet queries may range over: the union of the view
        # definitions' alphabets (the paper's Sigma).  Queries are posed
        # over the database alphabet and rewritten against the views;
        # the compile alphabet is pinned to the view symbols, so a query
        # mentioning anything outside Sigma can never be answered and is
        # rejected up front rather than surfacing as a 500.
        self.query_symbols = frozenset(
            symbol
            for view in self.session.views.symbols
            for symbol in self.session.views.rpq(view).alphabet()
        )
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"tenant-{name}"
        )
        self.pending = 0
        self.write_seq = 0
        self.served = {
            "queries": 0,
            "updates": 0,
            "rejected": 0,
            "errors": 0,
            "max_pending": 0,
        }

    # -- executed on the tenant's executor thread ----------------------
    def run_query(
        self,
        query: str,
        mode: str,
        source: str | None,
        target: str | None,
    ) -> dict:
        # The pinned version: writes share this thread, so the version
        # cannot move between this read and the evaluation below.
        version = self.store.version
        result: dict = {"version": version, "query": query, "mode": mode}
        if mode == "all":
            result["answers"] = [
                [str(x), str(y)] for x, y in self.session.answer_sorted(query)
            ]
        elif mode == "single_source":
            result["source"] = source
            result["targets"] = sorted(
                str(y) for y in self.session.answer_from(query, source)
            )
        else:
            result["source"] = source
            result["target"] = target
            result["found"] = self.session.answer_pair(query, source, target)
        return result

    def run_update(
        self, changes: list[tuple[str, str, str, str]], seq: int
    ) -> dict:
        applied = 0
        for action, symbol, source, target in changes:
            if action == "insert":
                applied += self.store.add(symbol, source, target)
            else:
                applied += self.store.remove(symbol, source, target)
        if self.durability is not None:
            # The ack barrier: the store framed each effective mutation
            # into the WAL above; commit makes the batch as durable as
            # the fsync policy promises *before* the 200 is written.
            # Running here — on the tenant thread, before the executor
            # future resolves — is what makes "acknowledged" imply
            # "recoverable".  Checkpoint rolling shares the thread too,
            # so it serializes with mutations for free.
            self.durability.wal.commit()
            self.durability.note_commit()
            self.durability.maybe_checkpoint(self.store)
        return {
            "seq": seq,
            "applied": applied,
            "requested": len(changes),
            "version": self.store.version,
        }

    def checkpoint_now(self) -> None:
        """Roll a checkpoint unconditionally (shutdown runs this on the
        tenant thread so it lands after every drained write)."""
        if self.durability is not None:
            self.durability.checkpoint(self.store)

    # -- event-loop side -----------------------------------------------
    def stats_payload(self) -> dict:
        payload = {
            "name": self.name,
            "version": self.store.version,
            "tuples": self.store.num_tuples,
            "log_size": self.store.log_size,
            "pending": self.pending,
            "writes": self.write_seq,
            "served": dict(self.served),
            "session": dict(self.session.stats),
            "plan_cache": dict(self.session.plans.stats),
        }
        if self.durability is not None:
            durability = dict(self.durability.stats)
            durability["fsync"] = self.durability.fsync
            if self.durability.wal is not None:
                durability["wal"] = dict(self.durability.wal.stats)
            payload["durability"] = durability
        return payload

    def close(self) -> None:
        # wait=True *without* cancel_futures: every admitted write that
        # reached the queue is applied (and WAL-committed) before the
        # executor dies — cancelling queued futures here is exactly the
        # clean-shutdown write loss this server promises not to have.
        self.executor.shutdown(wait=True)
        if self.durability is not None:
            self.durability.close()
        self.session.close()


def _parse_body(body: bytes) -> tuple[dict | None, str | None]:
    if not body:
        return None, "request body must be a JSON object"
    try:
        payload = json.loads(body)
    except ValueError as exc:
        return None, f"request body is not valid JSON: {exc}"
    if not isinstance(payload, dict):
        return None, "request body must be a JSON object"
    return payload, None


def _encode_response(status: int, payload: dict, keep_alive: bool) -> bytes:
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode()
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


class RPQServer:
    """The asyncio HTTP/JSON front end over a set of tenants.

    Construct with ``{name: TenantConfig}``, then either ``await
    server.start()`` (binds; ``server.port`` is the resolved port) and
    later ``await server.serve_until_shutdown()``, or hand the server to
    :func:`run_in_thread` from synchronous code.  ``port=0`` (the
    default) binds an ephemeral port — the right choice for tests and
    benchmarks, which must not collide on a fixed port.
    """

    def __init__(
        self,
        tenants: Mapping[str, TenantConfig],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        data_dir: str | os.PathLike | None = None,
        fsync: str = "batch",
        checkpoint_every_bytes: int = 1 << 20,
        max_request_bytes: int = 1 << 20,
    ):
        if not tenants:
            raise ValueError("a server needs at least one tenant")
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; expected one of "
                f"{FSYNC_POLICIES}"
            )
        if max_request_bytes < 1:
            raise ValueError(
                f"max_request_bytes must be >= 1, got {max_request_bytes}"
            )
        self.data_dir = os.fspath(data_dir) if data_dir is not None else None
        self.fsync = fsync
        self.max_request_bytes = max_request_bytes
        self.tenants = {}
        for name, config in tenants.items():
            name = str(name)
            durability = None
            if self.data_dir is not None:
                durability = TenantDurability(
                    os.path.join(self.data_dir, name),
                    fsync=fsync,
                    checkpoint_every_bytes=checkpoint_every_bytes,
                )
            self.tenants[name] = Tenant(name, config, durability=durability)
        self.host = host
        self.port = port
        self.stats = {
            "requests": 0,
            "rejected": 0,
            "errors": 0,
            "bad_requests": 0,
            "connections": 0,
        }
        self._server: asyncio.AbstractServer | None = None
        self._shutdown: asyncio.Event | None = None
        # Requests between head-read and response-drain.  aclose() waits
        # for this to hit zero before joining tenant executors, so a
        # clean shutdown never tears the loop down under a response that
        # acknowledges an applied write.
        self._inflight = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "RPQServer":
        """Bind the listener; resolves ``self.port`` when it was 0."""
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_until_shutdown(self) -> None:
        """Serve until ``POST /shutdown`` or :meth:`request_shutdown`."""
        if self._server is None:
            await self.start()
        assert self._shutdown is not None
        await self._shutdown.wait()
        await self.aclose()

    def request_shutdown(self) -> None:
        """Ask the serve loop to stop (callable from the loop's thread;
        from other threads go through ``call_soon_threadsafe``)."""
        if self._shutdown is not None:
            self._shutdown.set()

    async def aclose(self) -> None:
        """Stop accepting, drain, checkpoint, then release tenants.

        The clean-shutdown ordering contract (the one ``/shutdown``
        relies on): (1) close the listener so no new connection lands;
        (2) wait for every in-flight request — admitted writes included
        — to finish executing *and* drain its response; (3) roll a final
        checkpoint per durable tenant, on the tenant's own executor so
        it serializes after every drained write; (4) join the executors
        without cancelling queued work.  Only then may the caller's
        event loop die: no accepted write is dropped, and restart
        recovers instantly from the shutdown checkpoint.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        while self._inflight:
            await asyncio.sleep(0.005)
        loop = asyncio.get_running_loop()
        for tenant in self.tenants.values():
            if tenant.durability is not None:
                await loop.run_in_executor(
                    tenant.executor, tenant.checkpoint_now
                )
        for tenant in self.tenants.values():
            tenant.close()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats["connections"] += 1
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                if isinstance(request, _BadRequest):
                    # Parse-level rejection (oversized or malformed):
                    # answer, then close — the unread bytes cannot be
                    # trusted as a frame boundary for the next request.
                    self.stats["bad_requests"] += 1
                    writer.write(
                        _encode_response(
                            request.status, {"error": request.error}, False
                        )
                    )
                    await writer.drain()
                    # Discard (a bounded amount of) whatever the client is
                    # still sending before closing.  Closing with unread
                    # bytes in the kernel buffer turns the FIN into an
                    # RST, which can wipe out the error response we just
                    # wrote before the client reads it.
                    with contextlib.suppress(Exception):
                        for _ in range(64):
                            chunk = await asyncio.wait_for(
                                reader.read(65536), timeout=0.25
                            )
                            if not chunk:
                                break
                    break
                method, path, headers, body = request
                self._inflight += 1
                try:
                    try:
                        status, payload = await self._dispatch(
                            method, path, body
                        )
                    except asyncio.CancelledError:
                        raise
                    except Exception as exc:  # route bugs must not kill the loop
                        self.stats["errors"] += 1
                        status = 500
                        payload = {"error": f"{type(exc).__name__}: {exc}"}
                    keep_alive = (
                        headers.get("connection", "keep-alive").lower()
                        != "close"
                    )
                    writer.write(_encode_response(status, payload, keep_alive))
                    await writer.drain()
                finally:
                    self._inflight -= 1
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _read_request(
        self,
        reader: asyncio.StreamReader,
    ) -> tuple[str, str, dict, bytes] | _BadRequest | None:
        """Parse one bounded request; ``None`` on EOF, a sentinel on junk.

        The parser never buffers more than the stream's head limit plus
        ``max_request_bytes`` of body: an oversized or lie-length body
        is rejected with 413 *before* it is read, and a Content-Length
        that is not a non-negative integer gets a 400 — both as
        :class:`_BadRequest` sentinels so the connection handler can
        answer and close instead of silently dropping the connection.
        """
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            # Headers longer than the StreamReader's limit (64 KiB by
            # default): the bytes are still buffered, unconsumed; do
            # not try to resynchronise, just reject and close.
            return _BadRequest(413, "request head too large")
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        try:
            method, path, _version = request_line.split(" ", 2)
        except ValueError:
            return None
        headers: dict[str, str] = {}
        for line in header_lines:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0")
        try:
            length = int(raw_length)
        except ValueError:
            return _BadRequest(
                400, f"malformed Content-Length {raw_length!r}"
            )
        if length < 0:
            return _BadRequest(
                400, f"malformed Content-Length {raw_length!r}"
            )
        if length > self.max_request_bytes:
            return _BadRequest(
                413,
                f"request body of {length} bytes exceeds the "
                f"{self.max_request_bytes}-byte limit",
            )
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return None
        return method.upper(), path, headers, body

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict]:
        self.stats["requests"] += 1
        parts = [part for part in path.partition("?")[0].split("/") if part]
        if method == "GET" and parts == ["health"]:
            return 200, self._health_payload()
        if method == "GET" and parts == ["stats"]:
            return 200, self._stats_payload()
        if method == "POST" and parts == ["shutdown"]:
            self.request_shutdown()
            return 200, {"status": "shutting-down"}
        if len(parts) == 3 and parts[0] == "tenants":
            tenant = self.tenants.get(parts[1])
            if tenant is None:
                return 404, {"error": f"unknown tenant {parts[1]!r}"}
            if method == "GET" and parts[2] == "stats":
                return 200, tenant.stats_payload()
            if method == "POST" and parts[2] == "query":
                return await self._query(tenant, body)
            if method == "POST" and parts[2] == "update":
                return await self._update(tenant, body)
        return 404, {"error": f"no route for {method} {path}"}

    def _health_payload(self) -> dict:
        return {
            "status": "ok",
            "tenants": {
                name: {"version": tenant.store.version, "pending": tenant.pending}
                for name, tenant in self.tenants.items()
            },
        }

    def _stats_payload(self) -> dict:
        return {
            "server": dict(self.stats),
            "tenants": {
                name: tenant.stats_payload()
                for name, tenant in self.tenants.items()
            },
        }

    # ------------------------------------------------------------------
    # Tenant requests: validate on the loop, evaluate on the tenant thread
    # ------------------------------------------------------------------
    async def _admit(
        self,
        tenant: Tenant,
        kind: str,
        make_op: Callable[[], Callable[[], dict]],
    ) -> tuple[int, dict]:
        """Bounded admission, then executor confinement.

        The pending check and increment run with no ``await`` between
        them, so admission is atomic on the event loop; ``make_op`` is
        also called before the executor submit, so anything it assigns
        (the write sequence number) is ordered exactly like execution.
        """
        if tenant.pending >= tenant.config.max_queue:
            tenant.served["rejected"] += 1
            self.stats["rejected"] += 1
            return 429, {
                "error": f"tenant {tenant.name!r} queue full",
                "pending": tenant.pending,
                "max_queue": tenant.config.max_queue,
            }
        tenant.pending += 1
        tenant.served["max_pending"] = max(
            tenant.served["max_pending"], tenant.pending
        )
        op = make_op()
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(tenant.executor, op)
        except Exception as exc:
            tenant.served["errors"] += 1
            self.stats["errors"] += 1
            return 500, {"error": f"{type(exc).__name__}: {exc}"}
        finally:
            tenant.pending -= 1
        tenant.served["queries" if kind == "query" else "updates"] += 1
        return 200, result

    async def _query(self, tenant: Tenant, body: bytes) -> tuple[int, dict]:
        payload, error = _parse_body(body)
        if error is not None:
            return 400, {"error": error}
        assert payload is not None
        query = payload.get("query")
        if not isinstance(query, str) or not query:
            return 400, {"error": "body must carry a non-empty string 'query'"}
        source = payload.get("source")
        target = payload.get("target")
        for name, value in (("source", source), ("target", target)):
            if value is not None and not isinstance(value, str):
                return 400, {"error": f"'{name}' must be a string"}
        if target is not None and source is None:
            return 400, {"error": "'target' requires a 'source' (pair mode)"}
        try:
            parsed = RPQ(query)
        except Exception as exc:
            return 400, {"error": f"bad query {query!r}: {exc}"}
        unknown = sorted(
            str(symbol)
            for symbol in parsed.alphabet()
            if symbol not in tenant.query_symbols
        )
        if unknown:
            return 400, {
                "error": (
                    "query uses symbols outside this tenant's "
                    f"database alphabet: {unknown}"
                ),
                "symbols": sorted(map(str, tenant.query_symbols)),
            }
        if target is not None:
            mode = "pair"
        elif source is not None:
            mode = "single_source"
        else:
            mode = "all"
        return await self._admit(
            tenant,
            "query",
            lambda: lambda: tenant.run_query(query, mode, source, target),
        )

    async def _update(self, tenant: Tenant, body: bytes) -> tuple[int, dict]:
        payload, error = _parse_body(body)
        if error is not None:
            return 400, {"error": error}
        assert payload is not None
        ops = payload.get("ops")
        if not isinstance(ops, list) or not ops:
            return 400, {"error": "body must carry a non-empty list 'ops'"}
        changes: list[tuple[str, str, str, str]] = []
        for index, op in enumerate(ops):
            if not isinstance(op, dict):
                return 400, {"error": f"ops[{index}] must be an object"}
            action = op.get("op")
            if action not in ("insert", "delete"):
                return 400, {
                    "error": f"ops[{index}].op must be 'insert' or 'delete'"
                }
            symbol = op.get("symbol")
            if symbol not in tenant.symbols:
                return 400, {
                    "error": f"ops[{index}]: unknown view symbol {symbol!r}",
                    "symbols": sorted(map(str, tenant.symbols)),
                }
            source, target = op.get("source"), op.get("target")
            if not isinstance(source, str) or not isinstance(target, str):
                return 400, {
                    "error": f"ops[{index}] needs string 'source' and 'target'"
                }
            changes.append((action, symbol, source, target))

        def make_op() -> Callable[[], dict]:
            tenant.write_seq += 1
            seq = tenant.write_seq
            return lambda: tenant.run_update(changes, seq)

        return await self._admit(tenant, "update", make_op)


class ServerHandle:
    """A running :class:`RPQServer` on a background thread.

    ``url`` is the base address; :meth:`stop` requests shutdown and
    joins the thread.  Usable as a context manager.
    """

    def __init__(
        self, server: RPQServer, thread: threading.Thread, loop: asyncio.AbstractEventLoop
    ):
        self.server = server
        self._thread = thread
        self._loop = loop

    @property
    def url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread.is_alive():
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("server thread did not stop in time")

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_in_thread(server: RPQServer, *, timeout: float = 30.0) -> ServerHandle:
    """Start ``server`` on a daemon thread; block until it is listening.

    The synchronous entry point for tests, the quickstart, and anything
    else that wants an HTTP endpoint without owning an event loop.
    """
    started = threading.Event()
    box: dict[str, Any] = {}

    async def main() -> None:
        await server.start()
        box["loop"] = asyncio.get_running_loop()
        started.set()
        await server.serve_until_shutdown()

    def runner() -> None:
        try:
            asyncio.run(main())
        except BaseException as exc:  # surfaced to the starting thread
            box.setdefault("error", exc)
        finally:
            started.set()

    thread = threading.Thread(target=runner, name="rpq-server", daemon=True)
    thread.start()
    if not started.wait(timeout):
        raise RuntimeError(f"server did not start within {timeout}s")
    if "error" in box:
        raise box["error"]
    return ServerHandle(server, thread, box["loop"])
