"""The view-based answering service (the paper's Section 4 put to work).

Everything below Section 4's algorithms exists to support one serving
regime: a mediator that is given view *definitions* once, receives view
*extensions* as data arrives, and answers a stream of queries using the
views alone.  This package is that layer, assembled from the compiled
halves built underneath it:

* :class:`MaterializedViewStore` — versioned, incrementally updatable
  storage of view extensions on top of the label-indexed
  :class:`~repro.rpq.graphdb.GraphDB`, with a bounded change log
  (:class:`StoreDelta`) feeding incremental answer maintenance;
* :class:`RewritePlanCache` — compiled rewrite plans (rewriting DFA +
  ``Ad`` + ``A'``) keyed by canonical serialization and persisted to
  disk, so no process ever repeats a subset construction another process
  already paid for;
* :class:`QuerySession` — the front end: all-pairs / single-source /
  single-pair answering against the current store version, with plan
  state immune to data changes and evaluation state invalidated by them;
* :func:`answer_on_extensions` — the shared one-shot helper turning raw
  extensions into answers (used by the ``repro.rpq`` convenience API);
* :class:`RPQServer` / :class:`TenantConfig` / :func:`run_in_thread` —
  the async multi-tenant HTTP/JSON front end: executor-confined tenants
  with version-pinned reads, bounded admission (429 on overflow), and
  per-tenant stats (:mod:`repro.service.server`; its closed-loop load
  generator and differential oracle live in
  :mod:`repro.service.loadgen`);
* :class:`WriteAheadLog` / :class:`TenantDurability` — crash safety for
  the serving stack: every acknowledged mutation is CRC-framed into a
  per-tenant write-ahead log before the HTTP 200, checkpoints roll as
  the log grows, and startup reconstructs the exact acknowledged state
  — torn tails truncated, corrupt checkpoints quarantined with fallback
  (:mod:`repro.service.wal`, :mod:`repro.service.recovery`).

See ``docs/architecture.md`` for the layer diagram and
``docs/quickstart.md`` for an executable end-to-end walkthrough.
"""

from .plancache import RewritePlanCache, plan_from_dict, plan_key, plan_to_dict
from .recovery import (
    RecoveryError,
    RecoveryResult,
    TenantDurability,
    list_checkpoints,
    load_checkpoint,
    recover_store,
    write_checkpoint,
)
from .server import RPQServer, ServerHandle, TenantConfig, run_in_thread
from .session import QuerySession
from .store import MaterializedViewStore, StoreDelta, answer_on_extensions
from .wal import WalRecord, WalScan, WriteAheadLog, scan_wal

__all__ = [
    "MaterializedViewStore",
    "StoreDelta",
    "answer_on_extensions",
    "RewritePlanCache",
    "plan_key",
    "plan_to_dict",
    "plan_from_dict",
    "QuerySession",
    "RPQServer",
    "ServerHandle",
    "TenantConfig",
    "run_in_thread",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "scan_wal",
    "RecoveryError",
    "RecoveryResult",
    "TenantDurability",
    "list_checkpoints",
    "load_checkpoint",
    "recover_store",
    "write_checkpoint",
]
