"""Write-ahead logging for the serving stack's tenant stores.

Every acknowledged mutation of a durable
:class:`~repro.service.store.MaterializedViewStore` is first framed into
one :class:`WalRecord` and appended to a :class:`WriteAheadLog` — a
single append-only file of CRC32-framed, length-prefixed records — so a
``kill -9`` after the acknowledgement can always be replayed back to the
exact acknowledged state (see :mod:`repro.service.recovery` for the
checkpoint/replay half).

Record framing
--------------
One record per store version bump (matching the store's change-log
granularity: ``add``/``remove`` log one change, ``add_many`` /
``remove_many`` / ``replace`` log their whole effective batch under a
single version)::

    [payload length: u32][crc32: u32][seq: u64][version: u64][payload]

* ``payload`` is compact JSON: the effective changes of the bump as
  ``[["insert"|"delete", symbol, source, target], ...]`` (a ``replace``
  batch is its deletions followed by its insertions — replayed in that
  order it reproduces the swap exactly).
* ``crc32`` covers ``seq | version | payload``, so a flipped bit
  anywhere in a record — header or body — fails verification.
* ``seq`` is the log's own monotone record counter and ``version`` the
  store version *after* the bump; both must be strictly increasing,
  which is what lets :func:`scan_wal` reject a duplicated tail (a
  re-appended copy of valid bytes passes every CRC but repeats a seq).

Torn tails
----------
A crash mid-append leaves a prefix of a record at the end of the file.
:func:`scan_wal` stops at the first frame that is short, oversized,
CRC-invalid, non-monotone, or undecodable, and reports the byte offset
of the end of the last valid record; :class:`WriteAheadLog` truncates
the file there on open, so the log converges to a consistent prefix no
matter where the crash (or a fuzzer's bit flip) landed.

Fsync policy
------------
``fsync="always"`` syncs on every append (each record durable before
the caller proceeds); ``"batch"`` buffers appends and syncs once per
:meth:`WriteAheadLog.commit` (the serving front end commits once per
acknowledged write request — group commit); ``"off"`` flushes to the OS
but never syncs (fastest, loses the tail of acknowledged writes on
power failure — not on process death, since the OS has the bytes).
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = [
    "FSYNC_POLICIES",
    "WalError",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "decode_record",
    "encode_record",
    "scan_wal",
]

FSYNC_POLICIES = ("always", "batch", "off")

# length (u32) | crc32 (u32) | seq (u64) | version (u64)
_HEADER = struct.Struct("<IIQQ")

# A single record is one store version bump; even a bulk `replace` of a
# large extension stays far below this.  The bound exists so a corrupt
# length field cannot make the scanner attempt a multi-gigabyte read.
MAX_RECORD_BYTES = 64 * 1024 * 1024

Change = tuple[str, str, str, str]  # (op, symbol, source, target)


class WalError(ValueError):
    """A write-ahead log frame failed validation (CRC, bounds, order)."""


@dataclass(frozen=True)
class WalRecord:
    """One durable store version bump: its changes, seq, and version.

    ``ops`` holds the bump's effective changes in application order as
    ``(op, symbol, source, target)`` with ``op`` in ``{"insert",
    "delete"}``; ``seq`` is the log's monotone record number and
    ``version`` the store version after applying the record.
    """

    seq: int
    version: int
    ops: tuple[Change, ...]


def encode_record(record: WalRecord) -> bytes:
    """Frame ``record`` as header + JSON payload (see module docstring)."""
    payload = json.dumps(
        [list(op) for op in record.ops], separators=(",", ":")
    ).encode("utf-8")
    if len(payload) > MAX_RECORD_BYTES:
        raise WalError(
            f"record payload of {len(payload)} bytes exceeds the "
            f"{MAX_RECORD_BYTES}-byte frame bound"
        )
    tail = struct.pack("<QQ", record.seq, record.version) + payload
    return _HEADER.pack(
        len(payload), zlib.crc32(tail), record.seq, record.version
    ) + payload


def decode_record(buffer: bytes, offset: int = 0) -> tuple[WalRecord, int]:
    """Decode one record at ``offset``; returns (record, next offset).

    Raises :class:`WalError` on any framing violation — a short header,
    an out-of-bounds length, a truncated payload, a CRC mismatch, or an
    undecodable payload — without reading past the claimed frame.
    """
    if offset + _HEADER.size > len(buffer):
        raise WalError("short header")
    length, crc, seq, version = _HEADER.unpack_from(buffer, offset)
    if length > MAX_RECORD_BYTES:
        raise WalError(f"record length {length} exceeds frame bound")
    start = offset + _HEADER.size
    end = start + length
    if end > len(buffer):
        raise WalError("truncated payload")
    payload = buffer[start:end]
    if zlib.crc32(struct.pack("<QQ", seq, version) + payload) != crc:
        raise WalError("CRC mismatch")
    try:
        raw_ops = json.loads(payload)
    except ValueError as exc:
        raise WalError(f"undecodable payload: {exc}") from None
    if not isinstance(raw_ops, list):
        raise WalError("payload is not a change list")
    ops: list[Change] = []
    for item in raw_ops:
        if (
            not isinstance(item, list)
            or len(item) != 4
            or not all(isinstance(field, str) for field in item)
            or item[0] not in ("insert", "delete")
        ):
            raise WalError(f"malformed change entry: {item!r}")
        ops.append((item[0], item[1], item[2], item[3]))
    return WalRecord(seq=seq, version=version, ops=tuple(ops)), end


@dataclass(frozen=True)
class WalScan:
    """What :func:`scan_wal` found: the valid prefix and how it ended.

    ``records`` is every record of the valid prefix in order;
    ``valid_bytes`` is the offset just past the last valid record (the
    truncation point for a torn tail); ``total_bytes`` the file size as
    scanned; ``error`` a human-readable reason scanning stopped early,
    or ``None`` when the whole file parsed cleanly.
    """

    records: tuple[WalRecord, ...]
    valid_bytes: int
    total_bytes: int
    error: str | None

    @property
    def truncated_bytes(self) -> int:
        """How many trailing bytes failed validation (0 = clean file)."""
        return self.total_bytes - self.valid_bytes


def scan_wal(path: str | os.PathLike) -> WalScan:
    """Parse the longest valid record prefix of the log at ``path``.

    Stops at the first frame that fails CRC/bounds validation *or*
    breaks the monotone seq/version contract (which is how a duplicated
    tail — valid bytes re-appended by a buggy copy or a fuzzer — is
    rejected: its first record repeats an already-seen seq).  A missing
    file scans as empty.  Never raises on corrupt input; the scan result
    always describes a consistent prefix.
    """
    try:
        with open(path, "rb") as handle:
            buffer = handle.read()
    except FileNotFoundError:
        return WalScan(records=(), valid_bytes=0, total_bytes=0, error=None)
    records: list[WalRecord] = []
    offset = 0
    last_seq = 0
    last_version = -1
    error: str | None = None
    while offset < len(buffer):
        try:
            record, end = decode_record(buffer, offset)
        except WalError as exc:
            error = f"offset {offset}: {exc}"
            break
        if record.seq <= last_seq:
            error = (
                f"offset {offset}: non-monotone seq {record.seq} "
                f"after {last_seq} (duplicated or rewound tail)"
            )
            break
        if record.version <= last_version:
            error = (
                f"offset {offset}: non-monotone version {record.version} "
                f"after {last_version}"
            )
            break
        records.append(record)
        last_seq = record.seq
        last_version = record.version
        offset = end
    return WalScan(
        records=tuple(records),
        valid_bytes=offset,
        total_bytes=len(buffer),
        error=error,
    )


class WriteAheadLog:
    """An append-only, crash-truncating log of store version bumps.

    Opening recovers the file to its longest valid prefix (torn tails
    from a previous crash are cut off — see :func:`scan_wal`) and
    resumes appending after the last valid record's seq/version.  The
    ``fsync`` policy decides when appended records become durable:
    ``"always"`` per append, ``"batch"`` per :meth:`commit`, ``"off"``
    never (see the module docstring for the trade-offs).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        fsync: str = "batch",
    ):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; expected one of "
                f"{FSYNC_POLICIES}"
            )
        self.path = os.fspath(path)
        self.fsync = fsync
        scan = scan_wal(self.path)
        self.last_seq = scan.records[-1].seq if scan.records else 0
        self.last_version = scan.records[-1].version if scan.records else 0
        self.truncated_bytes = scan.truncated_bytes
        self._handle: io.BufferedWriter | None = open(self.path, "ab")
        if scan.truncated_bytes:
            # Cut the torn/corrupt tail so the file *is* its valid
            # prefix; from here on every offset in the file is a record
            # boundary again.
            self._handle.truncate(scan.valid_bytes)
            self._handle.seek(scan.valid_bytes)
        self._offset = scan.valid_bytes
        self._synced_offset = scan.valid_bytes
        self.stats = {
            "appends": 0,
            "syncs": 0,
            "commits": 0,
        }

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    @property
    def offset(self) -> int:
        """Bytes written so far (the append position; a valid boundary)."""
        return self._offset

    def append(self, ops: Iterable[Change], version: int) -> WalRecord:
        """Frame and append one version bump; returns its record.

        The record's seq is assigned here (monotone per log).  With
        ``fsync="always"`` the record is durable when this returns; with
        ``"batch"`` it is durable after the next :meth:`commit`; with
        ``"off"`` it is handed to the OS on :meth:`commit` but never
        synced.
        """
        if self._handle is None:
            raise ValueError("write-ahead log is closed")
        if version <= self.last_version:
            raise WalError(
                f"version {version} not past the log's last "
                f"version {self.last_version}"
            )
        record = WalRecord(
            seq=self.last_seq + 1, version=version, ops=tuple(ops)
        )
        frame = encode_record(record)
        self._handle.write(frame)
        self._offset += len(frame)
        self.last_seq = record.seq
        self.last_version = record.version
        self.stats["appends"] += 1
        if self.fsync == "always":
            self.sync()
        return record

    def commit(self) -> None:
        """Make the appended records as durable as the policy promises.

        The serving front end calls this once per acknowledged write
        request, after appending every record the request produced —
        group commit under ``fsync="batch"``, a plain flush under
        ``"off"``, a no-op under ``"always"`` (each append already
        synced).
        """
        if self._handle is None:
            raise ValueError("write-ahead log is closed")
        self.stats["commits"] += 1
        if self.fsync == "batch":
            self.sync()
        elif self.fsync == "off":
            self._handle.flush()

    def sync(self) -> None:
        """Flush and fsync unconditionally (checkpoints need a hard
        barrier regardless of the append policy)."""
        if self._handle is None:
            raise ValueError("write-ahead log is closed")
        self._handle.flush()
        if self._synced_offset != self._offset:
            os.fsync(self._handle.fileno())
            self._synced_offset = self._offset
            self.stats["syncs"] += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def records(self) -> Iterator[WalRecord]:
        """Iterate the log's valid records from the start (flushing
        buffered appends first so the scan sees them)."""
        if self._handle is not None:
            self._handle.flush()
        return iter(scan_wal(self.path).records)

    def close(self) -> None:
        """Flush, sync (unless ``fsync="off"``), and release the file."""
        if self._handle is None:
            return
        self._handle.flush()
        if self.fsync != "off" and self._synced_offset != self._offset:
            os.fsync(self._handle.fileno())
            self._synced_offset = self._offset
            self.stats["syncs"] += 1
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({self.path!r}, fsync={self.fsync!r}, "
            f"seq={self.last_seq}, version={self.last_version}, "
            f"bytes={self._offset})"
        )
