"""The answering front end: compile once, answer many, over evolving data.

:class:`QuerySession` ties the two fast halves of the repo together into
the regime the ROADMAP targets — a long-lived mediator that owns

* a :class:`~repro.service.store.MaterializedViewStore` (the data),
* a :class:`~repro.service.plancache.RewritePlanCache` (the compiled
  rewrite plans, shared across sessions and process restarts), and
* the RPQ engine's compiled evaluation state (transition tables of each
  rewriting specialized to the store's current label domain, plus
  memoized answer sets).

The cache-invalidation contract is the point: **data changes invalidate
only evaluation state, never plans — and replayable data changes don't
even invalidate evaluation state, they patch it.**  A plan depends on
(query, views, theory) alone; the per-plan compiled tables depend
additionally on the session's label domain, which is pinned to the view
alphabet at construction — *not* to the labels currently present in the
store, which would shrink whenever a view's last tuple is deleted and
needlessly recompile every plan (and orphan every retained sweep state)
on a delete-then-reinsert; the answer memo depends on the exact store
version and is dropped on any update.  Underneath the memo, each plan's
all-pairs sweep state is *retained* across versions
(:class:`~repro.rpq.incremental.DeltaSweepState`): whatever the store's
change log shows since the state's version, the next
:meth:`QuerySession.answer` patches it in place — insertions resume the
semi-naive sweep, deletions run delete-rederive (DRed) — and only a
compacted-away log falls back to the full sweep (sequential or
sharded), bit-identical either way.  Requests come in the three
shapes of the engine:
:meth:`QuerySession.answer` (all pairs), :meth:`answer_from`
(single source), and :meth:`answer_pair` (one pair, decided by the
bidirectional search without computing the full answer set).

Crash recovery composes with this contract for free.  A store rebuilt
by :mod:`repro.service.recovery` comes back at its pre-crash version
with an *empty* change log whose replay horizon sits at that version
(``delta_since`` answers ``None`` for anything older), so a session
constructed over it — retained sweep state is in-memory and dies with
the process — pays one full sweep per plan on first touch and is then
back on the incremental path; plans themselves never needed recovering,
because the plan cache's persisted entries are data-independent and a
corrupt entry is skipped and recomputed, not fatal.
"""

from __future__ import annotations

import threading
from typing import Hashable, Iterable, Mapping

from ..automata.nfa import NFA
from ..rpq import engine as _engine
from ..rpq.evaluation import sort_pairs
from ..rpq.incremental import DeltaSweepState, NumpyDeltaSweepState, make_delta_state
from ..rpq.query import QuerySpec
from ..rpq.rewriting import RPQRewritingResult
from ..rpq.sharded import ParallelEvaluator, ShardedEvaluationError
from ..rpq.theory import Theory
from ..rpq.views import RPQViews
from .plancache import RewritePlanCache
from .store import MaterializedViewStore

__all__ = ["QuerySession"]

Pair = tuple[Hashable, Hashable]


class QuerySession:
    """Serves view-based RPQ answers against one store and one view set.

    ``views``/``theory`` fix the mediated schema; ``plans`` may be shared
    between sessions (and, when it has a directory, between processes).
    All answering goes through the current contents of ``store`` — the
    session re-validates its memoized evaluation state against
    ``store.version`` on every request, so interleaved updates and reads
    are always consistent.

    ``parallelism`` (the shard count) switches evaluation onto
    :class:`~repro.rpq.sharded.ParallelEvaluator` when >= 2: the view
    graph is partitioned into that many node-range shards and the
    all-pairs sweep runs per shard, on up to ``workers`` processes
    (``workers=1`` runs the same shard kernels sequentially —
    bit-identical answers either way).  The shard partition is evaluation
    state like any other — it is recut when ``store.version`` moves and
    never outlives the data it was cut from — but the worker *pool* is
    not: :meth:`~repro.rpq.sharded.ParallelEvaluator.refresh` reuses the
    processes across versions, so a trickle of single-tuple updates does
    not pay a pool spawn per tuple.  If a worker ever fails
    mid-sweep the session logs ``stats["parallel_failures"]``, answers
    the request on the sequential engine, and disables the pool for its
    remaining lifetime — a degraded session stays correct and usable.

    **Thread safety.**  Every public request method runs under one
    re-entrant per-session lock (:attr:`lock`), so concurrent ``answer``
    calls from server handler threads serialize instead of interleaving
    ``_sync_version``, evaluator refresh, and sweep-state patching
    (PR 7's memo-write guard narrowed one such race; the lock closes the
    class).  The lock is re-entrant, so a re-entrant request issued from
    instrumentation inside an answer still works.  The *store* is not
    locked by the session — a writer thread that shares a store with
    live reader threads must mutate it under the same lock::

        with session.lock:
            store.add("v", "x", "y")

    (The serving front end gets this for free by confining each tenant's
    session and store to one executor thread; see
    :mod:`repro.service.server`.)
    """

    def __init__(
        self,
        store: MaterializedViewStore,
        views: RPQViews | Mapping[Hashable, QuerySpec],
        theory: Theory,
        plans: RewritePlanCache | None = None,
        parallelism: int | None = None,
        workers: int = 1,
        incremental: bool = True,
        backend: str = "auto",
    ):
        self.store = store
        self.views = views if isinstance(views, RPQViews) else RPQViews(views)
        self.theory = theory
        self.plans = plans if plans is not None else RewritePlanCache()
        self.parallelism = parallelism
        self.workers = workers
        self.incremental = incremental
        # "auto" | "bigint" | "numpy": which sweep kernel backs all-pairs
        # evaluation (batch, sharded, and incremental alike).  "auto"
        # re-resolves against the store's current size on every state
        # build, so a growing store upgrades to the vectorized kernel at
        # the engine's documented threshold.  Validated eagerly so a
        # typo'd backend fails at construction, not on the first query.
        _engine.resolve_backend(store.graph, backend)
        self.backend = backend
        # The compile domain is the view alphabet, fixed for the session:
        # keying on the *store's* current domain would shrink it when a
        # view's last tuple is deleted, recompiling every plan and
        # orphaning every retained sweep state over a transient blip.
        # Labels outside the rewriting's alphabet never enter a compiled
        # table, and view symbols with momentarily empty extensions just
        # compile to transitions with no matching edges — evaluation
        # results are identical, only cache identity is at stake.
        self._label_domain = frozenset(self.views.symbols)
        # One re-entrant lock serializes all public requests (and any
        # store mutation a co-located writer wraps in it): interleaved
        # answer/update calls from different threads can no longer tear
        # _sync_version / evaluator refresh / sweep-state patching.
        self._lock = threading.RLock()
        self._evaluator: ParallelEvaluator | None = None
        self._evaluator_version = -1
        self._parallel_disabled = False
        # key -> (plan, rewriting-as-NFA); the NFA object is cached so the
        # engine's compilation LRU (keyed on automaton identity) hits on
        # every request instead of recompiling per call.
        self._compiled_plans: dict[str, tuple[RPQRewritingResult, NFA]] = {}
        # query spec -> plan key: views and theory are fixed per session,
        # so the canonical key (fingerprints + sha256) is computed once
        # per distinct query, keeping repeated requests at dict lookups.
        self._plan_keys: dict[Hashable, str] = {}
        self._answers: dict[str, frozenset[Pair]] = {}
        self._answers_version = -1
        # plan key -> (retained sweep state, store version it reflects);
        # unlike the answer memo this survives version bumps — that is
        # the whole point: a pure-insert delta advances the state to the
        # new version instead of recomputing it.  The state is a
        # DeltaSweepState or NumpyDeltaSweepState per the session backend.
        self._delta_states: dict[
            str, tuple[DeltaSweepState | NumpyDeltaSweepState, int]
        ] = {}
        self.stats = {
            "requests": 0,
            "answer_memo_hits": 0,
            "invalidations": 0,
            "parallel_sweeps": 0,
            "parallel_failures": 0,
            "incremental_updates": 0,
            "incremental_deletes": 0,
            "rederived_bits": 0,
            "full_recomputes": 0,
            "delta_edges_applied": 0,
        }

    @property
    def lock(self) -> threading.RLock:
        """The per-session re-entrant lock.  All request methods take it;
        a thread mutating this session's store while other threads read
        through the session should hold it around the mutation."""
        return self._lock

    # ------------------------------------------------------------------
    # Plans
    # ------------------------------------------------------------------
    def plan(self, query: QuerySpec) -> RPQRewritingResult:
        """The compiled rewrite plan for ``query`` (built at most once)."""
        with self._lock:
            return self._plan_entry(query)[1][0]

    def is_exact(self, query: QuerySpec) -> bool:
        """Is the plan's rewriting exact (answers complete, Thm 4.1)?"""
        return self.plan(query).is_exact()

    def warm(self, queries: Iterable[QuerySpec]) -> None:
        """Pre-build plans for ``queries`` (e.g. at service startup)."""
        with self._lock:
            for query in queries:
                self._plan_entry(query)

    def _plan_entry(
        self, query: QuerySpec
    ) -> tuple[str, tuple[RPQRewritingResult, NFA]]:
        # Every QuerySpec shape (str, Regex, NFA, RPQ) is hashable; an
        # out-of-contract spec fails loudly here rather than being keyed
        # by a recyclable id().
        key = self._plan_keys.get(query)
        if key is None:
            key = self.plans.key(query, self.views, self.theory)
            self._plan_keys[query] = key
        entry = self._compiled_plans.get(key)
        if entry is None:
            plan = self.plans.get_or_build(query, self.views, self.theory, key=key)
            entry = (plan, plan.automaton.to_nfa())
            self._compiled_plans[key] = entry
        return key, entry

    def _compiled(self, nfa: NFA) -> _engine.CompiledAutomaton:
        # plain_symbols: the rewriting is a language over Sigma_Q and view
        # symbols on the store's graph are matched by equality (``ans``).
        return _engine.compile_automaton(
            nfa, None, self._label_domain, plain_symbols=True
        )

    def _known_node(self, node: Hashable) -> bool:
        """Is ``node`` part of the store's view graph?  Checked up front
        so unknown-endpoint requests return empty/false by contract,
        while genuine evaluation errors still propagate (the engine's
        own ``KeyError`` is not blanket-caught)."""
        try:
            self.store.graph.node_id(node)
        except KeyError:
            return False
        return True

    def _sync_version(self) -> int:
        """Align the answer memo with the store's current version.

        Returns the version synced against, so callers that evaluate
        *after* syncing can tell whether the store (or a re-entrant
        request that re-synced the memo) moved underneath them before
        they memoize — see :meth:`answer`'s write guard.
        """
        version = self.store.version
        if version != self._answers_version:
            if self._answers:
                self.stats["invalidations"] += 1
            self._answers.clear()
            self._answers_version = version
        return version

    # ------------------------------------------------------------------
    # Sharded evaluation (the ``parallelism`` knob)
    # ------------------------------------------------------------------
    def _parallel(self) -> ParallelEvaluator | None:
        """The shard evaluator for the store's *current* version, or
        ``None`` when parallel evaluation is off (no knob, shard count
        < 2, or disabled after a worker failure).  The partition is
        evaluation state and follows the same invalidation contract as
        memoized answers — recut whenever the store's version moves —
        but the evaluator object (and its worker pool) is kept:
        :meth:`~repro.rpq.sharded.ParallelEvaluator.refresh` ships the
        new snapshot to the existing workers instead of respawning
        processes per version bump."""
        if self._parallel_disabled or not self.parallelism or self.parallelism < 2:
            return None
        version = self.store.version
        if self._evaluator is None:
            self._evaluator = ParallelEvaluator(
                self.store.graph,
                num_shards=self.parallelism,
                workers=self.workers,
                backend=self.backend,
            )
            self._evaluator_version = version
        elif self._evaluator_version != version:
            self._evaluator.refresh()
            self._evaluator_version = version
        return self._evaluator

    def _evaluate(self, parallel_call, sequential_call):
        """Run on the shard evaluator when enabled; on any mid-sweep
        worker failure fall back to the sequential engine for this and
        all future requests (the session stays usable, just undegraded
        to single-process evaluation)."""
        evaluator = self._parallel()
        if evaluator is not None:
            try:
                result = parallel_call(evaluator)
                self.stats["parallel_sweeps"] += 1
                return result
            except ShardedEvaluationError:
                self.stats["parallel_failures"] += 1
                self._parallel_disabled = True
                evaluator.close()
                self._evaluator = None
        return sequential_call()

    # ------------------------------------------------------------------
    # Answering
    # ------------------------------------------------------------------
    def answer(self, query: QuerySpec) -> frozenset[Pair]:
        """All pairs in ``ans(rewriting, store)`` at the current version.

        Memoized per (plan, store version): repeated requests for the
        same query between updates are dictionary lookups.
        """
        with self._lock:
            self.stats["requests"] += 1
            synced = self._sync_version()
            key, (_plan, nfa) = self._plan_entry(query)
            cached = self._answers.get(key)
            if cached is not None:
                self.stats["answer_memo_hits"] += 1
                return cached
            compiled = self._compiled(nfa)
            answers = self._evaluate(
                lambda evaluator: self._parallel_all_pairs(evaluator, compiled),
                lambda: self._sequential_all_pairs(key, compiled).answers(),
            )
            # Memoize only when neither the store nor the memo's version
            # tag moved while we were evaluating.  The lock serializes
            # *threads*, but a same-thread re-entrant request (this is an
            # RLock) or a mutation issued from instrumentation inside
            # _evaluate can still move the store mid-call: without the
            # guard such a call would file answers computed against the
            # *old* graph under the *new* version — and every later call
            # at that version would serve the stale frozenset.
            if self.store.version == synced and self._answers_version == synced:
                self._answers[key] = answers
            return answers

    def answer_sorted(self, query: QuerySpec) -> list[Pair]:
        """All answer pairs sorted by ``(node_id(x), node_id(y))``.

        The same answers as :meth:`answer` in the engine's documented
        deterministic order (the store graph's interning order), so two
        sessions over equal stores — incremental or not, sharded or not
        — can be compared byte for byte.
        """
        return sort_pairs(self.store.graph, self.answer(query))

    def _parallel_all_pairs(
        self, evaluator: ParallelEvaluator, compiled: _engine.CompiledAutomaton
    ) -> frozenset[Pair]:
        """All pairs on the sharded tier.  Deltas are *not* absorbed
        here: the shard partition is rebuilt per store version anyway,
        so every parallel answer is a full (sharded) sweep."""
        answers = evaluator.evaluate_all(compiled)
        self.stats["full_recomputes"] += 1
        return answers

    def _sequential_all_pairs(
        self, key: str, compiled: _engine.CompiledAutomaton
    ) -> DeltaSweepState | NumpyDeltaSweepState:
        """The delta-maintained sweep state for ``key``, advanced to the
        store's current version.

        Any replayable delta is absorbed in place: insertions resume the
        fixpoint from the inserted tuples
        (:meth:`~repro.rpq.incremental.DeltaSweepState.apply_insertions`),
        deletions run delete-rederive
        (:meth:`~repro.rpq.incremental.DeltaSweepState.apply_deletions`)
        — insertions first, since over-delete reads the live graph and
        then also cleans up after tuples inserted and deleted within the
        same delta window.  Only a log too stale to replay
        (``delta_since`` returning ``None``) or a changed compiled
        automaton drops the state and rebuilds it with a full sweep.
        With ``incremental=False`` every call is a full rebuild and
        nothing is retained.
        """
        version = self.store.version
        graph = self.store.graph
        entry = self._delta_states.get(key) if self.incremental else None
        if entry is not None:
            state, state_version = entry
            if state.compiled is compiled and state.db is graph:
                if state_version == version:
                    return state
                delta = self.store.delta_since(state_version)
                if delta is not None:
                    if delta.insertions:
                        state.apply_insertions(
                            (source, symbol, target)
                            for symbol, source, target in delta.insertions
                        )
                    if delta.deletions:
                        rederived_before = state.rederived_bits
                        state.apply_deletions(
                            (source, symbol, target)
                            for symbol, source, target in delta.deletions
                        )
                        self.stats["incremental_deletes"] += len(
                            delta.deletions
                        )
                        self.stats["rederived_bits"] += (
                            state.rederived_bits - rederived_before
                        )
                    self.stats["incremental_updates"] += 1
                    self.stats["delta_edges_applied"] += delta.num_changes
                    self._delta_states[key] = (state, version)
                    return state
        state = make_delta_state(graph, compiled, self.backend)
        self.stats["full_recomputes"] += 1
        if self.incremental:
            self._delta_states[key] = (state, version)
        return state

    def answer_from(self, query: QuerySpec, source: Hashable) -> frozenset[Hashable]:
        """All ``y`` with ``(source, y)`` in the answer (single-source sweep).

        A node the store has never seen is not part of the view graph, so
        it contributes no answers (matching :meth:`answer`, whose pairs
        only ever mention stored nodes) — unlike the raw engine, the
        session does not raise on unknown nodes.
        """
        with self._lock:
            self.stats["requests"] += 1
            self._sync_version()
            _key, (_plan, nfa) = self._plan_entry(query)
            if not self._known_node(source):
                return frozenset()
            compiled = self._compiled(nfa)
            return self._evaluate(
                lambda evaluator: evaluator.evaluate_single_source(
                    compiled, source
                ),
                lambda: _engine.evaluate_single_source(
                    self.store.graph, compiled, source
                ),
            )

    def answer_pair(
        self, query: QuerySpec, source: Hashable, target: Hashable
    ) -> bool:
        """Is ``(source, target)`` in the answer?  Bidirectional search."""
        with self._lock:
            self.stats["requests"] += 1
            self._sync_version()
            _key, (_plan, nfa) = self._plan_entry(query)
            if not (self._known_node(source) and self._known_node(target)):
                return False
            compiled = self._compiled(nfa)
            return self._evaluate(
                lambda evaluator: evaluator.evaluate_pair(
                    compiled, source, target
                ),
                lambda: _engine.evaluate_pair(
                    self.store.graph, compiled, source, target
                ),
            )

    def close(self) -> None:
        """Release evaluation resources (the shard evaluator's worker
        pool, when parallelism is on).  Idempotent, and the session stays
        usable: the next parallel request rebuilds what it needs."""
        with self._lock:
            if self._evaluator is not None:
                self._evaluator.close()
                self._evaluator = None
                self._evaluator_version = -1

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def answer_many(
        self, queries: Iterable[QuerySpec]
    ) -> list[frozenset[Pair]]:
        """Answer a batch of queries; the i-th result matches ``queries[i]``.

        Plans, compiled tables, and (between updates) answer sets are all
        shared, so a batch retains exactly one construction per distinct
        query across the session's lifetime.
        """
        with self._lock:
            return [self.answer(query) for query in queries]

    def __repr__(self) -> str:
        parallel = ""
        if self.parallelism and self.parallelism >= 2:
            state = "off" if self._parallel_disabled else "on"
            parallel = (
                f", parallel={state}(shards={self.parallelism}, "
                f"workers={self.workers})"
            )
        return (
            f"QuerySession(views={list(self.views.symbols)}, "
            f"plans={len(self._compiled_plans)}, "
            f"store_version={self.store.version}{parallel})"
        )
