"""Checkpoint and crash recovery for durable serving tenants.

The durability contract (with :mod:`repro.service.wal` as the other
half): a tenant's acknowledged state is always reconstructible as

    newest valid checkpoint  +  the WAL suffix past its version.

A **checkpoint** is an atomically-published directory holding a frozen
:class:`~repro.rpq.csr.CSRSnapshot` of the tenant's view graph plus a
``meta.json`` with everything the snapshot alone cannot carry: the
node-interning table *in order* (dense ids decide the engine's answer
order, so byte-identical recovered answers require re-interning in the
original order), the store version, the WAL offset/seq at checkpoint
time, and a SHA-256 of the snapshot payload (the snapshot loader
validates structure; the digest catches flipped bits in array data).
The directory is staged under a scratch name, fsynced, and published
with one ``os.replace`` — a crash mid-checkpoint leaves only a ``*.tmp``
orphan, never a half-visible checkpoint.

**Recovery** walks checkpoints newest-first.  A checkpoint that fails
any validation (unreadable/ill-formed meta, digest mismatch, truncated
snapshot, inconsistent node table) is *quarantined* — renamed with a
``.corrupt`` suffix so it is never retried — and the previous one is
tried instead; with none left, recovery restarts from the empty store
and relies on the WAL alone.  The WAL is then replayed through
:meth:`~repro.service.store.MaterializedViewStore.apply_wal_changes`,
one record per original version bump, skipping records at or below the
checkpoint version and stopping at the first record that does not
follow from the reconstructed state (treated exactly like a torn tail:
the consistent prefix wins, the unusable suffix is cut).  Recovery
therefore *always* terminates in a consistent state, whatever a crash
or a fuzzer did to the files.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import dataclass, field
from typing import Hashable, Iterable

from ..rpq.csr import CSRSnapshot
from .store import MaterializedViewStore
from .wal import WriteAheadLog, decode_record, WalError

__all__ = [
    "CHECKPOINT_FORMAT",
    "RecoveryError",
    "RecoveryResult",
    "TenantDurability",
    "list_checkpoints",
    "load_checkpoint",
    "recover_store",
    "write_checkpoint",
]

CHECKPOINT_FORMAT = "repro-tenant-checkpoint-v1"

_CKPT_PREFIX = "ckpt-"
_WAL_NAME = "wal.log"
_TMP_SERIAL = itertools.count()


class RecoveryError(ValueError):
    """A checkpoint failed validation and cannot seed recovery.

    Raised by :func:`load_checkpoint` for every defect class — missing
    or ill-formed ``meta.json``, snapshot digest mismatch, truncated
    arrays, an interning table inconsistent with the snapshot — and
    caught by :func:`recover_store`, which quarantines the checkpoint
    and falls back to the previous one.
    """


def _checkpoint_name(version: int) -> str:
    return f"{_CKPT_PREFIX}{version:016d}"


def _fsync_path(path: str) -> None:
    """fsync a file or directory so renames/contents survive power loss."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def list_checkpoints(directory: str | os.PathLike) -> list[tuple[int, str]]:
    """Valid-named checkpoint directories as (version, path), newest first.

    Quarantined (``*.corrupt``) and scratch (``*.tmp``) entries are
    skipped; so is anything whose name does not parse as a checkpoint.
    """
    directory = os.fspath(directory)
    found: list[tuple[int, str]] = []
    try:
        entries = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in entries:
        if not name.startswith(_CKPT_PREFIX):
            continue
        suffix = name[len(_CKPT_PREFIX) :]
        # Digits-only filters out quarantined ("….corrupt") and scratch
        # ("….tmp") entries along with anything else that is not ours.
        if not suffix.isdigit():
            continue
        path = os.path.join(directory, name)
        if os.path.isdir(path):
            found.append((int(suffix), path))
    found.sort(reverse=True)
    return found


def write_checkpoint(
    store: MaterializedViewStore,
    directory: str | os.PathLike,
    *,
    wal: WriteAheadLog | None = None,
    keep: int = 2,
) -> str:
    """Atomically publish a checkpoint of ``store``; returns its path.

    When a ``wal`` is given it is hard-synced first, so the recorded
    ``wal_offset``/``wal_seq`` name a durable boundary: every WAL byte
    before the offset is on disk before the checkpoint that cites it.
    The newest ``keep`` checkpoints are retained (a corrupt newest must
    leave a previous one to fall back to); older ones are pruned.
    Checkpointing an already-checkpointed version is a no-op returning
    the existing path.
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    if wal is not None:
        wal.sync()
    final = os.path.join(directory, _checkpoint_name(store.version))
    if os.path.isdir(final):
        return final
    graph = store.graph
    nodes = [graph.node_at(node_id) for node_id in range(graph.num_nodes)]
    tmp = f"{final}.{os.getpid()}.{next(_TMP_SERIAL)}.tmp"
    os.makedirs(tmp)
    try:
        snapshot_path = os.path.join(tmp, "graph.csr")
        CSRSnapshot.from_graph(graph).save(snapshot_path)
        meta = {
            "format": CHECKPOINT_FORMAT,
            "version": store.version,
            "wal_offset": wal.offset if wal is not None else 0,
            "wal_seq": wal.last_seq if wal is not None else 0,
            "nodes": nodes,
            "symbols": sorted(store.symbols),
            "num_tuples": store.num_tuples,
            "graph_sha256": _sha256_file(snapshot_path),
        }
        meta_path = os.path.join(tmp, "meta.json")
        with open(meta_path, "w", encoding="utf-8") as handle:
            json.dump(meta, handle, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        _fsync_path(snapshot_path)
        _fsync_path(tmp)
        os.replace(tmp, final)
    except BaseException:
        for name in ("graph.csr", "meta.json"):
            try:
                os.unlink(os.path.join(tmp, name))
            except OSError:
                pass
        try:
            os.rmdir(tmp)
        except OSError:
            pass
        raise
    _fsync_path(directory)
    for _version, path in list_checkpoints(directory)[max(keep, 1) :]:
        _remove_tree(path)
    return final


def _remove_tree(path: str) -> None:
    """Best-effort removal of a (flat) checkpoint directory."""
    try:
        for name in os.listdir(path):
            try:
                os.unlink(os.path.join(path, name))
            except OSError:
                pass
        os.rmdir(path)
    except OSError:
        pass


def load_checkpoint(
    path: str | os.PathLike,
) -> tuple[list[Hashable], dict[Hashable, list[tuple[Hashable, Hashable]]], dict]:
    """Validate and decode one checkpoint into restorable pieces.

    Returns ``(nodes, extensions, meta)`` where ``nodes`` is the
    interning table in original order and ``extensions`` maps each view
    symbol to its tuple list, reconstructed from the snapshot's
    per-label CSR adjacency.  Raises :class:`RecoveryError` on *any*
    defect — unreadable or ill-formed ``meta.json``, wrong format tag,
    digest mismatch, truncated or corrupt snapshot, or a node table
    inconsistent with the snapshot — so callers can quarantine the
    checkpoint and fall back.
    """
    path = os.fspath(path)
    meta_path = os.path.join(path, "meta.json")
    snapshot_path = os.path.join(path, "graph.csr")
    try:
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
    except (OSError, ValueError) as exc:
        raise RecoveryError(f"unreadable checkpoint meta {meta_path}: {exc}")
    if not isinstance(meta, dict) or meta.get("format") != CHECKPOINT_FORMAT:
        raise RecoveryError(
            f"checkpoint {path} has format "
            f"{meta.get('format') if isinstance(meta, dict) else meta!r}, "
            f"expected {CHECKPOINT_FORMAT}"
        )
    nodes = meta.get("nodes")
    version = meta.get("version")
    if not isinstance(nodes, list) or not isinstance(version, int) or version < 0:
        raise RecoveryError(f"checkpoint {path} meta is missing nodes/version")
    try:
        digest = _sha256_file(snapshot_path)
    except OSError as exc:
        raise RecoveryError(f"unreadable snapshot {snapshot_path}: {exc}")
    if digest != meta.get("graph_sha256"):
        raise RecoveryError(
            f"checkpoint {path} snapshot digest mismatch "
            f"({digest} != {meta.get('graph_sha256')})"
        )
    try:
        # mmap=False: recovery reads the arrays once to rebuild the
        # store, then the snapshot is garbage — no reason to hold a map.
        snapshot = CSRSnapshot.load(snapshot_path, mmap=False)
    except (ValueError, OSError) as exc:
        raise RecoveryError(f"corrupt snapshot {snapshot_path}: {exc}")
    if snapshot.num_nodes != len(nodes):
        raise RecoveryError(
            f"checkpoint {path} interning table has {len(nodes)} nodes, "
            f"snapshot has {snapshot.num_nodes}"
        )
    extensions: dict[Hashable, list[tuple[Hashable, Hashable]]] = {}
    for label in snapshot.labels:
        label_csr = snapshot.label_csr(label)
        indptr = label_csr.out_indptr
        indices = label_csr.out_indices
        pairs: list[tuple[Hashable, Hashable]] = []
        try:
            for source_id in range(snapshot.num_nodes):
                source = nodes[source_id]
                for slot in range(int(indptr[source_id]), int(indptr[source_id + 1])):
                    pairs.append((source, nodes[int(indices[slot])]))
        except IndexError as exc:
            raise RecoveryError(
                f"checkpoint {path} snapshot indexes past its node table: {exc}"
            )
        if pairs:
            extensions[label] = pairs
    return nodes, extensions, meta


@dataclass
class RecoveryResult:
    """What :func:`recover_store` did: the store plus an audit trail.

    ``checkpoint`` is the path that seeded the store (``None`` when no
    valid checkpoint survived and recovery restarted from empty);
    ``quarantined`` the corrupt checkpoints renamed aside; ``replayed``
    how many WAL records were applied on top; ``wal_valid_bytes`` the
    byte length of the WAL prefix the recovered state accounts for
    (everything past it — torn, corrupt, or inconsistent with the
    state — should be truncated before new writes are appended);
    ``wal_error`` why replay stopped early, or ``None``.
    """

    store: MaterializedViewStore
    checkpoint: str | None
    checkpoint_version: int
    replayed: int
    wal_valid_bytes: int
    wal_error: str | None
    quarantined: list[str] = field(default_factory=list)


def _quarantine(path: str) -> str:
    """Rename a corrupt checkpoint aside so it is never retried."""
    target = path + ".corrupt"
    serial = 0
    while os.path.exists(target):
        serial += 1
        target = f"{path}.corrupt{serial}"
    os.replace(path, target)
    return target


def recover_store(
    directory: str | os.PathLike,
    *,
    log_limit: int = 100_000,
) -> RecoveryResult:
    """Rebuild a tenant store from its data directory (see module doc).

    Tries checkpoints newest-first, quarantining each one that fails
    validation; seeds the store from the first valid one (or from empty
    at version 0 if none survive) and replays the WAL suffix on top,
    stopping at the first record that is torn, corrupt, non-monotone,
    or does not follow from the reconstructed state.  Never raises on
    corrupt input: the result is always a consistent store plus an
    audit trail of what was skipped, cut, or quarantined.
    """
    directory = os.fspath(directory)
    quarantined: list[str] = []
    store: MaterializedViewStore | None = None
    checkpoint: str | None = None
    checkpoint_version = 0
    for version, path in list_checkpoints(directory):
        try:
            nodes, extensions, meta = load_checkpoint(path)
        except RecoveryError:
            quarantined.append(_quarantine(path))
            continue
        store = MaterializedViewStore.restore(
            nodes, extensions, meta["version"], log_limit=log_limit
        )
        checkpoint = path
        checkpoint_version = meta["version"]
        break
    if store is None:
        store = MaterializedViewStore(log_limit=log_limit)
    replayed = 0
    wal_error: str | None = None
    wal_path = os.path.join(directory, _WAL_NAME)
    try:
        with open(wal_path, "rb") as handle:
            buffer = handle.read()
    except FileNotFoundError:
        buffer = b""
    # Replay with our own frame walk (not scan_wal) because recovery
    # needs the byte offset of each boundary: the valid prefix ends
    # where the last *applied* record ends, and a record that decodes
    # but does not follow from the state still cuts the prefix there.
    offset = 0
    last_seq = 0
    while offset < len(buffer):
        try:
            record, end = decode_record(buffer, offset)
        except WalError as exc:
            wal_error = f"offset {offset}: {exc}"
            break
        if record.seq <= last_seq:
            wal_error = (
                f"offset {offset}: non-monotone seq {record.seq} "
                f"after {last_seq}"
            )
            break
        if record.version <= store.version:
            # At or below the checkpoint: already folded in.  Valid
            # prefix still advances — these bytes are accounted for.
            last_seq = record.seq
            offset = end
            continue
        try:
            store.apply_wal_changes(record.ops, record.version)
        except ValueError as exc:
            wal_error = f"offset {offset}: record does not apply: {exc}"
            break
        replayed += 1
        last_seq = record.seq
        offset = end
    return RecoveryResult(
        store=store,
        checkpoint=checkpoint,
        checkpoint_version=checkpoint_version,
        replayed=replayed,
        wal_valid_bytes=offset,
        wal_error=wal_error,
        quarantined=quarantined,
    )


class TenantDurability:
    """One tenant's durable home: its WAL, checkpoints, and counters.

    :meth:`open_or_recover` is the single entry point the serving stack
    uses at startup: a fresh directory seeds the store from the tenant
    config's initial extensions and writes an *initial checkpoint*
    (those extensions never enter the WAL, so without it they would be
    unrecoverable); an existing directory ignores the config's
    extensions entirely and reconstructs the acknowledged state via
    :func:`recover_store`, truncating whatever WAL suffix the recovered
    state does not account for.  Either way the store comes back with
    the WAL attached and every future version bump framed into it.

    :meth:`maybe_checkpoint` rolls a new checkpoint once the WAL has
    grown ``checkpoint_every_bytes`` past the last one — bounding
    replay work after a crash — and :attr:`stats` feeds the per-tenant
    ``/stats`` payload (wal_bytes, checkpoints, recoveries, replayed,
    quarantined, truncated bytes).
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        fsync: str = "batch",
        checkpoint_every_bytes: int = 1 << 20,
        keep_checkpoints: int = 2,
    ):
        if checkpoint_every_bytes <= 0:
            raise ValueError(
                "checkpoint_every_bytes must be positive, got "
                f"{checkpoint_every_bytes}"
            )
        self.directory = os.fspath(directory)
        self.fsync = fsync
        self.checkpoint_every_bytes = checkpoint_every_bytes
        self.keep_checkpoints = keep_checkpoints
        self.wal: WriteAheadLog | None = None
        self._checkpoint_offset = 0
        self.stats = {
            "wal_bytes": 0,
            "checkpoints": 0,
            "recoveries": 0,
            "replayed": 0,
            "quarantined": 0,
            "wal_truncated_bytes": 0,
        }

    @property
    def wal_path(self) -> str:
        """Where this tenant's write-ahead log lives."""
        return os.path.join(self.directory, _WAL_NAME)

    def open_or_recover(
        self,
        extensions=None,
        *,
        log_limit: int = 100_000,
    ) -> MaterializedViewStore:
        """Open the durable store: fresh-seed or crash-recover, then log.

        ``extensions`` (the tenant config's initial view extensions) are
        only consulted when the directory holds no durable state yet;
        an existing WAL or checkpoint always wins, because the durable
        state is the acknowledged one.
        """
        os.makedirs(self.directory, exist_ok=True)
        existing = bool(list_checkpoints(self.directory)) or os.path.exists(
            self.wal_path
        )
        if existing:
            result = recover_store(self.directory, log_limit=log_limit)
            store = result.store
            self.stats["recoveries"] += 1
            self.stats["replayed"] += result.replayed
            self.stats["quarantined"] += len(result.quarantined)
            # Cut the WAL suffix the recovered state cannot account for
            # (torn tail, corrupt frame, or a record that no longer
            # follows after falling back to an older checkpoint): the
            # next append must land on a valid record boundary, and the
            # log's seq/version counters must match the store's.
            try:
                total = os.path.getsize(self.wal_path)
            except OSError:
                total = 0
            if total > result.wal_valid_bytes:
                self.stats["wal_truncated_bytes"] += total - result.wal_valid_bytes
                with open(self.wal_path, "rb+") as handle:
                    handle.truncate(result.wal_valid_bytes)
                    os.fsync(handle.fileno())
            if result.checkpoint is None:
                # Every checkpoint was quarantined (or never existed):
                # re-anchor the durable floor at the recovered state so
                # the next crash does not depend on replaying the whole
                # log from empty again.
                self.checkpoint(store)
        else:
            store = MaterializedViewStore(extensions, log_limit=log_limit)
            # The initial extensions are never WAL-logged (the WAL is
            # attached below, after the seed); this first checkpoint is
            # what makes them durable.
            self.checkpoint(store)
        self.wal = WriteAheadLog(self.wal_path, fsync=self.fsync)
        self._checkpoint_offset = self.wal.offset
        self.stats["wal_bytes"] = self.wal.offset
        store.attach_wal(self.wal)
        return store

    def checkpoint(self, store: MaterializedViewStore) -> str:
        """Write a checkpoint of ``store`` now; returns its path."""
        path = write_checkpoint(
            store,
            self.directory,
            wal=self.wal,
            keep=self.keep_checkpoints,
        )
        self.stats["checkpoints"] += 1
        if self.wal is not None:
            self._checkpoint_offset = self.wal.offset
        return path

    def maybe_checkpoint(self, store: MaterializedViewStore) -> str | None:
        """Roll a checkpoint if the WAL grew enough since the last one.

        Called on the tenant's executor after acknowledged writes, so
        checkpointing serializes with mutations for free.  Returns the
        new checkpoint's path, or ``None`` when the WAL is still under
        ``checkpoint_every_bytes`` of un-checkpointed records.
        """
        if self.wal is None:
            return None
        self.stats["wal_bytes"] = self.wal.offset
        if self.wal.offset - self._checkpoint_offset < self.checkpoint_every_bytes:
            return None
        return self.checkpoint(store)

    def note_commit(self) -> None:
        """Refresh the wal_bytes stat after a committed write batch."""
        if self.wal is not None:
            self.stats["wal_bytes"] = self.wal.offset

    def close(self) -> None:
        """Release the WAL file handle (syncing per its policy)."""
        if self.wal is not None:
            self.wal.close()

    def __repr__(self) -> str:
        return (
            f"TenantDurability({self.directory!r}, fsync={self.fsync!r}, "
            f"checkpoints={self.stats['checkpoints']}, "
            f"wal_bytes={self.stats['wal_bytes']})"
        )
