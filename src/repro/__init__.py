"""repro — Rewriting of Regular Expressions and Regular Path Queries.

A from-scratch reproduction of Calvanese, De Giacomo, Lenzerini and Vardi,
"Rewriting of Regular Expressions and Regular Path Queries" (PODS 1999;
JCSS 64:443-465, 2002): view-based query rewriting for regular languages and
regular path queries over semi-structured (graph) databases.

Quickstart (the paper's Figure 1 / Examples 2.2-2.3)::

    from repro import maximal_rewriting, ViewSet

    views = ViewSet({"e1": "a", "e2": "a.c*.b", "e3": "c"})
    rewriting = maximal_rewriting("a.(b.a+c)*", views)
    print(rewriting.regex())    # e2*.e1.e3*
    print(rewriting.is_exact()) # True

Package layout:

* :mod:`repro.regex` — regular-expression toolkit (AST, parser, derivatives);
* :mod:`repro.automata` — NFA/DFA substrate with all boolean operations;
* :mod:`repro.core` — Section 2/3 rewriting engine (this is the paper's
  main contribution);
* :mod:`repro.rpq` — Section 4: regular path queries over graph databases,
  theories of edge formulae, view-based RPQ rewriting and answering;
* :mod:`repro.service` — the answering service: materialized view store,
  persistent rewrite-plan cache, and the ``QuerySession`` front end;
* :mod:`repro.reductions` — Section 3.2: the EXPSPACE/2EXPSPACE tiling
  reductions and the 2^(2^n) counter family.
"""

from .core import (
    PartialRewriting,
    RewritingResult,
    ViewSet,
    exactness_counterexample,
    find_partial_rewritings,
    has_nonempty_rewriting,
    maximal_rewriting,
    nonempty_rewriting_witness,
)
from .regex import parse, to_string

__version__ = "1.0.0"

__all__ = [
    "ViewSet",
    "maximal_rewriting",
    "RewritingResult",
    "exactness_counterexample",
    "has_nonempty_rewriting",
    "nonempty_rewriting_witness",
    "PartialRewriting",
    "find_partial_rewritings",
    "parse",
    "to_string",
    "__version__",
]
