"""Command-line interface: rewrite queries from the shell.

Examples::

    python -m repro rewrite --query 'a.(b.a+c)*' \
        --view e1=a --view 'e2=a.c*.b' --view e3=c

    python -m repro rewrite --query 'a.(b+c)' --view q1=a --view q2=b \
        --partial

    python -m repro rewrite --batch queries.txt --view e1=a --view e2=b

    python -m repro rewrite --query 'a.b' --query '(a.b)*' --view e=a.b

    python -m repro check --query 'a*' --view 'e=a.a'     # non-emptiness

    python -m repro eval --graph edges.tsv --query 'a.b*'  # RPQ answers

    python -m repro eval --graph edges.tsv --query 'a.b*' --source x

    python -m repro eval --graph edges.tsv --query 'a.b*' --pair x y

    python -m repro answer --query 'a.b' --view q1=a --view q2=b \
        --extensions tuples.tsv --plan-cache .plans   # view-based answering

    python -m repro answer --query 'a.b' --view q1=a --view q2=b \
        --extensions tuples.tsv --shards 8 --workers 4   # sharded evaluation

    python -m repro answer --query 'a.b' --view q1=a --view q2=b \
        --extensions tuples.tsv --stats   # serving counters as JSON on stderr

    python -m repro workload --family grid --seed 7 --edges 2000 \
        --graph-out grid.tsv --num-queries 5 --queries-out queries.txt

    python -m repro serve --port 8322 \
        --workload-tenant alpha=grid:7:300 \
        --workload-tenant beta=chain:11:200   # multi-tenant HTTP server

    python -m repro serve --port 8322 --data-dir ./state --fsync batch \
        --workload-tenant alpha=grid:7:300   # crash-safe durable serving

    python -m repro recover --data-dir ./state --checkpoint  # offline recovery

    python -m repro serve-bench --nodes 300           # warm vs cold serving

``edges.tsv`` holds one ``source<TAB>label<TAB>target`` triple per line;
``tuples.tsv`` holds materialized ``view<TAB>source<TAB>target`` tuples.
All regular expressions use the library's concrete syntax (``.``
concatenation, ``+`` union, postfix ``*``; multi-character names are
single symbols).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .core import (
    ViewSet,
    exactness_counterexample,
    find_partial_rewritings,
    has_nonempty_rewriting,
    maximal_rewriting,
    nonempty_rewriting_witness,
    rewrite_many,
)
from .regex.printer import to_string

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="View-based rewriting of regular expressions and "
        "regular path queries (Calvanese et al., PODS'99).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rewrite = sub.add_parser(
        "rewrite", help="compute the maximal rewriting of one or many queries"
    )
    rewrite.add_argument(
        "--query",
        action="append",
        help="a query E0; repeatable (two or more run as a batch)",
    )
    rewrite.add_argument(
        "--batch",
        metavar="FILE",
        help="read queries from FILE (one per line, '#' comments, '-' for "
        "stdin) and rewrite them all against the shared view set",
    )
    rewrite.add_argument(
        "--view",
        action="append",
        required=True,
        metavar="NAME=REGEX",
        help="a view definition; repeatable",
    )
    rewrite.add_argument(
        "--partial",
        action="store_true",
        help="if not exact, search for minimal elementary-view extensions",
    )
    rewrite.add_argument(
        "--dot", action="store_true", help="also print the automaton in DOT"
    )

    check = sub.add_parser(
        "check", help="decide non-emptiness of the maximal rewriting"
    )
    check.add_argument("--query", required=True)
    check.add_argument("--view", action="append", required=True)

    evaluate = sub.add_parser("eval", help="evaluate an RPQ over a graph")
    evaluate.add_argument("--query", required=True)
    evaluate.add_argument(
        "--graph",
        required=True,
        help="TSV file with source<TAB>label<TAB>target lines",
    )
    mode = evaluate.add_mutually_exclusive_group()
    mode.add_argument(
        "--source",
        help="only report targets reachable from this node",
    )
    mode.add_argument(
        "--pair",
        nargs=2,
        metavar=("SOURCE", "TARGET"),
        help="decide one pair with the bidirectional search "
        "(exit code 0 if it is an answer, 1 if not, 2 on errors)",
    )
    evaluate.add_argument(
        "--naive",
        action="store_true",
        help="use the per-source reference evaluator instead of the "
        "compiled engine, in any mode (differential debugging)",
    )

    answer = sub.add_parser(
        "answer",
        help="answer queries from materialized view extensions alone "
        "(the data-integration scenario; no base database)",
    )
    answer.add_argument(
        "--query",
        action="append",
        required=True,
        help="a query over the base alphabet; repeatable",
    )
    answer.add_argument(
        "--view",
        action="append",
        required=True,
        metavar="NAME=REGEX",
        help="a view definition; repeatable",
    )
    answer.add_argument(
        "--extensions",
        required=True,
        metavar="FILE",
        help="TSV file of materialized tuples: view<TAB>source<TAB>target",
    )
    answer.add_argument(
        "--plan-cache",
        metavar="DIR",
        help="persist compiled rewrite plans under DIR and reuse them "
        "across invocations (skips re-determinization when warm)",
    )
    answer_mode = answer.add_mutually_exclusive_group()
    answer_mode.add_argument(
        "--source", help="only report targets reachable from this node"
    )
    answer_mode.add_argument(
        "--pair",
        nargs=2,
        metavar=("SOURCE", "TARGET"),
        help="decide one pair (exit code 0 if it is an answer, 1 if not)",
    )
    answer.add_argument(
        "--shards",
        type=int,
        metavar="K",
        help="partition the view graph into K node-range shards and run "
        "the sharded evaluator (answers are identical to the default "
        "engine; needs K >= 2 to take effect)",
    )
    answer.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="W",
        help="evaluate up to W shards in parallel worker processes "
        "(default 1: the sequential per-shard fallback)",
    )
    answer.add_argument(
        "--stats",
        action="store_true",
        help="after answering, print per-query session stats plus the "
        "engine's compile-cache and plan-cache counters as one JSON "
        "object on stderr (operational visibility; stdout stays "
        "machine-parseable answers)",
    )

    workload = sub.add_parser(
        "workload",
        help="generate a seeded workload graph (plus query mix) from a "
        "named family; the TSV output feeds `repro eval --graph` and the "
        "query list feeds `repro rewrite --batch`",
    )
    workload.add_argument(
        "--family",
        required=True,
        help="graph family: chain, grid, scale_free, or layered_dag",
    )
    workload.add_argument("--seed", type=int, default=0)
    workload.add_argument(
        "--edges",
        type=int,
        default=1000,
        help="minimum edge count of the generated graph (default 1000)",
    )
    workload.add_argument(
        "--graph-out",
        default="-",
        metavar="FILE",
        help="write source<TAB>label<TAB>target triples here ('-' = stdout)",
    )
    workload.add_argument(
        "--num-queries",
        type=int,
        default=0,
        metavar="N",
        help="also emit a seeded N-query mix for the family",
    )
    workload.add_argument(
        "--queries-out",
        metavar="FILE",
        help="where to write the query mix (default: stdout, after the "
        "graph, as '# query:' comment lines)",
    )
    workload.add_argument(
        "--signature",
        action="store_true",
        help="print the graph's canonical sha256 signature to stderr "
        "(equal signatures == byte-identical graphs)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the async multi-tenant HTTP/JSON answering server",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8322,
        help="listen port (0 picks an ephemeral port; default 8322)",
    )
    serve.add_argument(
        "--workload-tenant",
        action="append",
        required=True,
        metavar="NAME=FAMILY:SEED:EDGES",
        help="a tenant seeded from a workload family (views materialized "
        "over the family's seeded graph become its extensions); repeatable",
    )
    serve.add_argument(
        "--plan-cache",
        metavar="DIR",
        help="persist every tenant's compiled rewrite plans under DIR",
    )
    serve.add_argument(
        "--shards",
        type=int,
        metavar="K",
        help="evaluate each tenant on K node-range shards (needs K >= 2)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="W",
        help="worker processes per tenant's sharded evaluator (default 1)",
    )
    serve.add_argument(
        "--backend",
        default="auto",
        help="sweep kernel backend: auto, bigint, or numpy (default auto)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="per-tenant admission bound: requests queued or in flight "
        "beyond this are rejected with HTTP 429 (default 64)",
    )
    serve.add_argument(
        "--data-dir",
        metavar="DIR",
        help="make every tenant durable under DIR/<tenant>: writes are "
        "WAL-logged before acknowledgement, checkpoints roll as the log "
        "grows, and startup recovers acknowledged state after a crash "
        "(a fresh DIR is seeded from the workload extensions)",
    )
    serve.add_argument(
        "--fsync",
        choices=("always", "batch", "off"),
        default="batch",
        help="WAL durability policy with --data-dir: 'always' syncs every "
        "record, 'batch' group-commits once per acknowledged write "
        "request (default), 'off' flushes but never syncs",
    )
    serve.add_argument(
        "--checkpoint-bytes",
        type=int,
        default=1 << 20,
        metavar="N",
        help="with --data-dir, roll a new checkpoint once the WAL grows "
        "N bytes past the last one (bounds replay work; default 1 MiB)",
    )

    recover = sub.add_parser(
        "recover",
        help="recover tenant stores from a --data-dir offline and report "
        "what recovery would serve (checkpoint used, WAL records "
        "replayed, corrupt checkpoints quarantined)",
    )
    recover.add_argument(
        "--data-dir",
        required=True,
        metavar="DIR",
        help="the serve --data-dir to recover (every subdirectory with a "
        "WAL or checkpoints is treated as one tenant)",
    )
    recover.add_argument(
        "--tenant",
        action="append",
        metavar="NAME",
        help="only recover this tenant (repeatable; default: all found)",
    )
    recover.add_argument(
        "--checkpoint",
        action="store_true",
        help="after recovering, write a fresh checkpoint of the recovered "
        "state (re-anchors the durable floor, shrinking future replays)",
    )

    serve_bench = sub.add_parser(
        "serve-bench",
        help="run the warm-session vs cold-loop serving benchmark",
    )
    serve_bench.add_argument("--nodes", type=int, default=300)
    serve_bench.add_argument("--edges", type=int, default=1500)
    serve_bench.add_argument(
        "--queries", type=int, default=None, help="how many workload queries"
    )
    serve_bench.add_argument("--seed", type=int, default=20260730)
    serve_bench.add_argument(
        "--plan-cache", metavar="DIR", help="persist plans under DIR"
    )
    return parser


def _parse_views(definitions: Sequence[str]) -> ViewSet:
    views = {}
    for definition in definitions:
        name, sep, expr = definition.partition("=")
        if not sep or not name or not expr:
            raise SystemExit(f"bad --view {definition!r}; expected NAME=REGEX")
        views[name] = expr
    return ViewSet(views)


def _read_batch_queries(path: str) -> list[str]:
    if path == "-":
        handle = sys.stdin
    else:
        try:
            handle = open(path, encoding="utf-8")
        except OSError as exc:
            raise SystemExit(f"cannot read --batch file: {exc}") from None
    try:
        return [
            stripped
            for line in handle
            if (stripped := line.strip()) and not stripped.startswith("#")
        ]
    finally:
        if handle is not sys.stdin:
            handle.close()


def _cmd_rewrite(args: argparse.Namespace) -> int:
    views = _parse_views(args.view)
    queries = list(args.query or [])
    if args.batch is not None:
        queries.extend(_read_batch_queries(args.batch))
    if not queries:
        raise SystemExit("rewrite needs at least one --query or a --batch file")
    if len(queries) > 1:
        if args.partial or args.dot:
            raise SystemExit("--partial/--dot apply to single-query rewrites only")
        return _cmd_rewrite_batch(queries, views)
    result = maximal_rewriting(queries[0], views)
    print("rewriting:", to_string(result.regex()))
    print("empty:", result.is_empty())
    exact = result.is_exact()
    print("exact:", exact)
    if not exact:
        witness = exactness_counterexample(result)
        if witness is not None:
            print("missed query word:", ".".join(map(str, witness)) or "(empty)")
        if args.partial:
            solutions = find_partial_rewritings(queries[0], views)
            if solutions:
                best = solutions[0]
                print(
                    "partial rewriting: add elementary views for",
                    ", ".join(map(str, best.added)) or "(nothing)",
                )
                print("  ->", to_string(best.result.regex()))
            else:
                print("partial rewriting: none found")
    if args.dot:
        from .automata import to_dot

        print(to_dot(result.automaton.trimmed(), name="rewriting"))
    return 0


def _cmd_rewrite_batch(queries: Sequence[str], views: ViewSet) -> int:
    """Rewrite many queries against one view set, sharing compiled views."""
    results = rewrite_many(queries, views)
    nonempty = 0
    for query, result in zip(queries, results):
        empty = result.is_empty()
        nonempty += not empty
        print(f"query: {query}")
        print("  rewriting:", to_string(result.regex()))
        print("  empty:", empty)
        print("  exact:", result.is_exact())
    print(f"# {len(queries)} queries, {nonempty} nonempty rewritings", file=sys.stderr)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    views = _parse_views(args.view)
    if has_nonempty_rewriting(args.query, views):
        witness = nonempty_rewriting_witness(args.query, views)
        print("nonempty:", ".".join(map(str, witness)) or "(empty word)")
        return 0
    print("empty")
    return 1


def _cmd_eval(args: argparse.Namespace) -> int:
    from .rpq import evaluate, evaluate_from, evaluate_pair, naive_evaluate
    from .rpq.graphdb import GraphDB

    db = GraphDB()
    with open(args.graph, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise SystemExit(
                    f"{args.graph}:{line_no}: expected 3 tab-separated fields"
                )
            source, label, target = parts
            db.add_edge(source, label, target)
    def _node_error(exc: KeyError) -> SystemExit:
        print(f"{args.graph}: {exc.args[0]}", file=sys.stderr)
        return SystemExit(2)

    if args.pair is not None:
        source, target = args.pair
        try:
            db.node_id(source)
            db.node_id(target)
            if args.naive:
                found = (source, target) in naive_evaluate(db, args.query)
            else:
                found = evaluate_pair(db, source, target, args.query)
        except KeyError as exc:
            raise _node_error(exc) from None
        print("answer" if found else "no answer")
        return 0 if found else 1
    if args.source is not None:
        try:
            db.node_id(args.source)
            if args.naive:
                targets = frozenset(
                    y
                    for x, y in naive_evaluate(db, args.query)
                    if x == args.source
                )
            else:
                targets = evaluate_from(db, args.source, args.query)
        except KeyError as exc:
            raise _node_error(exc) from None
        answers = sorted((args.source, y) for y in targets)
    else:
        evaluator = naive_evaluate if args.naive else evaluate
        answers = sorted(evaluator(db, args.query))
    for x, y in answers:
        print(f"{x}\t{y}")
    print(f"# {len(answers)} answers", file=sys.stderr)
    return 0


def _read_extensions(path: str) -> dict[str, set[tuple[str, str]]]:
    """Parse a view<TAB>source<TAB>target TSV into per-view pair sets."""
    extensions: dict[str, set[tuple[str, str]]] = {}
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise SystemExit(
                    f"{path}:{line_no}: expected 3 tab-separated fields "
                    "(view, source, target)"
                )
            view, source, target = parts
            extensions.setdefault(view, set()).add((source, target))
    return extensions


def _cmd_answer(args: argparse.Namespace) -> int:
    from .rpq import RPQ, RPQViews, Theory
    from .service import MaterializedViewStore, QuerySession, RewritePlanCache

    view_specs = {}
    for definition in args.view:
        name, sep, expr = definition.partition("=")
        if not sep or not name or not expr:
            raise SystemExit(f"bad --view {definition!r}; expected NAME=REGEX")
        view_specs[name] = expr
    views = RPQViews(view_specs)
    # The CLI speaks plain-label regexes; the domain D for each query is
    # what that query and the views mention.  Deliberately per-query (not
    # the union over all --query flags): the plan-cache key includes the
    # theory, so a domain depending on *which other* queries ride along
    # would defeat cross-invocation plan reuse.
    views_alphabet: set[str] = set()
    for symbol in views.symbols:
        views_alphabet |= set(views.rpq(symbol).alphabet())

    extensions = _read_extensions(args.extensions)
    unknown = set(extensions) - set(views.symbols)
    if unknown:
        raise SystemExit(
            f"{args.extensions}: tuples for undefined views: "
            f"{', '.join(sorted(unknown))}"
        )
    store = MaterializedViewStore(extensions)
    plans = RewritePlanCache(args.plan_cache)

    if args.shards is not None and args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")

    exit_code = 0
    session_stats = []
    for query in args.query:
        domain = views_alphabet | set(RPQ(query).alphabet())
        if not domain:
            raise SystemExit(f"query {query!r} and views mention no symbols")
        with QuerySession(
            store,
            views,
            Theory.trivial(domain),
            plans=plans,
            parallelism=args.shards,
            workers=args.workers,
        ) as session:
            plan = session.plan(query)
            print(f"query: {query}")
            print("  exact:", plan.is_exact())
            if args.pair is not None:
                source, target = args.pair
                found = session.answer_pair(query, source, target)
                print("  answer" if found else "  no answer")
                exit_code = max(exit_code, 0 if found else 1)
                answers = None
            elif args.source is not None:
                answers = sorted(
                    (args.source, y)
                    for y in session.answer_from(query, args.source)
                )
            else:
                answers = sorted(session.answer(query))
            if answers is not None:
                for x, y in answers:
                    print(f"  {x}\t{y}")
                print(f"  # {len(answers)} answers", file=sys.stderr)
            session_stats.append({"query": query, "stats": dict(session.stats)})
    if args.stats:
        import json

        from .rpq import compile_cache_info

        print(
            json.dumps(
                {
                    "store": {
                        "version": store.version,
                        "tuples": store.num_tuples,
                        "log_size": store.log_size,
                    },
                    "sessions": session_stats,
                    "compile_cache": compile_cache_info(),
                    "plan_cache": dict(plans.stats),
                },
                sort_keys=True,
            ),
            file=sys.stderr,
        )
    return exit_code


def _cmd_workload(args: argparse.Namespace) -> int:
    from .rpq.workload import (
        FAMILIES,
        graph_signature,
        graph_triples,
        make_graph,
        make_queries,
    )

    if args.family not in FAMILIES:
        raise SystemExit(
            f"unknown --family {args.family!r}; choose one of "
            f"{', '.join(FAMILIES)}"
        )
    if args.edges < 1:
        raise SystemExit(f"--edges must be >= 1, got {args.edges}")
    if args.queries_out and args.num_queries < 1:
        raise SystemExit(
            "--queries-out needs --num-queries >= 1 (nothing to write)"
        )
    db = make_graph(args.family, args.seed, edges=args.edges)
    queries = (
        make_queries(args.family, args.seed, count=args.num_queries)
        if args.num_queries > 0
        else ()
    )

    if args.graph_out == "-":
        handle = sys.stdout
    else:
        handle = open(args.graph_out, "w", encoding="utf-8")
    try:
        for source, label, target in graph_triples(db):
            handle.write(f"{source}\t{label}\t{target}\n")
    finally:
        if handle is not sys.stdout:
            handle.close()

    if queries:
        if args.queries_out:
            with open(args.queries_out, "w", encoding="utf-8") as qhandle:
                qhandle.writelines(f"{query}\n" for query in queries)
        else:
            for query in queries:
                print(f"# query: {query}")
    if args.signature:
        print(f"# signature: {graph_signature(db)}", file=sys.stderr)
    print(
        f"# {args.family} seed={args.seed}: {db.num_nodes} nodes, "
        f"{db.num_edges} edges, {len(queries)} queries",
        file=sys.stderr,
    )
    return 0


def _parse_workload_tenant(spec: str) -> tuple[str, str, int, int]:
    name, sep, rest = spec.partition("=")
    parts = rest.split(":")
    if not sep or not name or len(parts) != 3:
        raise SystemExit(
            f"bad --workload-tenant {spec!r}; expected NAME=FAMILY:SEED:EDGES"
        )
    family, seed_text, edges_text = parts
    try:
        seed, edges = int(seed_text), int(edges_text)
    except ValueError:
        raise SystemExit(
            f"bad --workload-tenant {spec!r}; SEED and EDGES must be integers"
        ) from None
    return name, family, seed, edges


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .rpq.workload import FAMILIES
    from .service.loadgen import make_tenant_config
    from .service.server import RPQServer

    tenants = {}
    for spec in args.workload_tenant:
        name, family, seed, edges = _parse_workload_tenant(spec)
        if family not in FAMILIES:
            raise SystemExit(
                f"--workload-tenant {spec!r}: unknown family {family!r}; "
                f"choose one of {', '.join(FAMILIES)}"
            )
        if name in tenants:
            raise SystemExit(f"duplicate tenant name {name!r}")
        tenants[name] = make_tenant_config(
            family,
            seed,
            edges=edges,
            plan_dir=args.plan_cache,
            parallelism=args.shards,
            workers=args.workers,
            backend=args.backend,
            max_queue=args.max_queue,
        )
    server = RPQServer(
        tenants,
        host=args.host,
        port=args.port,
        data_dir=args.data_dir,
        fsync=args.fsync,
        checkpoint_every_bytes=args.checkpoint_bytes,
    )

    async def _serve() -> None:
        await server.start()
        print(
            f"serving {len(server.tenants)} tenant(s) on "
            f"http://{server.host}:{server.port}",
            flush=True,
        )
        await server.serve_until_shutdown()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    import json
    import os

    from .service.recovery import list_checkpoints, recover_store, write_checkpoint

    data_dir = args.data_dir
    if not os.path.isdir(data_dir):
        raise SystemExit(f"--data-dir {data_dir!r} is not a directory")
    names = sorted(
        name
        for name in os.listdir(data_dir)
        if os.path.isdir(os.path.join(data_dir, name))
        and (
            os.path.exists(os.path.join(data_dir, name, "wal.log"))
            or list_checkpoints(os.path.join(data_dir, name))
        )
    )
    if args.tenant:
        missing = sorted(set(args.tenant) - set(names))
        if missing:
            raise SystemExit(
                f"no durable state under {data_dir!r} for tenant(s): "
                f"{', '.join(missing)}"
            )
        names = sorted(set(args.tenant))
    if not names:
        raise SystemExit(f"no durable tenants found under {data_dir!r}")
    exit_code = 0
    for name in names:
        tenant_dir = os.path.join(data_dir, name)
        result = recover_store(tenant_dir)
        report = {
            "tenant": name,
            "version": result.store.version,
            "tuples": result.store.num_tuples,
            "checkpoint": (
                os.path.basename(result.checkpoint)
                if result.checkpoint
                else None
            ),
            "checkpoint_version": result.checkpoint_version,
            "replayed": result.replayed,
            "quarantined": [
                os.path.basename(path) for path in result.quarantined
            ],
            "wal_error": result.wal_error,
        }
        if args.checkpoint:
            report["new_checkpoint"] = os.path.basename(
                write_checkpoint(result.store, tenant_dir)
            )
        print(json.dumps(report, sort_keys=True))
        # Quarantined checkpoints or a cut WAL tail mean recovery had to
        # repair; surface that in the exit code for scripting, while the
        # recovered state itself is consistent and serveable.
        if result.quarantined or result.wal_error:
            exit_code = 1
    return exit_code


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from .service.bench import QUERIES, run_service_benchmark

    report = run_service_benchmark(
        num_nodes=args.nodes,
        num_edges=args.edges,
        num_queries=args.queries if args.queries is not None else len(QUERIES),
        seed=args.seed,
        plan_dir=args.plan_cache,
    )
    for line in report.lines():
        print(line)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "rewrite": _cmd_rewrite,
        "check": _cmd_check,
        "eval": _cmd_eval,
        "answer": _cmd_answer,
        "workload": _cmd_workload,
        "serve": _cmd_serve,
        "recover": _cmd_recover,
        "serve-bench": _cmd_serve_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
