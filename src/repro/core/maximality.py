"""Maximality notions and bounded verification oracles.

The paper distinguishes Sigma_E-maximality (largest language over the view
alphabet) from Sigma-maximality (largest language after expansion) and shows
Sigma_E-maximal implies Sigma-maximal (Theorem 2.1) while the converse fails
(Example 2.1: both ``e*`` and ``e`` are Sigma-maximal rewritings of ``a*``
wrt ``{a*}``, only ``e*`` is Sigma_E-maximal).

This module provides the semantic predicates needed to state those facts
computationally, plus a brute-force bounded oracle used by the tests to
validate the construction: a word-by-word re-derivation of the rewriting
over all Sigma_E words up to a length bound.
"""

from __future__ import annotations

from itertools import product
from typing import Hashable, Iterable, Sequence, Union

from ..automata.containment import are_equivalent, is_contained
from ..automata.dfa import DFA
from ..automata.nfa import NFA
from .alphabet import ViewSet
from .expansion import expansion_nfa, word_expansion_nfa
from .result import RewritingResult

__all__ = [
    "is_rewriting",
    "word_expansion_contained",
    "expansions_equivalent",
    "brute_force_rewriting_words",
    "verify_bounded_maximality",
]

Automaton = Union[NFA, DFA]


def is_rewriting(candidate: Automaton, e0_dfa: DFA, views: ViewSet) -> bool:
    """Definition 2.1: is ``exp_Sigma(L(candidate)) subseteq L(E0)``?"""
    return is_contained(expansion_nfa(candidate, views), e0_dfa)


def word_expansion_contained(
    word: Sequence[Hashable], views: ViewSet, e0_dfa: DFA
) -> bool:
    """Is ``exp_Sigma({word}) subseteq L(E0)`` for a single Sigma_E word?"""
    return is_contained(word_expansion_nfa(word, views), e0_dfa)


def expansions_equivalent(
    left: Automaton, right: Automaton, views: ViewSet
) -> bool:
    """Do two Sigma_E languages have the same expansion (Sigma-equality)?

    This is the equivalence underlying Sigma-maximality: Example 2.1's two
    rewritings are expansion-equivalent but not Sigma_E-equivalent.
    """
    return are_equivalent(expansion_nfa(left, views), expansion_nfa(right, views))


def brute_force_rewriting_words(
    e0_dfa: DFA, views: ViewSet, max_length: int
) -> list[tuple[Hashable, ...]]:
    """All Sigma_E words up to ``max_length`` whose expansion is in ``L(E0)``.

    Exponential in ``max_length`` — this is the test oracle, not the
    algorithm.  By Theorem 2.2 the result must coincide with the accepted
    words of :func:`repro.core.rewriter.maximal_rewriting` up to the bound.
    """
    words: list[tuple[Hashable, ...]] = []
    for length in range(max_length + 1):
        for word in product(views.symbols, repeat=length):
            if word_expansion_contained(word, views, e0_dfa):
                words.append(word)
    return words


def verify_bounded_maximality(
    result: RewritingResult, max_length: int
) -> list[tuple[Hashable, ...]]:
    """Cross-check the rewriting against the brute-force oracle.

    Returns the list of disagreeing Sigma_E words (empty means the rewriting
    is sound and Sigma_E-maximal on all words up to ``max_length``).
    """
    disagreements: list[tuple[Hashable, ...]] = []
    for length in range(max_length + 1):
        for word in product(result.views.symbols, repeat=length):
            expected = word_expansion_contained(word, result.views, result.ad)
            if result.accepts(word) != expected:
                disagreements.append(word)
    return disagreements
