"""Expansion of Sigma_E languages back to Sigma languages.

The paper defines ``exp_Sigma(alpha)`` as the language obtained from a
language ``alpha`` over the view alphabet by substituting every view symbol
with the corresponding view language.  Two constructions are provided:

* :func:`expansion_nfa` — the automaton ``B`` of the exactness check
  (Section 2): every ``e``-labelled edge of an automaton over Sigma_E is
  replaced by a fresh copy of the view automaton for ``e``, glued in with
  epsilon moves at the edge's endpoints (Thompson automata have unique
  entry/exit states, matching the paper's normal form).
* :func:`word_expansion_nfa` — the expansion of a single Sigma_E word
  ``e1...en``, i.e. the concatenation ``L(re(e1)) ... L(re(en))``; used by
  the maximality oracle and the tests.
"""

from __future__ import annotations

from typing import Hashable, Sequence, Union

from ..automata.dfa import DFA
from ..automata.nfa import EPS, NFA, NFABuilder
from ..automata.operations import concat_nfa
from ..automata.thompson import to_nfa
from ..regex.ast import EPSILON
from .alphabet import ViewSet

__all__ = ["expansion_nfa", "word_expansion_nfa"]

Automaton = Union[NFA, DFA]


def expansion_nfa(rewriting: Automaton, views: ViewSet) -> NFA:
    """The automaton ``B`` accepting ``exp_Sigma(L(rewriting))``.

    ``rewriting`` must be an automaton over (a subset of) the view alphabet.
    The input is trimmed first — complement DFAs carry large dead parts that
    would otherwise each receive a copy of every view automaton.
    """
    skeleton = rewriting.to_nfa() if isinstance(rewriting, DFA) else rewriting
    unknown = skeleton.alphabet - set(views.symbols)
    if unknown:
        raise ValueError(f"automaton uses non-view symbols: {sorted(map(repr, unknown))}")
    skeleton = skeleton.trimmed()
    builder = NFABuilder(views.base_alphabet())
    state_map = {state: builder.add_state() for state in sorted(skeleton.states)}
    for state in skeleton.initials:
        builder.set_initial(state_map[state])
    for state in skeleton.finals:
        builder.set_final(state_map[state])
    for src, label, dst in skeleton.iter_transitions():
        if label is EPS:
            builder.add_epsilon(state_map[src], state_map[dst])
            continue
        _splice_view(builder, views.nfa(label), state_map[src], state_map[dst])
    return builder.build()


def _splice_view(builder: NFABuilder, view: NFA, source: int, target: int) -> None:
    """Insert a fresh copy of ``view`` between ``source`` and ``target``."""
    copy_map = {state: builder.add_state() for state in sorted(view.states)}
    for v_src, label, v_dst in view.iter_transitions():
        if label is EPS:
            builder.add_epsilon(copy_map[v_src], copy_map[v_dst])
        else:
            builder.add_transition(copy_map[v_src], label, copy_map[v_dst])
    for initial in view.initials:
        builder.add_epsilon(source, copy_map[initial])
    for final in view.finals:
        builder.add_epsilon(copy_map[final], target)


def word_expansion_nfa(word: Sequence[Hashable], views: ViewSet) -> NFA:
    """The expansion ``exp_Sigma({word})`` of a single Sigma_E word."""
    for symbol in word:
        if symbol not in views:
            raise KeyError(f"unknown view symbol {symbol!r}")
    if not word:
        return to_nfa(EPSILON, views.base_alphabet())
    return concat_nfa(views.nfa(symbol) for symbol in word)
