"""Result object of the rewriting construction.

Bundles the rewriting automaton ``R_{E,E0}`` with the intermediate artifacts
of the paper's construction (the deterministic ``Ad`` and the Sigma_E
automaton ``A'``) plus size/time statistics, and offers the derived queries
the paper discusses: emptiness, exactness, a regular-expression rendering,
and the expansion automaton ``B``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from ..automata.dfa import DFA
from ..automata.emptiness import enumerate_words, is_empty, shortest_word
from ..automata.nfa import NFA
from ..automata.state_elim import to_regex
from ..regex.ast import Regex
from .alphabet import ViewSet
from .expansion import expansion_nfa

__all__ = ["RewritingResult"]


@dataclass
class RewritingResult:
    """The Sigma_E-maximal rewriting of ``E0`` with respect to ``E``.

    Attributes
    ----------
    automaton:
        ``R_{E,E0}``, a DFA over the view alphabet Sigma_E.
    views:
        The view set ``E`` the rewriting was computed against.
    ad:
        The *total* deterministic automaton for ``L(E0)`` over Sigma
        (step 1 of the construction).
    a_prime:
        The Sigma_E automaton ``A'`` whose complement is the rewriting
        (step 2).
    stats:
        Size and timing figures collected during construction.
    """

    automaton: DFA
    views: ViewSet
    ad: DFA
    a_prime: NFA
    stats: dict[str, float] = field(default_factory=dict)
    _regex: Regex | None = field(default=None, repr=False)
    _expansion: NFA | None = field(default=None, repr=False)

    def accepts(self, word: Sequence[Hashable]) -> bool:
        """Is the Sigma_E word ``word`` part of the rewriting?"""
        return self.automaton.accepts(word)

    def is_empty(self) -> bool:
        """Is the rewriting empty (no Sigma_E word has all expansions in E0)?"""
        return is_empty(self.automaton)

    def shortest_word(self) -> tuple[Hashable, ...] | None:
        """A shortest Sigma_E word of the rewriting, or ``None``."""
        return shortest_word(self.automaton)

    def words(self, max_length: int, max_count: int | None = None):
        """Enumerate Sigma_E words of the rewriting up to ``max_length``."""
        return enumerate_words(self.automaton, max_length, max_count)

    def regex(self) -> Regex:
        """The rewriting as a regular expression over Sigma_E (cached)."""
        if self._regex is None:
            self._regex = to_regex(self.automaton)
        return self._regex

    def expansion(self) -> NFA:
        """The automaton ``B`` for ``exp_Sigma(L(R))`` (cached)."""
        if self._expansion is None:
            self._expansion = expansion_nfa(self.automaton, self.views)
        return self._expansion

    def is_exact(self, method: str = "on_the_fly") -> bool:
        """Is the rewriting exact, i.e. ``exp_Sigma(L(R)) = L(E0)``?"""
        from .exactness import is_exact  # local import avoids a cycle

        return is_exact(self, method=method)

    def __repr__(self) -> str:
        return (
            f"RewritingResult(states={self.automaton.num_states}, "
            f"views={list(self.views.symbols)}, empty={self.is_empty()})"
        )
