"""Batch rewriting: amortize view compilation across many queries.

The ROADMAP's serving scenario rewrites *many* queries against one view
set.  Per query, the expensive inputs that depend only on the views — the
compiled view NFAs, their dense bitmask forms, and (whenever two queries
share a deterministic ``Ad``) the per-view transition relations — are
identical, so :class:`BatchRewriter` computes them once and reuses them:

* the :class:`~repro.core.alphabet.ViewSet` (and its cached view NFAs) is
  built once in the constructor;
* the dense forms of the view automata are precompiled eagerly into the
  kernel's memo (:func:`repro.automata.compiled.cached_view_transition_masks`
  keys relations on the view NFA *identity*, so sharing one ``ViewSet``
  is what makes the memo hit);
* results are memoized per query spec, so repeated queries — the common
  case in a serving workload — cost one dictionary lookup.

:func:`rewrite_many` is the one-shot convenience wrapper, exposed on the
command line as ``repro rewrite --batch``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterable, Mapping, Sequence

from ..automata.compiled import _dense_view
from .alphabet import LanguageSpec, ViewSet
from .containing import ContainingRewriting, existential_rewriting
from .result import RewritingResult
from .rewriter import _as_view_set, maximal_rewriting

__all__ = ["BatchRewriter", "rewrite_many"]


class BatchRewriter:
    """Rewrites a stream of queries against one fixed view set.

    ``max_cached`` bounds the per-query result memos (LRU eviction), so a
    long-lived rewriter serving a stream of distinct queries does not grow
    without bound; results themselves stay valid after eviction, only the
    memoization is lost.
    """

    def __init__(
        self,
        views: ViewSet | Mapping[Hashable, LanguageSpec] | Iterable[LanguageSpec],
        minimize_ad: bool = True,
        minimize_result: bool = True,
        max_cached: int = 1024,
    ):
        self.views = _as_view_set(views)
        self.minimize_ad = minimize_ad
        self.minimize_result = minimize_result
        self.max_cached = max_cached
        # Warm the kernel's dense-view memo so the first query does not pay
        # for view compilation, and so every later relation computation
        # finds the dense forms by identity.
        for symbol in self.views.symbols:
            _dense_view(self.views.nfa(symbol))
        self._results: OrderedDict[Hashable, RewritingResult] = OrderedDict()
        self._existential: OrderedDict[Hashable, ContainingRewriting] = OrderedDict()

    @staticmethod
    def _key(e0: LanguageSpec) -> Hashable:
        """Memo key for a query spec; unhashable specs fall back to identity."""
        try:
            hash(e0)
        except TypeError:
            return id(e0)
        return e0

    def rewrite(self, e0: LanguageSpec) -> RewritingResult:
        """The Sigma_E-maximal rewriting of ``e0`` (memoized per query)."""
        key = self._key(e0)
        result = self._results.get(key)
        if result is None:
            result = maximal_rewriting(
                e0,
                self.views,
                minimize_ad=self.minimize_ad,
                minimize_result=self.minimize_result,
            )
            self._remember(self._results, key, result)
        else:
            self._results.move_to_end(key)
        return result

    def rewrite_existential(self, e0: LanguageSpec) -> ContainingRewriting:
        """The existential (containing-candidate) rewriting of ``e0``.

        Shares the per-(``Ad``, view) relation memo with :meth:`rewrite`:
        asking for both rewritings of one query computes the relations
        once.
        """
        key = self._key(e0)
        result = self._existential.get(key)
        if result is None:
            result = existential_rewriting(e0, self.views)
            self._remember(self._existential, key, result)
        else:
            self._existential.move_to_end(key)
        return result

    def _remember(self, memo: OrderedDict, key: Hashable, value) -> None:
        memo[key] = value
        if len(memo) > self.max_cached:
            memo.popitem(last=False)

    def rewrite_all(self, queries: Iterable[LanguageSpec]) -> list[RewritingResult]:
        return [self.rewrite(e0) for e0 in queries]

    def __repr__(self) -> str:
        return (
            f"BatchRewriter(views={list(self.views.symbols)}, "
            f"cached={len(self._results)})"
        )


def rewrite_many(
    queries: Sequence[LanguageSpec],
    views: ViewSet | Mapping[Hashable, LanguageSpec] | Iterable[LanguageSpec],
    minimize_ad: bool = True,
    minimize_result: bool = True,
) -> list[RewritingResult]:
    """Maximal rewritings of ``queries`` against one shared view set.

    Equivalent to ``[maximal_rewriting(q, views) for q in queries]`` but
    compiles the views once and dedupes repeated queries; the i-th result
    always corresponds to ``queries[i]``.
    """
    rewriter = BatchRewriter(
        views, minimize_ad=minimize_ad, minimize_result=minimize_result
    )
    return rewriter.rewrite_all(queries)
