"""The paper's rewriting construction (Section 2).

Given a regular expression ``E0`` over Sigma and a view set ``E`` with
alphabet Sigma_E, compute the Sigma_E-maximal rewriting ``R_{E,E0}``:

1. Build a *deterministic, total* automaton ``Ad`` with ``L(Ad) = L(E0)``
   (totality matters: a view word that "falls off" a partial automaton must
   land in the explicit dead state so that step 2 records the failure).
2. Build ``A'`` over Sigma_E on the same state set: an ``e``-edge from
   ``s_i`` to ``s_j`` iff some word of ``L(re(e))`` drives ``Ad`` from
   ``s_i`` to ``s_j``; finals of ``A'`` are the *non*-finals of ``Ad``.
   ``A'`` then accepts exactly the Sigma_E words that have *some* expansion
   rejected by ``E0``.
3. The rewriting is the complement of ``A'`` over Sigma_E.

By Theorem 2.2 the result is Sigma_E-maximal, and by Theorem 2.1 also
Sigma-maximal.  Total cost is doubly exponential (Theorem 3.1): one
exponential for determinizing ``E0``, one for complementing ``A'``.
"""

from __future__ import annotations

import time
from typing import Hashable, Iterable, Mapping

from ..automata.determinize import determinize
from ..automata.dfa import DFA
from ..automata.minimize import minimize
from ..automata.nfa import NFA
from ..automata.operations import complement, view_transition_relation
from .alphabet import LanguageSpec, ViewSet, compile_spec
from .result import RewritingResult

__all__ = ["maximal_rewriting", "build_ad", "build_a_prime"]


def maximal_rewriting(
    e0: LanguageSpec,
    views: ViewSet | Mapping[Hashable, LanguageSpec] | Iterable[LanguageSpec],
    minimize_ad: bool = True,
    minimize_result: bool = True,
) -> RewritingResult:
    """Compute the Sigma_E-maximal rewriting of ``e0`` with respect to ``views``.

    Parameters
    ----------
    e0:
        The query: a regex string (paper syntax), a Regex tree, or an
        automaton.
    views:
        A :class:`ViewSet`, a mapping ``{symbol: language}``, or a plain
        iterable of languages (auto-named ``e1..ek``).
    minimize_ad:
        Minimize ``Ad`` before building ``A'`` — sound (any deterministic
        automaton for ``L(E0)`` works) and keeps ``A'`` small.
    minimize_result:
        Minimize the final rewriting DFA, giving canonical output.

    Returns
    -------
    RewritingResult
        The rewriting automaton with all intermediate artifacts and stats.
    """
    views = _as_view_set(views)
    stats: dict[str, float] = {}

    started = time.perf_counter()
    ad = build_ad(e0, views, use_minimize=minimize_ad)
    stats["ad_states"] = ad.num_states
    stats["time_ad"] = time.perf_counter() - started

    started = time.perf_counter()
    a_prime = build_a_prime(ad, views)
    stats["a_prime_transitions"] = a_prime.num_transitions
    stats["time_a_prime"] = time.perf_counter() - started

    started = time.perf_counter()
    rewriting = complement(a_prime, alphabet=views.symbols)
    if minimize_result:
        rewriting = minimize(rewriting, trim=False)
    stats["rewriting_states"] = rewriting.num_states
    stats["time_complement"] = time.perf_counter() - started

    return RewritingResult(
        automaton=rewriting, views=views, ad=ad, a_prime=a_prime, stats=stats
    )


def build_ad(
    e0: LanguageSpec, views: ViewSet, use_minimize: bool = True
) -> DFA:
    """Step 1: a total DFA for ``L(E0)`` over Sigma = symbols(E0) + symbols(E).

    The automaton is completed over the *union* of the query's and the
    views' base alphabets: view words may use symbols that ``E0`` never
    mentions, and those words must be able to reach the dead state rather
    than vanish.
    """
    nfa = compile_spec(e0)
    dfa = determinize(nfa)
    if use_minimize:
        dfa = minimize(dfa)
    sigma = nfa.alphabet | views.base_alphabet()
    if not sigma:
        # Degenerate case: all languages are subsets of {epsilon}.  Give the
        # automaton a throwaway symbol so completion yields a real sink.
        sigma = frozenset({"#dead"})
    return dfa.completed(sigma)


def build_a_prime(ad: DFA, views: ViewSet) -> NFA:
    """Step 2: the Sigma_E automaton ``A'`` on ``Ad``'s states.

    ``A'`` accepts a word ``e1...en`` iff some expansion ``w1...wn`` with
    ``wi in L(re(ei))`` drives ``Ad`` from the initial state to a non-final
    state — i.e. iff the word has an expansion *outside* ``L(E0)``.
    """
    transitions: dict[int, dict[Hashable, set[int]]] = {}
    for symbol in views.symbols:
        relation = view_transition_relation(ad, views.nfa(symbol))
        for source, targets in relation.items():
            if targets:
                transitions.setdefault(source, {})[symbol] = set(targets)
    return NFA(
        states=ad.states,
        alphabet=views.symbols,
        transitions=transitions,
        initials={ad.initial},
        finals=ad.states - ad.finals,
    )


def _as_view_set(
    views: ViewSet | Mapping[Hashable, LanguageSpec] | Iterable[LanguageSpec],
) -> ViewSet:
    if isinstance(views, ViewSet):
        return views
    if isinstance(views, Mapping):
        return ViewSet(views)
    return ViewSet.from_list(list(views))
