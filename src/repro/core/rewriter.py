"""The paper's rewriting construction (Section 2).

Given a regular expression ``E0`` over Sigma and a view set ``E`` with
alphabet Sigma_E, compute the Sigma_E-maximal rewriting ``R_{E,E0}``:

1. Build a *deterministic, total* automaton ``Ad`` with ``L(Ad) = L(E0)``
   (totality matters: a view word that "falls off" a partial automaton must
   land in the explicit dead state so that step 2 records the failure).
2. Build ``A'`` over Sigma_E on the same state set: an ``e``-edge from
   ``s_i`` to ``s_j`` iff some word of ``L(re(e))`` drives ``Ad`` from
   ``s_i`` to ``s_j``; finals of ``A'`` are the *non*-finals of ``Ad``.
   ``A'`` then accepts exactly the Sigma_E words that have *some* expansion
   rejected by ``E0``.
3. The rewriting is the complement of ``A'`` over Sigma_E.

By Theorem 2.2 the result is Sigma_E-maximal, and by Theorem 2.1 also
Sigma-maximal.  Total cost is doubly exponential (Theorem 3.1): one
exponential for determinizing ``E0``, one for complementing ``A'``.

Two implementations live side by side (mirroring the RPQ engine's
pattern):

* the **compiled pipeline** — the default behind :func:`maximal_rewriting`
  — runs on the dense bitmask kernel of :mod:`repro.automata.compiled`:
  bitset subset construction for ``Ad``, the all-sources product BFS of
  :func:`~repro.automata.compiled.view_transition_masks` for the ``A'``
  edges (memoized per (``Ad``, view), shared with
  :func:`~repro.core.containing.existential_rewriting`), and step 3 fused
  into one complemented subset sweep plus dense Hopcroft that never
  materializes the intermediate NFA;
* the **naive oracle** — :func:`naive_maximal_rewriting` and the
  ``naive_``-prefixed step functions — is the original dict-of-set
  transcription, retained for differential testing
  (``tests/core/test_rewriter_differential.py``) and benchmarked against
  in ``benchmarks/bench_thm31_rewriting_scaling.py``.
"""

from __future__ import annotations

import time
from typing import Hashable, Iterable, Mapping

from ..automata.compiled import (
    DENSE_MINIMIZE_LIMIT,
    DenseDFA,
    cached_view_transition_masks,
    dense_from_dfa,
    determinize_dense,
    iter_bits,
    minimize_dense,
    rewrite_sweep,
)
from ..automata.determinize import determinize
from ..automata.dfa import DFA
from ..automata.minimize import minimize
from ..automata.nfa import NFA
from ..automata.operations import complement, view_transition_relation
from .alphabet import LanguageSpec, ViewSet, compile_spec
from .result import RewritingResult

__all__ = [
    "maximal_rewriting",
    "naive_maximal_rewriting",
    "build_ad",
    "naive_build_ad",
    "build_a_prime",
    "naive_build_a_prime",
    "sigma_e_automaton",
]


def maximal_rewriting(
    e0: LanguageSpec,
    views: ViewSet | Mapping[Hashable, LanguageSpec] | Iterable[LanguageSpec],
    minimize_ad: bool = True,
    minimize_result: bool = True,
) -> RewritingResult:
    """Compute the Sigma_E-maximal rewriting of ``e0`` with respect to ``views``.

    This is the compiled pipeline; :func:`naive_maximal_rewriting` is the
    retained reference implementation and must agree on every instance.

    Parameters
    ----------
    e0:
        The query: a regex string (paper syntax), a Regex tree, or an
        automaton.
    views:
        A :class:`ViewSet`, a mapping ``{symbol: language}``, or a plain
        iterable of languages (auto-named ``e1..ek``).
    minimize_ad:
        Minimize ``Ad`` before building ``A'`` — sound (any deterministic
        automaton for ``L(E0)`` works) and keeps ``A'`` small.
    minimize_result:
        Minimize the final rewriting DFA, giving canonical output.

    Returns
    -------
    RewritingResult
        The rewriting automaton with all intermediate artifacts and stats.
    """
    views = _as_view_set(views)
    stats: dict[str, float] = {}

    started = time.perf_counter()
    ad, dense_ad = _build_ad_dense(e0, views, use_minimize=minimize_ad)
    stats["ad_states"] = ad.num_states
    stats["time_ad"] = time.perf_counter() - started

    started = time.perf_counter()
    ad_key = _relation_key(dense_ad)
    relations = [
        cached_view_transition_masks(dense_ad, views.nfa(symbol), ad_key)
        for symbol in views.symbols
    ]
    a_prime = _masks_to_nfa(relations, ad, views, finals=ad.states - ad.finals)
    stats["a_prime_transitions"] = a_prime.num_transitions
    stats["time_a_prime"] = time.perf_counter() - started

    started = time.perf_counter()
    dense_rewriting = rewrite_sweep(
        relations, dense_ad, views.symbols, minimize_result=minimize_result
    )
    rewriting = dense_rewriting.to_dfa()
    stats["rewriting_states"] = rewriting.num_states
    stats["time_complement"] = time.perf_counter() - started

    return RewritingResult(
        automaton=rewriting, views=views, ad=ad, a_prime=a_prime, stats=stats
    )


def naive_maximal_rewriting(
    e0: LanguageSpec,
    views: ViewSet | Mapping[Hashable, LanguageSpec] | Iterable[LanguageSpec],
    minimize_ad: bool = True,
    minimize_result: bool = True,
) -> RewritingResult:
    """The original dict-of-set construction — the differential oracle."""
    views = _as_view_set(views)
    stats: dict[str, float] = {}

    started = time.perf_counter()
    ad = naive_build_ad(e0, views, use_minimize=minimize_ad)
    stats["ad_states"] = ad.num_states
    stats["time_ad"] = time.perf_counter() - started

    started = time.perf_counter()
    a_prime = naive_build_a_prime(ad, views)
    stats["a_prime_transitions"] = a_prime.num_transitions
    stats["time_a_prime"] = time.perf_counter() - started

    started = time.perf_counter()
    rewriting = complement(a_prime, alphabet=views.symbols)
    if minimize_result:
        rewriting = minimize(rewriting, trim=False)
    stats["rewriting_states"] = rewriting.num_states
    stats["time_complement"] = time.perf_counter() - started

    return RewritingResult(
        automaton=rewriting, views=views, ad=ad, a_prime=a_prime, stats=stats
    )


def build_ad(
    e0: LanguageSpec, views: ViewSet, use_minimize: bool = True
) -> DFA:
    """Step 1: a total DFA for ``L(E0)`` over Sigma = symbols(E0) + symbols(E).

    The automaton is completed over the *union* of the query's and the
    views' base alphabets: view words may use symbols that ``E0`` never
    mentions, and those words must be able to reach the dead state rather
    than vanish.  Runs on the dense kernel; :func:`naive_build_ad` is the
    dict-based original.
    """
    ad, _dense = _build_ad_dense(e0, views, use_minimize=use_minimize)
    return ad


def _build_ad_dense(
    e0: LanguageSpec, views: ViewSet, use_minimize: bool
) -> tuple[DFA, DenseDFA]:
    """Build ``Ad`` once, returning both the public DFA and its dense form.

    The two share the ``0..n-1`` state numbering, so relation masks
    computed on the dense form index directly into the DFA's states.
    """
    nfa = compile_spec(e0)
    sigma = nfa.alphabet | views.base_alphabet()
    if not sigma:
        # Degenerate case: all languages are subsets of {epsilon}.  Give the
        # automaton a throwaway symbol so completion yields a real sink.
        sigma = frozenset({"#dead"})
    symbols = tuple(sorted(sigma, key=repr))
    dense = determinize_dense(nfa, symbols)
    if use_minimize:
        dense = minimize_dense(dense)
    return dense.to_dfa(), dense


def naive_build_ad(
    e0: LanguageSpec, views: ViewSet, use_minimize: bool = True
) -> DFA:
    """The original step 1 (reference oracle): ``Ad`` via classic subset
    construction, optional Hopcroft minimization, then completion over
    ``Sigma union Sigma_E``-relevant base symbols.  Kept as the
    dict-of-sets transcription that :func:`build_ad` (the dense bitmask
    fast path) is differentially tested against."""
    nfa = compile_spec(e0)
    dfa = determinize(nfa)
    if use_minimize:
        dfa = minimize(dfa)
    sigma = nfa.alphabet | views.base_alphabet()
    if not sigma:
        sigma = frozenset({"#dead"})
    return dfa.completed(sigma)


def sigma_e_automaton(
    ad: DFA,
    views: ViewSet | Mapping[Hashable, NFA],
    finals: Iterable[int],
) -> NFA:
    """The Sigma_E automaton on ``Ad``'s states with the given final set.

    This is the shared step-2 core: an ``e``-edge ``s_i -> s_j`` iff some
    word of ``L(re(e))`` drives ``Ad`` from ``s_i`` to ``s_j``.  With
    ``finals = Ad's non-finals`` it is the paper's ``A'``
    (:func:`build_a_prime`); with ``finals = Ad's finals`` it is the
    existential rewriting automaton of
    :func:`~repro.core.containing.existential_rewriting`; the grounded
    Section 4.2 construction passes its per-symbol view automata as a
    plain mapping.  The edge relation runs on the compiled kernel and is
    memoized per (``Ad``, view), so all callers share one computation.
    """
    if not ad.is_total():
        raise ValueError("sigma_e_automaton requires a total DFA")
    if isinstance(views, ViewSet):
        view_nfas: Mapping[Hashable, NFA] = {
            symbol: views.nfa(symbol) for symbol in views.symbols
        }
    else:
        view_nfas = views
    dense_ad, state_at = dense_from_dfa(ad)
    ad_key = _relation_key(dense_ad)
    transitions: dict[int, dict[Hashable, set[int]]] = {}
    for symbol, view_nfa in view_nfas.items():
        relation = cached_view_transition_masks(dense_ad, view_nfa, ad_key)
        for index, mask in enumerate(relation):
            if mask:
                transitions.setdefault(state_at[index], {})[symbol] = {
                    state_at[j] for j in iter_bits(mask)
                }
    return NFA(
        states=ad.states,
        alphabet=tuple(view_nfas),
        transitions=transitions,
        initials={ad.initial},
        finals=finals,
    )


def build_a_prime(ad: DFA, views: ViewSet) -> NFA:
    """Step 2: the Sigma_E automaton ``A'`` on ``Ad``'s states.

    ``A'`` accepts a word ``e1...en`` iff some expansion ``w1...wn`` with
    ``wi in L(re(ei))`` drives ``Ad`` from the initial state to a non-final
    state — i.e. iff the word has an expansion *outside* ``L(E0)``.
    """
    return sigma_e_automaton(ad, views, finals=ad.states - ad.finals)


def naive_build_a_prime(ad: DFA, views: ViewSet) -> NFA:
    """The original step 2 (reference oracle): build ``A'`` by running one
    per-source product BFS per view to find every ``Ad``-state pair some
    view word connects.  The fast path (:func:`build_a_prime`) computes
    the same relation with one all-sources bitmask sweep per view; the
    differential tests require both to emit language-equal automata."""
    transitions: dict[int, dict[Hashable, set[int]]] = {}
    for symbol in views.symbols:
        relation = view_transition_relation(ad, views.nfa(symbol))
        for source, targets in relation.items():
            if targets:
                transitions.setdefault(source, {})[symbol] = set(targets)
    return NFA(
        states=ad.states,
        alphabet=views.symbols,
        transitions=transitions,
        initials={ad.initial},
        finals=ad.states - ad.finals,
    )


def _relation_key(dense_ad: DenseDFA) -> tuple | None:
    """The relation-cache fingerprint, or ``None`` for huge automata.

    Above the dense limit the cache is bypassed anyway (see
    :func:`~repro.automata.compiled.cached_view_transition_masks`), so
    building the O(n * |Sigma|) fingerprint would be pure waste.
    """
    if dense_ad.num_states > DENSE_MINIMIZE_LIMIT:
        return None
    return dense_ad.key()


def _masks_to_nfa(
    relations: list[tuple[int, ...]],
    ad: DFA,
    views: ViewSet,
    finals: Iterable[int],
) -> NFA:
    """Materialize a Sigma_E NFA from relation masks (identity numbering)."""
    transitions: dict[int, dict[Hashable, set[int]]] = {}
    for symbol, relation in zip(views.symbols, relations):
        for source, mask in enumerate(relation):
            if mask:
                transitions.setdefault(source, {})[symbol] = set(iter_bits(mask))
    return NFA(
        states=ad.states,
        alphabet=views.symbols,
        transitions=transitions,
        initials={ad.initial},
        finals=finals,
    )


def _as_view_set(
    views: ViewSet | Mapping[Hashable, LanguageSpec] | Iterable[LanguageSpec],
) -> ViewSet:
    if isinstance(views, ViewSet):
        return views
    if isinstance(views, Mapping):
        return ViewSet(views)
    return ViewSet.from_list(list(views))
