"""The paper's core contribution: view-based rewriting of regular expressions.

Public entry points:

* :func:`maximal_rewriting` — Section 2's construction of the
  Sigma_E-maximal rewriting ``R_{E,E0}`` (Theorem 2.2).
* :func:`is_exact` / :func:`exactness_counterexample` — Theorem 2.3's
  exactness check, with the paper's on-the-fly 2EXPSPACE variant.
* :func:`has_nonempty_rewriting` — the EXPSPACE non-emptiness test
  underlying Theorem 3.3.
* :func:`find_partial_rewritings` and the Section 4.3 preference criteria.
"""

from .alphabet import LanguageSpec, ViewSet, compile_spec
from .batch import BatchRewriter, rewrite_many
from .containing import (
    ContainingRewriting,
    existential_rewriting,
    naive_existential_rewriting,
)
from .emptiness import has_nonempty_rewriting, nonempty_rewriting_witness
from .exactness import exactness_counterexample, is_exact
from .expansion import expansion_nfa, word_expansion_nfa
from .maximality import (
    brute_force_rewriting_words,
    expansions_equivalent,
    is_rewriting,
    verify_bounded_maximality,
    word_expansion_contained,
)
from .partial import PartialRewriting, elementary_symbol_name, find_partial_rewritings
from .preferences import (
    RewritingCandidate,
    best_candidates,
    compare_candidates,
    sort_candidates,
)
from .result import RewritingResult
from .rewriter import (
    build_a_prime,
    build_ad,
    maximal_rewriting,
    naive_build_a_prime,
    naive_build_ad,
    naive_maximal_rewriting,
    sigma_e_automaton,
)

__all__ = [
    "ViewSet",
    "LanguageSpec",
    "compile_spec",
    "BatchRewriter",
    "rewrite_many",
    "ContainingRewriting",
    "existential_rewriting",
    "naive_existential_rewriting",
    "maximal_rewriting",
    "naive_maximal_rewriting",
    "build_ad",
    "naive_build_ad",
    "build_a_prime",
    "naive_build_a_prime",
    "sigma_e_automaton",
    "RewritingResult",
    "is_exact",
    "exactness_counterexample",
    "has_nonempty_rewriting",
    "nonempty_rewriting_witness",
    "expansion_nfa",
    "word_expansion_nfa",
    "is_rewriting",
    "word_expansion_contained",
    "expansions_equivalent",
    "brute_force_rewriting_words",
    "verify_bounded_maximality",
    "PartialRewriting",
    "find_partial_rewritings",
    "elementary_symbol_name",
    "RewritingCandidate",
    "compare_candidates",
    "best_candidates",
    "sort_candidates",
]
