"""Preference criteria over (partial) rewritings (Section 4.3).

The paper orders candidate rewritings lexicographically:

1. a rewriting whose expansion strictly contains another's is preferable
   (more of the query is captured);
2. among expansion-equivalent rewritings, fewer *additional atomic* views
   are preferable (materializing a new view is costly);
3. then fewer additional atomic *non-elementary* views (non-elementary
   ones are costlier still);
4. then fewer views *used* overall (each view used has a query cost).

"Used" views are those whose symbols actually occur in some word of the
rewriting language, i.e. label a transition of the trimmed automaton.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Hashable

from ..automata.containment import is_contained
from .expansion import expansion_nfa
from .result import RewritingResult

__all__ = ["RewritingCandidate", "compare_candidates", "best_candidates"]


@dataclass(frozen=True)
class RewritingCandidate:
    """A rewriting plus the bookkeeping the preference criteria need.

    ``added_elementary`` / ``added_nonelementary`` record which *additional*
    atomic views (beyond the original view set) the candidate relies on.
    """

    result: RewritingResult
    added_elementary: frozenset[Hashable] = field(default_factory=frozenset)
    added_nonelementary: frozenset[Hashable] = field(default_factory=frozenset)

    @property
    def num_added(self) -> int:
        return len(self.added_elementary) + len(self.added_nonelementary)

    def used_views(self) -> frozenset[Hashable]:
        """View symbols occurring in some word of the rewriting."""
        trimmed = self.result.automaton.trimmed()
        return frozenset(label for _s, label, _d in trimmed.iter_transitions())


def compare_candidates(left: RewritingCandidate, right: RewritingCandidate) -> int:
    """Three-way comparison: negative iff ``left`` is preferable.

    Implements criteria 1–4 in order; returns 0 for candidates the criteria
    cannot distinguish.
    """
    left_exp = expansion_nfa(left.result.automaton, left.result.views)
    right_exp = expansion_nfa(right.result.automaton, right.result.views)
    left_in_right = is_contained(left_exp, right_exp)
    right_in_left = is_contained(right_exp, left_exp)
    # Criterion 1: strictly larger expansion wins.
    if right_in_left and not left_in_right:
        return -1
    if left_in_right and not right_in_left:
        return 1
    if not (left_in_right and right_in_left):
        return 0  # incomparable languages: no preference
    # Criterion 2: fewer additional atomic views.
    if left.num_added != right.num_added:
        return left.num_added - right.num_added
    # Criterion 3: fewer additional non-elementary atomic views.
    if len(left.added_nonelementary) != len(right.added_nonelementary):
        return len(left.added_nonelementary) - len(right.added_nonelementary)
    # Criterion 4: fewer views used.
    return len(left.used_views()) - len(right.used_views())


def best_candidates(candidates: list[RewritingCandidate]) -> list[RewritingCandidate]:
    """The maximal elements of the preference order (often a singleton)."""
    if not candidates:
        return []
    best: list[RewritingCandidate] = []
    for candidate in candidates:
        dominated = False
        for other in candidates:
            if other is candidate:
                continue
            if compare_candidates(other, candidate) < 0:
                dominated = True
                break
        if not dominated:
            best.append(candidate)
    return best


def sort_candidates(candidates: list[RewritingCandidate]) -> list[RewritingCandidate]:
    """Sort candidates best-first under the Section 4.3 preference order
    (largest expansion, then fewest added atomic views, then fewest
    non-elementary additions, then fewest views used), keeping the input
    order of incomparable pairs — the partial-rewriting search relies on
    this stability when presenting alternatives."""
    return sorted(candidates, key=functools.cmp_to_key(compare_candidates))
