"""Diagnostics: explain membership verdicts of the rewriting.

When a Sigma_E word is *not* in the maximal rewriting, Theorem 2.2 says
some expansion of it escapes ``L(E0)``.  These helpers extract such a
witness (and the dual: a sample expansion inside ``L(E0)`` for accepted
words), which the examples and the CLI use to make verdicts inspectable,
and which double as a strong test oracle: the witness itself certifies the
verdict independently of the construction.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from ..automata.containment import containment_counterexample
from ..automata.emptiness import shortest_word
from ..automata.operations import intersect_nfa
from .expansion import word_expansion_nfa
from .result import RewritingResult

__all__ = ["explain_rejection", "sample_expansion", "explain"]


def explain_rejection(
    result: RewritingResult, word: Sequence[Hashable]
) -> tuple[Hashable, ...] | None:
    """A shortest expansion of ``word`` outside ``L(E0)``, or ``None``.

    By Theorem 2.2, the result is ``None`` exactly when ``word`` belongs
    to the maximal rewriting.
    """
    expansion = word_expansion_nfa(word, result.views)
    return containment_counterexample(expansion, result.ad)


def sample_expansion(
    result: RewritingResult, word: Sequence[Hashable]
) -> tuple[Hashable, ...] | None:
    """A shortest expansion of ``word`` inside ``L(E0)``, or ``None``.

    ``None`` means no expansion intersects the query at all (the word is
    useless even under existential semantics).
    """
    expansion = word_expansion_nfa(word, result.views)
    return shortest_word(intersect_nfa(expansion, result.ad.to_nfa()))


def explain(result: RewritingResult, word: Sequence[Hashable]) -> str:
    """A human-readable verdict for ``word`` with a witness."""
    rendered = ".".join(map(str, word)) or "(empty word)"
    bad = explain_rejection(result, word)
    if bad is None:
        good = sample_expansion(result, word)
        sample = (
            "".join(map(str, good))
            if good is not None
            else "(empty language — vacuously contained)"
        )
        return (
            f"{rendered} IS in the rewriting: every expansion lies in "
            f"L(E0); e.g. {sample or '(empty word)'}"
        )
    return (
        f"{rendered} is NOT in the rewriting: the expansion "
        f"{''.join(map(str, bad)) or '(empty word)'} escapes L(E0)"
    )
