"""Containing rewritings — the dual problem from the paper's Section 5.

The paper computes *maximally contained* rewritings (all expansions inside
``L(E0)``) and names the dual as a research direction: *minimal containing*
rewritings, which "guarantee to provide all the answers of the original
query, and possibly more" and are in general not unique.

This module implements the canonical member of that family, the
*existential* rewriting

    R-exists = { w over Sigma_E | exp({w}) intersects L(E0) }

— the set of view words that can contribute at least one query answer.  It
is the largest language that is *useful* for covering ``L(E0)``, and it is
a containing rewriting exactly when the views can cover the query at all
(:func:`covers`); in that case every containing rewriting is a sublanguage
of it that still covers ``L(E0)``, so ``R-exists`` is the unique maximal
one and minimal ones are its covering sublanguages.

The construction mirrors ``A'`` from Section 2 but keeps ``Ad``'s final
states: an ``e``-edge ``s_i -> s_j`` iff some word of ``L(re(e))`` drives
``Ad`` from ``s_i`` to ``s_j``, and a Sigma_E word is accepted iff *some*
expansion is accepted by ``Ad``.  No complementation is needed, so —
unlike the contained rewriting — the whole computation is single
exponential.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping, Sequence

from ..automata.containment import containment_counterexample, is_contained
from ..automata.emptiness import enumerate_words, is_empty, shortest_word
from ..automata.nfa import NFA
from ..automata.state_elim import to_regex
from ..regex.ast import Regex
from .alphabet import LanguageSpec, ViewSet
from .expansion import expansion_nfa
from .rewriter import _as_view_set, build_ad, naive_build_ad, sigma_e_automaton

__all__ = [
    "ContainingRewriting",
    "existential_rewriting",
    "naive_existential_rewriting",
]


@dataclass
class ContainingRewriting:
    """The existential rewriting of ``E0`` wrt a view set: the Sigma_E
    words *some* expansion of which lies in ``L(E0)`` (the candidate
    superset of every rewriting; Section 5's containing rewriting).  Its
    complement-free construction shares the per-(``Ad``, view) transition
    relations with :func:`maximal_rewriting` via the kernel's cache."""

    automaton: NFA
    views: ViewSet
    ad: "object"  # DFA; typed loosely to avoid an import cycle in docs
    _regex: Regex | None = field(default=None, repr=False)
    _expansion: NFA | None = field(default=None, repr=False)

    def accepts(self, word: Sequence[Hashable]) -> bool:
        """Does ``word`` have at least one expansion inside ``L(E0)``?"""
        return self.automaton.accepts(word)

    def is_empty(self) -> bool:
        return is_empty(self.automaton)

    def shortest_word(self) -> tuple[Hashable, ...] | None:
        return shortest_word(self.automaton)

    def words(self, max_length: int, max_count: int | None = None):
        return enumerate_words(self.automaton, max_length, max_count)

    def regex(self) -> Regex:
        if self._regex is None:
            self._regex = to_regex(self.automaton)
        return self._regex

    def expansion(self) -> NFA:
        """Automaton for ``exp_Sigma(L(R-exists))`` (cached)."""
        if self._expansion is None:
            self._expansion = expansion_nfa(self.automaton, self.views)
        return self._expansion

    def covers(self) -> bool:
        """Is this a containing rewriting, i.e. ``exp(L(R)) ⊇ L(E0)``?

        When false, *no* containing rewriting exists: some query word is
        not a factor of any expansion the views can produce.
        """
        return is_contained(self.ad, self.expansion())

    def coverage_counterexample(self) -> tuple[Hashable, ...] | None:
        """A query word no view combination can produce, or ``None``."""
        return containment_counterexample(self.ad, self.expansion())


def existential_rewriting(
    e0: LanguageSpec,
    views: ViewSet | Mapping[Hashable, LanguageSpec] | Iterable[LanguageSpec],
) -> ContainingRewriting:
    """Compute the existential (maximal containing-candidate) rewriting.

    Single-exponential: determinize ``E0`` (step 1 of the paper's
    construction), then build the Sigma_E automaton with ``Ad``'s finals —
    no complement.  The edge relation is the same one ``A'`` uses, so it
    comes from the shared (and memoized) compiled
    :func:`~repro.core.rewriter.sigma_e_automaton`: computing the maximal
    and the existential rewriting of the same query costs the relation
    only once.
    """
    views = _as_view_set(views)
    ad = build_ad(e0, views)
    automaton = sigma_e_automaton(ad, views, finals=ad.finals).trimmed()
    return ContainingRewriting(automaton=automaton, views=views, ad=ad)


def naive_existential_rewriting(
    e0: LanguageSpec,
    views: ViewSet | Mapping[Hashable, LanguageSpec] | Iterable[LanguageSpec],
) -> ContainingRewriting:
    """The original dict-of-set construction — the differential oracle."""
    views = _as_view_set(views)
    ad = naive_build_ad(e0, views)
    from ..automata.operations import view_transition_relation

    transitions: dict[int, dict[Hashable, set[int]]] = {}
    for symbol in views.symbols:
        relation = view_transition_relation(ad, views.nfa(symbol))
        for source, targets in relation.items():
            if targets:
                transitions.setdefault(source, {})[symbol] = set(targets)
    automaton = NFA(
        states=ad.states,
        alphabet=views.symbols,
        transitions=transitions,
        initials={ad.initial},
        finals=ad.finals,
    ).trimmed()
    return ContainingRewriting(automaton=automaton, views=views, ad=ad)
