"""Non-emptiness of the maximal rewriting (Theorem 3.3 upper bound).

Deciding whether *some* non-empty rewriting exists does not require the
doubly-exponential complement of ``A'`` to be materialized: the complement
accepts a word iff the lazy subset construction of ``A'`` reaches a subset
containing no ``A'``-final state (equivalently, a subset of ``Ad``-final
states — including the empty subset, which arises when a view language is
empty and therefore expands to the empty language, trivially contained in
``L(E0)``).  Searching the subset space with early exit gives the paper's
EXPSPACE upper bound.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Mapping

from ..automata.nfa import NFA
from .alphabet import LanguageSpec, ViewSet
from .rewriter import _as_view_set, build_a_prime, build_ad

__all__ = ["has_nonempty_rewriting", "nonempty_rewriting_witness"]


def has_nonempty_rewriting(
    e0: LanguageSpec,
    views: ViewSet | Mapping[Hashable, LanguageSpec] | Iterable[LanguageSpec],
) -> bool:
    """Is the Sigma_E-maximal rewriting of ``e0`` wrt ``views`` non-empty?"""
    return nonempty_rewriting_witness(e0, views) is not None


def nonempty_rewriting_witness(
    e0: LanguageSpec,
    views: ViewSet | Mapping[Hashable, LanguageSpec] | Iterable[LanguageSpec],
) -> tuple[Hashable, ...] | None:
    """A shortest Sigma_E word of the maximal rewriting, or ``None``.

    Explores the determinization of ``A'`` lazily, stopping at the first
    subset free of ``A'``-final states (such a subset is an accepting state
    of the complement, i.e. of the rewriting).
    """
    views = _as_view_set(views)
    ad = build_ad(e0, views)
    a_prime = build_a_prime(ad, views)
    return _first_rejecting_subset_word(a_prime, views.symbols)


def _first_rejecting_subset_word(
    a_prime: NFA, sigma_e: tuple[Hashable, ...]
) -> tuple[Hashable, ...] | None:
    """BFS over lazy subsets of ``A'`` for one disjoint from its finals."""
    start = frozenset(a_prime.initials)
    if not start & a_prime.finals:
        return ()
    seen: set[frozenset[int]] = {start}
    queue: deque[tuple[frozenset[int], tuple[Hashable, ...]]] = deque([(start, ())])
    while queue:
        subset, word = queue.popleft()
        for symbol in sigma_e:
            moved: set[int] = set()
            for state in subset:
                moved.update(a_prime.successors(state, symbol))
            target = frozenset(moved)
            if target in seen:
                continue
            extended = word + (symbol,)
            if not target & a_prime.finals:
                return extended
            seen.add(target)
            queue.append((target, extended))
    return None
