"""View sets and the view alphabet Sigma_E.

Section 2 of the paper associates with a set ``E = {E1, ..., Ek}`` of regular
expressions an alphabet ``Sigma_E`` containing exactly one symbol per
expression, written ``re(e)`` for the expression associated with symbol
``e``.  :class:`ViewSet` is that association: an ordered, immutable mapping
from view symbols to view languages, with cached compiled automata.

View symbols are strings by convention (``e1``, ``e2``, ...), but any
hashable symbol is accepted; view languages may be given as regex strings,
:class:`~repro.regex.ast.Regex` trees, or automata.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping, Union

from ..automata.dfa import DFA
from ..automata.nfa import NFA
from ..automata.thompson import to_nfa
from ..regex.ast import Regex
from ..regex.parser import parse

__all__ = ["ViewSet", "LanguageSpec", "compile_spec"]

LanguageSpec = Union[str, Regex, NFA, DFA]


def compile_spec(spec: LanguageSpec) -> NFA:
    """Compile a language specification (string/regex/automaton) to an NFA."""
    if isinstance(spec, str):
        return to_nfa(parse(spec))
    if isinstance(spec, Regex):
        return to_nfa(spec)
    if isinstance(spec, NFA):
        return spec
    if isinstance(spec, DFA):
        return spec.to_nfa()
    raise TypeError(f"cannot compile {type(spec).__name__} into an automaton")


class ViewSet:
    """The paper's ``E`` together with its alphabet ``Sigma_E``.

    Iteration order is the insertion order of the views, which also fixes
    default symbol names ``e1..ek`` when :meth:`from_list` is used.
    """

    def __init__(self, views: Mapping[Hashable, LanguageSpec]):
        if not views:
            raise ValueError("a ViewSet needs at least one view")
        self._exprs: dict[Hashable, Regex | None] = {}
        self._nfas: dict[Hashable, NFA] = {}
        for symbol, spec in views.items():
            if isinstance(spec, str):
                spec = parse(spec)
            self._exprs[symbol] = spec if isinstance(spec, Regex) else None
            self._nfas[symbol] = compile_spec(spec)

    @classmethod
    def from_list(
        cls, specs: Iterable[LanguageSpec], prefix: str = "e"
    ) -> "ViewSet":
        """Build a view set with auto-generated symbols ``e1, e2, ...``."""
        views = {f"{prefix}{i + 1}": spec for i, spec in enumerate(specs)}
        return cls(views)

    @property
    def symbols(self) -> tuple[Hashable, ...]:
        """The alphabet Sigma_E, in insertion order."""
        return tuple(self._nfas)

    def __len__(self) -> int:
        return len(self._nfas)

    def __contains__(self, symbol: Hashable) -> bool:
        return symbol in self._nfas

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._nfas)

    def re(self, symbol: Hashable) -> Regex:
        """The regular expression ``re(symbol)`` (paper's notation).

        Raises ``KeyError`` for unknown symbols and ``ValueError`` when the
        view was supplied as a bare automaton (no syntax is available —
        use :meth:`nfa` instead, or convert with ``automata.to_regex``).
        """
        expr = self._exprs[symbol]
        if expr is None:
            raise ValueError(
                f"view {symbol!r} was defined by an automaton, not an expression"
            )
        return expr

    def nfa(self, symbol: Hashable) -> NFA:
        """The compiled automaton for ``re(symbol)``."""
        return self._nfas[symbol]

    def base_alphabet(self) -> frozenset[Hashable]:
        """The base alphabet Sigma: all symbols used by the view languages."""
        sigma: set[Hashable] = set()
        for nfa in self._nfas.values():
            sigma |= nfa.alphabet
        return frozenset(sigma)

    def extended(self, extra: Mapping[Hashable, LanguageSpec]) -> "ViewSet":
        """A new view set with additional views appended (for Section 4.3)."""
        merged: dict[Hashable, LanguageSpec] = {}
        for symbol in self._nfas:
            expr = self._exprs[symbol]
            merged[symbol] = expr if expr is not None else self._nfas[symbol]
        for symbol, spec in extra.items():
            if symbol in merged:
                raise ValueError(f"view symbol {symbol!r} already present")
            merged[symbol] = spec
        return ViewSet(merged)

    def __repr__(self) -> str:
        names = ", ".join(map(str, self.symbols))
        return f"ViewSet({names})"
