"""Exactness of rewritings (Section 2, Theorem 2.3 / Corollary 2.1).

A rewriting ``R`` is *exact* when ``exp_Sigma(L(R)) = L(E0)``.  Since the
construction guarantees ``exp_Sigma(L(R)) subseteq L(E0)``, exactness reduces
to the reverse containment ``L(Ad) subseteq L(B)``, where ``B`` is the
expansion automaton of ``R`` — equivalently, emptiness of
``L(Ad intersect complement(B))``.

Two implementations are provided and benchmarked against each other:

* ``method="on_the_fly"`` — the paper's 2EXPSPACE algorithm (Theorem 3.2):
  ``complement(B)`` is never materialized; the product is explored with a
  lazy subset construction keeping only the frontier in memory.
* ``method="explicit"`` — determinize and complement ``B`` eagerly, then
  intersect: the naive 3EXPTIME route the paper explicitly warns about.
"""

from __future__ import annotations

from typing import Hashable

from ..automata.containment import containment_counterexample, is_contained
from ..automata.determinize import determinize
from ..automata.emptiness import is_empty
from ..automata.operations import difference_dfa
from .result import RewritingResult

__all__ = ["is_exact", "exactness_counterexample", "METHODS"]

METHODS = ("on_the_fly", "explicit")


def is_exact(result: RewritingResult, method: str = "on_the_fly") -> bool:
    """Decide whether the computed rewriting is exact (Corollary 2.1)."""
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")
    expansion = result.expansion()
    if method == "on_the_fly":
        return is_contained(result.ad, expansion)
    expansion_dfa = determinize(expansion)
    return is_empty(difference_dfa(result.ad, expansion_dfa))


def exactness_counterexample(
    result: RewritingResult,
) -> tuple[Hashable, ...] | None:
    """A shortest Sigma word of ``L(E0)`` missed by the rewriting's expansion.

    Returns ``None`` when the rewriting is exact.  This is the witness of
    ``L(Ad intersect complement(B))`` being non-empty, useful in examples
    and when choosing additional views for a partial rewriting (Section 4.3).
    """
    return containment_counterexample(result.ad, result.expansion())
