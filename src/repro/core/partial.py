"""Partial rewritings (Section 4.3, specialized to regular expressions).

When the maximal rewriting of ``E0`` wrt ``E`` is not exact, the paper
proposes *partial* rewritings: extend ``E`` with additional atomic views —
in the plain regular-expression setting these are the *elementary* views,
one per base symbol ``a`` (the language ``{a}``) — so that the rewriting of
``E0`` wrt the extended set ``E+`` becomes exact.  Choosing the set of all
elementary views always succeeds, so the interesting problem is finding
*minimal* extensions, which this module enumerates in order of size.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Hashable, Iterable, Mapping

from ..regex.ast import sym
from .alphabet import LanguageSpec, ViewSet
from .rewriter import _as_view_set, maximal_rewriting
from .result import RewritingResult

__all__ = ["PartialRewriting", "find_partial_rewritings", "elementary_symbol_name"]


def elementary_symbol_name(symbol: Hashable) -> str:
    """The Sigma_E name given to the elementary view for base symbol ``a``."""
    return f"q[{symbol}]"


@dataclass(frozen=True)
class PartialRewriting:
    """An exact rewriting of ``E0`` wrt ``E`` extended with atomic views.

    ``added`` lists the base symbols whose elementary views were adjoined;
    ``result`` is the (exact) rewriting over the extended alphabet.
    """

    added: tuple[Hashable, ...]
    result: RewritingResult

    @property
    def num_added(self) -> int:
        return len(self.added)


def find_partial_rewritings(
    e0: LanguageSpec,
    views: ViewSet | Mapping[Hashable, LanguageSpec] | Iterable[LanguageSpec],
    candidates: Iterable[Hashable] | None = None,
    max_added: int | None = None,
    find_all_minimal: bool = False,
) -> list[PartialRewriting]:
    """Find minimal sets of elementary views making the rewriting exact.

    Parameters
    ----------
    candidates:
        Base symbols eligible as elementary views; defaults to the whole
        base alphabet (query symbols plus view symbols).
    max_added:
        Cap on the number of added views (default: all candidates).
    find_all_minimal:
        If true, return every minimum-cardinality solution; otherwise stop
        at the first one found.

    Returns
    -------
    list[PartialRewriting]
        Empty iff no subset within ``max_added`` yields an exact rewriting.
        If the original rewriting is already exact, a single entry with
        ``added=()`` is returned.
    """
    views = _as_view_set(views)
    from .alphabet import compile_spec

    base_alphabet = views.base_alphabet() | compile_spec(e0).alphabet
    pool = sorted(candidates if candidates is not None else base_alphabet, key=repr)
    limit = len(pool) if max_added is None else min(max_added, len(pool))

    solutions: list[PartialRewriting] = []
    for size in range(0, limit + 1):
        for subset in combinations(pool, size):
            extension = {
                elementary_symbol_name(symbol): sym(symbol) for symbol in subset
            }
            extended = views.extended(extension) if extension else views
            result = maximal_rewriting(e0, extended)
            if result.is_exact():
                solutions.append(PartialRewriting(added=subset, result=result))
                if not find_all_minimal:
                    return solutions
        if solutions:
            return solutions  # minimum cardinality level exhausted
    return solutions
