"""View definitions, materialized extensions, and the view graph.

Section 4.2 rewrites a query ``Q0`` in terms of views ``Q = {Q1..Qk}``,
each a regular path query with an associated symbol in the view alphabet
``Sigma_Q`` (the paper writes ``rpq(q)`` for the view of symbol ``q``).

For *answering* with a rewriting, each view is materialized over a database
into its extension (a set of node pairs); the extensions form a new graph —
the *view graph* — whose edge labels are the view symbols, over which the
rewriting (a language over ``Sigma_Q``) is evaluated directly.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

from .evaluation import evaluate
from .graphdb import GraphDB
from .query import RPQ, QuerySpec
from .theory import Theory

__all__ = ["RPQViews", "view_graph"]

Pair = tuple[Hashable, Hashable]


class RPQViews:
    """The view set ``Q = {Q1..Qk}`` of Section 4.2 with its alphabet
    ``Sigma_Q``: a mapping from view symbols to RPQs (the paper's
    ``rpq(q)``).  Provides extension via new views (Section 4.3) and
    materialization of every view over a database — the input to
    view-based answering."""

    def __init__(self, views: Mapping[Hashable, QuerySpec]):
        if not views:
            raise ValueError("need at least one view")
        self._views: dict[Hashable, RPQ] = {
            symbol: spec if isinstance(spec, RPQ) else RPQ(spec, name=str(symbol))
            for symbol, spec in views.items()
        }

    @classmethod
    def from_list(cls, specs: Iterable[QuerySpec], prefix: str = "q") -> "RPQViews":
        return cls({f"{prefix}{i + 1}": spec for i, spec in enumerate(specs)})

    @property
    def symbols(self) -> tuple[Hashable, ...]:
        """The view alphabet Sigma_Q, in insertion order."""
        return tuple(self._views)

    def __len__(self) -> int:
        return len(self._views)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._views)

    def __contains__(self, symbol: Hashable) -> bool:
        return symbol in self._views

    def rpq(self, symbol: Hashable) -> RPQ:
        """The view associated with ``symbol`` (the paper's ``rpq(q)``)."""
        return self._views[symbol]

    def formulas(self) -> frozenset:
        """All formula symbols appearing in any view."""
        result = frozenset()
        for view in self._views.values():
            result |= view.formulas()
        return result

    def extended(self, extra: Mapping[Hashable, QuerySpec]) -> "RPQViews":
        """A new view set with additional views appended (Section 4.3)."""
        merged: dict[Hashable, QuerySpec] = dict(self._views)
        for symbol, spec in extra.items():
            if symbol in merged:
                raise ValueError(f"view symbol {symbol!r} already present")
            merged[symbol] = spec
        return RPQViews(merged)

    def materialize(
        self, db: GraphDB, theory: Theory | None = None
    ) -> dict[Hashable, frozenset[Pair]]:
        """Evaluate every view over ``db``, yielding its extension."""
        return {
            symbol: evaluate(db, view, theory)
            for symbol, view in self._views.items()
        }

    def __repr__(self) -> str:
        return f"RPQViews({', '.join(map(str, self.symbols))})"


def view_graph(extensions: Mapping[Hashable, Iterable[Pair]]) -> GraphDB:
    """The graph over Sigma_Q induced by materialized view extensions.

    Every pair ``(x, y)`` in the extension of view ``q`` becomes an edge
    ``x --q--> y``; evaluating a rewriting over this graph implements
    "first interpret each q as the result of Q_q, then evaluate the
    rewriting on that interpretation".
    """
    graph = GraphDB()
    for symbol, pairs in extensions.items():
        for x, y in pairs:
            graph.add_edge(x, symbol, y)
    return graph
