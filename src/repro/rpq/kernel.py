"""Vectorized all-pairs product sweep over uint64 block bitmatrices.

This is the numpy twin of the big-int sweep in :mod:`repro.rpq.engine`.
Both compute the same semi-naive fixpoint — per automaton state, the set
of *source* nodes known to reach each (state, node) product point — but
where the engine packs a node's source set into one Python integer and
crosses product edges in an interpreted loop, this kernel packs the
whole per-state relation into a ``(num_nodes, ceil(W / 64))`` uint64
block matrix (``W`` = the width of the source window, the full graph for
the monolithic sweep or one shard's node range for the sharded one) and
expands a frontier with three vectorized passes per label:

1. **Gather** the delta rows of every target's in-neighbours through the
   label's padded reverse-CSR schedule
   (:class:`repro.rpq.csr._GatherPlan`) — a dense ``(m, w, B)`` cube per
   in-degree bucket, short rows padded with a pinned all-zero sentinel
   row.
2. **Reduce** the cube down its neighbour axis with one regular
   ``bitwise_or.reduce`` (measured ~3x faster than ``reduceat`` over
   ragged groups).
3. **Accumulate** into the successor states' matrices, then turn the
   accumulation into the next delta with two in-place ops
   (``new = acc & ~reached``; ``reached |= new``).

Every round therefore costs a handful of numpy calls regardless of
frontier size, and all large buffers are preallocated once per sweep and
reused across rounds — on the target hardware a cold allocation runs an
order of magnitude slower than a warm in-place OR, so buffer reuse *is*
the optimization, not a nicety.

Exactness contract: for every graph and compiled automaton,
:func:`all_pairs_ids` returns exactly the id pairs of
``engine._all_pairs_ids`` (the differential harness in
``tests/rpq/test_kernel_differential.py`` asserts list equality after
sorting), including the epsilon diagonal over *all* interned nodes —
drained nodes included — and with the padding bits of the last block
provably never set (seeds and gathers only ever touch valid columns).
"""

from __future__ import annotations

from typing import Hashable, TYPE_CHECKING

import numpy as np

from .csr import CSRSnapshot, blocks_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import CompiledAutomaton

__all__ = [
    "all_pairs_ids",
    "sweep_window",
    "decode_matrix",
    "matrix_to_masks",
]

# Cap on the number of uint64 words gathered per chunk (~4 MiB): keeps
# the gather cube and its reduction inside the cache tier where this
# machine's fancy-indexing throughput is ~8x its streaming-DRAM rate.
_CHUNK_WORDS = 1 << 19


def sweep_window(
    snapshot: CSRSnapshot,
    compiled: "CompiledAutomaton",
    lo: int = 0,
    hi: int | None = None,
    *,
    reached_out: dict | None = None,
) -> np.ndarray:
    """Sweep sources in ``[lo, hi)``; return the answer block matrix.

    Row ``t`` of the result holds one bit per window source: bit ``j``
    set means ``(lo + j, t)`` is an answer pair.  ``lo``/``hi`` default
    to the whole graph; :class:`repro.rpq.sharded.ParallelEvaluator`
    passes one shard's range per task, which keeps each task's matrices
    a factor ``k`` narrower (the same mask-width saving the big-int
    shard kernel gets from re-based masks).

    With ``reached_out`` (a dict), the settled per-state ``(num_nodes,
    B)`` matrices are handed back to the caller after the fixpoint —
    :class:`repro.rpq.incremental.NumpyDeltaSweepState` keeps them alive
    to resume the sweep from edge deltas.  On degenerate inputs (empty
    graph, no initial states) the dict is left empty; delta application
    allocates state rows lazily, like the big-int engine.
    """
    num_nodes = snapshot.num_nodes
    if hi is None:
        hi = num_nodes
    width = hi - lo
    num_blocks = blocks_for(width)
    answers = np.zeros((num_nodes, num_blocks), dtype=np.uint64)
    if compiled.accepts_epsilon and width > 0:
        window = np.arange(lo, hi, dtype=np.intp)
        answers[window, (window - lo) >> 6] |= np.uint64(1) << (
            (window - lo).astype(np.uint64) & np.uint64(63)
        )
    if num_nodes == 0 or width <= 0 or not compiled.initials:
        return answers

    table = compiled.table
    finals = compiled.finals
    states = set(table)
    for row in table.values():
        for next_states in row.values():
            states |= next_states

    # Per state: the settled matrix, the current delta (one sentinel row
    # pinned to zero for padded gathers), and the accumulator that
    # becomes the next delta.  Allocated once, reused every round.
    reached = {s: np.zeros((num_nodes, num_blocks), dtype=np.uint64) for s in states}
    delta = {s: np.zeros((num_nodes + 1, num_blocks), dtype=np.uint64) for s in states}
    acc = {s: np.zeros((num_nodes + 1, num_blocks), dtype=np.uint64) for s in states}
    invert_scratch = np.empty((num_nodes, num_blocks), dtype=np.uint64)
    active = {s: False for s in states}
    # A freshly seeded initial state's delta is exactly the seed
    # diagonal, and every in-neighbour of a label is one of that label's
    # seeds — so the state's first-round contribution per label is the
    # label's precomputed adjacency bitmap, no gather needed.  The flag
    # drops as soon as the diagonal delta has been consumed.
    diagonal = {s: False for s in states}

    for state in compiled.initials:
        row = table.get(state)
        if not row:
            continue
        seed_union: np.ndarray | None = None
        for label in row:
            plan = snapshot.gather_plan(label)
            if plan is None or plan.sources.size == 0:
                continue
            seed_union = (
                plan.sources
                if seed_union is None
                else np.union1d(seed_union, plan.sources)
            )
        if seed_union is None:
            continue
        seeds = seed_union[(seed_union >= lo) & (seed_union < hi)].astype(np.intp)
        if seeds.size == 0:
            continue
        columns = seeds - lo
        bits = np.uint64(1) << (columns.astype(np.uint64) & np.uint64(63))
        reached[state][seeds, columns >> 6] |= bits
        delta[state][seeds, columns >> 6] |= bits
        active[state] = True
        diagonal[state] = True

    while any(active.values()):
        for state_acc in acc.values():
            state_acc.fill(0)
        touched: set[int] = set()
        for state, row in table.items():
            if not active[state]:
                continue
            if diagonal[state]:
                for label, next_states in row.items():
                    bitmap = snapshot.adjacency_bitmap(label, lo, hi)
                    if bitmap is None:
                        continue
                    for next_state in next_states:
                        acc[next_state][:num_nodes] |= bitmap
                        touched.add(next_state)
                continue
            state_delta = delta[state]
            for label, next_states in row.items():
                plan = snapshot.gather_plan(label)
                if plan is None:
                    continue
                for dsts, idx in plan.spans:
                    rows_total, bucket_width = idx.shape
                    rows_per_chunk = max(
                        1, _CHUNK_WORDS // (bucket_width * num_blocks)
                    )
                    for start in range(0, rows_total, rows_per_chunk):
                        stop = min(start + rows_per_chunk, rows_total)
                        gathered = state_delta[idx[start:stop]]
                        reduced = np.bitwise_or.reduce(gathered, axis=1)
                        chunk_dsts = dsts[start:stop]
                        for next_state in next_states:
                            acc[next_state][chunk_dsts] |= reduced
                            touched.add(next_state)
        for state in states:
            active[state] = False
            diagonal[state] = False
        for state in touched:
            new = acc[state][:num_nodes]
            np.invert(reached[state], out=invert_scratch)
            np.bitwise_and(new, invert_scratch, out=new)
            if not new.any():
                continue
            np.bitwise_or(reached[state], new, out=reached[state])
            if state in finals:
                np.bitwise_or(answers, new, out=answers)
            # The accumulator (now holding exactly the new bits) becomes
            # the next round's delta; the old delta becomes the next
            # accumulator.  Sentinel rows stay zero on both.
            delta[state], acc[state] = acc[state], delta[state]
            active[state] = True
    if reached_out is not None:
        reached_out.update(reached)
    return answers


def decode_matrix(
    answers: np.ndarray, width: int, lo: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Unpack an answer matrix into sorted ``(sources, targets)`` arrays.

    Sorted by ``(source_id, target_id)`` — the engine's documented
    deterministic order.  ``width`` is the number of valid source
    columns (padding bits beyond it are discarded by construction);
    ``lo`` re-bases window columns to absolute ids.
    """
    num_nodes = answers.shape[0]
    source_parts: list[np.ndarray] = []
    target_parts: list[np.ndarray] = []
    if width > 0:
        rows_per_chunk = max(1, (1 << 22) // max(1, width))
        for start in range(0, num_nodes, rows_per_chunk):
            stop = min(start + rows_per_chunk, num_nodes)
            bits = np.unpackbits(
                answers[start:stop].view(np.uint8), axis=1, bitorder="little"
            )[:, :width]
            target_offsets, columns = np.nonzero(bits)
            if columns.size:
                source_parts.append(columns.astype(np.int64) + lo)
                target_parts.append(target_offsets.astype(np.int64) + start)
    if not source_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    sources = np.concatenate(source_parts)
    targets = np.concatenate(target_parts)
    order = np.lexsort((targets, sources))
    return sources[order], targets[order]


def matrix_to_masks(answers: np.ndarray) -> dict[int, int]:
    """Collapse an answer matrix to ``{target_id: int mask}`` (nonzero
    rows only) — the result shape of the big-int shard kernel, so the
    sharded merge path is backend-agnostic."""
    masks: dict[int, int] = {}
    for target in np.flatnonzero(answers.any(axis=1)):
        masks[int(target)] = int.from_bytes(
            answers[target].tobytes(), "little"
        )
    return masks


def all_pairs_ids(
    snapshot: CSRSnapshot, compiled: "CompiledAutomaton"
) -> list[tuple[int, int]]:
    """The full all-pairs sweep, decoded to sorted dense-id pairs."""
    if snapshot.num_nodes == 0 or not compiled.initials:
        return []
    answers = sweep_window(snapshot, compiled)
    sources, targets = decode_matrix(answers, snapshot.num_nodes)
    return list(zip(sources.tolist(), targets.tolist()))
