"""Decidable complete theories over the finite edge-label domain.

Section 4.1 assumes a decidable, *complete* first-order theory T over a
finite domain D — complete meaning every closed formula is either entailed
or refuted.  A finite relational structure (an interpretation of finitely
many unary predicates over D) is exactly such a theory, and validity
checking ``T |= phi(a)`` becomes formula evaluation.  This is the
substitution documented in DESIGN.md; every algorithm of Section 4 is
preserved verbatim.

The class also implements the constant-partitioning optimization the paper
sketches at the end of Section 4.2: constants with the same satisfaction
signature over the formulae of a query are interchangeable, so automata can
be built over equivalence-class representatives instead of all of D.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from .formulas import Formula

__all__ = ["Theory"]


class Theory:
    """A finite structure: domain D plus extensions of unary predicates."""

    def __init__(
        self,
        domain: Iterable[Hashable],
        predicates: Mapping[str, Iterable[Hashable]] | None = None,
    ):
        self.domain: frozenset[Hashable] = frozenset(domain)
        if not self.domain:
            raise ValueError("the domain D must be non-empty")
        self._predicates: dict[str, frozenset[Hashable]] = {}
        for name, extension in (predicates or {}).items():
            ext = frozenset(extension)
            if not ext <= self.domain:
                raise ValueError(
                    f"extension of {name!r} contains non-domain constants: "
                    f"{sorted(map(repr, ext - self.domain))}"
                )
            self._predicates[name] = ext

    @classmethod
    def trivial(cls, domain: Iterable[Hashable]) -> "Theory":
        """A theory with no predicates beyond the built-in constants."""
        return cls(domain)

    @property
    def predicate_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._predicates))

    def predicate_holds(self, name: str, constant: Hashable) -> bool:
        """Does ``T |= P(constant)`` for the atomic predicate ``P``?"""
        try:
            extension = self._predicates[name]
        except KeyError:
            raise KeyError(f"unknown predicate {name!r}") from None
        return constant in extension

    def predicate_extension(self, name: str) -> frozenset[Hashable]:
        return self._predicates[name]

    def entails(self, formula: Formula, constant: Hashable) -> bool:
        """Decide ``T |= phi(constant)`` (Definition 4.1's matching)."""
        if constant not in self.domain:
            raise ValueError(f"constant {constant!r} is not in the domain")
        return formula.holds(self, constant)

    def satisfying(self, formula: Formula) -> frozenset[Hashable]:
        """All domain constants ``a`` with ``T |= phi(a)``."""
        return frozenset(
            a for a in self.domain if formula.holds(self, a)
        )

    def matches(self, formulas: Iterable[Formula], word: Iterable[Hashable]) -> bool:
        """Definition 4.1: does the D-word match the F-word position-wise?"""
        formulas = tuple(formulas)
        word = tuple(word)
        if len(formulas) != len(word):
            return False
        return all(
            self.entails(phi, a) for phi, a in zip(formulas, word)
        )

    # ------------------------------------------------------------------
    # Constant partitioning (Section 4.2, final remark)
    # ------------------------------------------------------------------
    def signature(
        self, constant: Hashable, formulas: Iterable[Formula]
    ) -> frozenset[Formula]:
        """The set of the given formulae satisfied by ``constant``."""
        return frozenset(
            phi for phi in formulas if self.entails(phi, constant)
        )

    def partition(
        self, formulas: Iterable[Formula]
    ) -> list[frozenset[Hashable]]:
        """Equivalence classes of constants by satisfaction signature."""
        formulas = tuple(formulas)
        classes: dict[frozenset[Formula], set[Hashable]] = {}
        for constant in self.domain:
            classes.setdefault(
                self.signature(constant, formulas), set()
            ).add(constant)
        return [frozenset(block) for block in classes.values()]

    def representatives(
        self, formulas: Iterable[Formula]
    ) -> dict[Hashable, Hashable]:
        """Map each constant to a canonical representative of its class."""
        mapping: dict[Hashable, Hashable] = {}
        for block in self.partition(formulas):
            canon = min(block, key=repr)
            for constant in block:
                mapping[constant] = canon
        return mapping

    def __repr__(self) -> str:
        return (
            f"Theory(|D|={len(self.domain)}, "
            f"predicates={list(self.predicate_names)})"
        )
