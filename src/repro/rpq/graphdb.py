"""Semi-structured databases as edge-labelled graphs (Section 4.1).

Following [BDFS97] and the paper, a database is a graph whose edges are
labelled with elements of a finite domain ``D``.  Nodes are arbitrary
hashable objects.  The graph is not required to be rooted or connected.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, Iterator, Sequence

__all__ = ["GraphDB", "random_graph", "path_graph"]

Edge = tuple[Hashable, Hashable, Hashable]  # (source, label, target)


class GraphDB:
    """An edge-labelled directed graph database.

    Parallel edges with different labels are allowed; duplicate (source,
    label, target) triples are stored once.
    """

    def __init__(self, edges: Iterable[Edge] = (), nodes: Iterable[Hashable] = ()):
        self._nodes: set[Hashable] = set(nodes)
        self._out: dict[Hashable, dict[Hashable, set[Hashable]]] = {}
        self._labels: set[Hashable] = set()
        self._num_edges = 0
        for source, label, target in edges:
            self.add_edge(source, label, target)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Hashable) -> None:
        self._nodes.add(node)

    def add_edge(self, source: Hashable, label: Hashable, target: Hashable) -> None:
        """Add the edge ``source --label--> target`` (idempotent)."""
        self._nodes.add(source)
        self._nodes.add(target)
        targets = self._out.setdefault(source, {}).setdefault(label, set())
        if target not in targets:
            targets.add(target)
            self._num_edges += 1
            self._labels.add(label)

    def add_path(self, start: Hashable, labels: Sequence[Hashable], nodes: Sequence[Hashable]) -> None:
        """Add a path ``start --labels[0]--> nodes[0] --labels[1]--> ...``."""
        if len(labels) != len(nodes):
            raise ValueError("need as many intermediate nodes as labels")
        current = start
        for label, node in zip(labels, nodes):
            self.add_edge(current, label, node)
            current = node

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> frozenset[Hashable]:
        return frozenset(self._nodes)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def domain(self) -> frozenset[Hashable]:
        """The set of edge labels actually used (a subset of the domain D)."""
        return frozenset(self._labels)

    def successors(self, node: Hashable, label: Hashable) -> frozenset[Hashable]:
        return frozenset(self._out.get(node, {}).get(label, ()))

    def out_edges(self, node: Hashable) -> Iterator[tuple[Hashable, Hashable]]:
        """Yield ``(label, target)`` pairs for edges leaving ``node``."""
        for label, targets in self._out.get(node, {}).items():
            for target in targets:
                yield (label, target)

    def edges(self) -> Iterator[Edge]:
        for source, row in self._out.items():
            for label, targets in row.items():
                for target in targets:
                    yield (source, label, target)

    def has_path(self, source: Hashable, labels: Sequence[Hashable]) -> bool:
        """Is there a path from ``source`` spelling exactly ``labels``?"""
        frontier = {source}
        for label in labels:
            frontier = {
                target for node in frontier for target in self.successors(node, label)
            }
            if not frontier:
                return False
        return True

    def __repr__(self) -> str:
        return f"GraphDB(nodes={self.num_nodes}, edges={self.num_edges})"


def random_graph(
    rng: random.Random,
    num_nodes: int,
    labels: Sequence[Hashable],
    num_edges: int,
) -> GraphDB:
    """A random labelled graph with the given node/edge counts (seeded)."""
    db = GraphDB()
    node_names = [f"n{i}" for i in range(num_nodes)]
    for node in node_names:
        db.add_node(node)
    for _ in range(num_edges):
        db.add_edge(
            rng.choice(node_names), rng.choice(labels), rng.choice(node_names)
        )
    return db


def path_graph(labels: Sequence[Hashable]) -> GraphDB:
    """The single-path database ``x0 --labels[0]--> x1 --...--> xn``.

    The paper's Theorem 4.1 proof uses exactly these databases to relate
    semantic and language-level rewriting.
    """
    db = GraphDB()
    for i, label in enumerate(labels):
        db.add_edge(f"x{i}", label, f"x{i + 1}")
    if not labels:
        db.add_node("x0")
    return db
