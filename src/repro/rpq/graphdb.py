"""Semi-structured databases as edge-labelled graphs (Section 4.1).

Following [BDFS97] and the paper, a database is a graph whose edges are
labelled with elements of a finite domain ``D``.  Nodes are arbitrary
hashable objects.  The graph is not required to be rooted or connected.

Storage layout (the indexed backend used by :mod:`repro.rpq.engine`):
nodes are interned to dense integer ids on first sight, and the edge set
is kept *label-first* in two mirrored indexes::

    _out[label][source_id] -> set of target ids
    _in[label][target_id]  -> set of source ids

so that a frontier of nodes can be expanded through one label with a few
bulk set unions (:meth:`GraphDB.successors_bulk`) instead of per-edge
Python calls, and so that bidirectional search can walk edges backwards
(:meth:`GraphDB.predecessors_bulk`).  The public API still speaks in the
original node objects; the integer ids are an internal representation
exposed only through :meth:`node_id` / :meth:`node_at` for the engine.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

__all__ = ["GraphDB", "random_graph", "path_graph"]

Edge = tuple[Hashable, Hashable, Hashable]  # (source, label, target)


class GraphDB:
    """An edge-labelled directed graph database.

    Parallel edges with different labels are allowed; duplicate (source,
    label, target) triples are stored once.
    """

    def __init__(self, edges: Iterable[Edge] = (), nodes: Iterable[Hashable] = ()):
        self._id_of: dict[Hashable, int] = {}
        self._node_of: list[Hashable] = []
        self._out: dict[Hashable, dict[int, set[int]]] = {}
        self._in: dict[Hashable, dict[int, set[int]]] = {}
        self._num_edges = 0
        # Monotone counter bumped on every *effective* mutation (a new
        # node interned, an edge actually added or removed); no-op calls
        # leave it unchanged, so equality of counters implies structural
        # equality of two observations of the same instance.  Consumed
        # by the CSR snapshot cache below and by
        # :meth:`repro.rpq.sharded.ParallelEvaluator.refresh` to skip
        # re-partitioning after no-op updates.
        self._mutations = 0
        self._csr_cache = None
        self._csr_cache_mutations = -1
        for node in nodes:
            self.add_node(node)
        for source, label, target in edges:
            self.add_edge(source, label, target)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _intern(self, node: Hashable) -> int:
        node_id = self._id_of.get(node)
        if node_id is None:
            node_id = len(self._node_of)
            self._id_of[node] = node_id
            self._node_of.append(node)
            self._mutations += 1
        return node_id

    def add_node(self, node: Hashable) -> None:
        self._intern(node)

    def add_edge(self, source: Hashable, label: Hashable, target: Hashable) -> None:
        """Add the edge ``source --label--> target`` (idempotent)."""
        source_id = self._intern(source)
        target_id = self._intern(target)
        targets = self._out.setdefault(label, {}).setdefault(source_id, set())
        if target_id not in targets:
            targets.add(target_id)
            self._in.setdefault(label, {}).setdefault(target_id, set()).add(source_id)
            self._num_edges += 1
            self._mutations += 1

    def remove_edge(
        self, source: Hashable, label: Hashable, target: Hashable
    ) -> bool:
        """Remove the edge ``source --label--> target`` if present.

        Returns ``True`` when an edge was removed.  Nodes stay interned
        (their dense ids remain valid) even when their last incident edge
        disappears, so engine-facing id mappings never shift under a
        long-lived store performing incremental updates.
        """
        source_id = self._id_of.get(source)
        target_id = self._id_of.get(target)
        if source_id is None or target_id is None:
            return False
        adjacency = self._out.get(label)
        if adjacency is None:
            return False
        targets = adjacency.get(source_id)
        if targets is None or target_id not in targets:
            return False
        targets.discard(target_id)
        if not targets:
            del adjacency[source_id]
        if not adjacency:
            del self._out[label]
        reverse = self._in[label][target_id]
        reverse.discard(source_id)
        if not reverse:
            del self._in[label][target_id]
        if not self._in[label]:
            del self._in[label]
        self._num_edges -= 1
        self._mutations += 1
        return True

    def add_path(
        self, start: Hashable, labels: Sequence[Hashable], nodes: Sequence[Hashable]
    ) -> None:
        """Add a path ``start --labels[0]--> nodes[0] --labels[1]--> ...``.

        ``labels`` and ``nodes`` must have equal length: ``nodes[i]`` is the
        target of the edge labelled ``labels[i]``.  With both empty, only
        ``start`` is registered (a zero-length path still has its endpoint).
        """
        if len(labels) != len(nodes):
            raise ValueError("need as many intermediate nodes as labels")
        self.add_node(start)
        current = start
        for label, node in zip(labels, nodes):
            self.add_edge(current, label, node)
            current = node

    @classmethod
    def from_triples(cls, triples: Iterable[Edge]) -> "GraphDB":
        """Build a database from ``(source, label, target)`` triples."""
        return cls(edges=triples)

    def to_triples(self) -> set[Edge]:
        """The edge set as ``(source, label, target)`` triples.

        Round-trips with :meth:`from_triples` up to isolated nodes (which
        have no incident edge and therefore no triple).
        """
        return set(self.edges())

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> frozenset[Hashable]:
        return frozenset(self._id_of)

    @property
    def num_nodes(self) -> int:
        return len(self._node_of)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def mutation_count(self) -> int:
        """Monotone counter of effective mutations (see ``__init__``)."""
        return self._mutations

    def to_csr(self):
        """A frozen :class:`~repro.rpq.csr.CSRSnapshot` of the current
        contents, cached until the next effective mutation.

        The snapshot covers every *interned* node — ``num_nodes`` rows,
        not ``len(domain())`` — so drained stores (nodes kept alive by
        :meth:`remove_edge`'s id-stability contract) snapshot with empty
        CSR rows rather than shifted ids.
        """
        if (
            self._csr_cache is None
            or self._csr_cache_mutations != self._mutations
        ):
            from .csr import CSRSnapshot

            self._csr_cache = CSRSnapshot.from_graph(self)
            self._csr_cache_mutations = self._mutations
        return self._csr_cache

    def domain(self) -> frozenset[Hashable]:
        """The set of edge labels actually used (a subset of the domain D)."""
        return frozenset(self._out)

    def successors(self, node: Hashable, label: Hashable) -> frozenset[Hashable]:
        node_id = self._id_of.get(node)
        if node_id is None:
            return frozenset()
        targets = self._out.get(label, {}).get(node_id, ())
        return frozenset(self._node_of[t] for t in targets)

    def out_edges(self, node: Hashable) -> Iterator[tuple[Hashable, Hashable]]:
        """Yield ``(label, target)`` pairs for edges leaving ``node``."""
        node_id = self._id_of.get(node)
        if node_id is None:
            return
        for label, adjacency in self._out.items():
            for target_id in adjacency.get(node_id, ()):
                yield (label, self._node_of[target_id])

    def edges(self) -> Iterator[Edge]:
        for label, adjacency in self._out.items():
            for source_id, targets in adjacency.items():
                source = self._node_of[source_id]
                for target_id in targets:
                    yield (source, label, self._node_of[target_id])

    def has_path(self, source: Hashable, labels: Sequence[Hashable]) -> bool:
        """Is there a path from ``source`` spelling exactly ``labels``?"""
        source_id = self._id_of.get(source)
        if source_id is None:
            return False
        frontier = {source_id}
        for label in labels:
            frontier = self.successors_bulk(frontier, label)
            if not frontier:
                return False
        return True

    # ------------------------------------------------------------------
    # Engine-facing indexed access (dense integer node ids)
    # ------------------------------------------------------------------
    def node_id(self, node: Hashable) -> int:
        """The dense integer id of ``node``; raises ``KeyError`` if absent."""
        try:
            return self._id_of[node]
        except KeyError:
            raise KeyError(f"unknown node {node!r}") from None

    def node_at(self, node_id: int) -> Hashable:
        """The node object with the given dense id."""
        return self._node_of[node_id]

    def label_out_index(self, label: Hashable) -> Mapping[int, set[int]]:
        """The forward adjacency ``source_id -> target ids`` for one label."""
        return self._out.get(label, {})

    def label_in_index(self, label: Hashable) -> Mapping[int, set[int]]:
        """The reverse adjacency ``target_id -> source ids`` for one label."""
        return self._in.get(label, {})

    def successors_bulk(self, frontier: Iterable[int], label: Hashable) -> set[int]:
        """All targets of ``label``-edges leaving any node id in ``frontier``."""
        return self._expand_bulk(self._out.get(label), frontier)

    def predecessors_bulk(self, frontier: Iterable[int], label: Hashable) -> set[int]:
        """All sources of ``label``-edges entering any node id in ``frontier``."""
        return self._expand_bulk(self._in.get(label), frontier)

    @staticmethod
    def _expand_bulk(
        adjacency: dict[int, set[int]] | None, frontier: Iterable[int]
    ) -> set[int]:
        result: set[int] = set()
        if not adjacency:
            return result
        if not isinstance(frontier, (set, frozenset)):
            frontier = set(frontier)
        if len(adjacency) < len(frontier):
            # Sparse label: scanning its adjacency beats probing the frontier.
            for source_id, targets in adjacency.items():
                if source_id in frontier:
                    result |= targets
        else:
            for source_id in frontier:
                targets = adjacency.get(source_id)
                if targets:
                    result |= targets
        return result

    def __repr__(self) -> str:
        return f"GraphDB(nodes={self.num_nodes}, edges={self.num_edges})"


def random_graph(
    rng: random.Random,
    num_nodes: int,
    labels: Sequence[Hashable],
    num_edges: int,
) -> GraphDB:
    """A random labelled graph with the given node/edge counts (seeded)."""
    db = GraphDB()
    node_names = [f"n{i}" for i in range(num_nodes)]
    for node in node_names:
        db.add_node(node)
    for _ in range(num_edges):
        db.add_edge(
            rng.choice(node_names), rng.choice(labels), rng.choice(node_names)
        )
    return db


def path_graph(labels: Sequence[Hashable]) -> GraphDB:
    """The single-path database ``x0 --labels[0]--> x1 --...--> xn``.

    The paper's Theorem 4.1 proof uses exactly these databases to relate
    semantic and language-level rewriting.
    """
    db = GraphDB()
    for i, label in enumerate(labels):
        db.add_edge(f"x{i}", label, f"x{i + 1}")
    if not labels:
        db.add_node("x0")
    return db
