"""Regular path queries over semi-structured data (Section 4 of the paper).

Provides graph databases, RPQ evaluation, theories of edge formulae, and
view-based rewriting/answering:

* :class:`GraphDB` — edge-labelled graph databases with a label-first,
  dense-int-id index (bulk frontier expansion, reverse edges);
* :class:`RPQ` / :func:`evaluate` — queries and Definition 4.2 semantics,
  executed by the compiled engine of :mod:`repro.rpq.engine` (precompiled
  label tables, macro-frontier BFS shared across sources, bidirectional
  single-pair search); :func:`naive_evaluate` is the per-source reference
  oracle used for differential testing;
* :class:`Theory` + the formula classes — Section 4.1's decidable complete
  theory T over the domain D;
* :func:`rewrite_rpq` — the Section 4.2 rewriting algorithm (Theorem 4.2),
  with the grounding-free product optimization and constant partitioning;
* :func:`find_partial_rpq_rewritings` — Section 4.3 partial rewritings;
* :class:`ShardedGraphDB` / :class:`ParallelEvaluator` — the scale-out
  layer (:mod:`repro.rpq.sharded`): node-range graph shards with explicit
  cut-edge frontiers and an exact shard-parallel all-pairs sweep;
* :func:`make_workload` and friends (:mod:`repro.rpq.workload`) — seeded
  graph families (chain, grid, scale-free, layered DAG) with matching
  query/view mixes and seeded update streams
  (:func:`make_update_stream`), shared by benchmarks and the
  differential fuzz harness;
* :class:`DeltaSweepState` (:mod:`repro.rpq.incremental`) — retained
  all-pairs sweep state that absorbs inserted edges by semi-naive delta
  re-evaluation, bit-identical to a full recompute.

For serving many queries over evolving view extensions — materialized
view storage, persistent rewrite-plan caching, per-session evaluation
state — use the layer above: :mod:`repro.service`.
"""

from .answering import (
    answer_with_views,
    rewriting_is_complete_on,
    rewriting_is_sound_on,
)
from .engine import (
    CompiledAutomaton,
    compile_automaton,
    compile_cache_clear,
    compile_cache_info,
)
from .evaluation import (
    ans,
    ans_sorted,
    evaluate,
    evaluate_from,
    evaluate_pair,
    evaluate_sorted,
    naive_ans,
    naive_evaluate,
    sort_pairs,
)
from .formulas import TOP, And, Const, Formula, Not, Or, Pred, Top
from .generalized import (
    GeneralizedPathQuery,
    GeneralizedRewriting,
    evaluate_gpq,
    rewrite_gpq,
)
from .graphdb import GraphDB, path_graph, random_graph
from .incremental import DeltaSweepState
from .partial import (
    PartialRPQRewriting,
    atomic_view_name,
    find_partial_rpq_rewritings,
)
from .query import RPQ
from .rewriting import STRATEGIES, RPQRewritingResult, rewrite_rpq
from .sharded import ParallelEvaluator, ShardedEvaluationError, ShardedGraphDB
from .theory import Theory
from .views import RPQViews, view_graph
from .workload import (
    FAMILIES,
    UpdateOp,
    Workload,
    graph_signature,
    make_graph,
    make_queries,
    make_update_stream,
    make_views,
    make_workload,
)

__all__ = [
    "GraphDB",
    "path_graph",
    "random_graph",
    "GeneralizedPathQuery",
    "GeneralizedRewriting",
    "evaluate_gpq",
    "rewrite_gpq",
    "RPQ",
    "evaluate",
    "evaluate_sorted",
    "evaluate_from",
    "evaluate_pair",
    "ans",
    "ans_sorted",
    "sort_pairs",
    "naive_evaluate",
    "naive_ans",
    "ParallelEvaluator",
    "ShardedGraphDB",
    "ShardedEvaluationError",
    "DeltaSweepState",
    "FAMILIES",
    "UpdateOp",
    "Workload",
    "make_graph",
    "make_queries",
    "make_update_stream",
    "make_views",
    "make_workload",
    "graph_signature",
    "CompiledAutomaton",
    "compile_automaton",
    "compile_cache_info",
    "compile_cache_clear",
    "Formula",
    "Const",
    "Pred",
    "And",
    "Or",
    "Not",
    "Top",
    "TOP",
    "Theory",
    "RPQViews",
    "view_graph",
    "rewrite_rpq",
    "RPQRewritingResult",
    "STRATEGIES",
    "answer_with_views",
    "rewriting_is_sound_on",
    "rewriting_is_complete_on",
    "PartialRPQRewriting",
    "find_partial_rpq_rewritings",
    "atomic_view_name",
]
