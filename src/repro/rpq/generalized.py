"""Generalized path queries — the paper's Section 5, second direction.

A generalized path query ``x1 Q1 x2 Q2 ... x_{n-1} Q_{n-1} x_n`` [FS98]
asks for all n-tuples of nodes ``(o_1, ..., o_n)`` such that for each
``i`` there is a path from ``o_i`` to ``o_{i+1}`` satisfying the regular
path query ``Q_i``.  The paper notes that such queries compute n-ary
relations, so rewritings need (at least) per-component treatment plus a
join; this module implements exactly that:

* evaluation as a left-to-right relational join of the component RPQ
  answers;
* view-based rewriting component by component (each component is rewritten
  with the Section 4.2 algorithm), answered over materialized views and
  joined — sound by construction, and exact when every component rewriting
  is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Sequence

from .evaluation import evaluate
from .graphdb import GraphDB
from .query import RPQ, QuerySpec
from .rewriting import RPQRewritingResult, rewrite_rpq, _as_rpq_views
from .theory import Theory
from .views import RPQViews

__all__ = [
    "GeneralizedPathQuery",
    "GeneralizedRewriting",
    "evaluate_gpq",
    "rewrite_gpq",
]

Pair = tuple[Hashable, Hashable]


@dataclass(frozen=True)
class GeneralizedPathQuery:
    """A conjunctive chain of RPQs ``y0 -Q1-> y1 -Q2-> ... -Qn-> yn``
    (the paper's closing remark on generalized path queries): each
    component constrains one hop between consecutive node variables, and
    the answer is the set of ``(n+1)``-tuples witnessing all components
    simultaneously."""

    components: tuple[RPQ, ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("a generalized path query needs >= 1 component")

    @classmethod
    def of(cls, *specs: QuerySpec) -> "GeneralizedPathQuery":
        return cls(tuple(q if isinstance(q, RPQ) else RPQ(q) for q in specs))

    @property
    def arity(self) -> int:
        """The arity of the answer relation (number of node variables)."""
        return len(self.components) + 1

    def __repr__(self) -> str:
        inner = " , ".join(repr(c) for c in self.components)
        return f"GeneralizedPathQuery({inner})"


def evaluate_gpq(
    db: GraphDB,
    query: GeneralizedPathQuery,
    theory: Theory | None = None,
) -> frozenset[tuple[Hashable, ...]]:
    """All ``arity``-tuples connected componentwise (left-to-right join)."""
    relations = [evaluate(db, component, theory) for component in query.components]
    return _join(relations)


def _join(relations: Sequence[Iterable[Pair]]) -> frozenset[tuple[Hashable, ...]]:
    """Join binary relations sharing endpoints into tuples."""
    first = list(relations[0])
    tuples: list[tuple[Hashable, ...]] = [(x, y) for x, y in first]
    for relation in relations[1:]:
        by_source: dict[Hashable, list[Hashable]] = {}
        for x, y in relation:
            by_source.setdefault(x, []).append(y)
        tuples = [
            prefix + (target,)
            for prefix in tuples
            for target in by_source.get(prefix[-1], ())
        ]
    return frozenset(tuples)


@dataclass
class GeneralizedRewriting:
    """Componentwise rewriting of a generalized path query: one
    Sigma_Q-maximal RPQ rewriting per component, answered by evaluating
    each over the views and joining on the shared node variables.  Exact
    whenever every component rewriting is exact (a sufficient, not
    necessary, condition)."""

    query: GeneralizedPathQuery
    components: tuple[RPQRewritingResult, ...]
    views: RPQViews
    theory: Theory

    def is_exact(self) -> bool:
        """Every component rewriting exact — a sufficient condition for the
        joined answers to coincide with the direct answers on every DB."""
        return all(component.is_exact() for component in self.components)

    def is_empty(self) -> bool:
        """If any component has an empty rewriting, no tuple is derivable."""
        return any(component.is_empty() for component in self.components)

    def answer(
        self,
        db: GraphDB,
        extensions: Mapping[Hashable, Iterable[Pair]] | None = None,
    ) -> frozenset[tuple[Hashable, ...]]:
        """Evaluate all component rewritings over the views, then join."""
        if extensions is None:
            extensions = self.views.materialize(db, self.theory)
        relations = [
            component.answer(db, extensions=extensions)
            for component in self.components
        ]
        return _join(relations)

    def regexes(self):
        """The component rewritings as regular expressions over Sigma_Q."""
        return tuple(component.regex() for component in self.components)


def rewrite_gpq(
    query: GeneralizedPathQuery,
    views: RPQViews | Mapping[Hashable, QuerySpec] | Iterable[QuerySpec],
    theory: Theory,
    strategy: str = "product",
) -> GeneralizedRewriting:
    """Rewrite every component of ``query`` with the Section 4.2
    algorithm against one shared view set, returning a
    :class:`GeneralizedRewriting` whose ``answer`` joins the component
    answers; ``strategy`` selects the grounded or product construction
    exactly as in :func:`~repro.rpq.rewriting.rewrite_rpq`."""
    views = _as_rpq_views(views)
    components = tuple(
        rewrite_rpq(component, views, theory, strategy=strategy)
        for component in query.components
    )
    return GeneralizedRewriting(
        query=query, components=components, views=views, theory=theory
    )
