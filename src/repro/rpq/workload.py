"""Seeded workload generation: graph families, query/view mixes, update streams.

The fixtures of the unit suite stop at ~1k nodes; the sharded evaluator
(:mod:`repro.rpq.sharded`), the benchmarks, and the randomized
differential harness all need graphs well beyond that, with *known
shapes* (so tests can assert structural invariants) and *exact
reproducibility* (so a failing seed can be replayed anywhere).  This
module is the single source of those workloads.

Determinism contract
--------------------
Every generator is a pure function of ``(family, seed, size knobs)``:

* the only randomness source is one ``random.Random(seed)`` instance;
* node names are ``"n0" .. "n{N-1}"``, interned in increasing order, so
  the dense ids of :class:`~repro.rpq.graphdb.GraphDB` coincide with the
  generation order on every run and in every process;
* :func:`graph_signature` hashes the canonically sorted triple set —
  equal signatures mean equal edge sets *and* equal node interning
  order (the node list is part of the digest).

``tests/rpq/test_workload.py`` holds the generators to this contract by
round-tripping signatures through a fresh subprocess.

Families
--------
``chain``
    A single labelled path ``n0 -> n1 -> ... -> nE``; the worst case for
    graph partitioning (every shard boundary cuts the one path there is).
``grid``
    A rows x cols lattice with ``r`` (right) and ``d`` (down) edges —
    the classic bounded-degree mesh; the seed picks the aspect ratio and
    the dimensions are the smallest reaching the requested edge count.
``scale_free``
    Preferential attachment: each new node attaches ``m`` out-edges to
    endpoints sampled proportionally to their current degree, yielding
    the hub-dominated degree skew of real web/social graphs.
``layered_dag``
    ``L`` layers of equal width with edges only from layer ``i`` to
    layer ``i+1`` (ids strictly increase along every edge), the shape of
    staged pipelines and unrolled transition systems.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

from .graphdb import GraphDB

__all__ = [
    "FAMILIES",
    "TrafficOp",
    "UpdateOp",
    "Workload",
    "make_crash_points",
    "make_graph",
    "make_queries",
    "make_traffic_mix",
    "make_update_stream",
    "make_views",
    "make_workload",
    "graph_signature",
    "graph_triples",
]

FAMILIES = ("chain", "grid", "scale_free", "layered_dag")

# Per-family edge alphabets.  Kept tiny on purpose: RPQ evaluation cost
# is driven by reachability structure, not label variety, and a small
# alphabet makes generated queries exercise real path sharing.
_LABELS = {
    "chain": ("a", "b"),
    "grid": ("r", "d"),
    "scale_free": ("a", "b", "c"),
    "layered_dag": ("a", "b"),
}

# Query templates per family.  ``{x}``/``{y}``/``{z}`` are filled with
# labels drawn from the family alphabet.  Starred templates are kept
# separate: on large dense families (scale-free hubs) a star reaches the
# giant component and the all-pairs answer grows quadratically, which
# benchmarks and fuzz tests must opt into knowingly.
_BOUNDED_TEMPLATES = (
    "{x}",
    "{x}.{y}",
    "{x}.{y}.{z}",
    "({x}+{y}).{z}",
    "{x}.({y}+{z})",
    "({x}+{y}).({y}+{z})",
)
_STARRED_TEMPLATES = (
    "{x}*.{y}",
    "{x}.{y}*",
    "({x}+{y})*",
    "{x}.({y}.{z})*",
)


@dataclass(frozen=True)
class Workload:
    """One reproducible scenario: a graph plus matching query/view mixes."""

    family: str
    seed: int
    graph: GraphDB
    queries: tuple[str, ...]
    views: tuple[tuple[str, str], ...]  # (view name, regex), definition order

    @property
    def view_defs(self) -> dict[str, str]:
        return dict(self.views)

    def __repr__(self) -> str:
        return (
            f"Workload[{self.family}(seed={self.seed}, "
            f"nodes={self.graph.num_nodes}, edges={self.graph.num_edges}, "
            f"queries={len(self.queries)})]"
        )


def _check_family(family: str) -> None:
    if family not in FAMILIES:
        raise ValueError(
            f"unknown workload family {family!r}; choose one of {FAMILIES}"
        )


def _node_names(count: int) -> list[str]:
    return [f"n{i}" for i in range(count)]


def make_graph(family: str, seed: int, *, edges: int = 1000) -> GraphDB:
    """A seeded graph of the given family with at least ``edges`` edges.

    ``edges`` is a floor, not an exact count: lattice-shaped families
    round up to the next complete shape (e.g. a full W x W grid).  The
    same ``(family, seed, edges)`` triple produces a byte-identical
    graph in any process (see :func:`graph_signature`).
    """
    _check_family(family)
    if edges < 1:
        raise ValueError("a workload graph needs at least one edge")
    rng = random.Random((seed, family, edges).__repr__())
    builder = _BUILDERS[family]
    db = builder(rng, edges)
    assert db.num_edges >= edges, (family, db.num_edges, edges)
    return db


def _build_chain(rng: random.Random, edges: int) -> GraphDB:
    labels = _LABELS["chain"]
    names = _node_names(edges + 1)
    db = GraphDB()
    for i in range(edges):
        db.add_edge(names[i], rng.choice(labels), names[i + 1])
    return db


def _build_grid(rng: random.Random, edges: int) -> GraphDB:
    # A rows x cols lattice (rows = cols + seeded jitter): the aspect
    # ratio is the seeded degree of freedom, the lattice itself is fully
    # determined.  Smallest complete lattice reaching the edge floor.
    jitter = rng.randrange(3)
    cols = 2
    while (cols + jitter) * (cols - 1) + (cols + jitter - 1) * cols < edges:
        cols += 1
    rows = cols + jitter
    names = _node_names(rows * cols)
    db = GraphDB()
    for name in names:
        db.add_node(name)
    for row in range(rows):
        for col in range(cols):
            here = names[row * cols + col]
            if col + 1 < cols:
                db.add_edge(here, "r", names[row * cols + col + 1])
            if row + 1 < rows:
                db.add_edge(here, "d", names[(row + 1) * cols + col])
    return db


def _build_scale_free(rng: random.Random, edges: int) -> GraphDB:
    # Preferential attachment with m out-edges per arriving node: targets
    # are drawn from a repeated-endpoint list, so a node's sampling weight
    # is proportional to its degree (the Barabasi-Albert trick).
    labels = _LABELS["scale_free"]
    m = 3
    num_nodes = max(m + 1, edges // m + 1)
    names = _node_names(num_nodes)
    db = GraphDB()
    endpoint_pool: list[int] = []
    for i in range(m + 1):
        db.add_node(names[i])
        endpoint_pool.append(i)
    for i in range(m + 1, num_nodes):
        chosen: set[int] = set()
        while len(chosen) < m:
            chosen.add(endpoint_pool[rng.randrange(len(endpoint_pool))])
        for target in sorted(chosen):
            db.add_edge(names[i], rng.choice(labels), names[target])
            endpoint_pool.append(target)
        endpoint_pool.append(i)
    # Top up duplicates-collapsed shortfall with random hub-biased edges.
    while db.num_edges < edges:
        source = endpoint_pool[rng.randrange(len(endpoint_pool))]
        target = endpoint_pool[rng.randrange(len(endpoint_pool))]
        db.add_edge(names[source], rng.choice(labels), names[target])
    return db


def _build_layered_dag(rng: random.Random, edges: int) -> GraphDB:
    # Roughly square: L layers of width L, edges only layer i -> i+1.
    labels = _LABELS["layered_dag"]
    layers = 3
    while (layers - 1) * layers * 2 < edges:
        layers += 1
    width = layers
    names = _node_names(layers * width)
    db = GraphDB()
    for name in names:
        db.add_node(name)
    while db.num_edges < edges:
        layer = rng.randrange(layers - 1)
        source = layer * width + rng.randrange(width)
        target = (layer + 1) * width + rng.randrange(width)
        db.add_edge(names[source], rng.choice(labels), names[target])
    return db


_BUILDERS = {
    "chain": _build_chain,
    "grid": _build_grid,
    "scale_free": _build_scale_free,
    "layered_dag": _build_layered_dag,
}


def make_queries(
    family: str,
    seed: int,
    *,
    count: int = 8,
    include_starred: bool = True,
) -> tuple[str, ...]:
    """A seeded query mix over the family's edge alphabet.

    With ``include_starred=False`` only bounded-length templates are
    used — the right mix for all-pairs benchmarks on large graphs, where
    a star over a dense family would make the answer itself quadratic.
    """
    _check_family(family)
    if count < 1:
        raise ValueError("a query mix needs at least one query")
    rng = random.Random((seed, family, "queries").__repr__())
    templates = _BOUNDED_TEMPLATES + (
        _STARRED_TEMPLATES if include_starred else ()
    )
    labels = _LABELS[family]
    queries = []
    for _ in range(count):
        template = templates[rng.randrange(len(templates))]
        queries.append(
            template.format(
                x=rng.choice(labels), y=rng.choice(labels), z=rng.choice(labels)
            )
        )
    return tuple(queries)


def make_views(family: str, seed: int) -> tuple[tuple[str, str], ...]:
    """A seeded view mix: every elementary view plus seeded composites.

    Elementary views (one per label) guarantee the maximal rewriting of
    any query over the family alphabet is exact, so service-level
    harnesses can compare view-based answers against direct evaluation.
    """
    _check_family(family)
    rng = random.Random((seed, family, "views").__repr__())
    labels = _LABELS[family]
    views = [(f"v_{label}", label) for label in labels]
    x, y = rng.choice(labels), rng.choice(labels)
    views.append((f"v_{x}{y}", f"{x}.{y}"))
    views.append((f"v_{x}s", f"{x}*"))
    return tuple(views)


def make_workload(
    family: str,
    seed: int,
    *,
    edges: int = 1000,
    queries: int = 8,
    include_starred: bool = True,
) -> Workload:
    """Bundle a seeded graph with its matching query and view mixes."""
    return Workload(
        family=family,
        seed=seed,
        graph=make_graph(family, seed, edges=edges),
        queries=make_queries(
            family, seed, count=queries, include_starred=include_starred
        ),
        views=make_views(family, seed),
    )


# ----------------------------------------------------------------------
# Seeded update streams (the evolving-data half of a workload)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class UpdateOp:
    """One tuple-level store mutation in a seeded update stream.

    ``op`` is ``"insert"`` or ``"delete"``; the remaining fields are the
    ``(symbol, source, target)`` tuple it applies to — view-extension
    tuples when the stream feeds a
    :class:`~repro.service.store.MaterializedViewStore` (the default
    symbols are the family's elementary view names), or plain edges when
    ``symbols`` is set to the family's edge labels.
    """

    op: str
    symbol: str
    source: str
    target: str


def make_update_stream(
    family: str,
    seed: int,
    *,
    count: int,
    symbols: tuple[str, ...] | None = None,
    base: "dict[str, Iterable[tuple[str, str]]] | None" = None,
    delete_fraction: float = 0.0,
    reinsert_fraction: float = 0.0,
    fresh_node_fraction: float = 0.1,
) -> tuple[UpdateOp, ...]:
    """A seeded stream of ``count`` insert/delete tuple operations.

    The stream honours the module's determinism contract — a pure
    function of its arguments, byte-identical in every process — and is
    *consistent by construction*: every insert targets a tuple not
    currently present (given ``base`` and the stream's own prior ops)
    and every delete targets one that is, so replaying the stream
    against a store loaded with ``base`` makes each op effective exactly
    once.  That is what lets the incremental-maintenance benchmark and
    the differential fuzz harness share one generator.

    ``symbols`` defaults to the family's elementary view names
    (``v_<label>``, matching :func:`make_views`).  ``base`` seeds the
    present-tuple set (and the endpoint pool) with a store's existing
    extensions, so deletions can hit pre-existing tuples.
    ``delete_fraction`` is the per-op probability of a delete (when
    anything is deletable); ``reinsert_fraction`` is the per-op
    probability that an insert re-targets a tuple the stream itself
    deleted earlier (the delete-then-reinsert pattern incremental
    maintenance must survive); ``fresh_node_fraction`` is the
    per-endpoint probability of minting a brand-new node (``u0``,
    ``u1``, ...) instead of reusing the pool, which keeps node-universe
    growth exercised.

    Backward-deterministic: with ``reinsert_fraction=0.0`` (the default)
    the knob consumes no randomness and does not enter the stream's seed
    key, so streams generated before the knob existed are byte-identical.
    """
    _check_family(family)
    if count < 1:
        raise ValueError("an update stream needs at least one operation")
    if not 0.0 <= delete_fraction <= 1.0:
        raise ValueError(f"delete_fraction must be in [0, 1], got {delete_fraction}")
    if not 0.0 <= reinsert_fraction <= 1.0:
        raise ValueError(
            f"reinsert_fraction must be in [0, 1], got {reinsert_fraction}"
        )
    if not 0.0 <= fresh_node_fraction <= 1.0:
        raise ValueError(
            f"fresh_node_fraction must be in [0, 1], got {fresh_node_fraction}"
        )
    if symbols is None:
        symbols = tuple(f"v_{label}" for label in _LABELS[family])
    else:
        symbols = tuple(symbols)
        if not symbols:
            raise ValueError("symbols must not be empty")
    seed_key = (seed, family, "updates", count, repr(delete_fraction))
    if reinsert_fraction:
        # Appended only when active, so pre-existing (seed, fraction)
        # streams keep their exact bytes (the determinism contract).
        seed_key += (repr(reinsert_fraction),)
    rng = random.Random(seed_key.__repr__())
    # Present tuples and the endpoint pool, in canonical (sorted) order so
    # index-based choices are process-independent; both evolve with the
    # stream, deterministically.
    present: set[tuple[str, str, str]] = set()
    if base:
        for symbol in sorted(base):
            for source, target in sorted(base[symbol]):
                present.add((str(symbol), str(source), str(target)))
    present_list = sorted(present)
    pool = sorted({node for _s, source, target in present for node in (source, target)})
    fresh_counter = 0

    def pick_endpoint() -> str:
        nonlocal fresh_counter
        if not pool or rng.random() < fresh_node_fraction:
            name = f"u{fresh_counter}"
            fresh_counter += 1
            return name
        return pool[rng.randrange(len(pool))]

    ops: list[UpdateOp] = []
    deleted_list: list[tuple[str, str, str]] = []
    for _ in range(count):
        if present_list and rng.random() < delete_fraction:
            index = rng.randrange(len(present_list))
            symbol, source, target = present_list.pop(index)
            present.discard((symbol, source, target))
            deleted_list.append((symbol, source, target))
            ops.append(UpdateOp("delete", symbol, source, target))
            continue
        if (
            reinsert_fraction
            and deleted_list
            and rng.random() < reinsert_fraction
        ):
            candidate = deleted_list.pop(rng.randrange(len(deleted_list)))
            # A random insert may have already re-created the tuple; a
            # stale entry just falls through to a fresh insert.
            if candidate not in present:
                symbol, source, target = candidate
                present.add(candidate)
                present_list.append(candidate)
                for node in (source, target):
                    if node.startswith("u") and node not in pool:
                        pool.append(node)
                ops.append(UpdateOp("insert", symbol, source, target))
                continue
        candidate = None
        for _attempt in range(32):
            attempt_tuple = (
                symbols[rng.randrange(len(symbols))],
                pick_endpoint(),
                pick_endpoint(),
            )
            if attempt_tuple not in present:
                candidate = attempt_tuple
                break
        while candidate is None or candidate in present:
            # A dense pool can exhaust the retry budget; a minted source
            # node makes the tuple new (modulo a base that already used
            # ``u``-prefixed names, hence the loop).
            fresh_source = f"u{fresh_counter}"
            fresh_counter += 1
            candidate = (
                symbols[rng.randrange(len(symbols))],
                fresh_source,
                pool[rng.randrange(len(pool))] if pool else fresh_source,
            )
        symbol, source, target = candidate
        present.add(candidate)
        present_list.append(candidate)
        for node in (source, target):
            if node.startswith("u") and node not in pool:
                pool.append(node)
        ops.append(UpdateOp("insert", symbol, source, target))
    return tuple(ops)


# ----------------------------------------------------------------------
# Seeded traffic mixes (the serving half of a workload)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TrafficOp:
    """One request in a seeded serving-traffic stream.

    ``kind`` is ``"query"`` or ``"update"``.  A query op carries the
    query string plus its shape: ``mode`` is ``"all"`` (all pairs),
    ``"single_source"`` (``source`` set), or ``"pair"`` (``source`` and
    ``target`` set).  An update op carries a batch of
    :class:`UpdateOp` tuple changes in application order.  The stream's
    update batches are consistent only when applied *in stream order*
    (they come from one :func:`make_update_stream`), which matches the
    serving front end's single-writer-per-tenant regime.
    """

    kind: str
    mode: str = "all"
    query: str | None = None
    source: str | None = None
    target: str | None = None
    updates: tuple[UpdateOp, ...] = ()


def make_traffic_mix(
    family: str,
    seed: int,
    *,
    count: int,
    base: "dict[str, Iterable[tuple[str, str]]] | None" = None,
    queries: "tuple[str, ...] | None" = None,
    query_count: int = 8,
    include_starred: bool = False,
    write_fraction: float = 0.2,
    batch_size: int = 1,
    delete_fraction: float = 0.3,
    reinsert_fraction: float = 0.0,
    single_source_fraction: float = 0.2,
    pair_fraction: float = 0.1,
) -> tuple[TrafficOp, ...]:
    """A seeded query/update request mix for the serving front end.

    Honours the module's determinism contract: a pure function of its
    arguments, byte-identical in every process.  Roughly
    ``write_fraction`` of the ``count`` requests are update batches of
    ``batch_size`` tuple changes drawn — in order — from one consistent
    :func:`make_update_stream` over ``base`` (so each change is
    effective exactly once when the batches are applied in stream
    order); the rest are queries drawn from ``queries`` (default: the
    family's seeded bounded mix of ``query_count`` queries), shaped as
    single-source with probability ``single_source_fraction``, as a
    single pair with probability ``pair_fraction``, and as all-pairs
    otherwise.  Query endpoints are drawn from the nodes of ``base``,
    so single-source/pair requests hit the live part of the store;
    without a ``base`` every query is all-pairs.
    """
    _check_family(family)
    if count < 1:
        raise ValueError("a traffic mix needs at least one request")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    for name, fraction in (
        ("write_fraction", write_fraction),
        ("single_source_fraction", single_source_fraction),
        ("pair_fraction", pair_fraction),
    ):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {fraction}")
    if single_source_fraction + pair_fraction > 1.0:
        raise ValueError(
            "single_source_fraction + pair_fraction must be <= 1, got "
            f"{single_source_fraction + pair_fraction}"
        )
    if queries is None:
        queries = make_queries(
            family, seed, count=query_count, include_starred=include_starred
        )
    else:
        queries = tuple(queries)
        if not queries:
            raise ValueError("queries must not be empty")
    seed_key = (
        seed,
        family,
        "traffic",
        count,
        repr(write_fraction),
        repr(single_source_fraction),
        repr(pair_fraction),
    )
    rng = random.Random(seed_key.__repr__())
    kinds = [
        "update" if rng.random() < write_fraction else "query"
        for _ in range(count)
    ]
    num_batches = kinds.count("update")
    stream: tuple[UpdateOp, ...] = ()
    if num_batches:
        stream = make_update_stream(
            family,
            seed,
            count=num_batches * batch_size,
            base=base,
            delete_fraction=delete_fraction,
            reinsert_fraction=reinsert_fraction,
        )
    # Endpoint pool in canonical (sorted) order so index-based draws are
    # process-independent, matching make_update_stream.
    pool: list[str] = sorted(
        {
            str(node)
            for pairs in (base or {}).values()
            for pair in pairs
            for node in pair
        }
    )
    ops: list[TrafficOp] = []
    cursor = 0
    for kind in kinds:
        if kind == "update":
            batch = stream[cursor : cursor + batch_size]
            cursor += batch_size
            ops.append(TrafficOp(kind="update", updates=tuple(batch)))
            continue
        query = queries[rng.randrange(len(queries))]
        shape = rng.random()
        if pool and shape < single_source_fraction:
            ops.append(
                TrafficOp(
                    kind="query",
                    mode="single_source",
                    query=query,
                    source=pool[rng.randrange(len(pool))],
                )
            )
        elif pool and shape < single_source_fraction + pair_fraction:
            ops.append(
                TrafficOp(
                    kind="query",
                    mode="pair",
                    query=query,
                    source=pool[rng.randrange(len(pool))],
                    target=pool[rng.randrange(len(pool))],
                )
            )
        else:
            ops.append(TrafficOp(kind="query", mode="all", query=query))
    return tuple(ops)


def make_crash_points(
    family: str,
    seed: int,
    *,
    count: int = 3,
    min_delay: float = 0.05,
    max_delay: float = 0.60,
) -> tuple[float, ...]:
    """A seeded schedule of kill delays for fault-injection harnesses.

    Each entry is how long (in seconds) to let a server absorb live
    traffic before ``kill -9``-ing it — drawn uniformly from
    ``[min_delay, max_delay)`` so the kill lands at a different point of
    the write stream on every round (mid-batch, between batches, during
    a checkpoint) while staying reproducible: the same
    ``(family, seed, count, bounds)`` always yields the same schedule,
    honouring the module's determinism contract.  Wall-clock delays
    rather than op indices are deliberate: they also catch crashes
    inside background work (checkpoint rolls, fsync) that no op index
    can address.
    """
    _check_family(family)
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if not 0 <= min_delay <= max_delay:
        raise ValueError(
            f"need 0 <= min_delay <= max_delay, got {min_delay}..{max_delay}"
        )
    seed_key = (seed, family, "crash-points", count, min_delay, max_delay)
    rng = random.Random(seed_key.__repr__())
    return tuple(
        min_delay + (max_delay - min_delay) * rng.random()
        for _ in range(count)
    )


# ----------------------------------------------------------------------
# Canonical bytes (the determinism contract made checkable)
# ----------------------------------------------------------------------


def graph_triples(db: GraphDB) -> Iterator[tuple[str, str, str]]:
    """The edge set as sorted, stringified triples (canonical order)."""
    return iter(
        sorted(
            (str(source), str(label), str(target))
            for source, label, target in db.edges()
        )
    )


def graph_signature(db: GraphDB) -> str:
    """A sha256 hex digest of the graph's canonical bytes.

    Covers the sorted triple set *and* the node interning order, so two
    graphs share a signature exactly when the engine sees them as
    identical (same ids, same indexes).
    """
    digest = hashlib.sha256()
    node_at = db.node_at
    for node_id in range(db.num_nodes):
        digest.update(str(node_at(node_id)).encode())
        digest.update(b"\x00")
    digest.update(b"\x01")
    for source, label, target in graph_triples(db):
        digest.update(f"{source}\t{label}\t{target}\n".encode())
    return digest.hexdigest()
