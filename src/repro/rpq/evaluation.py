"""Evaluation of regular path queries over graph databases (Definition 4.2).

The answer ``ans(L, DB)`` is the set of node pairs ``(x, y)`` connected by a
path whose label word belongs to ``L`` (after formula matching, in the
theory-based approach).  Evaluation is the standard product-reachability
construction — polynomial in both the database and the query.

Two evaluators implement that semantics:

* the **compiled engine** (:mod:`repro.rpq.engine`) — the default behind
  :func:`evaluate` / :func:`ans` / :func:`evaluate_from` /
  :func:`evaluate_pair`.  It precompiles the query automaton against the
  theory and the database's label domain, then runs label-indexed,
  set-at-a-time frontier sweeps shared across all sources;
* the **naive evaluator** (:func:`naive_evaluate`, with the helper
  :func:`naive_ans`) — one BFS per source with a per-edge matcher closure,
  a direct transcription of Definition 4.2.  It is kept as the reference
  oracle for differential testing and benchmarking; the engine must agree
  with it on every (database, query, theory) triple.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable, Union

from ..automata.dfa import DFA
from ..automata.nfa import NFA
from . import engine as _engine
from .formulas import Formula
from .graphdb import GraphDB
from .query import RPQ, QuerySpec
from .theory import Theory

__all__ = [
    "evaluate",
    "evaluate_sorted",
    "ans",
    "ans_sorted",
    "evaluate_from",
    "evaluate_pair",
    "naive_evaluate",
    "naive_ans",
    "sort_pairs",
]

Automaton = Union[NFA, DFA]
Pair = tuple[Hashable, Hashable]


def _compiled_for(
    db: GraphDB, query: QuerySpec, theory: Theory | None
) -> _engine.CompiledAutomaton:
    rpq = query if isinstance(query, RPQ) else RPQ(query)
    return _engine.compile_automaton(rpq.eps_free_nfa(), theory, db.domain())


def evaluate(
    db: GraphDB, query: QuerySpec, theory: Theory | None = None
) -> frozenset[Pair]:
    """Evaluate an RPQ over ``db``; formulae require a ``theory``.

    Returns all pairs ``(x, y)`` such that some path from ``x`` to ``y``
    matches the query (Definition 4.2).  Runs on the compiled engine; see
    :func:`naive_evaluate` for the reference implementation.
    """
    return _engine.evaluate_all(db, _compiled_for(db, query, theory))


def evaluate_sorted(
    db: GraphDB, query: QuerySpec, theory: Theory | None = None
) -> list[Pair]:
    """:func:`evaluate` with the deterministic ordering guarantee.

    Answers are sorted by ``(node_id(x), node_id(y))`` — the database's
    interning order — which is identical across processes, shard counts,
    and worker counts (see :func:`repro.rpq.engine.evaluate_all_sorted`).
    """
    return _engine.evaluate_all_sorted(db, _compiled_for(db, query, theory))


def ans(language: Automaton, db: GraphDB) -> frozenset[Pair]:
    """The paper's ``ans(alpha, DB)`` for a regular language over D.

    Symbols are matched against edge labels by equality (no theory), which
    is exactly how rewritings — languages over the view alphabet — are
    evaluated on view graphs.
    """
    return frozenset(ans_sorted(language, db))


def ans_sorted(language: Automaton, db: GraphDB) -> list[Pair]:
    """:func:`ans` as a deterministically ordered list.

    Same answer set as :func:`ans`, sorted by
    ``(node_id(x), node_id(y))`` — stable across processes and across
    the shard/worker counts of the parallel evaluator, so differential
    asserts can compare whole lists instead of sets.
    """
    nfa = language.to_nfa() if isinstance(language, DFA) else language
    compiled = _engine.compile_automaton(
        nfa, None, db.domain(), plain_symbols=True
    )
    return _engine.evaluate_all_sorted(db, compiled)


def sort_pairs(db: GraphDB, pairs: "frozenset[Pair] | set[Pair]") -> list[Pair]:
    """Sort an answer set into the canonical ``(node_id, node_id)`` order.

    The bridge for oracles that produce plain sets (``naive_evaluate``,
    ``naive_ans``): sorting their answers with this key yields exactly
    the list the engine's ``*_sorted`` entry points return.
    """
    node_id = db.node_id
    return sorted(pairs, key=lambda pair: (node_id(pair[0]), node_id(pair[1])))


def evaluate_from(
    db: GraphDB,
    source: Hashable,
    query: QuerySpec,
    theory: Theory | None = None,
) -> frozenset[Hashable]:
    """Single-source variant: all ``y`` with ``(source, y)`` in the answer.

    Raises ``KeyError`` if ``source`` is not a node of ``db``.
    """
    return _engine.evaluate_single_source(
        db, _compiled_for(db, query, theory), source
    )


def evaluate_pair(
    db: GraphDB,
    source: Hashable,
    target: Hashable,
    query: QuerySpec,
    theory: Theory | None = None,
) -> bool:
    """Single-pair variant: is ``(source, target)`` in the answer?

    Decided by the engine's bidirectional search, which meets a forward
    frontier from ``source`` with a backward frontier from ``target``
    instead of exploring the full forward reachability set.
    """
    return _engine.evaluate_pair(
        db, _compiled_for(db, query, theory), source, target
    )


# ----------------------------------------------------------------------
# Naive reference evaluator (Definition 4.2, transcribed literally)
# ----------------------------------------------------------------------


def naive_evaluate(
    db: GraphDB, query: QuerySpec, theory: Theory | None = None
) -> frozenset[Pair]:
    """Reference implementation of :func:`evaluate`: one BFS per source.

    Kept deliberately simple (per-edge matcher closure, no indexes, no
    compilation) so it can serve as the differential-testing oracle for
    the engine.
    """
    rpq = query if isinstance(query, RPQ) else RPQ(query)
    matcher = _build_matcher(rpq.nfa(), theory)
    return _product_reachability(db, rpq.eps_free_nfa(), matcher)


def naive_ans(language: Automaton, db: GraphDB) -> frozenset[Pair]:
    """Reference implementation of :func:`ans` (equality matching)."""
    nfa = language.to_nfa() if isinstance(language, DFA) else language
    return _product_reachability(
        db, nfa.without_epsilon(), lambda symbol, label: symbol == label
    )


def _build_matcher(
    nfa: NFA, theory: Theory | None
) -> Callable[[Hashable, Hashable], bool]:
    """Resolve the symbol-vs-edge-label matching discipline once."""
    formula_symbols = [s for s in nfa.alphabet if isinstance(s, Formula)]
    if formula_symbols and theory is None:
        raise ValueError(
            "query uses formulae; a Theory is required to evaluate it"
        )
    if not formula_symbols:
        return lambda symbol, label: symbol == label
    satisfying = {phi: theory.satisfying(phi) for phi in formula_symbols}

    def matcher(symbol: Hashable, label: Hashable) -> bool:
        if isinstance(symbol, Formula):
            return label in satisfying[symbol]
        return symbol == label

    return matcher


def _product_reachability(
    db: GraphDB, nfa: NFA, matcher: Callable[[Hashable, Hashable], bool]
) -> frozenset[Pair]:
    answers: set[Pair] = set()
    for source in db.nodes:
        answers.update(_search_from(db, source, nfa, matcher))
    return frozenset(answers)


def _search_from(
    db: GraphDB,
    source: Hashable,
    nfa: NFA,
    matcher: Callable[[Hashable, Hashable], bool],
) -> set[Pair]:
    """BFS of the (node, state) product from one source node."""
    if source not in db.nodes:
        raise KeyError(f"unknown node {source!r}")
    answers: set[Pair] = set()
    start = {(source, state) for state in nfa.initials}
    seen = set(start)
    queue: deque[tuple[Hashable, int]] = deque(start)
    for _node, state in start:
        if state in nfa.finals:
            answers.add((source, source))
    while queue:
        node, state = queue.popleft()
        row = nfa.transitions_from(state)
        if not row:
            continue
        for label, target_node in db.out_edges(node):
            for symbol, next_states in row.items():
                if not matcher(symbol, label):
                    continue
                for next_state in next_states:
                    pair = (target_node, next_state)
                    if pair in seen:
                        continue
                    seen.add(pair)
                    if next_state in nfa.finals:
                        answers.add((source, target_node))
                    queue.append(pair)
    return answers
