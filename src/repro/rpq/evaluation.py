"""Evaluation of regular path queries over graph databases (Definition 4.2).

The answer ``ans(L, DB)`` is the set of node pairs ``(x, y)`` connected by a
path whose label word belongs to ``L`` (after formula matching, in the
theory-based approach).  Evaluation is the standard product-reachability
construction: breadth-first search over (graph node, automaton state) pairs,
started from every node — polynomial in both the database and the query.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable, Union

from ..automata.dfa import DFA
from ..automata.nfa import NFA
from .formulas import Formula
from .graphdb import GraphDB
from .query import RPQ, QuerySpec
from .theory import Theory

__all__ = ["evaluate", "ans", "evaluate_from"]

Automaton = Union[NFA, DFA]
Pair = tuple[Hashable, Hashable]


def evaluate(
    db: GraphDB, query: QuerySpec, theory: Theory | None = None
) -> frozenset[Pair]:
    """Evaluate an RPQ over ``db``; formulae require a ``theory``.

    Returns all pairs ``(x, y)`` such that some path from ``x`` to ``y``
    matches the query (Definition 4.2).
    """
    rpq = query if isinstance(query, RPQ) else RPQ(query)
    matcher = _build_matcher(rpq.nfa(), theory)
    return _product_reachability(db, rpq.nfa().without_epsilon(), matcher)


def ans(language: Automaton, db: GraphDB) -> frozenset[Pair]:
    """The paper's ``ans(alpha, DB)`` for a regular language over D."""
    nfa = language.to_nfa() if isinstance(language, DFA) else language
    return _product_reachability(
        db, nfa.without_epsilon(), lambda symbol, label: symbol == label
    )


def evaluate_from(
    db: GraphDB,
    source: Hashable,
    query: QuerySpec,
    theory: Theory | None = None,
) -> frozenset[Hashable]:
    """Single-source variant: all ``y`` with ``(source, y)`` in the answer."""
    rpq = query if isinstance(query, RPQ) else RPQ(query)
    nfa = rpq.nfa().without_epsilon()
    matcher = _build_matcher(rpq.nfa(), theory)
    return frozenset(
        y for x, y in _search_from(db, source, nfa, matcher)
    )


def _build_matcher(
    nfa: NFA, theory: Theory | None
) -> Callable[[Hashable, Hashable], bool]:
    """Resolve the symbol-vs-edge-label matching discipline once."""
    formula_symbols = [s for s in nfa.alphabet if isinstance(s, Formula)]
    if formula_symbols and theory is None:
        raise ValueError(
            "query uses formulae; a Theory is required to evaluate it"
        )
    if not formula_symbols:
        return lambda symbol, label: symbol == label
    satisfying = {phi: theory.satisfying(phi) for phi in formula_symbols}

    def matcher(symbol: Hashable, label: Hashable) -> bool:
        if isinstance(symbol, Formula):
            return label in satisfying[symbol]
        return symbol == label

    return matcher


def _product_reachability(
    db: GraphDB, nfa: NFA, matcher: Callable[[Hashable, Hashable], bool]
) -> frozenset[Pair]:
    answers: set[Pair] = set()
    for source in db.nodes:
        answers.update(_search_from(db, source, nfa, matcher))
    return frozenset(answers)


def _search_from(
    db: GraphDB,
    source: Hashable,
    nfa: NFA,
    matcher: Callable[[Hashable, Hashable], bool],
) -> set[Pair]:
    """BFS of the (node, state) product from one source node."""
    if source not in db.nodes:
        raise KeyError(f"unknown node {source!r}")
    answers: set[Pair] = set()
    start = {(source, state) for state in nfa.initials}
    seen = set(start)
    queue: deque[tuple[Hashable, int]] = deque(start)
    for _node, state in start:
        if state in nfa.finals:
            answers.add((source, source))
    while queue:
        node, state = queue.popleft()
        row = nfa.transitions_from(state)
        if not row:
            continue
        for label, target_node in db.out_edges(node):
            for symbol, next_states in row.items():
                if not matcher(symbol, label):
                    continue
                for next_state in next_states:
                    pair = (target_node, next_state)
                    if pair in seen:
                        continue
                    seen.add(pair)
                    if next_state in nfa.finals:
                        answers.add((source, target_node))
                    queue.append(pair)
    return answers
