"""Regular path queries (Section 4.1).

A regular path query (RPQ) denotes a regular language over either

* the domain ``D`` itself (the first semi-structured approach, where
  queries mention edge labels directly), or
* the set ``F`` of unary formulae of a theory T (the second approach,
  [BDFS97]-style), in which case a D-word *matches* an F-word when T
  entails each formula at the respective constant (Definition 4.1).

Both flavours are captured by one class: alphabet symbols that are
:class:`~repro.rpq.formulas.Formula` instances are interpreted modulo the
theory, plain symbols are interpreted as the constants themselves.

The *grounding* ``Q^*`` of Section 4.2 — the automaton over D accepting
``match(L(Q))`` — is computed by :meth:`RPQ.grounded`, optionally over
equivalence-class representatives (the paper's constant-partitioning
optimization).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Union

from ..automata.nfa import EPS, NFA
from ..automata.thompson import to_nfa
from ..regex.ast import Regex
from ..regex.parser import parse
from .formulas import Const, Formula
from .theory import Theory

__all__ = ["RPQ", "QuerySpec"]

QuerySpec = Union[str, Regex, NFA, "RPQ"]


class RPQ:
    """A regular path query (Section 4.1): a regular language over edge
    labels, or over unary formulae interpreted modulo a theory.  Accepts
    a regex string, a :class:`~repro.regex.ast.Regex`, an
    :class:`~repro.automata.nfa.NFA`, or another RPQ; the compiled and
    epsilon-free automata are cached on the instance so repeated
    evaluation and grounding never redo that work."""

    def __init__(self, spec: QuerySpec, name: str | None = None):
        self._eps_free: NFA | None = None
        if isinstance(spec, RPQ):
            self._nfa = spec.nfa()
            self._eps_free = spec._eps_free
            self.expr: Regex | None = spec.expr
            name = name or spec.name
        elif isinstance(spec, str):
            self.expr = parse(spec)
            self._nfa = to_nfa(self.expr)
        elif isinstance(spec, Regex):
            self.expr = spec
            self._nfa = to_nfa(spec)
        elif isinstance(spec, NFA):
            self.expr = None
            self._nfa = spec
        else:
            raise TypeError(f"cannot build an RPQ from {type(spec).__name__}")
        self.name = name

    def nfa(self) -> NFA:
        """The compiled automaton over the query's alphabet."""
        return self._nfa

    def eps_free_nfa(self) -> NFA:
        """The epsilon-free equivalent of :meth:`nfa`, computed once.

        Evaluation (:mod:`repro.rpq.engine`) always works on the
        epsilon-free automaton; caching it here keeps repeated evaluations
        of the same query object from redoing closure elimination.
        """
        if self._eps_free is None:
            nfa = self._nfa
            self._eps_free = (
                nfa.without_epsilon() if nfa.has_epsilon_moves() else nfa
            )
        return self._eps_free

    def alphabet(self) -> frozenset[Hashable]:
        return self._nfa.alphabet

    def formulas(self) -> frozenset[Formula]:
        """The formula symbols used by this query (may be empty)."""
        return frozenset(
            symbol for symbol in self._nfa.alphabet if isinstance(symbol, Formula)
        )

    def as_formula_query(self) -> "RPQ":
        """Reinterpret plain symbols ``a`` as elementary formulae ``z = a``.

        The paper treats direct-label queries as the special case of formula
        queries using only ``lambda z. z = a`` predicates; this performs that
        embedding explicitly.
        """
        nfa = self._nfa
        transitions: dict[int, dict[Hashable, set[int]]] = {}
        for src, label, dst in nfa.iter_transitions():
            if label is EPS or isinstance(label, Formula):
                key: Hashable = label
            else:
                key = Const(label)
            transitions.setdefault(src, {}).setdefault(key, set()).add(dst)
        alphabet = {
            symbol if isinstance(symbol, Formula) else Const(symbol)
            for symbol in nfa.alphabet
        }
        lifted = NFA(nfa.states, alphabet, transitions, nfa.initials, nfa.finals)
        return RPQ(lifted, name=self.name)

    def grounded(
        self,
        theory: Theory,
        restrict_to: Iterable[Hashable] | None = None,
    ) -> NFA:
        """The automaton ``Q^*`` over D accepting ``match(L(Q))``.

        Each formula transition ``s --phi--> t`` becomes one transition
        ``s --a--> t`` per constant ``a`` with ``T |= phi(a)``; plain-symbol
        transitions are kept provided the symbol belongs to the domain.

        ``restrict_to`` optionally restricts the grounding alphabet — pass
        the class representatives from :meth:`Theory.representatives` to
        apply the paper's partitioning optimization.
        """
        allowed = (
            frozenset(restrict_to) if restrict_to is not None else theory.domain
        )
        nfa = self._nfa
        transitions: dict[int, dict[Hashable, set[int]]] = {}
        for src, label, dst in nfa.iter_transitions():
            if label is EPS:
                transitions.setdefault(src, {}).setdefault(EPS, set()).add(dst)
                continue
            if isinstance(label, Formula):
                constants = theory.satisfying(label) & allowed
            else:
                if label not in theory.domain:
                    raise ValueError(
                        f"query symbol {label!r} is not a domain constant"
                    )
                constants = {label} & allowed
            for constant in constants:
                transitions.setdefault(src, {}).setdefault(constant, set()).add(dst)
        return NFA(
            states=nfa.states,
            alphabet=allowed,
            transitions=transitions,
            initials=nfa.initials,
            finals=nfa.finals,
        )

    def __repr__(self) -> str:
        label = self.name or (str(self.expr) if self.expr is not None else "<nfa>")
        return f"RPQ({label})"
