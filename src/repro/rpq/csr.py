"""Frozen CSR snapshots of a :class:`~repro.rpq.graphdb.GraphDB`.

The live graph stores its edges label-first in Python dict-of-set
indexes — ideal for single-edge mutation, hostile to vectorized sweeps.
A :class:`CSRSnapshot` freezes one version of the graph into per-label
compressed-sparse-row arrays over the dense node ids:

* ``out_indptr``/``out_indices`` — forward CSR: the targets of node
  ``v``'s ``label``-edges are ``out_indices[out_indptr[v]:out_indptr[v+1]]``,
  sorted ascending.
* ``in_indptr``/``in_indices`` — reverse CSR: the *sources* of the
  ``label``-edges entering ``v``.  This is the orientation the numpy
  kernel (:mod:`repro.rpq.kernel`) consumes: one frontier-expansion round
  OR-gathers, for every target node, the mask rows of its in-neighbours.

Snapshots serialize to a single memory-mappable file
(:meth:`CSRSnapshot.save` / :meth:`CSRSnapshot.load`): a small pickled
header (labels, shapes, offsets) followed by 64-byte-aligned raw array
data.  ``load(path, mmap=True)`` returns a snapshot whose arrays are
read-only views into one :func:`numpy.memmap` — worker processes of
:class:`~repro.rpq.sharded.ParallelEvaluator` map the same file
zero-copy instead of unpickling per-worker edge dicts, so shipping a
refreshed snapshot costs one path string per task.

Node ids beyond the last edge-bearing node are representable by
construction: ``num_nodes`` is the graph's interning count, not the
count of currently-connected nodes, so a store that has drained to
empty still round-trips with every interned id addressable (their CSR
rows are simply empty).  See ``GraphDB.remove_edge`` for why ids never
shrink.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import pickle
from typing import Hashable, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .graphdb import GraphDB

__all__ = ["CSRSnapshot", "blocks_for"]

_MAGIC = b"RPQCSR\x01\n"
_ALIGN = 64

# Scratch-file serial for atomic saves (unique per process + call, like
# the plan cache's): a crash mid-write leaves only an orphaned *.tmp,
# never a truncated snapshot at the published path that lazily-mapping
# pool workers would mmap and crash on.
_TMP_SERIAL = itertools.count()


def blocks_for(num_columns: int) -> int:
    """How many uint64 blocks hold ``num_columns`` mask bits (min 1)."""
    return max(1, (num_columns + 63) >> 6)


def _label_sort_key(label: Hashable) -> tuple[str, str]:
    # Labels are arbitrary hashables, so order by (type, repr): total,
    # deterministic across processes, and stable for the common str case.
    return (type(label).__name__, repr(label))


class _LabelCSR:
    """The four CSR arrays of one label (see module docstring)."""

    __slots__ = ("out_indptr", "out_indices", "in_indptr", "in_indices")

    def __init__(self, out_indptr, out_indices, in_indptr, in_indices):
        self.out_indptr = out_indptr
        self.out_indices = out_indices
        self.in_indptr = in_indptr
        self.in_indices = in_indices


# How many degree-sorted destinations share one padded index matrix.
# Adjacent destinations in sorted order have near-equal in-degrees, so
# padding within a span is a few percent (vs ~35% for power-of-two
# degree buckets on dense graphs).
_SPAN_ROWS = 256


class _GatherPlan:
    """Padded gather/reduce schedule for one label's reverse CSR.

    ``bitwise_or.reduceat`` over ragged destination groups is the obvious
    reduction but measures ~3x slower than a *regular* one on this class
    of hardware, so the kernel regularizes the groups instead:
    destinations are sorted by in-degree and cut into spans of up to
    ``_SPAN_ROWS``; each span holds ``dsts`` (the target ids) and
    ``idx`` (an ``(m, w)`` source-id matrix, ``w`` the span's exact
    maximum degree, short rows padded with the sentinel id
    ``num_nodes``, whose mask row is pinned to zero).  A round then
    gathers ``delta[idx]`` — a dense ``(m, w, B)`` cube — and ORs it
    down axis 1 with a plain vectorized reduce.
    """

    __slots__ = ("spans", "sources")

    def __init__(self, label_csr: _LabelCSR, num_nodes: int):
        in_indptr = label_csr.in_indptr
        in_indices = label_csr.in_indices
        degrees = np.diff(in_indptr)
        nonzero = np.flatnonzero(degrees)
        self.spans: list[tuple[np.ndarray, np.ndarray]] = []
        # Sources with at least one out-edge of this label: the seed set
        # of any initial automaton state whose row matches the label.
        self.sources = np.flatnonzero(np.diff(label_csr.out_indptr))
        if nonzero.size == 0:
            return
        by_degree = nonzero[np.argsort(degrees[nonzero], kind="stable")]
        for start in range(0, by_degree.size, _SPAN_ROWS):
            selected = by_degree[start : start + _SPAN_ROWS]
            span_degrees = degrees[selected]
            width = int(span_degrees[-1])
            member = np.arange(width, dtype=np.int64)
            valid = member[None, :] < span_degrees[:, None]
            idx = np.full((selected.size, width), num_nodes, dtype=np.intp)
            flat = (in_indptr[selected][:, None] + member[None, :])[valid]
            idx[valid] = in_indices[flat]
            self.spans.append((selected.astype(np.intp), idx))


class CSRSnapshot:
    """A frozen, vectorization-ready copy of one graph version."""

    __slots__ = (
        "num_nodes",
        "num_edges",
        "labels",
        "_by_label",
        "_plans",
        "_bitmaps",
    )

    def __init__(
        self,
        num_nodes: int,
        num_edges: int,
        labels: tuple,
        by_label: dict[Hashable, _LabelCSR],
    ):
        self.num_nodes = num_nodes
        self.num_edges = num_edges
        self.labels = labels
        self._by_label = by_label
        self._plans: dict[Hashable, _GatherPlan] = {}
        self._bitmaps: dict[tuple, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, db: "GraphDB") -> "CSRSnapshot":
        """Freeze the current contents of ``db``."""
        num_nodes = db.num_nodes
        labels = tuple(sorted(db.domain(), key=_label_sort_key))
        by_label: dict[Hashable, _LabelCSR] = {}
        for label in labels:
            adjacency = db.label_out_index(label)
            source_ids = np.fromiter(
                adjacency.keys(), dtype=np.int64, count=len(adjacency)
            )
            counts = np.fromiter(
                (len(targets) for targets in adjacency.values()),
                dtype=np.int64,
                count=len(adjacency),
            )
            total = int(counts.sum())
            src = np.repeat(source_ids, counts)
            dst = np.empty(total, dtype=np.int64)
            cursor = 0
            for targets in adjacency.values():
                dst[cursor : cursor + len(targets)] = np.fromiter(
                    targets, dtype=np.int64, count=len(targets)
                )
                cursor += len(targets)
            forward = np.lexsort((dst, src))
            out_indptr = np.zeros(num_nodes + 1, dtype=np.int64)
            np.cumsum(
                np.bincount(src, minlength=num_nodes), out=out_indptr[1:]
            )
            out_indices = dst[forward]
            backward = np.lexsort((src, dst))
            in_indptr = np.zeros(num_nodes + 1, dtype=np.int64)
            np.cumsum(
                np.bincount(dst, minlength=num_nodes), out=in_indptr[1:]
            )
            in_indices = src[backward]
            by_label[label] = _LabelCSR(
                out_indptr, out_indices, in_indptr, in_indices
            )
        return cls(num_nodes, db.num_edges, labels, by_label)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def label_csr(self, label: Hashable) -> _LabelCSR | None:
        return self._by_label.get(label)

    def gather_plan(self, label: Hashable) -> _GatherPlan | None:
        """The (memoized) padded gather schedule for ``label``."""
        plan = self._plans.get(label)
        if plan is None:
            label_csr = self._by_label.get(label)
            if label_csr is None:
                return None
            plan = _GatherPlan(label_csr, self.num_nodes)
            self._plans[label] = plan
        return plan

    def adjacency_bitmap(
        self, label: Hashable, lo: int = 0, hi: int | None = None
    ) -> np.ndarray | None:
        """The label's adjacency as a block bitmatrix, memoized.

        Row ``w``, bit ``j`` set iff the edge ``(lo + j) --label--> w``
        exists.  This is exactly the first-round frontier contribution
        of a freshly seeded sweep (every in-neighbour of any target has
        an out-edge of the label, hence is itself a seed), which lets
        the kernel replace its first full gather pass per initial state
        with one precomputed OR.  ``None`` when the label has no edges.
        """
        if hi is None:
            hi = self.num_nodes
        key = (label, lo, hi)
        bitmap = self._bitmaps.get(key)
        if bitmap is not None:
            return bitmap
        label_csr = self._by_label.get(label)
        if label_csr is None:
            return None
        width = hi - lo
        num_blocks = blocks_for(width)
        src = label_csr.in_indices
        dst = np.repeat(
            np.arange(self.num_nodes, dtype=np.int64),
            np.diff(label_csr.in_indptr),
        )
        selected = (src >= lo) & (src < hi)
        src = src[selected]
        dst = dst[selected]
        bitmap = np.zeros((self.num_nodes, num_blocks), dtype=np.uint64)
        if src.size:
            columns = src - lo
            # Edges are sorted by (dst, src), so the flat word index is
            # non-decreasing and runs of equal words are contiguous:
            # one reduceat folds each run's bits together.
            words = dst * num_blocks + (columns >> 6)
            values = np.uint64(1) << (
                columns.astype(np.uint64) & np.uint64(63)
            )
            starts = np.concatenate(
                ([0], np.flatnonzero(np.diff(words)) + 1)
            )
            folded = np.bitwise_or.reduceat(values, starts)
            bitmap.reshape(-1)[words[starts]] = folded
        self._bitmaps[key] = bitmap
        return bitmap

    def out_neighbors(self, label: Hashable, node_id: int) -> np.ndarray:
        label_csr = self._by_label.get(label)
        if label_csr is None:
            return np.empty(0, dtype=np.int64)
        indptr = label_csr.out_indptr
        return label_csr.out_indices[indptr[node_id] : indptr[node_id + 1]]

    # ------------------------------------------------------------------
    # Serialization (single mmap-able file)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write the snapshot as ``magic | header | aligned raw arrays``.

        Atomic: the payload is staged in a uniquely-named scratch file
        next to ``path`` and published with one ``os.replace``.  Readers
        (including pool workers lazily mmapping the snapshot mid-refresh)
        only ever see either the previous complete file or the new
        complete file — a crash mid-write leaves the destination
        untouched and at worst orphans a ``*.tmp``.
        """
        tmp = os.fspath(path) + f".{os.getpid()}.{next(_TMP_SERIAL)}.tmp"
        try:
            with open(tmp, "wb") as handle:
                self._write_payload(handle)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    def _write_payload(self, handle) -> None:
        """Serialize into an open binary ``handle`` (see :meth:`save`)."""
        manifest = []
        arrays: list[np.ndarray] = []
        offset = 0
        for index, label in enumerate(self.labels):
            label_csr = self._by_label[label]
            for name in _LabelCSR.__slots__:
                array = np.ascontiguousarray(getattr(label_csr, name))
                padded = -(-array.nbytes // _ALIGN) * _ALIGN
                manifest.append(
                    (index, name, array.dtype.str, array.shape, offset)
                )
                arrays.append(array)
                offset += padded
        header = pickle.dumps(
            {
                "num_nodes": self.num_nodes,
                "num_edges": self.num_edges,
                "labels": self.labels,
                "manifest": manifest,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        handle.write(_MAGIC)
        handle.write(len(header).to_bytes(8, "little"))
        handle.write(header)
        base = handle.tell()
        pad = -base % _ALIGN
        handle.write(b"\0" * pad)
        base += pad
        for (_, _, _, _, data_offset), array in zip(manifest, arrays):
            handle.seek(base + data_offset)
            handle.write(array.tobytes())
        end = base + offset
        handle.seek(0, 2)
        if handle.tell() < end:
            handle.truncate(end)

    @classmethod
    def load(cls, path, mmap: bool = True) -> "CSRSnapshot":
        """Re-open a saved snapshot; ``mmap=True`` maps it zero-copy.

        The file is validated up front — magic bytes, a complete header,
        and enough bytes for every array the manifest promises — so a
        truncated or corrupt file fails here with a clear ``ValueError``
        instead of handing short read-only views to the kernel (which
        would surface as an index crash deep inside a pool worker).
        """
        with open(path, "rb") as handle:
            magic = handle.read(len(_MAGIC))
            if magic != _MAGIC:
                raise ValueError(f"{path!r} is not a CSR snapshot file")
            length_bytes = handle.read(8)
            if len(length_bytes) != 8:
                raise ValueError(
                    f"truncated CSR snapshot {path!r}: incomplete header length"
                )
            header_len = int.from_bytes(length_bytes, "little")
            header_bytes = handle.read(header_len)
            if len(header_bytes) != header_len:
                raise ValueError(
                    f"truncated CSR snapshot {path!r}: header cut short "
                    f"({len(header_bytes)} of {header_len} bytes)"
                )
            try:
                header = pickle.loads(header_bytes)
            except Exception as exc:
                raise ValueError(
                    f"corrupt CSR snapshot header in {path!r}: {exc}"
                ) from exc
            base = handle.tell()
            base += -base % _ALIGN
            handle.seek(0, 2)
            actual_size = handle.tell()
        required = base
        for _index, _name, dtype_str, shape, data_offset in header["manifest"]:
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            required = max(
                required, base + data_offset + count * np.dtype(dtype_str).itemsize
            )
        if actual_size < required:
            raise ValueError(
                f"truncated CSR snapshot {path!r}: need {required} bytes "
                f"for the arrays in its manifest, file has {actual_size}"
            )
        if mmap:
            raw = np.memmap(path, dtype=np.uint8, mode="r")
        else:
            with open(path, "rb") as handle:
                raw = np.frombuffer(handle.read(), dtype=np.uint8)
        fields: dict[int, dict[str, np.ndarray]] = {}
        for index, name, dtype_str, shape, data_offset in header["manifest"]:
            dtype = np.dtype(dtype_str)
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            start = base + data_offset
            view = (
                raw[start : start + count * dtype.itemsize]
                .view(dtype)
                .reshape(shape)
            )
            fields.setdefault(index, {})[name] = view
        labels = header["labels"]
        by_label = {
            label: _LabelCSR(**fields.get(index, {}))
            for index, label in enumerate(labels)
        }
        return cls(
            header["num_nodes"], header["num_edges"], labels, by_label
        )

    def __repr__(self) -> str:
        return (
            f"CSRSnapshot(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"labels={len(self.labels)})"
        )
