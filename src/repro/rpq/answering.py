"""View-based answering of RPQs via rewriting.

The paper's motivation for rewriting (data integration, warehousing): given
only the *extensions* of materialized views, evaluate the rewriting over the
view graph to obtain answers that are guaranteed sound (contained in the
answer of the original query on any database consistent with the views) —
and complete when the rewriting is exact and views are exact materializations.

These helpers also provide the semantic validation used by the tests:
Definition 4.3's containment ``ans(exp_F(L(R)), DB) subseteq ans(L(Q0), DB)``
checked on concrete databases.

Both the view-side evaluation (``ans`` over the view graph) and the direct
evaluation of ``Q0`` run on the compiled engine of :mod:`repro.rpq.engine`;
the containment checks below therefore exercise the fast path end to end.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from .evaluation import evaluate
from .graphdb import GraphDB
from .query import RPQ, QuerySpec
from .rewriting import RPQRewritingResult
from .theory import Theory

__all__ = [
    "answer_with_views",
    "rewriting_is_sound_on",
    "rewriting_is_complete_on",
]

Pair = tuple[Hashable, Hashable]


def answer_with_views(
    result: RPQRewritingResult,
    extensions: Mapping[Hashable, Iterable[Pair]],
) -> frozenset[Pair]:
    """Answers obtainable from view extensions alone (no base access).

    Sound by Definition 4.3 on any database consistent with the
    extensions; complete as well when ``result.is_exact()`` holds and the
    extensions are exact materializations.  Delegates to the service
    layer's shared :func:`~repro.service.store.answer_on_extensions`
    helper (as does :meth:`RPQRewritingResult.answer`); for a long-lived
    store with incremental updates, use
    :class:`repro.service.QuerySession` instead.
    """
    from ..service.store import answer_on_extensions

    return answer_on_extensions(result.automaton, extensions)


def rewriting_is_sound_on(
    result: RPQRewritingResult, q0: QuerySpec, db: GraphDB
) -> bool:
    """Check Definition 4.3 on one database: rewriting answers ⊆ Q0 answers."""
    query = q0 if isinstance(q0, RPQ) else RPQ(q0)
    via_views = result.answer(db)
    direct = evaluate(db, query, result.theory)
    return via_views <= direct


def rewriting_is_complete_on(
    result: RPQRewritingResult, q0: QuerySpec, db: GraphDB
) -> bool:
    """Do the views recover *all* answers of ``Q0`` on this database?

    Guaranteed when the rewriting is exact; may hold incidentally otherwise.
    """
    query = q0 if isinstance(q0, RPQ) else RPQ(q0)
    via_views = result.answer(db)
    direct = evaluate(db, query, result.theory)
    return direct <= via_views
