"""Sharded, parallel RPQ evaluation (the scale-out layer over the engine).

:mod:`repro.rpq.engine` answers all-pairs queries in one macro-frontier
sweep whose source sets are packed into ``num_nodes``-bit integers.  That
is the fastest *single* sweep this repo knows, but it leaves two axes on
the table: multiple cores, and the width of those big-int masks.  This
module adds both:

* :class:`ShardedGraphDB` partitions a label-indexed
  :class:`~repro.rpq.graphdb.GraphDB` into ``k`` contiguous node-range
  shards.  Each shard owns its nodes and every edge *leaving* them; edges
  whose target lives in another shard are kept apart as **cut edges**,
  grouped by destination shard — the explicit frontier a distributed
  implementation would ship over the wire.

* :class:`ParallelEvaluator` decomposes the all-pairs product sweep **by
  the shard owning the source node**: task ``i`` computes every answer
  pair ``(x, y)`` whose ``x`` lies in shard ``i``'s id range.  Because
  ranges are contiguous, task ``i``'s source sets pack into
  ``(hi - lo)``-bit masks instead of ``num_nodes``-bit masks — big-int
  work per product-edge crossing drops by a factor of ``k`` — and the
  tasks share nothing, so they run unchanged in a process pool.  Within
  a task the sweep walks the graph shard by shard: frontiers are kept
  partitioned by owning shard, expansion through a shard uses its
  internal adjacency, and deltas crossing a cut edge are *stitched* into
  the destination shard's slice of the next frontier.

Exactness and determinism are non-negotiable: for every shard count,
worker count, and entry point, results are **bit-identical** to the
single-shard engine (and to ``naive_evaluate``) — the pool path returns
per-shard data merged in shard order, and the sequential fallback (used
when ``workers <= 1`` or when process pools are unavailable in the host
environment) runs the very same per-shard kernel in a plain loop.  The
randomized differential harness in ``tests/rpq/test_sharded_differential``
holds all three entry points to that contract on every workload family.

Ordering guarantee: :meth:`ParallelEvaluator.evaluate_all_sorted` (like
:func:`repro.rpq.engine.evaluate_all_sorted`) returns answers sorted by
``(node_id(x), node_id(y))`` — the *interning order* of the database,
which is independent of shard count, worker count, process, and
``PYTHONHASHSEED`` — so differential tests compare lists, not just sets.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from bisect import bisect_right
from typing import Hashable, Iterable, Mapping

from . import engine as _engine
from .engine import CompiledAutomaton
from .graphdb import GraphDB

__all__ = [
    "ShardedGraphDB",
    "ParallelEvaluator",
    "ShardedEvaluationError",
]

Pair = tuple[Hashable, Hashable]


class ShardedEvaluationError(RuntimeError):
    """A shard worker failed mid-sweep.

    Raised by :class:`ParallelEvaluator` after the pool has been shut
    down (``cancel_futures=True``), so callers never inherit a hung or
    half-broken pool.  :class:`~repro.service.session.QuerySession`
    catches this and falls back to the sequential engine, keeping the
    session usable.
    """


def shard_bounds(num_nodes: int, num_shards: int) -> list[int]:
    """The contiguous node-range partition used by every shard backend."""
    if num_shards < 1:
        raise ValueError(f"need at least one shard, got {num_shards}")
    return [(i * num_nodes) // num_shards for i in range(num_shards + 1)]


class _Shard:
    """One node range plus the edges leaving it.

    ``internal[label][source_id]`` is the set of targets *inside* this
    shard; ``cut[label][source_id]`` is a tuple of
    ``(destination_shard, targets)`` groups for edges leaving the shard
    (grouped so the sweep can stitch a whole delta into the destination
    shard's frontier without re-deriving ownership per edge).
    """

    __slots__ = (
        "index",
        "lo",
        "hi",
        "internal",
        "cut",
        "num_internal_edges",
        "num_cut_edges",
    )

    def __init__(self, index: int, lo: int, hi: int):
        self.index = index
        self.lo = lo
        self.hi = hi
        self.internal: dict[Hashable, dict[int, set[int]]] = {}
        self.cut: dict[Hashable, dict[int, tuple[tuple[int, tuple[int, ...]], ...]]] = {}
        self.num_internal_edges = 0
        self.num_cut_edges = 0

    @property
    def num_nodes(self) -> int:
        return self.hi - self.lo

    def __repr__(self) -> str:
        return (
            f"_Shard({self.index}, nodes=[{self.lo},{self.hi}), "
            f"internal={self.num_internal_edges}, cut={self.num_cut_edges})"
        )


class ShardedGraphDB:
    """A :class:`GraphDB` partitioned into ``k`` contiguous node ranges.

    Shard ``i`` owns node ids in ``[bounds[i], bounds[i+1])`` and all
    edges whose *source* it owns.  The partition copies the label-first
    indexes into per-shard structures (the original database is not
    mutated and is not referenced afterwards, so a ``ShardedGraphDB`` is
    a self-contained, picklable snapshot — exactly what a worker process
    needs).  With ``k > num_nodes`` some shards are empty; with ``k = 1``
    there are no cut edges and the partition is the whole graph.
    """

    __slots__ = ("num_shards", "num_nodes", "bounds", "shards")

    def __init__(self, db: GraphDB, num_shards: int):
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        num_nodes = db.num_nodes
        self.num_shards = num_shards
        self.num_nodes = num_nodes
        self.bounds = shard_bounds(num_nodes, num_shards)
        bounds = self.bounds
        shards = [
            _Shard(i, bounds[i], bounds[i + 1]) for i in range(num_shards)
        ]
        self.shards = shards
        owner = self.owner
        for label in db.domain():
            for source_id, targets in db.label_out_index(label).items():
                shard = shards[owner(source_id)]
                internal: set[int] = set()
                crossing: dict[int, list[int]] = {}
                for target_id in targets:
                    dest = owner(target_id)
                    if dest == shard.index:
                        internal.add(target_id)
                    else:
                        crossing.setdefault(dest, []).append(target_id)
                if internal:
                    shard.internal.setdefault(label, {})[source_id] = internal
                    shard.num_internal_edges += len(internal)
                if crossing:
                    shard.cut.setdefault(label, {})[source_id] = tuple(
                        (dest, tuple(sorted(ids)))
                        for dest, ids in sorted(crossing.items())
                    )
                    shard.num_cut_edges += sum(
                        len(ids) for ids in crossing.values()
                    )

    def owner(self, node_id: int) -> int:
        """The index of the shard owning ``node_id``."""
        if not 0 <= node_id < self.num_nodes:
            raise IndexError(f"node id {node_id} out of range")
        return bisect_right(self.bounds, node_id) - 1

    @property
    def num_internal_edges(self) -> int:
        return sum(shard.num_internal_edges for shard in self.shards)

    @property
    def num_cut_edges(self) -> int:
        """How many edges cross a shard boundary under this partition."""
        return sum(shard.num_cut_edges for shard in self.shards)

    @property
    def num_edges(self) -> int:
        return self.num_internal_edges + self.num_cut_edges

    def shard_sizes(self) -> list[int]:
        return [shard.num_nodes for shard in self.shards]

    def __repr__(self) -> str:
        return (
            f"ShardedGraphDB(shards={self.num_shards}, "
            f"nodes={self.num_nodes}, internal={self.num_internal_edges}, "
            f"cut={self.num_cut_edges})"
        )


# ----------------------------------------------------------------------
# The per-shard sweep kernels (top-level functions: picklable pool tasks)
# ----------------------------------------------------------------------


def _hot_entries(adjacency, node_sources):
    """Frontier-vs-adjacency intersection, scanning the smaller side."""
    if not adjacency:
        return ()
    if len(adjacency) < len(node_sources):
        return [
            (adjacency[v], node_sources[v]) for v in adjacency if v in node_sources
        ]
    return [
        (adjacency[v], sources)
        for v, sources in node_sources.items()
        if v in adjacency
    ]


def _sweep_shard(
    sharded: ShardedGraphDB,
    compiled: CompiledAutomaton,
    shard_index: int,
    fail_shards: frozenset[int] = frozenset(),
) -> dict[int, int]:
    """All-pairs product sweep for the sources owned by one shard.

    Returns ``{target_id: mask}`` where bit ``s`` of ``mask`` set means
    ``(node lo + s, target)`` is an answer — masks are re-based to the
    shard's own range ``[lo, hi)``, which is where the factor-``k``
    big-int saving over the monolithic sweep comes from.

    ``fail_shards`` is fault injection for the crash-recovery tests: the
    kernel raises before touching any state, as a crashing worker would.
    """
    if shard_index in fail_shards:
        raise RuntimeError(
            f"injected fault: worker died sweeping shard {shard_index}"
        )
    bounds = sharded.bounds
    lo, hi = bounds[shard_index], bounds[shard_index + 1]
    answers: dict[int, int] = {}
    if compiled.accepts_epsilon:
        for v in range(lo, hi):
            answers[v] = 1 << (v - lo)
    if lo == hi or not compiled.initials:
        return answers
    table = compiled.table
    finals = compiled.finals
    shards = sharded.shards
    num_nodes = sharded.num_nodes
    own = shards[shard_index]

    # reached[state][node_id] = mask (over this shard's sources) known to
    # reach the (state, node) product point; frontier slices are keyed by
    # the shard owning their nodes.
    reached: dict[int, list[int]] = {}
    frontier: dict[int, dict[int, dict[int, int]]] = {}
    for state in compiled.initials:
        row = table.get(state)
        if not row:
            continue
        seeds: set[int] = set()
        for label in row:
            internal = own.internal.get(label)
            if internal:
                seeds.update(internal)
            cut = own.cut.get(label)
            if cut:
                seeds.update(cut)
        if not seeds:
            continue
        state_reached = reached.get(state)
        if state_reached is None:
            state_reached = reached[state] = [0] * num_nodes
        bucket: dict[int, int] = {}
        for v in seeds:
            bit = 1 << (v - lo)
            state_reached[v] |= bit
            bucket[v] = state_reached[v]
        frontier[state] = {shard_index: bucket}

    while frontier:
        next_frontier: dict[int, dict[int, dict[int, int]]] = {}
        for state, by_shard in frontier.items():
            row = table.get(state)
            if not row:
                continue
            for here, node_sources in by_shard.items():
                shard = shards[here]
                for label, next_states in row.items():
                    hot = _hot_entries(shard.internal.get(label), node_sources)
                    hot_cut = _hot_entries(shard.cut.get(label), node_sources)
                    if not hot and not hot_cut:
                        continue
                    for next_state in next_states:
                        state_reached = reached.get(next_state)
                        if state_reached is None:
                            state_reached = reached[next_state] = [0] * num_nodes
                        by_dest = next_frontier.get(next_state)
                        if by_dest is None:
                            by_dest = next_frontier[next_state] = {}
                        is_final = next_state in finals
                        if hot:
                            bucket = by_dest.get(here)
                            if bucket is None:
                                bucket = by_dest[here] = {}
                            for targets, sources in hot:
                                for w in targets:
                                    delta = sources & ~state_reached[w]
                                    if not delta:
                                        continue
                                    state_reached[w] |= delta
                                    if w in bucket:
                                        bucket[w] |= delta
                                    else:
                                        bucket[w] = delta
                                    if is_final:
                                        if w in answers:
                                            answers[w] |= delta
                                        else:
                                            answers[w] = delta
                        for groups, sources in hot_cut:
                            # Stitch: each group lands in the destination
                            # shard's slice of the next frontier.
                            for dest, targets in groups:
                                bucket = by_dest.get(dest)
                                if bucket is None:
                                    bucket = by_dest[dest] = {}
                                for w in targets:
                                    delta = sources & ~state_reached[w]
                                    if not delta:
                                        continue
                                    state_reached[w] |= delta
                                    if w in bucket:
                                        bucket[w] |= delta
                                    else:
                                        bucket[w] = delta
                                    if is_final:
                                        if w in answers:
                                            answers[w] |= delta
                                        else:
                                            answers[w] = delta
        frontier = {}
        for state, by_dest in next_frontier.items():
            cleaned = {dest: bucket for dest, bucket in by_dest.items() if bucket}
            if cleaned:
                frontier[state] = cleaned
    return answers


def _single_source_sweep(
    sharded: ShardedGraphDB,
    compiled: CompiledAutomaton,
    source_id: int,
    stop_at: int | None = None,
    fail_shards: frozenset[int] = frozenset(),
) -> set[int]:
    """Node ids reachable from ``source_id`` in an accepting state.

    The shard-partitioned twin of the engine's forward sweep: frontier
    slices are keyed by owning shard, expansion uses each shard's
    internal index, and cut-edge deltas are stitched into the destination
    shard's slice.  With ``stop_at`` the sweep returns as soon as that
    target is known to be an answer (used by the single-pair entry
    point).  ``fail_shards`` mirrors the all-pairs kernel's fault
    injection: the sweep dies if the shard owning the source is marked.
    """
    if fail_shards and sharded.owner(source_id) in fail_shards:
        raise RuntimeError(
            f"injected fault: sweep died in shard {sharded.owner(source_id)}"
        )
    table = compiled.table
    finals = compiled.finals
    shards = sharded.shards
    result: set[int] = set()
    if compiled.accepts_epsilon:
        result.add(source_id)
        if stop_at is not None and stop_at == source_id:
            return result
    if not compiled.initials:
        return result
    source_owner = sharded.owner(source_id)
    reached: dict[int, set[int]] = {
        state: {source_id} for state in compiled.initials
    }
    frontier: dict[int, dict[int, set[int]]] = {
        state: {source_owner: {source_id}} for state in compiled.initials
    }
    while frontier:
        next_frontier: dict[int, dict[int, set[int]]] = {}
        for state, by_shard in frontier.items():
            row = table.get(state)
            if not row:
                continue
            for here, nodes in by_shard.items():
                shard = shards[here]
                for label, next_states in row.items():
                    internal = shard.internal.get(label)
                    internal_targets: set[int] = set()
                    if internal:
                        if len(internal) < len(nodes):
                            for v in internal:
                                if v in nodes:
                                    internal_targets |= internal[v]
                        else:
                            for v in nodes:
                                targets = internal.get(v)
                                if targets:
                                    internal_targets |= targets
                    cut = shard.cut.get(label)
                    crossing: dict[int, set[int]] = {}
                    if cut:
                        if len(cut) < len(nodes):
                            groups_hit = [cut[v] for v in cut if v in nodes]
                        else:
                            groups_hit = [cut[v] for v in nodes if v in cut]
                        for groups in groups_hit:
                            for dest, targets in groups:
                                if dest in crossing:
                                    crossing[dest].update(targets)
                                else:
                                    crossing[dest] = set(targets)
                    if not internal_targets and not crossing:
                        continue
                    for next_state in next_states:
                        seen = reached.get(next_state)
                        if seen is None:
                            seen = reached[next_state] = set()
                        by_dest = next_frontier.get(next_state)
                        if by_dest is None:
                            by_dest = next_frontier[next_state] = {}
                        is_final = next_state in finals
                        if internal_targets:
                            delta = internal_targets - seen
                            if delta:
                                seen |= delta
                                if here in by_dest:
                                    by_dest[here] |= delta
                                else:
                                    by_dest[here] = set(delta)
                                if is_final:
                                    result |= delta
                        for dest, targets in crossing.items():
                            delta = targets - seen
                            if delta:
                                seen |= delta
                                if dest in by_dest:
                                    by_dest[dest] |= delta
                                else:
                                    by_dest[dest] = set(delta)
                                if is_final:
                                    result |= delta
        if stop_at is not None and stop_at in result:
            return result
        frontier = {}
        for state, by_dest in next_frontier.items():
            cleaned = {dest: nodes for dest, nodes in by_dest.items() if nodes}
            if cleaned:
                frontier[state] = cleaned
    return result


def _sweep_shard_numpy(
    snapshot,
    compiled: CompiledAutomaton,
    bounds: list[int],
    shard_index: int,
    fail_shards: frozenset[int] = frozenset(),
) -> dict[int, int]:
    """The numpy twin of :func:`_sweep_shard` over a CSR snapshot.

    Sweeps the shard's source window with the vectorized kernel
    (:func:`repro.rpq.kernel.sweep_window`) and returns the same
    ``{target_id: re-based int mask}`` shape as the big-int kernel, so
    the merge path upstream is backend-agnostic.  ``fail_shards`` is the
    same fault injection as the big-int kernel's.
    """
    if shard_index in fail_shards:
        raise RuntimeError(
            f"injected fault: worker died sweeping shard {shard_index}"
        )
    from . import kernel as _kernel

    lo, hi = bounds[shard_index], bounds[shard_index + 1]
    matrix = _kernel.sweep_window(snapshot, compiled, lo, hi)
    return _kernel.matrix_to_masks(matrix)


# ----------------------------------------------------------------------
# Worker-process plumbing
# ----------------------------------------------------------------------

# Populated once per worker process by the pool initializer, so the
# sharded-graph payload (the bulky part) is pickled per *worker*, not
# per task; the compiled automaton (small) rides along with each task,
# letting one long-lived pool serve every query against the snapshot.
#
# Snapshots are *generation*-tagged so the pool survives the snapshot:
# :meth:`ParallelEvaluator.refresh` bumps the evaluator's generation and
# later tasks carry the new snapshot as pickled bytes; a worker unpickles
# and caches it only when its cached generation is stale.  Workers
# spawned at the pool-creation generation (possibly lazily, long after a
# refresh) start from the initializer's snapshot and catch up the same
# way.
_WORKER_PAYLOAD: dict[str, tuple] = {}


def _init_worker(generation, sharded, fail_shards) -> None:
    _WORKER_PAYLOAD["args"] = (generation, sharded, fail_shards)


def _pool_sweep(
    compiled: CompiledAutomaton,
    shard_index: int,
    generation: int,
    payload: bytes | None,
) -> dict[int, int]:
    cached_generation, sharded, fail_shards = _WORKER_PAYLOAD["args"]
    if cached_generation != generation:
        import pickle

        sharded = pickle.loads(payload)
        _WORKER_PAYLOAD["args"] = (generation, sharded, fail_shards)
    return _sweep_shard(sharded, compiled, shard_index, fail_shards)


def _pool_sweep_numpy(
    compiled: CompiledAutomaton,
    shard_index: int,
    generation: int,
    path: str,
    bounds: list[int],
    fail_shards: frozenset[int],
) -> dict[int, int]:
    """Pool task for the numpy backend: one shard window per call.

    The payload shipped per task is just the snapshot *path* plus the
    shard bounds (a few hundred bytes); the snapshot itself is loaded
    **zero-copy** via ``mmap`` and cached per worker keyed by the
    evaluator generation, so after a refresh the worker re-maps the new
    file instead of unpickling megabytes of edge dictionaries.
    """
    cached = _WORKER_PAYLOAD.get("numpy")
    if cached is None or cached[0] != generation:
        from .csr import CSRSnapshot

        snapshot = CSRSnapshot.load(path, mmap=True)
        _WORKER_PAYLOAD["numpy"] = (generation, snapshot)
    else:
        snapshot = cached[1]
    return _sweep_shard_numpy(snapshot, compiled, bounds, shard_index, fail_shards)


class ParallelEvaluator:
    """Shard-parallel evaluation of a compiled automaton over one graph.

    ``num_shards`` fixes the partition (and the all-pairs work/mask
    decomposition); ``workers`` caps the process pool.  With
    ``workers <= 1`` — or when the host cannot spawn process pools — the
    same per-shard kernels run sequentially in shard order, producing
    **bit-identical** results (the differential harness asserts this for
    every entry point).  A worker that *raises* mid-sweep is surfaced as
    :class:`ShardedEvaluationError` after the pool is torn down; see
    :class:`~repro.service.session.QuerySession` for the fallback policy.

    The partition snapshot is taken at construction time: a
    ``ParallelEvaluator`` answers for the graph as it was when built.
    When the underlying graph changes, call :meth:`refresh` to cut a new
    partition from the live graph **without** discarding the worker pool
    — long-lived callers like ``QuerySession`` refresh on every store
    version bump, and respawning processes per one-tuple update would
    cost more than the update itself.

    The worker pool is built once, on the first pooled call, and reused
    across refreshes: the initial snapshot is shipped to each worker via
    the pool initializer, each task carries the small compiled automaton
    plus a snapshot *generation* tag, and after a refresh the new
    snapshot rides along with the tasks as pickled bytes — each worker
    unpickles and caches them only when its cached generation is stale —
    so a steady stream of queries against one snapshot pays no per-task
    snapshot cost at all, and a refresh pays one pickle (amortized over
    its tasks) instead of a pool spawn.  Call :meth:`close` (or use the
    evaluator as a context
    manager) to release the workers; a failed sweep tears the pool down
    automatically.
    """

    def __init__(
        self,
        db: GraphDB,
        num_shards: int = 4,
        workers: int = 1,
        *,
        backend: str = "bigint",
        pool_timeout: float | None = 300.0,
        _fail_shards: Iterable[int] = (),
    ):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.db = db
        self._num_shards = num_shards
        self.backend = _engine.resolve_backend(db, backend)
        self.workers = workers
        self.pool_timeout = pool_timeout
        self._fail_shards = frozenset(_fail_shards)
        self._pool = None
        self._generation = 0
        # The generation whose snapshot the pool's *initializer* ships to
        # (lazily spawned) workers; tasks at any other generation must
        # carry the snapshot themselves.  (Big-int backend only: numpy
        # tasks always carry the tiny snapshot path instead.)
        self._pool_generation = -1
        self._payload_bytes: bytes | None = None
        # Numpy-backend state: the frozen CSR snapshot, and the on-disk
        # file workers mmap (written lazily, only when a pool is used).
        self._snapshot = None
        self._snapshot_dir: str | None = None
        self._snapshot_file: str | None = None
        self._build_partition()

    def _build_partition(self) -> None:
        """Cut the evaluator's frozen view of ``self.db`` (per backend)."""
        if self.backend == "numpy":
            self.sharded = None
            self._snapshot = self.db.to_csr()
            self._bounds = shard_bounds(self.db.num_nodes, self._num_shards)
        else:
            self.sharded = ShardedGraphDB(self.db, self._num_shards)
            self._bounds = self.sharded.bounds
        self._snapshot_file = None
        self._db_mutations = self.db.mutation_count

    @property
    def num_shards(self) -> int:
        return self._num_shards

    @property
    def generation(self) -> int:
        """How many times :meth:`refresh` has cut a new partition."""
        return self._generation

    def refresh(self) -> None:
        """Re-partition the *live* graph, keeping the worker pool.

        The evaluator answers for the graph as of this call — the
        re-shard is the same work construction does — but already-spawned
        workers are reused: the next pooled sweep ships them the new
        snapshot (tagged with a bumped generation) instead of paying a
        process-pool spawn.  Sequential evaluation just picks up the new
        partition.

        A refresh against an *unchanged* graph (checked via
        :attr:`GraphDB.mutation_count`, which only moves on effective
        mutations) is a no-op: the partition, the generation, and any
        cached worker payload all survive, so callers can refresh
        unconditionally on every store-version bump without forcing the
        next pooled sweep to re-ship an identical snapshot.
        """
        if self.db.mutation_count == self._db_mutations:
            return
        self._build_partition()
        self._generation += 1
        self._payload_bytes = None

    # ------------------------------------------------------------------
    # Entry points (same trio as the engine)
    # ------------------------------------------------------------------
    def evaluate_all_sorted(self, compiled: CompiledAutomaton) -> list[Pair]:
        """All answer pairs, sorted by ``(node_id(x), node_id(y))``.

        The order is the database's interning order — identical for
        every shard count, worker count, and process — so two runs can
        be compared byte for byte.
        """
        per_shard = self._sweep_all(compiled)
        bounds = self._bounds
        node_at = self.db.node_at
        pairs: list[Pair] = []
        for shard_index, answers in enumerate(per_shard):
            lo = bounds[shard_index]
            id_pairs: list[tuple[int, int]] = []
            for target_id, mask in answers.items():
                while mask:
                    low_bit = mask & -mask
                    id_pairs.append((low_bit.bit_length() - 1 + lo, target_id))
                    mask ^= low_bit
            id_pairs.sort()
            pairs.extend(
                (node_at(source_id), node_at(target_id))
                for source_id, target_id in id_pairs
            )
        return pairs

    def evaluate_all(self, compiled: CompiledAutomaton) -> frozenset[Pair]:
        """All pairs ``(x, y)`` with a matching path (engine-equivalent)."""
        return frozenset(self.evaluate_all_sorted(compiled))

    def evaluate_single_source(
        self, compiled: CompiledAutomaton, source: Hashable
    ) -> frozenset[Hashable]:
        """All ``y`` with a matching path from ``source``.

        Raises ``KeyError`` on unknown nodes, like the engine; any
        failure *inside* the sweep surfaces as
        :class:`ShardedEvaluationError` (the same degradation contract
        as the all-pairs entry point).
        """
        source_id = self.db.node_id(source)
        try:
            if self.backend == "numpy":
                reached = self._single_source_numpy(compiled, source_id)
            else:
                reached = _single_source_sweep(
                    self.sharded, compiled, source_id,
                    fail_shards=self._fail_shards,
                )
        except Exception as exc:
            raise ShardedEvaluationError(
                f"single-source sweep failed: {exc!r}"
            ) from exc
        node_at = self.db.node_at
        return frozenset(node_at(v) for v in reached)

    def _single_source_numpy(
        self, compiled: CompiledAutomaton, source_id: int
    ) -> set[int]:
        """Single-source sweep on the numpy backend: a width-1 window.

        ``sweep_window(lo=source_id, hi=source_id + 1)`` gives exactly
        the one-column answer matrix for this source, so the single
        vectorized kernel serves all three entry points.  Fault
        injection mirrors the big-int kernel: the sweep dies when the
        shard *owning the source* is marked.
        """
        if not 0 <= source_id < self._snapshot.num_nodes:
            raise IndexError(f"node id {source_id} out of range")
        if self._fail_shards:
            owner = bisect_right(self._bounds, source_id) - 1
            if owner in self._fail_shards:
                raise RuntimeError(
                    f"injected fault: sweep died in shard {owner}"
                )
        from . import kernel as _kernel

        matrix = _kernel.sweep_window(
            self._snapshot, compiled, source_id, source_id + 1
        )
        return set(_kernel.matrix_to_masks(matrix))

    def evaluate_pair(
        self, compiled: CompiledAutomaton, source: Hashable, target: Hashable
    ) -> bool:
        """Is ``(source, target)`` an answer?  Early-exiting forward sweep.

        ``KeyError`` on unknown endpoints; sweep failures become
        :class:`ShardedEvaluationError`, like every other entry point.
        """
        source_id = self.db.node_id(source)
        target_id = self.db.node_id(target)
        try:
            if self.backend == "numpy":
                reached = self._single_source_numpy(compiled, source_id)
            else:
                reached = _single_source_sweep(
                    self.sharded, compiled, source_id, stop_at=target_id,
                    fail_shards=self._fail_shards,
                )
        except Exception as exc:
            raise ShardedEvaluationError(
                f"single-pair sweep failed: {exc!r}"
            ) from exc
        return target_id in reached

    # ------------------------------------------------------------------
    # Task execution
    # ------------------------------------------------------------------
    def _sweep_all(self, compiled: CompiledAutomaton) -> list[dict[int, int]]:
        indices = range(self._num_shards)
        workers = min(self.workers, self._num_shards)
        if workers > 1:
            pool = self._ensure_pool(workers)
            if pool is not None:
                return self._run_pool(pool, compiled, indices)
        # Sequential k-shard fallback: the same kernels, in shard order.
        # Failures get the same typed error as the pool path, so callers
        # have one degradation contract regardless of worker count.
        results = []
        for shard_index in indices:
            try:
                if self.backend == "numpy":
                    results.append(
                        _sweep_shard_numpy(
                            self._snapshot, compiled, self._bounds,
                            shard_index, self._fail_shards,
                        )
                    )
                else:
                    results.append(
                        _sweep_shard(
                            self.sharded, compiled, shard_index,
                            self._fail_shards,
                        )
                    )
            except Exception as exc:
                raise ShardedEvaluationError(
                    f"shard {shard_index} sweep failed: {exc!r}"
                ) from exc
        return results

    def _snapshot_path(self) -> str:
        """The on-disk mmap file for the current snapshot generation.

        Written lazily — sequential numpy evaluation never touches disk —
        and regenerated per refresh; stale generations are removed
        eagerly so a long-lived evaluator holds at most one file.
        """
        if self._snapshot_file is None:
            if self._snapshot_dir is None:
                self._snapshot_dir = tempfile.mkdtemp(prefix="rpq-csr-")
            else:
                for name in os.listdir(self._snapshot_dir):
                    try:
                        os.remove(os.path.join(self._snapshot_dir, name))
                    except OSError:
                        pass
            path = os.path.join(
                self._snapshot_dir, f"gen{self._generation}.csr"
            )
            self._snapshot.save(path)
            self._snapshot_file = path
        return self._snapshot_file

    def _ensure_pool(self, workers: int):
        """The evaluator's long-lived pool, spawned on first use with the
        graph snapshot shipped once per worker, or ``None`` when the host
        cannot run process pools (restricted sandboxes, missing semaphore
        support) — the documented cue for the bit-identical sequential
        fallback."""
        if self._pool is None:
            try:
                from concurrent.futures import ProcessPoolExecutor

                if self.backend == "numpy":
                    # Numpy workers need no initializer payload: every
                    # task carries the (tiny) snapshot path and mmap-loads
                    # it on first sight of a new generation.
                    self._pool = ProcessPoolExecutor(max_workers=workers)
                else:
                    self._pool = ProcessPoolExecutor(
                        max_workers=workers,
                        initializer=_init_worker,
                        initargs=(
                            self._generation, self.sharded, self._fail_shards
                        ),
                    )
                self._pool_generation = self._generation
            except (ImportError, NotImplementedError, OSError, PermissionError):
                return None
        return self._pool

    def _run_pool_numpy(self, pool, compiled, indices) -> list[dict[int, int]]:
        path = self._snapshot_path()
        try:
            futures = [
                pool.submit(
                    _pool_sweep_numpy, compiled, i, self._generation,
                    path, self._bounds, self._fail_shards,
                )
                for i in indices
            ]
            return [
                future.result(timeout=self.pool_timeout) for future in futures
            ]
        except BaseException as exc:
            self.close(wait=False)
            raise ShardedEvaluationError(
                f"shard sweep failed in the worker pool: {exc!r}"
            ) from exc

    def _run_pool(self, pool, compiled, indices) -> list[dict[int, int]]:
        if self.backend == "numpy":
            return self._run_pool_numpy(pool, compiled, indices)
        # After a refresh the initializer's snapshot is stale, so tasks
        # must carry the current one; pickled once per generation.  (Any
        # worker may still hold the initializer snapshot — lazy spawns
        # included — so the payload keeps riding along until the pool
        # itself is respawned at the current generation.)
        payload = None
        if self._pool_generation != self._generation:
            if self._payload_bytes is None:
                import pickle

                self._payload_bytes = pickle.dumps(self.sharded)
            payload = self._payload_bytes
        try:
            futures = [
                pool.submit(_pool_sweep, compiled, i, self._generation, payload)
                for i in indices
            ]
            results = [
                future.result(timeout=self.pool_timeout) for future in futures
            ]
        except BaseException as exc:
            # Tear the pool down without waiting on wedged workers, then
            # surface one clean, typed error.
            self.close(wait=False)
            raise ShardedEvaluationError(
                f"shard sweep failed in the worker pool: {exc!r}"
            ) from exc
        return results

    def close(self, wait: bool = True) -> None:
        """Release the worker pool (idempotent).

        Sequential evaluation keeps working after ``close``; the next
        pooled call simply re-spawns.  ``QuerySession`` closes the
        evaluator whenever it rebuilds the partition for a new store
        version.  ``wait=False`` skips joining the workers — used on the
        failure path, where a worker may be wedged.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)
        if wait and self._snapshot_dir is not None:
            shutil.rmtree(self._snapshot_dir, ignore_errors=True)
            self._snapshot_dir = None
            self._snapshot_file = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        if self.backend == "numpy":
            return (
                f"ParallelEvaluator(shards={self._num_shards}, "
                f"workers={self.workers}, "
                f"nodes={self._snapshot.num_nodes}, backend='numpy')"
            )
        return (
            f"ParallelEvaluator(shards={self.sharded.num_shards}, "
            f"workers={self.workers}, nodes={self.sharded.num_nodes}, "
            f"cut_edges={self.sharded.num_cut_edges})"
        )
