"""Incremental all-pairs answer maintenance (delta-driven semi-naive).

The engine's all-pairs sweep (:func:`repro.rpq.engine.evaluate_all`) is
a semi-naive fixpoint: per automaton state it saturates a per-node
bitmask of *source* ids, pushing only newly added sources across
label-indexed edges until nothing changes.  That computation is monotone
in the edge set — adding an edge can only *add* bits — so its final
state is worth keeping: when an edge ``(u, label, v)`` is inserted, the
answers of the updated graph are the least fixpoint *containing* the old
one, and it can be reached by seeding a new frontier from the inserted
edge alone instead of re-sweeping the whole graph.  This is the classic
semi-naive delta-evaluation discipline of Datalog-style RPQ engines
(arXiv:1511.00938) combined with reuse of previously computed
reachability (arXiv:2111.06918), applied to this repo's bitmask product
sweep.

:class:`DeltaSweepState` retains, for one (graph, compiled automaton)
pair, the sweep's ``reached`` matrices and per-target answer masks.
:meth:`DeltaSweepState.apply_insertions` absorbs a batch of inserted
edges: for each new edge and each automaton state whose row matches the
edge's label, the settled source mask at ``(state, u)`` is pushed into
the successors at ``v`` (plus ``u``'s own seed bit when the state is
initial and ``u`` just gained its first matching out-edge), and the
resulting deltas resume the engine's own fixpoint loop
(:func:`repro.rpq.engine._sweep_to_fixpoint`).  Because the loop reads
the *live* adjacency, deltas produced later in the same run flow through
the new edges automatically; only already-settled masks need the manual
re-push.  The result is **bit-identical** to rebuilding the state from
scratch on the updated graph — ``tests/rpq/test_incremental.py`` asserts
mask-level equality after every insertion, not just equal answer sets.

Deletions are *not* absorbed: removing an edge can invalidate arbitrary
bits, and recomputing which would cost a full sweep anyway.  Callers
(:class:`repro.service.session.QuerySession`) drop the state and rebuild
on any delta containing a deletion, as on any state too stale to replay
(:meth:`repro.service.store.MaterializedViewStore.delta_since` returning
``None``).
"""

from __future__ import annotations

from typing import Hashable, Iterable

from . import engine as _engine
from .engine import CompiledAutomaton
from .graphdb import GraphDB

__all__ = ["DeltaSweepState"]

Pair = tuple[Hashable, Hashable]
Edge = tuple[Hashable, Hashable, Hashable]  # (source, label, target)


class DeltaSweepState:
    """Retained all-pairs sweep state, resumable from inserted edges.

    Construction runs one full sweep of ``compiled`` over ``db`` and
    keeps its fixpoint alive; :meth:`apply_insertions` then advances the
    fixpoint from edge deltas in time proportional to the *consequences*
    of the inserted edges, not the size of the graph.  The state is
    valid exactly as long as

    * ``db`` is the same live graph object (node interning order is the
      bit layout of every mask), and
    * ``compiled`` is the same compiled automaton (its label table is
      the product relation being saturated) — a label-domain change
      recompiles the automaton, so callers compare identities;

    and as long as no edge the state has seen is *removed* — deletions
    must drop the state (see the module docstring).
    """

    __slots__ = (
        "db",
        "compiled",
        "num_nodes",
        "reached",
        "answer_masks",
        "edges_applied",
        "_pairs",
        "_masks_snapshot",
    )

    def __init__(self, db: GraphDB, compiled: CompiledAutomaton):
        self.db = db
        self.compiled = compiled
        self.num_nodes = db.num_nodes
        reached, frontier, answer_masks = _engine._seed_all_pairs(db, compiled)
        _engine._sweep_to_fixpoint(db, compiled, reached, frontier, answer_masks)
        self.reached = reached
        self.answer_masks = answer_masks
        self.edges_applied = 0
        # The decoded answer set is maintained incrementally as well:
        # masks only ever gain bits, so answers() decodes the per-target
        # xor against this snapshot instead of re-unpacking every mask —
        # on a store with tens of thousands of answers, decode would
        # otherwise dominate the cost of absorbing a one-tuple delta.
        self._pairs: set[Pair] = set()
        self._masks_snapshot: list[int] = [0] * self.num_nodes
        self._sync_pairs()

    # ------------------------------------------------------------------
    # Delta absorption
    # ------------------------------------------------------------------
    def apply_insertions(self, edges: Iterable[Edge]) -> int:
        """Absorb inserted edges, resuming the sweep to the new fixpoint.

        ``edges`` are ``(source, label, target)`` triples that have
        **already been added** to the graph (the sweep reads the live
        adjacency, so the new edges must be indexed before the frontier
        runs).  Triples are deduplication-tolerant: re-applying an edge
        the state has already absorbed is a no-op.  Returns the number
        of edge triples processed and accumulates it in
        :attr:`edges_applied`.
        """
        db = self.db
        compiled = self.compiled
        if db.num_nodes > self.num_nodes:
            self._grow(db.num_nodes)
        num_nodes = self.num_nodes
        table = compiled.table
        initials = compiled.initials
        finals = compiled.finals
        reached = self.reached
        answer_masks = self.answer_masks
        node_id = db.node_id
        frontier: dict[int, dict[int, int]] = {}
        applied = 0
        for source, label, target in edges:
            applied += 1
            u = node_id(source)
            v = node_id(target)
            for state, row in table.items():
                next_states = row.get(label)
                if next_states is None:
                    continue
                state_reached = reached.get(state)
                if state_reached is None:
                    state_reached = reached[state] = [0] * num_nodes
                if state in initials:
                    # u now has an out-edge matching this initial row, so
                    # it becomes a seed source if it wasn't one already;
                    # the frontier pushes the seed through u's *other*
                    # matching edges too (there are none on first seeding,
                    # but re-applied edges keep this idempotent).
                    bit = 1 << u
                    if not state_reached[u] & bit:
                        state_reached[u] |= bit
                        bucket = frontier.get(state)
                        if bucket is None:
                            bucket = frontier[state] = {}
                        bucket[u] = bucket.get(u, 0) | bit
                sources = state_reached[u]
                if not sources:
                    continue
                # Push the settled sources at (state, u) across the new
                # edge; future deltas arriving at (state, u) cross it via
                # the live adjacency inside the fixpoint loop.
                for next_state in next_states:
                    next_reached = reached.get(next_state)
                    if next_reached is None:
                        next_reached = reached[next_state] = [0] * num_nodes
                    delta = sources & ~next_reached[v]
                    if not delta:
                        continue
                    next_reached[v] |= delta
                    bucket = frontier.get(next_state)
                    if bucket is None:
                        bucket = frontier[next_state] = {}
                    bucket[v] = bucket.get(v, 0) | delta
                    if next_state in finals:
                        answer_masks[v] |= delta
        if frontier:
            _engine._sweep_to_fixpoint(
                db, compiled, reached, frontier, answer_masks
            )
        self.edges_applied += applied
        return applied

    def _grow(self, num_nodes: int) -> None:
        """Widen the per-node arrays after the graph interned new nodes.

        New ids extend every mask row with zero bits; under an
        epsilon-accepting automaton each new node also contributes its
        reflexive answer, exactly as a full sweep would seed it.
        """
        extra = num_nodes - self.num_nodes
        for state_reached in self.reached.values():
            state_reached.extend([0] * extra)
        if self.compiled.accepts_epsilon:
            self.answer_masks.extend(
                1 << v for v in range(self.num_nodes, num_nodes)
            )
        else:
            self.answer_masks.extend([0] * extra)
        self._masks_snapshot.extend([0] * extra)
        self.num_nodes = num_nodes

    # ------------------------------------------------------------------
    # Answers (decoded from the retained masks)
    # ------------------------------------------------------------------
    def _sync_pairs(self) -> None:
        """Fold newly set answer bits into the decoded pair set.

        Masks are monotone under insertions, so per target the xor
        against the snapshot is exactly the new sources; unchanged
        targets (the overwhelming majority after a small delta) cost one
        int comparison each.
        """
        node_at = self.db.node_at
        pairs = self._pairs
        snapshot = self._masks_snapshot
        for target_id, (mask, seen) in enumerate(
            zip(self.answer_masks, snapshot)
        ):
            if mask == seen:
                continue
            new_bits = mask & ~seen
            target = node_at(target_id)
            while new_bits:
                low_bit = new_bits & -new_bits
                pairs.add((node_at(low_bit.bit_length() - 1), target))
                new_bits ^= low_bit
            snapshot[target_id] = mask

    def answer_ids(self) -> list[tuple[int, int]]:
        """The current answers as dense-id pairs (unordered)."""
        return _engine._decode_answer_masks(self.answer_masks)

    def answers(self) -> frozenset[Pair]:
        """The current answer set, decoded to node objects."""
        self._sync_pairs()
        return frozenset(self._pairs)

    def answers_sorted(self) -> list[Pair]:
        """Answers sorted by ``(node_id(x), node_id(y))`` — byte-identical
        to :func:`repro.rpq.engine.evaluate_all_sorted` on the same graph."""
        id_pairs = self.answer_ids()
        id_pairs.sort()
        node_at = self.db.node_at
        return [
            (node_at(source_id), node_at(target_id))
            for source_id, target_id in id_pairs
        ]

    def __repr__(self) -> str:
        return (
            f"DeltaSweepState(nodes={self.num_nodes}, "
            f"states={len(self.reached)}, "
            f"edges_applied={self.edges_applied})"
        )
