"""Incremental all-pairs answer maintenance (delta-driven semi-naive).

The engine's all-pairs sweep (:func:`repro.rpq.engine.evaluate_all`) is
a semi-naive fixpoint: per automaton state it saturates a per-node
bitmask of *source* ids, pushing only newly added sources across
label-indexed edges until nothing changes.  That computation is monotone
in the edge set — adding an edge can only *add* bits — so its final
state is worth keeping: when an edge ``(u, label, v)`` is inserted, the
answers of the updated graph are the least fixpoint *containing* the old
one, and it can be reached by seeding a new frontier from the inserted
edge alone instead of re-sweeping the whole graph.  This is the classic
semi-naive delta-evaluation discipline of Datalog-style RPQ engines
(arXiv:1511.00938) combined with reuse of previously computed
reachability (arXiv:2111.06918), applied to this repo's bitmask product
sweep.

:class:`DeltaSweepState` retains, for one (graph, compiled automaton)
pair, the sweep's ``reached`` matrices and per-target answer masks.
:meth:`DeltaSweepState.apply_insertions` absorbs a batch of inserted
edges: for each new edge and each automaton state whose row matches the
edge's label, the settled source mask at ``(state, u)`` is pushed into
the successors at ``v`` (plus ``u``'s own seed bit when the state is
initial and ``u`` just gained its first matching out-edge), and the
resulting deltas resume the engine's own fixpoint loop
(:func:`repro.rpq.engine._sweep_to_fixpoint`).  Because the loop reads
the *live* adjacency, deltas produced later in the same run flow through
the new edges automatically; only already-settled masks need the manual
re-push.  The result is **bit-identical** to rebuilding the state from
scratch on the updated graph — ``tests/rpq/test_incremental.py`` asserts
mask-level equality after every insertion, not just equal answer sets.

Deletions are absorbed by **delete-rederive** (DRed), the standard
companion of semi-naive maintenance in the same Datalog lineage
(arXiv:1511.00938): removing an edge can invalidate bits, but only bits
whose *some* derivation crossed the deleted edge.
:meth:`DeltaSweepState.apply_deletions` first **over-deletes** — for
each deleted edge ``(u, label, v)`` and each matching transition
``s --label--> t``, every source bit settled at both ``(s, u)`` and
``(t, v)`` is a removal candidate, and candidates propagate forward
through the live adjacency (a bit cleared at ``(s, n)`` endangers the
same bit at every product successor of ``(s, n)``) — then **re-derives**
survivors: each over-deleted bit still supported one step back (a live
in-edge from a cell that kept the bit, or the initial-state seed rule
for a node that still has a matching out-edge) is restored and the
restorations resume the engine's own fixpoint loop, exactly like an
insertion delta.  The result is again bit-identical to a from-scratch
rebuild on the updated graph; because answers can now *disappear*, the
decoded pair set tracks cleared bits as well as gained ones.

Callers (:class:`repro.service.session.QuerySession`) therefore patch
mixed insert/delete deltas in place — insertions first, then deletions —
and only rebuild on a state too stale to replay
(:meth:`repro.service.store.MaterializedViewStore.delta_since` returning
``None``) or a changed compiled automaton.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from . import engine as _engine
from .engine import CompiledAutomaton
from .graphdb import GraphDB

__all__ = ["DeltaSweepState", "NumpyDeltaSweepState", "make_delta_state"]

Pair = tuple[Hashable, Hashable]
Edge = tuple[Hashable, Hashable, Hashable]  # (source, label, target)


class DeltaSweepState:
    """Retained all-pairs sweep state, resumable from inserted edges.

    Construction runs one full sweep of ``compiled`` over ``db`` and
    keeps its fixpoint alive; :meth:`apply_insertions` then advances the
    fixpoint from edge deltas in time proportional to the *consequences*
    of the inserted edges, not the size of the graph.  The state is
    valid exactly as long as

    * ``db`` is the same live graph object (node interning order is the
      bit layout of every mask), and
    * ``compiled`` is the same compiled automaton (its label table is
      the product relation being saturated) — a label-domain change
      recompiles the automaton, so callers compare identities;

    and as long as every edge mutation is reported: insertions through
    :meth:`apply_insertions`, deletions through :meth:`apply_deletions`
    (delete-rederive; see the module docstring).  For a mixed batch,
    apply the insertions first — over-delete reads the live graph, so it
    also cleans up after edges that were inserted and deleted within the
    same batch.
    """

    __slots__ = (
        "db",
        "compiled",
        "num_nodes",
        "reached",
        "answer_masks",
        "edges_applied",
        "edges_deleted",
        "overdeleted_bits",
        "rederived_bits",
        "_pairs",
        "_masks_snapshot",
    )

    def __init__(self, db: GraphDB, compiled: CompiledAutomaton):
        self.db = db
        self.compiled = compiled
        self.num_nodes = db.num_nodes
        reached, frontier, answer_masks = _engine._seed_all_pairs(db, compiled)
        _engine._sweep_to_fixpoint(db, compiled, reached, frontier, answer_masks)
        self.reached = reached
        self.answer_masks = answer_masks
        self.edges_applied = 0
        self.edges_deleted = 0
        self.overdeleted_bits = 0
        self.rederived_bits = 0
        # The decoded answer set is maintained incrementally as well:
        # masks only ever gain bits, so answers() decodes the per-target
        # xor against this snapshot instead of re-unpacking every mask —
        # on a store with tens of thousands of answers, decode would
        # otherwise dominate the cost of absorbing a one-tuple delta.
        self._pairs: set[Pair] = set()
        self._masks_snapshot: list[int] = [0] * self.num_nodes
        self._sync_pairs()

    # ------------------------------------------------------------------
    # Delta absorption
    # ------------------------------------------------------------------
    def apply_insertions(self, edges: Iterable[Edge]) -> int:
        """Absorb inserted edges, resuming the sweep to the new fixpoint.

        ``edges`` are ``(source, label, target)`` triples that have
        **already been added** to the graph (the sweep reads the live
        adjacency, so the new edges must be indexed before the frontier
        runs).  Triples are deduplication-tolerant: re-applying an edge
        the state has already absorbed is a no-op.  Returns the number
        of edge triples processed and accumulates it in
        :attr:`edges_applied`.
        """
        db = self.db
        compiled = self.compiled
        if db.num_nodes > self.num_nodes:
            self._grow(db.num_nodes)
        num_nodes = self.num_nodes
        table = compiled.table
        initials = compiled.initials
        finals = compiled.finals
        reached = self.reached
        answer_masks = self.answer_masks
        node_id = db.node_id
        frontier: dict[int, dict[int, int]] = {}
        applied = 0
        for source, label, target in edges:
            applied += 1
            u = node_id(source)
            v = node_id(target)
            for state, row in table.items():
                next_states = row.get(label)
                if next_states is None:
                    continue
                state_reached = reached.get(state)
                if state_reached is None:
                    state_reached = reached[state] = [0] * num_nodes
                if state in initials:
                    # u now has an out-edge matching this initial row, so
                    # it becomes a seed source if it wasn't one already;
                    # the frontier pushes the seed through u's *other*
                    # matching edges too (there are none on first seeding,
                    # but re-applied edges keep this idempotent).
                    bit = 1 << u
                    if not state_reached[u] & bit:
                        state_reached[u] |= bit
                        bucket = frontier.get(state)
                        if bucket is None:
                            bucket = frontier[state] = {}
                        bucket[u] = bucket.get(u, 0) | bit
                sources = state_reached[u]
                if not sources:
                    continue
                # Push the settled sources at (state, u) across the new
                # edge; future deltas arriving at (state, u) cross it via
                # the live adjacency inside the fixpoint loop.
                for next_state in next_states:
                    next_reached = reached.get(next_state)
                    if next_reached is None:
                        next_reached = reached[next_state] = [0] * num_nodes
                    delta = sources & ~next_reached[v]
                    if not delta:
                        continue
                    next_reached[v] |= delta
                    bucket = frontier.get(next_state)
                    if bucket is None:
                        bucket = frontier[next_state] = {}
                    bucket[v] = bucket.get(v, 0) | delta
                    if next_state in finals:
                        answer_masks[v] |= delta
        if frontier:
            _engine._sweep_to_fixpoint(
                db, compiled, reached, frontier, answer_masks
            )
        self.edges_applied += applied
        return applied

    def apply_deletions(self, edges: Iterable[Edge]) -> int:
        """Absorb deleted edges by delete-rederive, back to the fixpoint.

        ``edges`` are ``(source, label, target)`` triples that have
        **already been removed** from the graph (the over-delete walk and
        the rederivation both read the live adjacency).  The three DRed
        phases:

        1. *Collect.*  For every deleted edge and every matching
           transition ``s --label--> t``, the source bits settled at both
           ``(s, u)`` and ``(t, v)`` are removal candidates — as is
           ``u``'s own seed bit at ``(s, u)`` when ``s`` is initial,
           since the deleted edge may have been its last matching
           out-edge.  Candidates from *all* edges of the batch are
           gathered against the intact masks before anything is cleared:
           clearing eagerly would hide the bits a later deleted edge of
           the same batch needs to see.
        2. *Over-delete.*  A worklist clears candidate bits and forwards
           each cleared bit to every live product successor; bits already
           absent terminate the walk, so the region visited is the
           consequence cone of the deleted edges, not the graph.
        3. *Re-derive.*  Every over-deleted bit with one-step support —
           the seed rule for initial states, or a live in-edge from a
           cell that (still) holds the bit — is restored, and the
           restorations resume :func:`repro.rpq.engine._sweep_to_fixpoint`
           exactly like insertion deltas; restoration cascades re-prove
           chains of over-deleted bits in derivation order.  Answer masks
           of targets that lost final-state bits are then recomputed from
           the settled final-state rows (plus the epsilon diagonal).

        Idempotent per batch in the same sense as insertions: re-applying
        a deletion whose edge is already gone finds no candidates.
        Returns the number of edge triples processed and accumulates it
        in :attr:`edges_deleted`; :attr:`overdeleted_bits` /
        :attr:`rederived_bits` count phase-2's pessimism and how much of
        it phase 3 undid.
        """
        db = self.db
        compiled = self.compiled
        if db.num_nodes > self.num_nodes:
            self._grow(db.num_nodes)
        table = compiled.table
        rtable = compiled.rtable
        initials = compiled.initials
        finals = compiled.finals
        reached = self.reached
        answer_masks = self.answer_masks
        node_id = db.node_id
        label_out = db.label_out_index
        label_in = db.label_in_index

        # Phase 1: direct removal candidates, against the intact masks.
        candidates: dict[tuple[int, int], int] = {}
        deleted = 0
        for source, label, target in edges:
            deleted += 1
            u = node_id(source)
            v = node_id(target)
            for state, row in table.items():
                next_states = row.get(label)
                if next_states is None:
                    continue
                state_reached = reached.get(state)
                if state_reached is None:
                    continue
                sources = state_reached[u]
                if not sources:
                    continue
                if state in initials and sources & (1 << u):
                    key = (state, u)
                    candidates[key] = candidates.get(key, 0) | (1 << u)
                for next_state in next_states:
                    next_reached = reached.get(next_state)
                    if next_reached is None:
                        continue
                    endangered = sources & next_reached[v]
                    if endangered:
                        key = (next_state, v)
                        candidates[key] = candidates.get(key, 0) | endangered
        self.edges_deleted += deleted
        if not candidates:
            return deleted

        # Phase 2: over-delete, forwarding cleared bits through the live
        # product adjacency.
        overdeleted: dict[tuple[int, int], int] = {}
        worklist = list(candidates.items())
        while worklist:
            (state, node), bits = worklist.pop()
            state_reached = reached.get(state)
            if state_reached is None:
                continue
            clearing = bits & state_reached[node]
            if not clearing:
                continue
            state_reached[node] &= ~clearing
            key = (state, node)
            overdeleted[key] = overdeleted.get(key, 0) | clearing
            row = table.get(state)
            if not row:
                continue
            for label, next_states in row.items():
                targets = label_out(label).get(node)
                if not targets:
                    continue
                for next_state in next_states:
                    for w in targets:
                        worklist.append(((next_state, w), clearing))

        # Phase 3: boundary rederivation.  Support is read from the
        # post-over-delete masks — the *kept* facts — plus restorations
        # made earlier in this very loop; whatever one step cannot prove,
        # the resumed fixpoint cascade can.
        frontier: dict[int, dict[int, int]] = {}
        for (state, node), bits in overdeleted.items():
            state_reached = reached[state]
            restore = 0
            if state in initials and bits & (1 << node):
                row = table.get(state)
                if row:
                    for label in row:
                        if label_out(label).get(node):
                            restore = 1 << node
                            break
            remaining = bits & ~restore
            if remaining:
                rrow = rtable.get(state)
                if rrow:
                    support = 0
                    for label, prev_states in rrow.items():
                        preds = label_in(label).get(node)
                        if not preds:
                            continue
                        for prev_state in prev_states:
                            prev_reached = reached.get(prev_state)
                            if prev_reached is None:
                                continue
                            for p in preds:
                                support |= prev_reached[p]
                    restore |= remaining & support
            delta = restore & ~state_reached[node]
            if delta:
                state_reached[node] |= delta
                bucket = frontier.get(state)
                if bucket is None:
                    bucket = frontier[state] = {}
                bucket[node] = bucket.get(node, 0) | delta
                if state in finals:
                    answer_masks[node] |= delta
        if frontier:
            _engine._sweep_to_fixpoint(
                db, compiled, reached, frontier, answer_masks
            )

        # Settle the answer masks of targets whose final-state bits were
        # touched: base (epsilon diagonal) plus whatever the final states
        # still reach.  Unaffected targets kept exact masks throughout.
        affected_targets = {
            node for state, node in overdeleted if state in finals
        }
        if affected_targets:
            final_rows = [
                reached[state] for state in finals if state in reached
            ]
            eps = compiled.accepts_epsilon
            for v in affected_targets:
                mask = 1 << v if eps else 0
                for state_reached in final_rows:
                    mask |= state_reached[v]
                answer_masks[v] = mask

        over = rederived = 0
        for (state, node), bits in overdeleted.items():
            over += bits.bit_count()
            rederived += (bits & reached[state][node]).bit_count()
        self.overdeleted_bits += over
        self.rederived_bits += rederived
        return deleted

    def _grow(self, num_nodes: int) -> None:
        """Widen the per-node arrays after the graph interned new nodes.

        New ids extend every mask row with zero bits; under an
        epsilon-accepting automaton each new node also contributes its
        reflexive answer, exactly as a full sweep would seed it.
        """
        extra = num_nodes - self.num_nodes
        for state_reached in self.reached.values():
            state_reached.extend([0] * extra)
        if self.compiled.accepts_epsilon:
            self.answer_masks.extend(
                1 << v for v in range(self.num_nodes, num_nodes)
            )
        else:
            self.answer_masks.extend([0] * extra)
        self._masks_snapshot.extend([0] * extra)
        self.num_nodes = num_nodes

    # ------------------------------------------------------------------
    # Answers (decoded from the retained masks)
    # ------------------------------------------------------------------
    def _sync_pairs(self) -> None:
        """Fold changed answer bits into the decoded pair set.

        Per target, the diff against the snapshot splits into gained bits
        (insertions, rederivations) and lost bits (deletions absorbed by
        :meth:`apply_deletions`); unchanged targets (the overwhelming
        majority after a small delta) cost one int comparison each.
        """
        node_at = self.db.node_at
        pairs = self._pairs
        snapshot = self._masks_snapshot
        for target_id, (mask, seen) in enumerate(
            zip(self.answer_masks, snapshot)
        ):
            if mask == seen:
                continue
            target = node_at(target_id)
            new_bits = mask & ~seen
            while new_bits:
                low_bit = new_bits & -new_bits
                pairs.add((node_at(low_bit.bit_length() - 1), target))
                new_bits ^= low_bit
            lost_bits = seen & ~mask
            while lost_bits:
                low_bit = lost_bits & -lost_bits
                pairs.discard((node_at(low_bit.bit_length() - 1), target))
                lost_bits ^= low_bit
            snapshot[target_id] = mask

    def answer_ids(self) -> list[tuple[int, int]]:
        """The current answers as dense-id pairs (unordered)."""
        return _engine._decode_answer_masks(self.answer_masks)

    def answers(self) -> frozenset[Pair]:
        """The current answer set, decoded to node objects."""
        self._sync_pairs()
        return frozenset(self._pairs)

    def answers_sorted(self) -> list[Pair]:
        """Answers sorted by ``(node_id(x), node_id(y))`` — byte-identical
        to :func:`repro.rpq.engine.evaluate_all_sorted` on the same graph."""
        id_pairs = self.answer_ids()
        id_pairs.sort()
        node_at = self.db.node_at
        return [
            (node_at(source_id), node_at(target_id))
            for source_id, target_id in id_pairs
        ]

    def __repr__(self) -> str:
        return (
            f"DeltaSweepState(nodes={self.num_nodes}, "
            f"states={len(self.reached)}, "
            f"edges_applied={self.edges_applied}, "
            f"edges_deleted={self.edges_deleted})"
        )


class NumpyDeltaSweepState:
    """The block-bitmatrix twin of :class:`DeltaSweepState`.

    Same maintenance discipline — semi-naive insertion resume plus DRed
    for deletions — but the per-state masks live as ``(num_nodes, B)``
    uint64 block matrices (``B = ceil(num_nodes / 64)``), so the initial
    build is the vectorized :func:`repro.rpq.kernel.sweep_window` over
    the store's cached CSR snapshot rather than the big-int engine sweep.
    Delta absorption works on individual *block rows* (``(B,)`` uint64
    vectors): a consequence cone of a one-tuple update touches a handful
    of rows, so the per-row numpy ops replace big-int AND/OR at the same
    asymptotic cost while keeping the settled matrices in the layout the
    kernel produced — no bigint⇄matrix conversion at the build/maintain
    boundary.

    Validity contract, idempotence, and bit-identity to a from-scratch
    rebuild are exactly :class:`DeltaSweepState`'s; the differential
    harness holds both classes to the same oracle.
    """

    __slots__ = (
        "db",
        "compiled",
        "num_nodes",
        "num_blocks",
        "reached",
        "answers_matrix",
        "edges_applied",
        "edges_deleted",
        "overdeleted_bits",
        "rederived_bits",
        "_pairs",
        "_masks_snapshot",
    )

    def __init__(self, db: GraphDB, compiled: CompiledAutomaton):
        import numpy as np

        from . import kernel as _kernel
        from .csr import blocks_for

        self.db = db
        self.compiled = compiled
        self.num_nodes = db.num_nodes
        self.num_blocks = blocks_for(self.num_nodes)
        reached: dict[int, "np.ndarray"] = {}
        self.answers_matrix = _kernel.sweep_window(
            db.to_csr(), compiled, reached_out=reached
        )
        self.reached = reached
        self.edges_applied = 0
        self.edges_deleted = 0
        self.overdeleted_bits = 0
        self.rederived_bits = 0
        self._pairs: set[Pair] = set()
        self._masks_snapshot = np.zeros_like(self.answers_matrix)
        self._sync_pairs()

    # ------------------------------------------------------------------
    # Block-row helpers
    # ------------------------------------------------------------------
    def _state_rows(self, state: int):
        import numpy as np

        rows = self.reached.get(state)
        if rows is None:
            rows = self.reached[state] = np.zeros(
                (self.num_nodes, self.num_blocks), dtype=np.uint64
            )
        return rows

    @staticmethod
    def _has_bit(row, node: int) -> bool:
        import numpy as np

        return bool(row[node >> 6] & (np.uint64(1) << np.uint64(node & 63)))

    @staticmethod
    def _set_bit(row, node: int) -> None:
        import numpy as np

        row[node >> 6] |= np.uint64(1) << np.uint64(node & 63)

    def _bit_row(self, node: int):
        import numpy as np

        row = np.zeros(self.num_blocks, dtype=np.uint64)
        self._set_bit(row, node)
        return row

    def _sweep_rows_to_fixpoint(self, frontier) -> None:
        """Resume the product fixpoint from per-row deltas.

        The block-row analogue of :func:`repro.rpq.engine._sweep_to_fixpoint`:
        frontier buckets map node → ``(B,)`` delta vector, expansion reads
        the **live** adjacency (so edges inserted mid-batch participate),
        and final-state deltas are OR-ed into the answers matrix.
        """
        db = self.db
        compiled = self.compiled
        table = compiled.table
        finals = compiled.finals
        answers = self.answers_matrix
        while frontier:
            next_frontier: dict[int, dict[int, object]] = {}
            for state, bucket in frontier.items():
                row = table.get(state)
                if not row:
                    continue
                for label, next_states in row.items():
                    adjacency = db.label_out_index(label)
                    if not adjacency:
                        continue
                    for node, delta in bucket.items():
                        targets = adjacency.get(node)
                        if not targets:
                            continue
                        for next_state in next_states:
                            next_rows = self._state_rows(next_state)
                            is_final = next_state in finals
                            for w in targets:
                                new = delta & ~next_rows[w]
                                if not new.any():
                                    continue
                                next_rows[w] |= new
                                dest = next_frontier.setdefault(next_state, {})
                                if w in dest:
                                    dest[w] |= new
                                else:
                                    dest[w] = new.copy()
                                if is_final:
                                    answers[w] |= new
            frontier = next_frontier

    # ------------------------------------------------------------------
    # Delta absorption (same contracts as DeltaSweepState)
    # ------------------------------------------------------------------
    def apply_insertions(self, edges: Iterable[Edge]) -> int:
        """Block-row :meth:`DeltaSweepState.apply_insertions`."""
        db = self.db
        compiled = self.compiled
        if db.num_nodes > self.num_nodes:
            self._grow(db.num_nodes)
        table = compiled.table
        initials = compiled.initials
        finals = compiled.finals
        answers = self.answers_matrix
        node_id = db.node_id
        frontier: dict[int, dict[int, object]] = {}
        applied = 0
        for source, label, target in edges:
            applied += 1
            u = node_id(source)
            v = node_id(target)
            for state, row in table.items():
                next_states = row.get(label)
                if next_states is None:
                    continue
                state_rows = self._state_rows(state)
                if state in initials and not self._has_bit(state_rows[u], u):
                    self._set_bit(state_rows[u], u)
                    bucket = frontier.setdefault(state, {})
                    if u in bucket:
                        self._set_bit(bucket[u], u)
                    else:
                        bucket[u] = self._bit_row(u)
                sources = state_rows[u]
                if not sources.any():
                    continue
                for next_state in next_states:
                    next_rows = self._state_rows(next_state)
                    delta = sources & ~next_rows[v]
                    if not delta.any():
                        continue
                    next_rows[v] |= delta
                    bucket = frontier.setdefault(next_state, {})
                    if v in bucket:
                        bucket[v] |= delta
                    else:
                        bucket[v] = delta.copy()
                    if next_state in finals:
                        answers[v] |= delta
        if frontier:
            self._sweep_rows_to_fixpoint(frontier)
        self.edges_applied += applied
        return applied

    def apply_deletions(self, edges: Iterable[Edge]) -> int:
        """Block-row :meth:`DeltaSweepState.apply_deletions` (DRed)."""
        import numpy as np

        db = self.db
        compiled = self.compiled
        if db.num_nodes > self.num_nodes:
            self._grow(db.num_nodes)
        table = compiled.table
        rtable = compiled.rtable
        initials = compiled.initials
        finals = compiled.finals
        reached = self.reached
        answers = self.answers_matrix
        node_id = db.node_id
        label_out = db.label_out_index
        label_in = db.label_in_index

        # Phase 1: direct removal candidates, against the intact rows.
        candidates: dict[tuple[int, int], object] = {}

        def _accumulate(key, bits) -> None:
            if key in candidates:
                candidates[key] |= bits
            else:
                candidates[key] = bits.copy()

        deleted = 0
        for source, label, target in edges:
            deleted += 1
            u = node_id(source)
            v = node_id(target)
            for state, row in table.items():
                next_states = row.get(label)
                if next_states is None:
                    continue
                state_rows = reached.get(state)
                if state_rows is None:
                    continue
                sources = state_rows[u]
                if not sources.any():
                    continue
                if state in initials and self._has_bit(sources, u):
                    _accumulate((state, u), self._bit_row(u))
                for next_state in next_states:
                    next_rows = reached.get(next_state)
                    if next_rows is None:
                        continue
                    endangered = sources & next_rows[v]
                    if endangered.any():
                        _accumulate((next_state, v), endangered)
        self.edges_deleted += deleted
        if not candidates:
            return deleted

        # Phase 2: over-delete through the live product adjacency.
        overdeleted: dict[tuple[int, int], object] = {}
        worklist = list(candidates.items())
        while worklist:
            (state, node), bits = worklist.pop()
            state_rows = reached.get(state)
            if state_rows is None:
                continue
            clearing = bits & state_rows[node]
            if not clearing.any():
                continue
            state_rows[node] &= ~clearing
            key = (state, node)
            if key in overdeleted:
                overdeleted[key] |= clearing
            else:
                overdeleted[key] = clearing.copy()
            row = table.get(state)
            if not row:
                continue
            for label, next_states in row.items():
                targets = label_out(label).get(node)
                if not targets:
                    continue
                for next_state in next_states:
                    for w in targets:
                        worklist.append(((next_state, w), clearing))

        # Phase 3: boundary rederivation, then resumed fixpoint.
        frontier: dict[int, dict[int, object]] = {}
        zero = np.zeros(self.num_blocks, dtype=np.uint64)
        for (state, node), bits in overdeleted.items():
            state_rows = reached[state]
            restore = zero
            if state in initials and self._has_bit(bits, node):
                row = table.get(state)
                if row:
                    for label in row:
                        if label_out(label).get(node):
                            restore = self._bit_row(node)
                            break
            remaining = bits & ~restore
            if remaining.any():
                rrow = rtable.get(state)
                if rrow:
                    support = np.zeros(self.num_blocks, dtype=np.uint64)
                    for label, prev_states in rrow.items():
                        preds = label_in(label).get(node)
                        if not preds:
                            continue
                        for prev_state in prev_states:
                            prev_rows = reached.get(prev_state)
                            if prev_rows is None:
                                continue
                            for p in preds:
                                support |= prev_rows[p]
                    restore = restore | (remaining & support)
            delta = restore & ~state_rows[node]
            if delta.any():
                state_rows[node] |= delta
                bucket = frontier.setdefault(state, {})
                if node in bucket:
                    bucket[node] |= delta
                else:
                    bucket[node] = delta.copy()
                if state in finals:
                    answers[node] |= delta
        if frontier:
            self._sweep_rows_to_fixpoint(frontier)

        # Settle answer rows whose final-state bits were touched.
        affected_targets = {
            node for state, node in overdeleted if state in finals
        }
        if affected_targets:
            final_rows = [
                reached[state] for state in finals if state in reached
            ]
            eps = compiled.accepts_epsilon
            for v in affected_targets:
                mask = self._bit_row(v) if eps else zero.copy()
                for state_rows in final_rows:
                    mask |= state_rows[v]
                answers[v] = mask

        over = rederived = 0
        for (state, node), bits in overdeleted.items():
            lost = int.from_bytes(bits.tobytes(), "little")
            kept = int.from_bytes(
                (bits & reached[state][node]).tobytes(), "little"
            )
            over += lost.bit_count()
            rederived += kept.bit_count()
        self.overdeleted_bits += over
        self.rederived_bits += rederived
        return deleted

    def _grow(self, num_nodes: int) -> None:
        """Widen matrices after the graph interned new nodes.

        New ids append zero block rows *and* possibly new source-bit
        columns (a new 64-wide block every 64 nodes); the epsilon
        diagonal of each new node is seeded exactly as a full sweep
        would.
        """
        import numpy as np

        from .csr import blocks_for

        old_nodes = self.num_nodes
        num_blocks = blocks_for(num_nodes)

        def widen(matrix):
            grown = np.zeros((num_nodes, num_blocks), dtype=np.uint64)
            grown[:old_nodes, : self.num_blocks] = matrix
            return grown

        self.reached = {
            state: widen(rows) for state, rows in self.reached.items()
        }
        self.answers_matrix = widen(self.answers_matrix)
        self._masks_snapshot = widen(self._masks_snapshot)
        self.num_nodes = num_nodes
        self.num_blocks = num_blocks
        if self.compiled.accepts_epsilon:
            for v in range(old_nodes, num_nodes):
                self._set_bit(self.answers_matrix[v], v)

    # ------------------------------------------------------------------
    # Answers
    # ------------------------------------------------------------------
    def _sync_pairs(self) -> None:
        """Fold changed answer rows into the decoded pair set."""
        import numpy as np

        node_at = self.db.node_at
        pairs = self._pairs
        answers = self.answers_matrix
        snapshot = self._masks_snapshot
        changed = np.flatnonzero((answers != snapshot).any(axis=1))
        for target_id in changed.tolist():
            target = node_at(target_id)
            mask = int.from_bytes(answers[target_id].tobytes(), "little")
            seen = int.from_bytes(snapshot[target_id].tobytes(), "little")
            new_bits = mask & ~seen
            while new_bits:
                low_bit = new_bits & -new_bits
                pairs.add((node_at(low_bit.bit_length() - 1), target))
                new_bits ^= low_bit
            lost_bits = seen & ~mask
            while lost_bits:
                low_bit = lost_bits & -lost_bits
                pairs.discard((node_at(low_bit.bit_length() - 1), target))
                lost_bits ^= low_bit
            snapshot[target_id] = answers[target_id]

    def answer_ids(self) -> list[tuple[int, int]]:
        """The current answers as dense-id pairs, sorted."""
        from . import kernel as _kernel

        sources, targets = _kernel.decode_matrix(
            self.answers_matrix, self.num_nodes
        )
        return list(zip(sources.tolist(), targets.tolist()))

    def answers(self) -> frozenset[Pair]:
        """The current answer set, decoded to node objects."""
        self._sync_pairs()
        return frozenset(self._pairs)

    def answers_sorted(self) -> list[Pair]:
        """Answers sorted by ``(node_id(x), node_id(y))`` — byte-identical
        to :func:`repro.rpq.engine.evaluate_all_sorted` on the same graph."""
        node_at = self.db.node_at
        return [
            (node_at(source_id), node_at(target_id))
            for source_id, target_id in self.answer_ids()
        ]

    def __repr__(self) -> str:
        return (
            f"NumpyDeltaSweepState(nodes={self.num_nodes}, "
            f"blocks={self.num_blocks}, "
            f"states={len(self.reached)}, "
            f"edges_applied={self.edges_applied}, "
            f"edges_deleted={self.edges_deleted})"
        )


def make_delta_state(
    db: GraphDB, compiled: CompiledAutomaton, backend: str = "auto"
):
    """The delta-sweep state for ``db`` under the resolved ``backend``.

    ``"auto"`` picks the numpy state at the same edge-count threshold as
    :func:`repro.rpq.engine.resolve_backend`, so a session's incremental
    path upgrades in lockstep with its batch path.
    """
    if _engine.resolve_backend(db, backend) == "numpy":
        return NumpyDeltaSweepState(db, compiled)
    return DeltaSweepState(db, compiled)
