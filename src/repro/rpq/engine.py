"""Compiled RPQ evaluation engine (Definition 4.2, the fast path).

The naive evaluator (:func:`repro.rpq.evaluation.naive_evaluate`) runs one
BFS of the (node, automaton-state) product per source node and decides
symbol-vs-label matching with a Python closure on every (edge, symbol)
pair.  This module replaces that hot path with three ideas drawn from the
RPQ-at-scale literature (shared reachability computation, label-indexed
adjacency, frontier batching):

1. **Compile once.**  :class:`CompiledAutomaton` precomputes, per NFA
   state, a ``label -> next-states`` table restricted to the labels that
   actually occur in the database.  :class:`~repro.rpq.formulas.Formula`
   symbols are resolved against the :class:`~repro.rpq.theory.Theory`
   exactly once, at compile time, so the inner loop never evaluates a
   formula.  States that cannot lie on an accepting run are trimmed
   (:func:`_trim_useless_states` — complete rewriting DFAs carry a dead
   sink that would otherwise make the product sweep quadratic in the
   graph).  Compilation results are memoized in a small LRU cache keyed
   on (automaton, theory, label domain).

2. **Index by label.**  :class:`~repro.rpq.graphdb.GraphDB` stores its
   edges label-first over dense integer node ids with a mirrored reverse
   index, so a whole frontier is pushed through one label with a few bulk
   set unions (``successors_bulk`` / ``predecessors_bulk``).

3. **Macro-frontier sweeps.**  :func:`evaluate_all` answers the full
   all-pairs query in *one* semi-naive sweep: the BFS frontier maps each
   (state, node) to the *set of source nodes* newly known to reach it, and
   each round pushes those source sets across label-indexed edges in bulk.
   Every source is added to a given (state, node) cell at most once, so
   the work is shared across all |V| sources instead of being redone per
   source.  :func:`evaluate_single_source` is the single-source variant
   (frontiers are plain node sets) and :func:`evaluate_pair` decides a
   single pair with a bidirectional search that alternately grows the
   smaller of a forward frontier (from the source, via the transition
   table) and a backward frontier (from the target, via the reversed
   table and the graph's reverse-edge index).

The naive evaluator remains available as the reference oracle for
differential testing; both must agree on every (database, query, theory)
triple.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterable, Mapping

from ..automata.nfa import NFA
from .formulas import Formula
from .graphdb import GraphDB
from .theory import Theory

__all__ = [
    "CompiledAutomaton",
    "compile_automaton",
    "compile_cache_info",
    "compile_cache_clear",
    "evaluate_all",
    "evaluate_all_sorted",
    "evaluate_single_source",
    "evaluate_pair",
    "resolve_backend",
    "NUMPY_BACKEND_MIN_EDGES",
]

Pair = tuple[Hashable, Hashable]

# Auto backend selection: below this edge count the big-int sweep's tiny
# constant factors win; at or above it the vectorized numpy kernel
# (:mod:`repro.rpq.kernel`) amortizes its setup and pulls ahead — the
# crossover is measured by ``benchmarks/bench_vectorized_sweep.py``.
NUMPY_BACKEND_MIN_EDGES = 8192

_BACKENDS = ("auto", "bigint", "numpy")


def resolve_backend(db: GraphDB, backend: str = "auto") -> str:
    """Pick the concrete all-pairs sweep backend for ``db``.

    ``"bigint"`` and ``"numpy"`` are honoured as given (the big-int
    sweep stays available as the differential oracle for the kernel);
    ``"auto"`` selects numpy once the graph is large enough for the
    vectorized sweep to win (``NUMPY_BACKEND_MIN_EDGES``).
    """
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {_BACKENDS}"
        )
    if backend != "auto":
        return backend
    return "numpy" if db.num_edges >= NUMPY_BACKEND_MIN_EDGES else "bigint"


class CompiledAutomaton:
    """An epsilon-free NFA specialized to a database's label domain.

    ``table[state][label]`` is the frozenset of successor states reached by
    reading an edge with that concrete label — formula symbols have already
    been expanded to the satisfying labels, and labels absent from the
    database have been dropped.  ``rtable`` is the same relation reversed
    (``rtable[state][label]`` = predecessor states), used by the backward
    half of the bidirectional search.
    """

    __slots__ = (
        "table",
        "rtable",
        "initials",
        "finals",
        "accepts_epsilon",
        "num_states",
    )

    def __init__(
        self,
        table: dict[int, dict[Hashable, frozenset[int]]],
        initials: frozenset[int],
        finals: frozenset[int],
    ):
        self.table = table
        self.initials = initials
        self.finals = finals
        self.accepts_epsilon = bool(initials & finals)
        rtable: dict[int, dict[Hashable, set[int]]] = {}
        states = set(initials) | set(finals)
        for state, row in table.items():
            states.add(state)
            for label, next_states in row.items():
                states |= next_states
                for next_state in next_states:
                    rtable.setdefault(next_state, {}).setdefault(
                        label, set()
                    ).add(state)
        self.num_states = len(states)
        self.rtable: dict[int, dict[Hashable, frozenset[int]]] = {
            state: {label: frozenset(srcs) for label, srcs in row.items()}
            for state, row in rtable.items()
        }

    def __repr__(self) -> str:
        return (
            f"CompiledAutomaton(states={self.num_states}, "
            f"labels={sorted(map(repr, {l for r in self.table.values() for l in r}))})"
        )


# ----------------------------------------------------------------------
# Compilation + LRU cache
# ----------------------------------------------------------------------

_CACHE_MAXSIZE = 128
_cache: OrderedDict[tuple, CompiledAutomaton] = OrderedDict()
_cache_hits = 0
_cache_misses = 0


def compile_cache_info() -> dict[str, int]:
    """Hit/miss/size counters of the compilation cache (for tests/ops)."""
    return {
        "hits": _cache_hits,
        "misses": _cache_misses,
        "size": len(_cache),
        "maxsize": _CACHE_MAXSIZE,
    }


def compile_cache_clear() -> None:
    """Empty the compilation cache and reset its hit/miss counters —
    used by tests and benchmarks that must measure or assert cold-path
    behaviour (a serving process never needs to call this)."""
    _cache.clear()
    global _cache_hits, _cache_misses
    _cache_hits = 0
    _cache_misses = 0


def compile_automaton(
    nfa: NFA,
    theory: Theory | None,
    labels: Iterable[Hashable],
    plain_symbols: bool = False,
) -> CompiledAutomaton:
    """Specialize ``nfa`` to the concrete edge-label domain ``labels``.

    Formula symbols are resolved through ``theory`` (required if any are
    present, unless ``plain_symbols`` forces the paper's ``ans`` semantics
    where every symbol — formula-valued or not — is matched by equality).
    Results are memoized per (automaton identity, theory identity, label
    domain, symbol discipline); ``NFA`` and ``Theory`` instances are
    immutable, so identity keying is sound.
    """
    global _cache_hits, _cache_misses
    label_domain = labels if isinstance(labels, frozenset) else frozenset(labels)
    key = (nfa, theory, label_domain, plain_symbols)
    cached = _cache.get(key)
    if cached is not None:
        _cache_hits += 1
        _cache.move_to_end(key)
        return cached
    _cache_misses += 1

    if not plain_symbols:
        formula_symbols = [s for s in nfa.alphabet if isinstance(s, Formula)]
        if formula_symbols and theory is None:
            raise ValueError(
                "query uses formulae; a Theory is required to evaluate it"
            )
    if nfa.has_epsilon_moves():
        nfa = nfa.without_epsilon()

    satisfying: dict[Formula, frozenset[Hashable]] = {}
    table: dict[int, dict[Hashable, frozenset[int]]] = {}
    for state, row in nfa.compiled_rows().items():
        compiled_row: dict[Hashable, set[int]] = {}
        for symbol, next_states in row.items():
            if not plain_symbols and isinstance(symbol, Formula):
                matched = satisfying.get(symbol)
                if matched is None:
                    matched = theory.satisfying(symbol) & label_domain
                    satisfying[symbol] = matched
            else:
                matched = (symbol,) if symbol in label_domain else ()
            for label in matched:
                targets = compiled_row.get(label)
                if targets is None:
                    compiled_row[label] = set(next_states)
                else:
                    targets |= next_states
        if compiled_row:
            table[state] = {
                label: frozenset(targets)
                for label, targets in compiled_row.items()
            }
    table, initials, finals = _trim_useless_states(
        table, nfa.initials, nfa.finals
    )
    compiled = CompiledAutomaton(table, initials, finals)
    _cache[key] = compiled
    if len(_cache) > _CACHE_MAXSIZE:
        _cache.popitem(last=False)
    return compiled


def _trim_useless_states(
    table: dict[int, dict[Hashable, frozenset[int]]],
    initials: frozenset[int],
    finals: frozenset[int],
) -> tuple[
    dict[int, dict[Hashable, frozenset[int]]], frozenset[int], frozenset[int]
]:
    """Drop states that cannot lie on any accepting run.

    Rewriting DFAs arrive *complete* (the Theorem 2.2 complementation
    needs totality), so they carry a dead sink looping on every symbol.
    Left in the table, the sink turns the product sweep quadratic: every
    source saturates ``reached[sink]`` across the whole graph for
    answers that can never materialize.  Keeping only states both
    reachable from an initial state and co-reachable to a final one
    leaves the answer set untouched while the sweep's work drops to the
    useful product — the difference between seconds and minutes on a
    50k-edge store.  Initial-and-final states are always useful, so the
    epsilon-acceptance bit survives trimming unchanged.
    """
    forward = set(initials)
    stack = list(initials)
    while stack:
        state = stack.pop()
        for next_states in table.get(state, {}).values():
            for next_state in next_states:
                if next_state not in forward:
                    forward.add(next_state)
                    stack.append(next_state)
    predecessors: dict[int, set[int]] = {}
    for state, row in table.items():
        for next_states in row.values():
            for next_state in next_states:
                predecessors.setdefault(next_state, set()).add(state)
    backward = set(finals)
    stack = list(finals)
    while stack:
        state = stack.pop()
        for prev_state in predecessors.get(state, ()):
            if prev_state not in backward:
                backward.add(prev_state)
                stack.append(prev_state)
    useful = forward & backward
    trimmed: dict[int, dict[Hashable, frozenset[int]]] = {}
    for state, row in table.items():
        if state not in useful:
            continue
        trimmed_row = {
            label: kept
            for label, next_states in row.items()
            if (kept := next_states & useful)
        }
        if trimmed_row:
            trimmed[state] = trimmed_row
    return trimmed, initials & useful, finals & useful


# ----------------------------------------------------------------------
# Evaluation sweeps
# ----------------------------------------------------------------------


def evaluate_all(
    db: GraphDB, compiled: CompiledAutomaton, *, backend: str = "auto"
) -> frozenset[Pair]:
    """All pairs ``(x, y)`` with a matching path, in one shared sweep.

    Semi-naive evaluation of the product reachability relation: for each
    automaton state we keep, per node id, the set of *source* ids known to
    reach that (state, node) product point, and the frontier carries only
    the newly added sources, so each source crosses each product edge at
    most once.  Source sets are packed into Python integers used as
    bitmasks — union, difference, and emptiness checks on whole source
    sets are then single C-level big-int operations, which is what lets
    one sweep genuinely outrun |V| independent BFS runs.

    See :func:`evaluate_all_sorted` for the deterministically ordered
    variant of the same answer set.
    """
    node_at = db.node_at
    return frozenset(
        (node_at(source_id), node_at(target_id))
        for source_id, target_id in _all_pairs_ids(db, compiled, backend)
    )


def evaluate_all_sorted(
    db: GraphDB, compiled: CompiledAutomaton, *, backend: str = "auto"
) -> list[Pair]:
    """All answer pairs, sorted by ``(node_id(x), node_id(y))``.

    **Ordering guarantee:** the sort key is the database's dense node id
    — its *interning order* — never the nodes' own comparison or hash
    order.  The resulting list is therefore identical across processes
    (no ``PYTHONHASHSEED`` dependence), across shard and worker counts
    (:class:`repro.rpq.sharded.ParallelEvaluator` honours the same
    contract), and for the naive oracle once its answers are sorted with
    the same key — which is what lets differential harnesses compare
    whole lists byte for byte instead of set-compare only.
    """
    id_pairs = _all_pairs_ids(db, compiled, backend)
    id_pairs.sort()
    node_at = db.node_at
    return [
        (node_at(source_id), node_at(target_id))
        for source_id, target_id in id_pairs
    ]


def _seed_all_pairs(
    db: GraphDB, compiled: CompiledAutomaton
) -> tuple[dict[int, list[int]], dict[int, dict[int, int]], list[int]]:
    """Fresh ``(reached, frontier, answer_masks)`` for a full sweep.

    ``reached[state][node_id]`` is the bitmask of source ids known to
    reach the ``(state, node)`` product point; the frontier carries the
    seed deltas of the first round; ``answer_masks[node]`` starts at the
    epsilon answers (the diagonal) when the automaton accepts the empty
    word.  Shared by :func:`_all_pairs_ids` and by
    :class:`repro.rpq.incremental.DeltaSweepState`, whose retained state
    is exactly this triple after :func:`_sweep_to_fixpoint` drained the
    frontier.
    """
    num_nodes = db.num_nodes
    bits = [1 << v for v in range(num_nodes)]
    reached: dict[int, list[int]] = {}
    frontier: dict[int, dict[int, int]] = {}
    for state in compiled.initials:
        # Seed only sources with an out-edge matching this state's row:
        # any other source can contribute nothing beyond the epsilon answer.
        row = compiled.table.get(state)
        seeds: set[int] = set()
        if row:
            for label in row:
                seeds.update(db.label_out_index(label))
        state_reached = [0] * num_nodes
        bucket: dict[int, int] = {}
        for v in seeds:
            state_reached[v] = bits[v]
            bucket[v] = bits[v]
        reached[state] = state_reached
        if bucket:
            frontier[state] = bucket
    answer_masks = list(bits) if compiled.accepts_epsilon else [0] * num_nodes
    return reached, frontier, answer_masks


def _sweep_to_fixpoint(
    db: GraphDB,
    compiled: CompiledAutomaton,
    reached: dict[int, list[int]],
    frontier: dict[int, dict[int, int]],
    answer_masks: list[int],
) -> None:
    """Run the macro-frontier loop until the frontier drains.

    Mutates ``reached`` and ``answer_masks`` in place.  The loop is
    *resumable*: it only requires that every frontier delta is already
    recorded in ``reached`` — whether the frontier came from a fresh
    :func:`_seed_all_pairs` or from the inserted-edge deltas of an
    incremental update, the masks saturate to the same least fixpoint
    (semi-naive evaluation is confluent), which is what makes
    delta-driven re-evaluation bit-identical to a full recompute.
    """
    finals = compiled.finals
    while frontier:
        next_frontier: dict[int, dict[int, int]] = {}
        for state, node_sources in frontier.items():
            row = compiled.table.get(state)
            if not row:
                continue
            for label, next_states in row.items():
                adjacency = db.label_out_index(label)
                if not adjacency:
                    continue
                if len(adjacency) < len(node_sources):
                    hot = [
                        (adjacency[v], node_sources[v])
                        for v in adjacency
                        if v in node_sources
                    ]
                else:
                    hot = [
                        (adjacency[v], sources)
                        for v, sources in node_sources.items()
                        if v in adjacency
                    ]
                for next_state in next_states:
                    state_reached = reached.get(next_state)
                    if state_reached is None:
                        state_reached = reached[next_state] = [0] * len(
                            answer_masks
                        )
                    bucket = next_frontier.get(next_state)
                    if bucket is None:
                        bucket = next_frontier[next_state] = {}
                    is_final = next_state in finals
                    for targets, sources in hot:
                        for w in targets:
                            delta = sources & ~state_reached[w]
                            if not delta:
                                continue
                            state_reached[w] |= delta
                            if w in bucket:
                                bucket[w] |= delta
                            else:
                                bucket[w] = delta
                            if is_final:
                                answer_masks[w] |= delta
        frontier = {
            state: bucket for state, bucket in next_frontier.items() if bucket
        }


def _decode_answer_masks(answer_masks: list[int]) -> list[tuple[int, int]]:
    """Unpack per-target source bitmasks into dense-id pairs (unordered)."""
    id_pairs: list[tuple[int, int]] = []
    for target_id, mask in enumerate(answer_masks):
        while mask:
            low_bit = mask & -mask
            id_pairs.append((low_bit.bit_length() - 1, target_id))
            mask ^= low_bit
    return id_pairs


def _all_pairs_ids(
    db: GraphDB, compiled: CompiledAutomaton, backend: str = "auto"
) -> list[tuple[int, int]]:
    """The all-pairs sweep, decoded to dense-id pairs.

    The big-int path returns pairs in mask-decode order (unordered); the
    numpy path returns them sorted.  Both callers either sort or build a
    set, so the orders are interchangeable — the *pair sets* are
    bit-identical by the kernel's exactness contract.
    """
    if db.num_nodes == 0 or not compiled.initials:
        return []
    if resolve_backend(db, backend) == "numpy":
        from . import kernel as _kernel

        return _kernel.all_pairs_ids(db.to_csr(), compiled)
    reached, frontier, answer_masks = _seed_all_pairs(db, compiled)
    _sweep_to_fixpoint(db, compiled, reached, frontier, answer_masks)
    return _decode_answer_masks(answer_masks)


def evaluate_single_source(
    db: GraphDB, compiled: CompiledAutomaton, source: Hashable
) -> frozenset[Hashable]:
    """All ``y`` with a matching path from ``source`` (forward sweep).

    Raises ``KeyError`` if ``source`` is not a node of ``db``.
    """
    source_id = db.node_id(source)
    reached: dict[int, set[int]] = {
        state: {source_id} for state in compiled.initials
    }
    frontier: dict[int, set[int]] = {
        state: {source_id} for state in compiled.initials
    }
    result: set[int] = set()
    if compiled.accepts_epsilon:
        result.add(source_id)
    finals = compiled.finals
    while frontier:
        frontier = _expand_step(
            compiled.table, db.successors_bulk, frontier, reached, result, finals
        )
    return frozenset(db.node_at(v) for v in result)


def _expand_step(
    table: Mapping[int, Mapping[Hashable, frozenset[int]]],
    expand_bulk,
    frontier: Mapping[int, set[int]],
    reached: dict[int, set[int]],
    hits: set[int] | None = None,
    hit_states: frozenset[int] = frozenset(),
) -> dict[int, set[int]]:
    """One macro-frontier expansion in either direction.

    Forward passes ``(compiled.table, db.successors_bulk)``, backward
    ``(compiled.rtable, db.predecessors_bulk)`` — the delta/seen
    bookkeeping is direction-agnostic.  Nodes newly reaching a state in
    ``hit_states`` are accumulated into ``hits`` when given.
    """
    next_frontier: dict[int, set[int]] = {}
    for state, nodes in frontier.items():
        row = table.get(state)
        if not row:
            continue
        for label, adjacent_states in row.items():
            targets = expand_bulk(nodes, label)
            if not targets:
                continue
            for next_state in adjacent_states:
                seen = reached.get(next_state)
                if seen is None:
                    delta = set(targets)
                    reached[next_state] = set(targets)
                else:
                    delta = targets - seen
                    if not delta:
                        continue
                    seen |= delta
                bucket = next_frontier.get(next_state)
                if bucket is None:
                    next_frontier[next_state] = delta
                else:
                    bucket |= delta
                if hits is not None and next_state in hit_states:
                    hits |= delta
    return next_frontier


def _meets(
    left: Mapping[int, set[int]], right: Mapping[int, set[int]]
) -> bool:
    if len(left) > len(right):
        left, right = right, left
    for state, nodes in left.items():
        other = right.get(state)
        if other and not nodes.isdisjoint(other):
            return True
    return False


def evaluate_pair(
    db: GraphDB,
    compiled: CompiledAutomaton,
    source: Hashable,
    target: Hashable,
) -> bool:
    """Is ``(source, target)`` in the answer?  Bidirectional search.

    Grows the cheaper of two frontiers each round — forward from
    ``source`` through ``table``/``successors_bulk``, backward from
    ``target`` through ``rtable``/``predecessors_bulk`` — and succeeds as
    soon as they share a (state, node) product point.  Raises ``KeyError``
    on unknown endpoints.
    """
    source_id = db.node_id(source)
    target_id = db.node_id(target)
    forward: dict[int, set[int]] = {s: {source_id} for s in compiled.initials}
    backward: dict[int, set[int]] = {s: {target_id} for s in compiled.finals}
    if _meets(forward, backward):
        return True
    forward_frontier = {s: set(ns) for s, ns in forward.items()}
    backward_frontier = {s: set(ns) for s, ns in backward.items()}
    while forward_frontier and backward_frontier:
        forward_size = sum(len(ns) for ns in forward_frontier.values())
        backward_size = sum(len(ns) for ns in backward_frontier.values())
        if forward_size <= backward_size:
            forward_frontier = _expand_step(
                compiled.table, db.successors_bulk, forward_frontier, forward
            )
            if _meets(forward_frontier, backward):
                return True
        else:
            backward_frontier = _expand_step(
                compiled.rtable, db.predecessors_bulk, backward_frontier, backward
            )
            if _meets(backward_frontier, forward):
                return True
    return False
