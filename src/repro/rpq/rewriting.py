"""View-based rewriting of regular path queries (Section 4.2).

The algorithm lifts Section 2's construction to queries over formulae of a
theory T.  Simply treating the formula set F as the base alphabet would be
wrong — the paper's own example: with ``T |= forall x. A(x) -> B(x)``,
``Q0 = B`` and ``Q = {A}``, the maximal rewriting is ``A``, which symbol-level
rewriting misses.  Instead the construction works modulo T:

1. Ground the query: build ``Q0^*`` accepting ``match(L(Q0))`` over D and
   determinize it into ``Ad``.
2. Build ``A'`` over the view alphabet Sigma_Q: a ``q``-edge ``s_i -> s_j``
   iff some D-word matching a word of ``L(rpq(q))`` drives ``Ad`` from
   ``s_i`` to ``s_j``.
3. The rewriting ``R_{Q,Q0}`` is the complement of ``A'`` (Theorem 4.2).

Step 2 is implemented two ways, selectable via ``strategy``:

* ``"ground"`` — ground every view with ``Q^*`` and reuse the plain
  Section 2 machinery;
* ``"product"`` — the paper's optimization: never ground the views; the
  product of ``A_d^{i,j}`` with the *formula* automaton of the view has a
  transition ``(s1, s2) -> (s1', s2')`` iff some constant ``a`` satisfies
  the formula and moves ``Ad`` from ``s1`` to ``s1'``.

The remark at the end of Section 4.2 — partitioning constants into classes
with equal formula signatures — is available via ``partition=True``.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping, Sequence

from ..automata.containment import containment_counterexample, is_contained
from ..automata.determinize import determinize
from ..automata.dfa import DFA
from ..automata.emptiness import enumerate_words, is_empty, shortest_word
from ..automata.minimize import minimize
from ..automata.nfa import EPS, NFA
from ..automata.operations import complement
from ..automata.state_elim import to_regex
from ..core.alphabet import ViewSet
from ..core.expansion import expansion_nfa
from ..regex.ast import Regex
from .formulas import Const, Formula
from .graphdb import GraphDB
from .query import RPQ, QuerySpec
from .theory import Theory
from .views import RPQViews

__all__ = ["rewrite_rpq", "RPQRewritingResult", "STRATEGIES"]

STRATEGIES = ("ground", "product")

Pair = tuple[Hashable, Hashable]


@dataclass
class RPQRewritingResult:
    """The Sigma_Q-maximal rewriting ``R_{Q,Q0}`` of an RPQ (Theorem 4.2)."""

    automaton: DFA
    views: RPQViews
    theory: Theory
    ad: DFA
    a_prime: NFA
    alphabet_used: frozenset[Hashable]
    stats: dict[str, float] = field(default_factory=dict)
    _regex: Regex | None = field(default=None, repr=False)
    _grounded_views: ViewSet | None = field(default=None, repr=False)

    def accepts(self, word: Sequence[Hashable]) -> bool:
        """Is the Sigma_Q word part of the rewriting?"""
        return self.automaton.accepts(word)

    def is_empty(self) -> bool:
        return is_empty(self.automaton)

    def shortest_word(self) -> tuple[Hashable, ...] | None:
        return shortest_word(self.automaton)

    def words(self, max_length: int, max_count: int | None = None):
        return enumerate_words(self.automaton, max_length, max_count)

    def regex(self) -> Regex:
        """The rewriting as a regular expression over Sigma_Q (cached)."""
        if self._regex is None:
            self._regex = to_regex(self.automaton)
        return self._regex

    def grounded_views(self) -> ViewSet:
        """The views as a core :class:`ViewSet` of D-automata (cached)."""
        if self._grounded_views is None:
            self._grounded_views = ViewSet(
                {
                    symbol: self.views.rpq(symbol).grounded(
                        self.theory, restrict_to=self.alphabet_used
                    )
                    for symbol in self.views.symbols
                }
            )
        return self._grounded_views

    def expansion(self) -> NFA:
        """Automaton for ``match(exp_F(L(R)))`` — the D-level expansion."""
        return expansion_nfa(self.automaton, self.grounded_views())

    def is_exact(self) -> bool:
        """Is ``ans(exp_F(L(R)), DB) = ans(L(Q0), DB)`` for every DB?

        By Theorem 4.1 this is equivalent to the D-language equality
        ``match(exp_F(L(R))) = match(L(Q0))``, i.e. ``L(Ad) subseteq L(B)``.
        """
        return is_contained(self.ad, self.expansion())

    def exactness_counterexample(self) -> tuple[Hashable, ...] | None:
        """A D-word matched by ``Q0`` but not by the rewriting's expansion."""
        return containment_counterexample(self.ad, self.expansion())

    def answer(
        self, db: GraphDB, extensions: Mapping[Hashable, Iterable[Pair]] | None = None
    ) -> frozenset[Pair]:
        """Evaluate the rewriting using only the views.

        ``extensions`` are the materialized view answers; they are computed
        from ``db`` when absent (the data-integration scenario supplies them
        directly and never touches ``db``).
        """
        from ..service.store import answer_on_extensions

        if extensions is None:
            extensions = self.views.materialize(db, self.theory)
        return answer_on_extensions(self.automaton, extensions)

    def __repr__(self) -> str:
        return (
            f"RPQRewritingResult(states={self.automaton.num_states}, "
            f"views={list(self.views.symbols)})"
        )


def rewrite_rpq(
    q0: QuerySpec,
    views: RPQViews | Mapping[Hashable, QuerySpec] | Iterable[QuerySpec],
    theory: Theory,
    strategy: str = "product",
    partition: bool = False,
    minimize_result: bool = True,
) -> RPQRewritingResult:
    """Compute the Sigma_Q-maximal rewriting of ``q0`` wrt ``views`` under T."""
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; expected {STRATEGIES}")
    views = _as_rpq_views(views)
    query = q0 if isinstance(q0, RPQ) else RPQ(q0)
    stats: dict[str, float] = {}

    alphabet = _grounding_alphabet(query, views, theory, partition)
    stats["alphabet_size"] = len(alphabet)

    started = time.perf_counter()
    grounded_q0 = query.grounded(theory, restrict_to=alphabet)
    ad = minimize(determinize(grounded_q0)).completed(alphabet)
    stats["ad_states"] = ad.num_states
    stats["time_ad"] = time.perf_counter() - started

    started = time.perf_counter()
    if strategy == "ground":
        a_prime = _a_prime_grounded(ad, views, theory, alphabet)
    else:
        a_prime = _a_prime_product(ad, views, theory, alphabet)
    stats["a_prime_transitions"] = a_prime.num_transitions
    stats["time_a_prime"] = time.perf_counter() - started

    started = time.perf_counter()
    rewriting = complement(a_prime, alphabet=views.symbols)
    if minimize_result:
        rewriting = minimize(rewriting, trim=False)
    stats["rewriting_states"] = rewriting.num_states
    stats["time_complement"] = time.perf_counter() - started

    return RPQRewritingResult(
        automaton=rewriting,
        views=views,
        theory=theory,
        ad=ad,
        a_prime=a_prime,
        alphabet_used=frozenset(alphabet),
        stats=stats,
    )


def _as_rpq_views(
    views: RPQViews | Mapping[Hashable, QuerySpec] | Iterable[QuerySpec],
) -> RPQViews:
    if isinstance(views, RPQViews):
        return views
    if isinstance(views, Mapping):
        return RPQViews(views)
    return RPQViews.from_list(list(views))


def _grounding_alphabet(
    query: RPQ, views: RPQViews, theory: Theory, partition: bool
) -> frozenset[Hashable]:
    """The D-alphabet over which automata are built.

    Without partitioning this is all of D.  With partitioning, constants
    indistinguishable by every formula occurring in the query or the views
    (plain symbols count as elementary formulae) collapse to one class
    representative — sound because all constructed languages are saturated
    under the induced equivalence.
    """
    if not partition:
        return theory.domain
    formulas: set[Formula] = set(query.formulas()) | set(views.formulas())
    plain: set[Hashable] = set()
    for symbol in query.alphabet():
        if not isinstance(symbol, Formula):
            plain.add(symbol)
    for view_symbol in views.symbols:
        for symbol in views.rpq(view_symbol).alphabet():
            if not isinstance(symbol, Formula):
                plain.add(symbol)
    formulas |= {Const(a) for a in plain}
    representatives = theory.representatives(formulas)
    return frozenset(set(representatives.values()))


def _a_prime_grounded(
    ad: DFA, views: RPQViews, theory: Theory, alphabet: frozenset[Hashable]
) -> NFA:
    """Step 2 via full view grounding + the shared compiled relation core."""
    from ..core.rewriter import sigma_e_automaton

    grounded = {
        symbol: views.rpq(symbol).grounded(theory, restrict_to=alphabet)
        for symbol in views.symbols
    }
    return sigma_e_automaton(ad, grounded, finals=ad.states - ad.finals)


def _a_prime_product(
    ad: DFA, views: RPQViews, theory: Theory, alphabet: frozenset[Hashable]
) -> NFA:
    """Step 2 via the paper's grounding-free product automaton ``K``.

    For each view and each ``Ad`` state ``s_i``, search the product of
    ``A_d^{i,.}`` with the view's *formula* automaton: the pair
    ``(s1, s2)`` steps to ``(s1', s2')`` iff the view has a transition
    ``s2 --phi--> s2'`` and some constant ``a`` (in the grounding alphabet)
    satisfies ``phi`` with ``delta_d(s1, a) = s1'``.  Only the satisfying
    sets of the formulae that actually occur are ever computed — formulae
    are instantiated "only to those constants that are actually necessary".
    """
    transitions: dict[int, dict[Hashable, set[int]]] = {}
    for view_symbol in views.symbols:
        view_nfa = views.rpq(view_symbol).nfa().without_epsilon()
        satisfying: dict[Hashable, frozenset[Hashable]] = {}
        for symbol in view_nfa.alphabet:
            if isinstance(symbol, Formula):
                satisfying[symbol] = theory.satisfying(symbol) & alphabet
            else:
                satisfying[symbol] = frozenset({symbol}) & alphabet
        for source in ad.states:
            targets = _product_targets(ad, view_nfa, satisfying, source)
            if targets:
                transitions.setdefault(source, {})[view_symbol] = targets
    return NFA(
        states=ad.states,
        alphabet=views.symbols,
        transitions=transitions,
        initials={ad.initial},
        finals=ad.states - ad.finals,
    )


def _product_targets(
    ad: DFA,
    view_nfa: NFA,
    satisfying: Mapping[Hashable, frozenset[Hashable]],
    source: int,
) -> set[int]:
    """All ``s_j`` reachable from ``source`` along some matching view word."""
    targets: set[int] = set()
    if frozenset(view_nfa.initials) & view_nfa.finals:
        targets.add(source)  # empty word in the view language
    seen: set[tuple[int, int]] = {(source, q) for q in view_nfa.initials}
    queue: deque[tuple[int, int]] = deque(seen)
    while queue:
        d_state, v_state = queue.popleft()
        for symbol, v_dsts in view_nfa.transitions_from(v_state).items():
            for constant in satisfying.get(symbol, ()):
                d_next = ad.successor(d_state, constant)
                if d_next is None:
                    continue
                for v_next in v_dsts:
                    pair = (d_next, v_next)
                    if pair in seen:
                        continue
                    seen.add(pair)
                    if v_next in view_nfa.finals:
                        targets.add(d_next)
                    queue.append(pair)
    return targets
