"""Partial rewritings of RPQs with added atomic views (Section 4.3).

When ``R_{Q,Q0}`` is not exact, the paper extends ``Q`` with *atomic* views
``lambda z. P(z)`` for predicates ``P`` of the theory; among these, the
*elementary* views ``lambda z. z = a`` (one per constant) always suffice to
reach exactness, so minimal extensions are the interesting output.

The search enumerates candidate subsets in order of (total size, number of
non-elementary views) — matching preference criteria 2 and 3 — and returns
every minimal extension, packaged as preference-comparable candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Hashable, Iterable, Mapping

from .formulas import Const, Pred
from .query import RPQ, QuerySpec
from .rewriting import RPQRewritingResult, RPQViews, rewrite_rpq, _as_rpq_views
from .theory import Theory

__all__ = ["PartialRPQRewriting", "find_partial_rpq_rewritings", "atomic_view_name"]


def atomic_view_name(candidate: Hashable) -> str:
    """The Sigma_Q symbol minted for an atomic view added by the partial
    rewriting search: ``q[P]`` for a predicate view, ``q[=a]`` for the
    elementary view of a constant — kept distinct from user symbols so an
    extended view set never collides with the original one."""
    if isinstance(candidate, Pred):
        return f"q[{candidate.name}]"
    return f"q[={candidate}]"


@dataclass(frozen=True)
class PartialRPQRewriting:
    """An exact rewriting after adding atomic views.

    ``added_predicates`` holds predicate names (non-elementary atomic
    views); ``added_constants`` the constants of elementary views.
    """

    added_predicates: tuple[str, ...]
    added_constants: tuple[Hashable, ...]
    result: RPQRewritingResult

    @property
    def num_added(self) -> int:
        return len(self.added_predicates) + len(self.added_constants)


def find_partial_rpq_rewritings(
    q0: QuerySpec,
    views: RPQViews | Mapping[Hashable, QuerySpec] | Iterable[QuerySpec],
    theory: Theory,
    allow_predicates: bool = True,
    allow_elementary: bool = True,
    max_added: int | None = None,
    find_all_minimal: bool = False,
    strategy: str = "product",
) -> list[PartialRPQRewriting]:
    """Minimal atomic-view extensions making the rewriting exact.

    Candidates are enumerated by increasing total count, preferring (at
    equal counts) extensions with fewer non-elementary views, per the
    paper's criteria 2–3.  Returns ``[]`` when no extension within
    ``max_added`` works, and a single ``added=()`` entry when the original
    rewriting is already exact.
    """
    views = _as_rpq_views(views)
    candidates: list[tuple[int, object]] = []
    if allow_predicates:
        candidates.extend((1, Pred(name)) for name in theory.predicate_names)
    if allow_elementary:
        candidates.extend((0, constant) for constant in sorted(theory.domain, key=repr))
    limit = len(candidates) if max_added is None else min(max_added, len(candidates))

    solutions: list[PartialRPQRewriting] = []
    for size in range(0, limit + 1):
        # At a given size, try subsets with fewer non-elementary views first.
        subsets = sorted(
            combinations(candidates, size),
            key=lambda subset: sum(kind for kind, _c in subset),
        )
        for subset in subsets:
            extension: dict[Hashable, QuerySpec] = {}
            preds: list[str] = []
            consts: list[Hashable] = []
            for kind, candidate in subset:
                if kind == 1:
                    assert isinstance(candidate, Pred)
                    extension[atomic_view_name(candidate)] = RPQ(
                        _formula_regex(candidate), name=str(candidate)
                    )
                    preds.append(candidate.name)
                else:
                    extension[atomic_view_name(candidate)] = RPQ(
                        _formula_regex(Const(candidate)), name=f"={candidate}"
                    )
                    consts.append(candidate)
            extended = views.extended(extension) if extension else views
            result = rewrite_rpq(q0, extended, theory, strategy=strategy)
            if result.is_exact():
                solutions.append(
                    PartialRPQRewriting(
                        added_predicates=tuple(preds),
                        added_constants=tuple(consts),
                        result=result,
                    )
                )
                if not find_all_minimal:
                    return solutions
        if solutions:
            return solutions
    return solutions


def _formula_regex(formula):
    from ..regex.ast import sym

    return sym(formula)
