"""The formula language of Section 4.1.

Regular path queries in the second semi-structured data approach
([BDFS97, BDHS96, FS98]) are regular expressions over *formulae with one
free variable* of a decidable complete first-order theory T over the finite
edge-label domain D.  The paper assumes:

* one constant per domain element, and a unary predicate ``lambda z. z = a``
  for each constant ``a`` (here :class:`Const`);
* arbitrary further unary predicates (here :class:`Pred`), closed under the
  boolean connectives (:class:`And`, :class:`Or`, :class:`Not`).

Formula objects are immutable and hashable so they can serve directly as
automaton alphabet symbols; satisfaction ``T |= phi(a)`` is delegated to a
:class:`~repro.rpq.theory.Theory` via :meth:`Formula.holds`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

if TYPE_CHECKING:  # pragma: no cover
    from .theory import Theory

__all__ = ["Formula", "Const", "Pred", "And", "Or", "Not", "Top", "TOP"]


@dataclass(frozen=True)
class Formula:
    """A unary formula ``lambda z. phi(z)`` over the finite domain D
    (Section 4.1, the [BDFS97]-style approach): RPQ alphabet symbols that
    are formulae match an edge label ``a`` iff ``T |= phi(a)``
    (Definition 4.1).  Compose with ``&``, ``|``, and ``~``; concrete
    leaves are :class:`Const`, :class:`Pred`, and :class:`Top`."""

    def holds(self, theory: "Theory", constant: Hashable) -> bool:
        """Does ``T |= phi(constant)``?"""
        raise NotImplementedError

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class Const(Formula):
    """The elementary predicate ``lambda z. z = value`` — the embedding
    of a plain edge label into the formula language; the paper treats
    direct-label queries as exactly this special case, and the partial
    rewriting search adds views of this shape (elementary views)."""

    value: Hashable

    def holds(self, theory: "Theory", constant: Hashable) -> bool:
        return constant == self.value

    def __str__(self) -> str:
        return f"={self.value}"


@dataclass(frozen=True)
class Pred(Formula):
    """An atomic predicate ``lambda z. P(z)`` named ``name`` in the theory."""

    name: str

    def holds(self, theory: "Theory", constant: Hashable) -> bool:
        return theory.predicate_holds(self.name, constant)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class And(Formula):
    """Conjunction of unary formulae: holds at a constant iff every part
    does.  Built by the ``&`` operator; the theory evaluates parts
    left-to-right with short-circuiting, so order can matter for cost
    but never for the result."""

    parts: tuple[Formula, ...]

    def holds(self, theory: "Theory", constant: Hashable) -> bool:
        return all(part.holds(theory, constant) for part in self.parts)

    def __str__(self) -> str:
        return "(" + " & ".join(map(str, self.parts)) + ")"


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction of unary formulae: holds at a constant iff at least
    one part does.  Built by the ``|`` operator; like :class:`And` it
    short-circuits left-to-right without affecting the result."""

    parts: tuple[Formula, ...]

    def holds(self, theory: "Theory", constant: Hashable) -> bool:
        return any(part.holds(theory, constant) for part in self.parts)

    def __str__(self) -> str:
        return "(" + " | ".join(map(str, self.parts)) + ")"


@dataclass(frozen=True)
class Not(Formula):
    """Negation of a unary formula — decidable because the theory is
    complete: ``T |= ~phi(a)`` iff ``T |/= phi(a)`` over the finite
    domain.  Built by the ``~`` operator."""

    inner: Formula

    def holds(self, theory: "Theory", constant: Hashable) -> bool:
        return not self.inner.holds(theory, constant)

    def __str__(self) -> str:
        return f"!{self.inner}"


@dataclass(frozen=True)
class Top(Formula):
    """The trivially true predicate ``lambda z. true`` (the paper's ``_``).

    The introduction's wildcard steps — e.g. the ``_`` in
    ``_* . (rome + jerusalem) . _* . restaurant`` — match any edge label.
    """

    def holds(self, theory: "Theory", constant: Hashable) -> bool:
        return True

    def __str__(self) -> str:
        return "_"


TOP = Top()
