"""Pretty-printing of regular expressions in the paper's notation.

The paper writes union as ``+``, concatenation as ``.`` and Kleene closure as
a postfix ``*`` (typeset as a superscript ``g`` in the scanned text).  We
print exactly that concrete syntax, which :mod:`repro.regex.parser` parses
back, giving a round-trip property that the test suite checks.

Symbols that are not plain identifier-like strings are quoted with single
quotes so that arbitrary hashable symbols survive the round trip.
"""

from __future__ import annotations

from typing import Hashable

from .ast import Concat, EmptySet, Epsilon, Regex, Star, Symbol, Union

__all__ = ["to_string", "symbol_to_string"]

# Precedence levels: union < concat < star/atom.
_PREC_UNION = 0
_PREC_CONCAT = 1
_PREC_ATOM = 2

_IDENTIFIER_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_$"
)


def symbol_to_string(symbol: Hashable) -> str:
    """Render a single alphabet symbol.

    Identifier-like strings print bare (``a``, ``restaurant``, ``$``); any
    other symbol is printed quoted, with backslash escapes for quotes, so it
    can be re-parsed unambiguously.
    """
    text = symbol if isinstance(symbol, str) else repr(symbol)
    if text and all(ch in _IDENTIFIER_CHARS for ch in text):
        return text
    escaped = text.replace("\\", "\\\\").replace("'", "\\'")
    return f"'{escaped}'"


def to_string(expr: Regex) -> str:
    """Render ``expr`` in the paper's concrete syntax."""
    return _render(expr, _PREC_UNION)


def _render(expr: Regex, context_prec: int) -> str:
    if isinstance(expr, EmptySet):
        return "%empty"
    if isinstance(expr, Epsilon):
        return "%eps"
    if isinstance(expr, Symbol):
        return symbol_to_string(expr.symbol)
    if isinstance(expr, Star):
        return _render(expr.inner, _PREC_ATOM) + "*"
    if isinstance(expr, Concat):
        body = ".".join(_render(part, _PREC_CONCAT) for part in expr.parts)
        return _parenthesize(body, _PREC_CONCAT, context_prec)
    if isinstance(expr, Union):
        body = "+".join(_render(part, _PREC_UNION + 1) for part in expr.parts)
        return _parenthesize(body, _PREC_UNION, context_prec)
    raise TypeError(f"unknown Regex node: {expr!r}")


def _parenthesize(body: str, own_prec: int, context_prec: int) -> str:
    if own_prec < context_prec:
        return f"({body})"
    return body
