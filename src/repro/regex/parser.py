"""Parser for regular expressions in the paper's concrete syntax.

Grammar (whitespace-insensitive)::

    union   :=  concat ('+' concat)*
    concat  :=  factor (('.' factor) | factor)*      # '.' optional
    factor  :=  atom ('*' | '?')*
    atom    :=  SYMBOL | QUOTED | '%eps' | '%empty' | '(' union ')'

Notes on symbols:

* A ``SYMBOL`` token is a maximal run of identifier characters
  (``[A-Za-z0-9_$]``), so multi-character names such as ``rome`` or
  ``restaurant`` — used throughout the paper's examples — denote a *single*
  alphabet symbol.  Concatenation of named symbols is written explicitly:
  ``rome.restaurant`` or ``rome restaurant``.
* ``'...'``-quoted tokens allow arbitrary string symbols.
* ``%eps`` (also the Unicode ``ε``) is the empty word, ``%empty`` (also
  ``∅``) the empty language.
* The middle dot ``·`` used in the paper's typesetting is accepted as a
  synonym for ``.``.

The parser and :func:`repro.regex.printer.to_string` round-trip: parsing the
printed form of an expression yields an equal AST.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ast import EMPTY, EPSILON, Regex, concat, option, star, sym, union

__all__ = ["parse", "RegexSyntaxError"]

_IDENTIFIER_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_$"
)


class RegexSyntaxError(ValueError):
    """Raised when the input is not a well-formed regular expression."""

    def __init__(self, message: str, position: int, text: str):
        super().__init__(f"{message} at position {position} in {text!r}")
        self.position = position
        self.text = text


@dataclass(frozen=True)
class _Token:
    kind: str  # 'symbol', 'eps', 'empty', '(', ')', '+', '.', '*', '?', 'end'
    value: str
    position: int


def parse(text: str) -> Regex:
    """Parse ``text`` into a :class:`~repro.regex.ast.Regex`."""
    tokens = _tokenize(text)
    parser = _Parser(tokens, text)
    expr = parser.parse_union()
    parser.expect("end")
    return expr


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in "()+*?":
            tokens.append(_Token(ch, ch, i))
            i += 1
            continue
        if ch in ".·":  # '.' or middle dot
            tokens.append(_Token(".", ch, i))
            i += 1
            continue
        if ch == "ε":  # epsilon
            tokens.append(_Token("eps", ch, i))
            i += 1
            continue
        if ch == "∅":  # empty set
            tokens.append(_Token("empty", ch, i))
            i += 1
            continue
        if ch == "%":
            for keyword, kind in (("%eps", "eps"), ("%empty", "empty")):
                if text.startswith(keyword, i):
                    tokens.append(_Token(kind, keyword, i))
                    i += len(keyword)
                    break
            else:
                raise RegexSyntaxError("unknown %-keyword", i, text)
            continue
        if ch == "'":
            value, i_next = _read_quoted(text, i)
            tokens.append(_Token("symbol", value, i))
            i = i_next
            continue
        if ch in _IDENTIFIER_CHARS:
            j = i
            while j < n and text[j] in _IDENTIFIER_CHARS:
                j += 1
            tokens.append(_Token("symbol", text[i:j], i))
            i = j
            continue
        raise RegexSyntaxError(f"unexpected character {ch!r}", i, text)
    tokens.append(_Token("end", "", n))
    return tokens


def _read_quoted(text: str, start: int) -> tuple[str, int]:
    chars: list[str] = []
    i = start + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\\":
            if i + 1 >= n:
                raise RegexSyntaxError("dangling escape", i, text)
            chars.append(text[i + 1])
            i += 2
            continue
        if ch == "'":
            return "".join(chars), i + 1
        chars.append(ch)
        i += 1
    raise RegexSyntaxError("unterminated quoted symbol", start, text)


class _Parser:
    def __init__(self, tokens: list[_Token], text: str):
        self._tokens = tokens
        self._text = text
        self._index = 0

    @property
    def current(self) -> _Token:
        return self._tokens[self._index]

    def advance(self) -> _Token:
        token = self.current
        self._index += 1
        return token

    def expect(self, kind: str) -> _Token:
        if self.current.kind != kind:
            raise RegexSyntaxError(
                f"expected {kind!r}, found {self.current.kind!r}",
                self.current.position,
                self._text,
            )
        return self.advance()

    def parse_union(self) -> Regex:
        parts = [self.parse_concat()]
        while self.current.kind == "+":
            self.advance()
            parts.append(self.parse_concat())
        return union(*parts)

    def parse_concat(self) -> Regex:
        parts = [self.parse_factor()]
        while True:
            if self.current.kind == ".":
                self.advance()
                parts.append(self.parse_factor())
            elif self.current.kind in ("symbol", "eps", "empty", "("):
                parts.append(self.parse_factor())
            else:
                break
        return concat(*parts)

    def parse_factor(self) -> Regex:
        expr = self.parse_atom()
        while self.current.kind in ("*", "?"):
            token = self.advance()
            expr = star(expr) if token.kind == "*" else option(expr)
        return expr

    def parse_atom(self) -> Regex:
        token = self.current
        if token.kind == "symbol":
            self.advance()
            return sym(token.value)
        if token.kind == "eps":
            self.advance()
            return EPSILON
        if token.kind == "empty":
            self.advance()
            return EMPTY
        if token.kind == "(":
            self.advance()
            expr = self.parse_union()
            self.expect(")")
            return expr
        raise RegexSyntaxError(
            f"expected an atom, found {token.kind!r}", token.position, self._text
        )
