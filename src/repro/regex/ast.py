"""Abstract syntax trees for regular expressions.

The paper manipulates regular expressions over arbitrary finite alphabets: the
base alphabet Sigma of a query, the view alphabet Sigma_E whose symbols stand
for whole regular languages, and alphabets of first-order formulae in the
regular-path-query setting (Section 4).  Symbols are therefore arbitrary
hashable Python objects, not just single characters.

All nodes are immutable and hashable, so they can be used as dictionary keys
(e.g. in Brzozowski-derivative DFA construction) and deduplicated freely.

The *smart constructors* :func:`concat`, :func:`union`, :func:`star`,
:func:`plus` and :func:`option` apply cheap local algebraic simplifications
(identity/annihilator laws, flattening, idempotence) so that programmatically
assembled expressions — in particular the large unions produced by the
lower-bound constructions of Section 3.2 — stay readable and small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

__all__ = [
    "Regex",
    "EmptySet",
    "Epsilon",
    "Symbol",
    "Concat",
    "Union",
    "Star",
    "EMPTY",
    "EPSILON",
    "sym",
    "concat",
    "union",
    "star",
    "plus",
    "option",
    "power",
    "word",
    "any_of",
    "bounded_repeat",
]


@dataclass(frozen=True)
class Regex:
    """Base class for all regular-expression nodes."""

    def alphabet(self) -> frozenset[Hashable]:
        """Return the set of symbols occurring in this expression."""
        return frozenset(self.iter_symbols())

    def iter_symbols(self) -> Iterator[Hashable]:
        """Yield every symbol occurrence (with repetition) in the tree."""
        raise NotImplementedError

    def size(self) -> int:
        """Number of AST nodes; the paper's notion of expression size."""
        raise NotImplementedError

    # Operator sugar: e1 + e2 is union, e1 * e2 is concatenation.
    def __add__(self, other: "Regex") -> "Regex":
        return union(self, other)

    def __mul__(self, other: "Regex") -> "Regex":
        return concat(self, other)

    def star(self) -> "Regex":
        return star(self)

    def is_empty_set(self) -> bool:
        return isinstance(self, EmptySet)

    def is_epsilon(self) -> bool:
        return isinstance(self, Epsilon)

    def __str__(self) -> str:  # pragma: no cover - delegated
        from .printer import to_string

        return to_string(self)


@dataclass(frozen=True)
class EmptySet(Regex):
    """The regular expression denoting the empty language."""

    def iter_symbols(self) -> Iterator[Hashable]:
        return iter(())

    def size(self) -> int:
        return 1

    def __repr__(self) -> str:
        return "EmptySet()"


@dataclass(frozen=True)
class Epsilon(Regex):
    """The regular expression denoting the language {epsilon}."""

    def iter_symbols(self) -> Iterator[Hashable]:
        return iter(())

    def size(self) -> int:
        return 1

    def __repr__(self) -> str:
        return "Epsilon()"


@dataclass(frozen=True)
class Symbol(Regex):
    """A single alphabet symbol.

    ``symbol`` may be any hashable object: a character, a multi-character
    name such as ``"restaurant"``, a view symbol, or a formula object in the
    RPQ setting.
    """

    symbol: Hashable

    def iter_symbols(self) -> Iterator[Hashable]:
        yield self.symbol

    def size(self) -> int:
        return 1

    def __repr__(self) -> str:
        return f"Symbol({self.symbol!r})"


@dataclass(frozen=True)
class Concat(Regex):
    """Concatenation of two or more factors (flattened, in order)."""

    parts: tuple[Regex, ...]

    def iter_symbols(self) -> Iterator[Hashable]:
        for part in self.parts:
            yield from part.iter_symbols()

    def size(self) -> int:
        return 1 + sum(part.size() for part in self.parts)

    def __repr__(self) -> str:
        return f"Concat({', '.join(map(repr, self.parts))})"


@dataclass(frozen=True)
class Union(Regex):
    """Union of two or more alternatives (flattened, deduplicated)."""

    parts: tuple[Regex, ...]

    def iter_symbols(self) -> Iterator[Hashable]:
        for part in self.parts:
            yield from part.iter_symbols()

    def size(self) -> int:
        return 1 + sum(part.size() for part in self.parts)

    def __repr__(self) -> str:
        return f"Union({', '.join(map(repr, self.parts))})"


@dataclass(frozen=True)
class Star(Regex):
    """Kleene closure."""

    inner: Regex

    def iter_symbols(self) -> Iterator[Hashable]:
        yield from self.inner.iter_symbols()

    def size(self) -> int:
        return 1 + self.inner.size()

    def __repr__(self) -> str:
        return f"Star({self.inner!r})"


EMPTY = EmptySet()
EPSILON = Epsilon()


def sym(symbol: Hashable) -> Symbol:
    """Build a :class:`Symbol` node (accepts any hashable symbol)."""
    if isinstance(symbol, Regex):
        raise TypeError(f"sym() expects a plain symbol, got a Regex: {symbol!r}")
    return Symbol(symbol)


def concat(*parts: Regex) -> Regex:
    """Concatenate expressions, applying local simplifications.

    Laws applied: ``empty . e = empty``, ``eps . e = e``, associativity
    (flattening nested concatenations).
    """
    flat: list[Regex] = []
    for part in parts:
        _check_regex(part)
        if isinstance(part, EmptySet):
            return EMPTY
        if isinstance(part, Epsilon):
            continue
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return EPSILON
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def union(*parts: Regex) -> Regex:
    """Union of expressions, applying local simplifications.

    Laws applied: ``empty + e = e``, associativity/commutativity only to the
    extent of flattening and duplicate removal (order of first occurrence is
    preserved so printed output matches the input's shape).
    """
    flat: list[Regex] = []
    seen: set[Regex] = set()
    has_epsilon = False
    for part in parts:
        _check_regex(part)
        if isinstance(part, EmptySet):
            continue
        candidates = part.parts if isinstance(part, Union) else (part,)
        for cand in candidates:
            if isinstance(cand, Epsilon):
                has_epsilon = True
            if cand not in seen:
                seen.add(cand)
                flat.append(cand)
    # eps + e* = e*  (epsilon already contained in any starred alternative)
    if has_epsilon and any(isinstance(p, Star) for p in flat):
        flat = [p for p in flat if not isinstance(p, Epsilon)]
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return flat[0]
    return Union(tuple(flat))


def star(inner: Regex) -> Regex:
    """Kleene star with local simplifications.

    Laws applied: ``empty* = eps``, ``eps* = eps``, ``(e*)* = e*``,
    ``(eps + e)* = e*``.
    """
    _check_regex(inner)
    if isinstance(inner, (EmptySet, Epsilon)):
        return EPSILON
    if isinstance(inner, Star):
        return inner
    if isinstance(inner, Union):
        without_eps = tuple(p for p in inner.parts if not isinstance(p, Epsilon))
        if len(without_eps) != len(inner.parts):
            return star(union(*without_eps))
    return Star(inner)


def plus(inner: Regex) -> Regex:
    """One-or-more repetitions, expressed as ``e . e*``."""
    return concat(inner, star(inner))


def option(inner: Regex) -> Regex:
    """Zero-or-one occurrences, expressed as ``eps + e``."""
    return union(EPSILON, inner)


def power(inner: Regex, n: int) -> Regex:
    """Exactly ``n`` repetitions of ``inner`` (``n >= 0``)."""
    if n < 0:
        raise ValueError(f"power() needs n >= 0, got {n}")
    return concat(*([inner] * n))


def word(symbols: Iterable[Hashable]) -> Regex:
    """The expression denoting the single word given by ``symbols``."""
    return concat(*(sym(s) for s in symbols))


def any_of(symbols: Iterable[Hashable]) -> Regex:
    """Union of single symbols — e.g. the paper's ``Delta`` or ``(0+1)``."""
    return union(*(sym(s) for s in symbols))


def bounded_repeat(inner: Regex, low: int, high: int) -> Regex:
    """Between ``low`` and ``high`` repetitions of ``inner``."""
    if not 0 <= low <= high:
        raise ValueError(f"need 0 <= low <= high, got low={low}, high={high}")
    alternatives = [power(inner, n) for n in range(low, high + 1)]
    return union(*alternatives)


def _check_regex(value: object) -> None:
    if not isinstance(value, Regex):
        raise TypeError(f"expected a Regex, got {type(value).__name__}: {value!r}")
