"""Regular-expression toolkit: AST, parser, printer, derivatives, simplifier.

This package is the expression-level substrate of the library.  Expressions
are alphabet-generic (symbols are arbitrary hashable objects), which lets the
same machinery serve the base alphabet Sigma, the view alphabet Sigma_E of
Section 2, and formula alphabets of Section 4.
"""

from .ast import (
    EMPTY,
    EPSILON,
    Concat,
    EmptySet,
    Epsilon,
    Regex,
    Star,
    Symbol,
    Union,
    any_of,
    bounded_repeat,
    concat,
    option,
    plus,
    power,
    star,
    sym,
    union,
    word,
)
from .derivatives import derivative, matches, nullable, word_derivative
from .parser import RegexSyntaxError, parse
from .printer import to_string
from .simplify import simplify

__all__ = [
    "Regex",
    "EmptySet",
    "Epsilon",
    "Symbol",
    "Concat",
    "Union",
    "Star",
    "EMPTY",
    "EPSILON",
    "sym",
    "concat",
    "union",
    "star",
    "plus",
    "option",
    "power",
    "word",
    "any_of",
    "bounded_repeat",
    "parse",
    "RegexSyntaxError",
    "to_string",
    "simplify",
    "nullable",
    "derivative",
    "word_derivative",
    "matches",
]
