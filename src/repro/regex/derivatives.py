"""Brzozowski derivatives of regular expressions.

Derivatives give a second, automaton-free decision procedure for word
membership and a direct DFA construction.  The library uses them as an
independent oracle against which the Thompson/subset-construction pipeline is
cross-validated in the test suite, and as an alternative determinization
backend (ablation benchmark ``bench_thm31_rewriting_scaling``).

Definitions (Brzozowski 1964): ``nullable(e)`` is true iff the empty word
belongs to ``L(e)``; the derivative ``D_a(e)`` denotes the language
``{ w | a.w in L(e) }``.  Both are computed structurally; the smart
constructors of :mod:`repro.regex.ast` keep derivative terms in a weak normal
form so that the set of distinct derivatives stays finite in practice.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Hashable, Iterable, Sequence

from .ast import (
    EMPTY,
    EPSILON,
    Concat,
    EmptySet,
    Epsilon,
    Regex,
    Star,
    Symbol,
    Union,
    concat,
    star,
    union,
)

__all__ = ["nullable", "derivative", "word_derivative", "matches", "derivative_closure"]


@lru_cache(maxsize=None)
def nullable(expr: Regex) -> bool:
    """Return ``True`` iff the empty word belongs to ``L(expr)``."""
    if isinstance(expr, (EmptySet, Symbol)):
        return False
    if isinstance(expr, (Epsilon, Star)):
        return True
    if isinstance(expr, Concat):
        return all(nullable(part) for part in expr.parts)
    if isinstance(expr, Union):
        return any(nullable(part) for part in expr.parts)
    raise TypeError(f"unknown Regex node: {expr!r}")


@lru_cache(maxsize=None)
def derivative(expr: Regex, symbol: Hashable) -> Regex:
    """The Brzozowski derivative of ``expr`` with respect to ``symbol``."""
    if isinstance(expr, (EmptySet, Epsilon)):
        return EMPTY
    if isinstance(expr, Symbol):
        return EPSILON if expr.symbol == symbol else EMPTY
    if isinstance(expr, Union):
        return union(*(derivative(part, symbol) for part in expr.parts))
    if isinstance(expr, Star):
        return concat(derivative(expr.inner, symbol), expr)
    if isinstance(expr, Concat):
        head, tail = expr.parts[0], concat(*expr.parts[1:])
        first = concat(derivative(head, symbol), tail)
        if nullable(head):
            return union(first, derivative(tail, symbol))
        return first
    raise TypeError(f"unknown Regex node: {expr!r}")


def word_derivative(expr: Regex, symbols: Iterable[Hashable]) -> Regex:
    """Derivative of ``expr`` with respect to a whole word."""
    result = expr
    for symbol in symbols:
        result = derivative(result, symbol)
        if isinstance(result, EmptySet):
            return EMPTY
    return result


def matches(expr: Regex, symbols: Sequence[Hashable]) -> bool:
    """Decide word membership ``symbols in L(expr)`` via derivatives."""
    return nullable(word_derivative(expr, symbols))


def derivative_closure(
    expr: Regex, alphabet: Iterable[Hashable] | None = None, limit: int = 100_000
) -> dict[Regex, dict[Hashable, Regex]]:
    """Compute the set of word derivatives of ``expr`` (a derivative DFA).

    Returns a transition table mapping each reachable derivative to its
    successors per symbol.  ``alphabet`` defaults to the symbols of ``expr``.
    ``limit`` bounds the number of states explored; exceeding it raises
    ``RuntimeError`` (with smart-constructor normalization the closure is
    finite for every expression, the limit is a safety net).
    """
    sigma = tuple(alphabet) if alphabet is not None else tuple(sorted(
        expr.alphabet(), key=repr
    ))
    table: dict[Regex, dict[Hashable, Regex]] = {}
    frontier = [expr]
    while frontier:
        state = frontier.pop()
        if state in table:
            continue
        row: dict[Hashable, Regex] = {}
        for symbol in sigma:
            successor = derivative(state, symbol)
            row[symbol] = successor
            if successor not in table:
                frontier.append(successor)
        table[state] = row
        if len(table) > limit:
            raise RuntimeError(
                f"derivative closure exceeded {limit} states for {expr!s}"
            )
    return table
