"""Random generation of regular expressions for testing and benchmarks.

The generator produces expressions with a controllable node budget and
alphabet.  It is used by the property-based tests (as a complement to
hypothesis strategies) and by the scaling benchmarks, where reproducibility
matters: all randomness flows through an explicit :class:`random.Random`
instance.
"""

from __future__ import annotations

import random
from typing import Hashable, Sequence

from .ast import EPSILON, Regex, concat, star, sym, union

__all__ = ["random_regex", "random_word"]


def random_regex(
    rng: random.Random,
    alphabet: Sequence[Hashable],
    max_size: int = 12,
    star_probability: float = 0.2,
    epsilon_probability: float = 0.05,
) -> Regex:
    """Generate a random regular expression over ``alphabet``.

    ``max_size`` bounds the number of leaves; the expression may be smaller
    after smart-constructor simplification.  The distribution is biased
    towards small unions/concatenations with occasional stars, which is the
    regime where the rewriting algorithm has interesting behaviour (deep star
    nesting mostly produces universal-ish languages).
    """
    if not alphabet:
        raise ValueError("alphabet must be non-empty")
    return _generate(rng, alphabet, max(1, max_size), star_probability, epsilon_probability)


def _generate(
    rng: random.Random,
    alphabet: Sequence[Hashable],
    budget: int,
    star_p: float,
    eps_p: float,
) -> Regex:
    if budget <= 1:
        if rng.random() < eps_p:
            return EPSILON
        return sym(rng.choice(alphabet))
    choice = rng.random()
    if choice < star_p:
        return star(_generate(rng, alphabet, budget - 1, star_p, eps_p))
    split = rng.randint(1, budget - 1)
    left = _generate(rng, alphabet, split, star_p, eps_p)
    right = _generate(rng, alphabet, budget - split, star_p, eps_p)
    if choice < star_p + (1.0 - star_p) / 2.0:
        return concat(left, right)
    return union(left, right)


def random_word(
    rng: random.Random, alphabet: Sequence[Hashable], max_length: int = 8
) -> tuple[Hashable, ...]:
    """Generate a random word over ``alphabet`` of length ``<= max_length``."""
    length = rng.randint(0, max_length)
    return tuple(rng.choice(alphabet) for _ in range(length))
