"""Algebraic simplification of regular expressions.

The state-elimination procedure (:mod:`repro.automata.state_elim`) produces
syntactically heavy expressions; this module normalizes them with sound
rewrite rules so that library output (e.g. the rewriting ``e2*.e1.e3*`` of the
paper's Example 2.3) is as readable as the paper's own notation.

All rules preserve the denoted language exactly:

* identity / annihilator laws (already applied by the smart constructors);
* ``e + e = e`` and subsumption ``e + e* = e*`` for identical bodies;
* ``eps + e.e* = e*`` and ``eps + e*.e = e*`` (unrolled-star folding);
* ``(e.e*)* = e*`` and ``(e*.e)* = e*``;
* ``e*.e* = e*``;
* ``(e + eps)* = e*`` (via the smart constructors);
* common prefix/suffix factoring is *not* applied (it can grow the term).
"""

from __future__ import annotations

from .ast import (
    Concat,
    EmptySet,
    Epsilon,
    Regex,
    Star,
    Symbol,
    Union,
    concat,
    star,
    union,
)

__all__ = ["simplify"]


def simplify(expr: Regex) -> Regex:
    """Return a simplified expression denoting the same language."""
    previous = None
    current = expr
    # Iterate to a fixed point; each pass is a single bottom-up rewrite.
    while current != previous:
        previous = current
        current = _simplify_once(current)
    return current


def _simplify_once(expr: Regex) -> Regex:
    if isinstance(expr, (EmptySet, Epsilon, Symbol)):
        return expr
    if isinstance(expr, Star):
        inner = _simplify_once(expr.inner)
        folded = _as_star_unrolling(inner)
        if folded is not None:
            return folded  # (e.e*)* == e*
        return star(inner)
    if isinstance(expr, Concat):
        parts = [_simplify_once(part) for part in expr.parts]
        parts = _fold_adjacent_stars(parts)
        return concat(*parts)
    if isinstance(expr, Union):
        parts = [_simplify_once(part) for part in expr.parts]
        parts = _drop_star_subsumed(parts)
        parts = _fold_unrolled_star(parts)
        return union(*parts)
    raise TypeError(f"unknown Regex node: {expr!r}")


def _fold_adjacent_stars(parts: list[Regex]) -> list[Regex]:
    """Apply ``e*.e* = e*`` and ``e*.e.e* = e.e*``-preserving folds."""
    result: list[Regex] = []
    for part in parts:
        if (
            result
            and isinstance(part, Star)
            and isinstance(result[-1], Star)
            and result[-1].inner == part.inner
        ):
            continue  # e* . e* == e*
        result.append(part)
    return result


def _drop_star_subsumed(parts: list[Regex]) -> list[Regex]:
    """Apply ``e + e* = e*`` and ``eps + e* = e*``."""
    starred_bodies = {part.inner for part in parts if isinstance(part, Star)}
    has_star = any(isinstance(part, Star) for part in parts)
    kept: list[Regex] = []
    for part in parts:
        if part in starred_bodies:
            continue
        if isinstance(part, Epsilon) and has_star:
            continue
        kept.append(part)
    return kept


def _fold_unrolled_star(parts: list[Regex]) -> list[Regex]:
    """Apply ``eps + e.e* = e*`` (and the mirrored ``eps + e*.e = e*``)."""
    has_epsilon = any(isinstance(part, Epsilon) for part in parts)
    if not has_epsilon:
        return parts
    for index, part in enumerate(parts):
        folded = _as_star_unrolling(part)
        if folded is not None:
            new_parts = [p for i, p in enumerate(parts) if i != index]
            new_parts = [p for p in new_parts if not isinstance(p, Epsilon)]
            new_parts.insert(0, folded)
            return new_parts
    return parts


def _as_star_unrolling(part: Regex) -> Regex | None:
    """If ``part`` is ``e.e*`` or ``e*.e``, return ``e*``; else ``None``.

    Concatenations are flattened, so ``e`` itself may span several parts:
    ``a.b.(a.b)*`` is recognized as well.
    """
    if not isinstance(part, Concat) or len(part.parts) < 2:
        return None
    first, last = part.parts[0], part.parts[-1]
    if isinstance(last, Star) and concat(*part.parts[:-1]) == last.inner:
        return last
    if isinstance(first, Star) and concat(*part.parts[1:]) == first.inner:
        return first
    return None
