"""Serialization of automata: plain dicts (JSON-friendly) and Graphviz DOT.

Dict serialization restricts symbols to strings (the common case for the
paper's alphabets); DOT export accepts any symbols and is used by the
examples to render constructions like Figure 1.

:func:`automaton_fingerprint` is the canonical-serialization layer used by
the service's :class:`~repro.service.plancache.RewritePlanCache`: it maps
an automaton to a deterministic digest that is stable across processes
(construction from the same spec — e.g. the Thompson NFA of a regex
string — always numbers states identically), so (query, view-set) cache
keys computed in one process are found by another.  Unlike the dict form
it accepts arbitrary symbols, falling back to ``repr`` for non-strings;
it is a one-way key, not a round-trippable encoding.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Union

from .dfa import DFA
from .nfa import EPS, NFA

__all__ = [
    "nfa_to_dict",
    "nfa_from_dict",
    "dfa_to_dict",
    "dfa_from_dict",
    "automaton_fingerprint",
    "to_dot",
]

Automaton = Union[NFA, DFA]

_EPS_KEY = "@EPS@"  # reserved marker for epsilon in dict form


def nfa_to_dict(nfa: NFA) -> dict[str, Any]:
    """Serialize an NFA whose symbols are all strings."""
    _check_string_alphabet(nfa.alphabet)
    transitions: list[list[Any]] = []
    for src, label, dst in sorted(
        nfa.iter_transitions(), key=lambda t: (t[0], repr(t[1]), t[2])
    ):
        transitions.append([src, _EPS_KEY if label is EPS else label, dst])
    return {
        "kind": "nfa",
        "states": sorted(nfa.states),
        "alphabet": sorted(nfa.alphabet),
        "transitions": transitions,
        "initials": sorted(nfa.initials),
        "finals": sorted(nfa.finals),
    }


def nfa_from_dict(data: dict[str, Any]) -> NFA:
    if data.get("kind") != "nfa":
        raise ValueError(f"not an NFA payload: kind={data.get('kind')!r}")
    transitions: dict[int, dict[Any, set[int]]] = {}
    for src, label, dst in data["transitions"]:
        key = EPS if label == _EPS_KEY else label
        transitions.setdefault(src, {}).setdefault(key, set()).add(dst)
    return NFA(
        states=data["states"],
        alphabet=data["alphabet"],
        transitions=transitions,
        initials=data["initials"],
        finals=data["finals"],
    )


def dfa_to_dict(dfa: DFA) -> dict[str, Any]:
    """Serialize a DFA whose symbols are all strings."""
    _check_string_alphabet(dfa.alphabet)
    transitions = [
        [src, label, dst]
        for src, label, dst in sorted(
            dfa.iter_transitions(), key=lambda t: (t[0], repr(t[1]), t[2])
        )
    ]
    return {
        "kind": "dfa",
        "states": sorted(dfa.states),
        "alphabet": sorted(dfa.alphabet),
        "transitions": transitions,
        "initial": dfa.initial,
        "finals": sorted(dfa.finals),
    }


def dfa_from_dict(data: dict[str, Any]) -> DFA:
    if data.get("kind") != "dfa":
        raise ValueError(f"not a DFA payload: kind={data.get('kind')!r}")
    transitions: dict[int, dict[Any, int]] = {}
    for src, label, dst in data["transitions"]:
        transitions.setdefault(src, {})[label] = dst
    return DFA(
        states=data["states"],
        alphabet=data["alphabet"],
        transitions=transitions,
        initial=data["initial"],
        finals=data["finals"],
    )


def _symbol_token(symbol: Any) -> str:
    """A deterministic textual token for an arbitrary alphabet symbol.

    Strings are tagged to keep them disjoint from the ``repr`` fallback
    (so the symbol ``"'a'"`` never collides with the symbol ``'a'``).
    """
    if symbol is EPS:
        return "e:"
    if isinstance(symbol, str):
        return f"s:{symbol}"
    return f"r:{symbol!r}"


def automaton_fingerprint(automaton: Automaton) -> str:
    """A canonical sha256 digest of the automaton's exact structure.

    Two automata get the same fingerprint iff they have identical state
    sets, alphabets, transitions, and initial/final sets (symbols compared
    by their canonical token).  This is *structural* identity, not
    language equivalence — deliberately, since the fingerprint keys caches
    of construction outputs and must be cheap.
    """
    if isinstance(automaton, DFA):
        kind = "dfa"
        initials = [automaton.initial]
    else:
        kind = "nfa"
        initials = sorted(automaton.initials)
    payload = {
        "kind": kind,
        "states": sorted(automaton.states),
        "alphabet": sorted(_symbol_token(a) for a in automaton.alphabet),
        "transitions": sorted(
            [src, _symbol_token(label), dst]
            for src, label, dst in automaton.iter_transitions()
        ),
        "initials": initials,
        "finals": sorted(automaton.finals),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def to_dot(automaton: Automaton, name: str = "automaton") -> str:
    """Render the automaton in Graphviz DOT format."""
    lines = [f"digraph {name} {{", "  rankdir=LR;", '  hidden [shape=point, label=""];']
    if isinstance(automaton, DFA):
        initials = {automaton.initial}
        finals = automaton.finals
        triples = list(automaton.iter_transitions())
    else:
        initials = set(automaton.initials)
        finals = automaton.finals
        triples = list(automaton.iter_transitions())
    for state in sorted(
        automaton.states if isinstance(automaton, NFA) else automaton.states
    ):
        shape = "doublecircle" if state in finals else "circle"
        lines.append(f"  s{state} [shape={shape}, label=\"{state}\"];")
    for state in sorted(initials):
        lines.append(f"  hidden -> s{state};")
    merged: dict[tuple[int, int], list[str]] = {}
    for src, label, dst in triples:
        text = "ε" if label is EPS else str(label)
        merged.setdefault((src, dst), []).append(text)
    for (src, dst), labels in sorted(merged.items()):
        label_text = ", ".join(sorted(labels))
        lines.append(f'  s{src} -> s{dst} [label="{label_text}"];')
    lines.append("}")
    return "\n".join(lines)


def _check_string_alphabet(alphabet: frozenset) -> None:
    non_string = [a for a in alphabet if not isinstance(a, str)]
    if non_string:
        raise TypeError(
            "dict serialization needs string symbols; offending symbols: "
            f"{non_string[:3]!r}"
        )
