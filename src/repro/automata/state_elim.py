"""State elimination: converting automata back to regular expressions.

The rewriting algorithm returns an automaton ``R_{E,E0}`` over the view
alphabet Sigma_E; to present rewritings in the paper's notation (e.g.
``e2*.e1.e3*`` in Example 2.3) the automaton is converted to a regular
expression with the classic generalized-NFA elimination procedure, removing
states one at a time and composing the surrounding expressions.

States are eliminated cheapest-first (fewest in*out edge pairs), and the
result is run through :func:`repro.regex.simplify.simplify`, which keeps the
output close to what one would write by hand.
"""

from __future__ import annotations

from typing import Union

from ..regex.ast import EMPTY, EPSILON, Regex, concat, star, sym, union
from ..regex.simplify import simplify
from .dfa import DFA
from .nfa import EPS, NFA

__all__ = ["to_regex"]

Automaton = Union[NFA, DFA]


def to_regex(automaton: Automaton, simplify_result: bool = True) -> Regex:
    """Convert an automaton to an equivalent regular expression."""
    nfa = automaton.to_nfa() if isinstance(automaton, DFA) else automaton
    nfa = nfa.trimmed()
    # Generalized NFA: expression-labelled edge matrix plus fresh init/final.
    init, fini = -1, -2
    edges: dict[tuple[int, int], Regex] = {}

    def add_edge(src: int, dst: int, expr: Regex) -> None:
        if expr.is_empty_set():
            return
        key = (src, dst)
        edges[key] = union(edges[key], expr) if key in edges else expr

    for state in nfa.initials:
        add_edge(init, state, EPSILON)
    for state in nfa.finals:
        add_edge(state, fini, EPSILON)
    for src, label, dst in nfa.iter_transitions():
        add_edge(src, dst, EPSILON if label is EPS else sym(label))

    remaining = set(nfa.states)
    while remaining:
        state = _cheapest(remaining, edges)
        remaining.discard(state)
        _eliminate(state, edges)

    result = edges.get((init, fini), EMPTY)
    return simplify(result) if simplify_result else result


def _cheapest(remaining: set[int], edges: dict[tuple[int, int], Regex]) -> int:
    """Pick the state whose elimination creates the fewest new edges."""
    def cost(state: int) -> tuple[int, int]:
        preds = sum(1 for (s, d) in edges if d == state and s != state)
        succs = sum(1 for (s, d) in edges if s == state and d != state)
        return (preds * succs, state)

    return min(remaining, key=cost)


def _eliminate(state: int, edges: dict[tuple[int, int], Regex]) -> None:
    """Remove ``state`` from the GNFA, rerouting paths through it."""
    loop = edges.pop((state, state), None)
    loop_star = star(loop) if loop is not None else EPSILON
    incoming = [(s, e) for (s, d), e in edges.items() if d == state]
    outgoing = [(d, e) for (s, d), e in edges.items() if s == state]
    for key in [k for k in edges if state in k]:
        del edges[key]
    for src, in_expr in incoming:
        for dst, out_expr in outgoing:
            bridged = concat(in_expr, loop_star, out_expr)
            key = (src, dst)
            edges[key] = union(edges[key], bridged) if key in edges else bridged
