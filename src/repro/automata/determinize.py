"""Subset construction: NFA to DFA.

This is the first exponential of the paper's 2EXPTIME rewriting pipeline
(Theorem 3.1 step (i)) and, applied to ``A'``, the second one (step (iii)).
The construction is the classic Rabin–Scott powerset algorithm; epsilon
moves are eliminated once up front (and the NFA trimmed), which keeps the
explored subsets small and avoids repeated closure computations — on the
block-structured automata of the Section 3.2 reductions this is an
order-of-magnitude difference.

The dead subset (the empty set of NFA states) is *not* materialized — the
resulting DFA is partial and can be completed on demand.
"""

from __future__ import annotations

from typing import Hashable

from .dfa import DFA
from .nfa import NFA

__all__ = ["determinize", "determinize_with_map"]


def determinize(nfa: NFA) -> DFA:
    """Determinize ``nfa`` via the subset construction (partial DFA)."""
    dfa, _mapping = _determinize(nfa, build_map=False)
    return dfa


def determinize_with_map(nfa: NFA) -> tuple[DFA, dict[int, frozenset[int]]]:
    """Determinize and also return the DFA-state to NFA-subset mapping.

    The subsets refer to the states of the epsilon-free trimmed form of the
    input when epsilon moves were present.
    """
    dfa, mapping = _determinize(nfa, build_map=True)
    assert mapping is not None
    return dfa, mapping


def _determinize(
    nfa: NFA, build_map: bool
) -> tuple[DFA, dict[int, frozenset[int]] | None]:
    if nfa.has_epsilon_moves():
        nfa = nfa.without_epsilon().trimmed()
    # Subsets are integer bitmasks: bit i stands for the i-th NFA state.
    # Bitwise union is the inner-loop operation, so this is much faster
    # than frozenset arithmetic on the large subset spaces the Section 3.2
    # constructions produce.
    state_index = {state: i for i, state in enumerate(sorted(nfa.states))}
    index_state = {i: state for state, i in state_index.items()}
    move_masks: list[list[tuple[Hashable, int]]] = [[] for _ in state_index]
    for state in nfa.states:
        entries = []
        for label, dsts in nfa.transitions_from(state).items():
            mask = 0
            for dst in dsts:
                mask |= 1 << state_index[dst]
            entries.append((label, mask))
        move_masks[state_index[state]] = entries
    finals_mask = 0
    for state in nfa.finals:
        finals_mask |= 1 << state_index[state]
    initial_mask = 0
    for state in nfa.initials:
        initial_mask |= 1 << state_index[state]

    subset_ids: dict[int, int] = {initial_mask: 0}
    transitions: dict[int, dict[Hashable, int]] = {}
    dfa_finals: set[int] = set()
    worklist = [initial_mask]
    while worklist:
        subset = worklist.pop()
        state_id = subset_ids[subset]
        if subset & finals_mask:
            dfa_finals.add(state_id)
        moves: dict[Hashable, int] = {}
        remaining = subset
        while remaining:
            low_bit = remaining & -remaining
            remaining ^= low_bit
            for label, mask in move_masks[low_bit.bit_length() - 1]:
                moves[label] = moves.get(label, 0) | mask
        row: dict[Hashable, int] = {}
        for symbol, target in moves.items():
            if target not in subset_ids:
                subset_ids[target] = len(subset_ids)
                worklist.append(target)
            row[symbol] = subset_ids[target]
        if row:
            transitions[state_id] = row
    dfa = DFA(
        states=range(len(subset_ids)),
        alphabet=nfa.alphabet,
        transitions=transitions,
        initial=0,
        finals=dfa_finals,
    )
    if not build_map:
        return dfa, None
    mapping = {
        state_id: frozenset(
            index_state[i] for i in _iter_bits(subset)
        )
        for subset, state_id in subset_ids.items()
    }
    return dfa, mapping


def _iter_bits(mask: int):
    while mask:
        low_bit = mask & -mask
        mask ^= low_bit
        yield low_bit.bit_length() - 1
