"""Nondeterministic finite automata with epsilon moves.

States are integers; the alphabet is a set of arbitrary hashable symbols.
Epsilon transitions are labelled with the module-level sentinel :data:`EPS`.

An :class:`NFA` is immutable after construction (its transition table is
deep-frozen), so instances can be shared freely between the rewriting
pipeline's stages.  Use :class:`NFABuilder` for incremental construction.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping, Sequence

__all__ = ["EPS", "NFA", "NFABuilder"]


class _EpsilonLabel:
    """Singleton label for epsilon transitions."""

    _instance: "_EpsilonLabel | None" = None

    def __new__(cls) -> "_EpsilonLabel":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "EPS"

    def __reduce__(self):
        return (_EpsilonLabel, ())


EPS = _EpsilonLabel()


class NFA:
    """An epsilon-NFA ``(Q, Sigma, delta, I, F)`` over integer states."""

    __slots__ = ("states", "alphabet", "initials", "finals", "_delta")

    def __init__(
        self,
        states: Iterable[int],
        alphabet: Iterable[Hashable],
        transitions: Mapping[int, Mapping[Hashable, Iterable[int]]],
        initials: Iterable[int],
        finals: Iterable[int],
    ):
        self.states: frozenset[int] = frozenset(states)
        self.alphabet: frozenset[Hashable] = frozenset(alphabet)
        self.initials: frozenset[int] = frozenset(initials)
        self.finals: frozenset[int] = frozenset(finals)
        delta: dict[int, dict[Hashable, frozenset[int]]] = {}
        for src, row in transitions.items():
            frozen_row = {
                label: frozenset(dsts) for label, dsts in row.items() if dsts
            }
            if frozen_row:
                delta[src] = frozen_row
        self._delta = delta
        self._validate()

    def _validate(self) -> None:
        if not self.initials <= self.states:
            raise ValueError("initial states must be a subset of states")
        if not self.finals <= self.states:
            raise ValueError("final states must be a subset of states")
        for src, row in self._delta.items():
            if src not in self.states:
                raise ValueError(f"transition source {src} is not a state")
            for label, dsts in row.items():
                if label is not EPS and label not in self.alphabet:
                    raise ValueError(f"label {label!r} is not in the alphabet")
                if not dsts <= self.states:
                    raise ValueError(f"transition targets {dsts} are not states")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def num_transitions(self) -> int:
        return sum(len(dsts) for row in self._delta.values() for dsts in row.values())

    def successors(self, state: int, label: Hashable) -> frozenset[int]:
        """Targets of ``label``-transitions out of ``state`` (no closure)."""
        return self._delta.get(state, {}).get(label, frozenset())

    def transitions_from(self, state: int) -> Mapping[Hashable, frozenset[int]]:
        """The full transition row of ``state`` (labels include ``EPS``)."""
        return self._delta.get(state, {})

    def iter_transitions(self) -> Iterator[tuple[int, Hashable, int]]:
        """Yield all transitions as ``(source, label, target)`` triples."""
        for src, row in self._delta.items():
            for label, dsts in row.items():
                for dst in dsts:
                    yield (src, label, dst)

    def has_epsilon_moves(self) -> bool:
        return any(EPS in row for row in self._delta.values())

    def compiled_rows(self) -> dict[int, dict[Hashable, frozenset[int]]]:
        """Per-state ``symbol -> targets`` rows with epsilon moves eliminated.

        This is the export consumed by :mod:`repro.rpq.engine`: the rows of
        the epsilon-free equivalent of this automaton, copied into plain
        dicts so callers can specialize them (e.g. resolve formula symbols
        to concrete edge labels) without touching the frozen delta.  Note
        that epsilon elimination may also enlarge the *final* set; use
        :meth:`without_epsilon` first if you need the matching finals.
        """
        source = self.without_epsilon() if self.has_epsilon_moves() else self
        return {
            state: {
                symbol: targets
                for symbol, targets in row.items()
                if symbol is not EPS
            }
            for state, row in source._delta.items()
        }

    # ------------------------------------------------------------------
    # Language operations
    # ------------------------------------------------------------------
    def epsilon_closure(self, states: Iterable[int]) -> frozenset[int]:
        """All states reachable from ``states`` via epsilon moves."""
        closure = set(states)
        frontier = list(closure)
        while frontier:
            state = frontier.pop()
            for nxt in self.successors(state, EPS):
                if nxt not in closure:
                    closure.add(nxt)
                    frontier.append(nxt)
        return frozenset(closure)

    def step(self, states: Iterable[int], symbol: Hashable) -> frozenset[int]:
        """One symbol step including epsilon closure on both sides."""
        closed = self.epsilon_closure(states)
        moved: set[int] = set()
        for state in closed:
            moved.update(self.successors(state, symbol))
        return self.epsilon_closure(moved)

    def run(self, word: Sequence[Hashable]) -> frozenset[int]:
        """The set of states reached after reading ``word``."""
        current = self.epsilon_closure(self.initials)
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                return frozenset()
        return current

    def accepts(self, word: Sequence[Hashable]) -> bool:
        """Word membership: does the automaton accept ``word``?"""
        return bool(self.run(word) & self.finals)

    # ------------------------------------------------------------------
    # Structural transformations
    # ------------------------------------------------------------------
    def renumbered(self, start: int = 0) -> "NFA":
        """Return an isomorphic NFA with states renumbered ``start..``."""
        mapping = {old: start + i for i, old in enumerate(sorted(self.states))}
        return self.relabeled_states(mapping)

    def relabeled_states(self, mapping: Mapping[int, int]) -> "NFA":
        """Return a copy with states renamed according to ``mapping``."""
        transitions = {
            mapping[src]: {
                label: {mapping[dst] for dst in dsts} for label, dsts in row.items()
            }
            for src, row in self._delta.items()
        }
        return NFA(
            states={mapping[s] for s in self.states},
            alphabet=self.alphabet,
            transitions=transitions,
            initials={mapping[s] for s in self.initials},
            finals={mapping[s] for s in self.finals},
        )

    def with_alphabet(self, alphabet: Iterable[Hashable]) -> "NFA":
        """Return a copy over a (super-)alphabet; language is unchanged."""
        new_alphabet = frozenset(alphabet)
        used = {
            label
            for row in self._delta.values()
            for label in row
            if label is not EPS
        }
        if not used <= new_alphabet:
            raise ValueError("new alphabet must contain all used labels")
        return NFA(self.states, new_alphabet, self._delta, self.initials, self.finals)

    def reversed(self) -> "NFA":
        """The automaton for the reversed language."""
        transitions: dict[int, dict[Hashable, set[int]]] = {}
        for src, label, dst in self.iter_transitions():
            transitions.setdefault(dst, {}).setdefault(label, set()).add(src)
        return NFA(
            states=self.states,
            alphabet=self.alphabet,
            transitions=transitions,
            initials=self.finals,
            finals=self.initials,
        )

    def trimmed(self) -> "NFA":
        """Restrict to states that are both accessible and co-accessible.

        The result accepts the same language; if no useful state remains a
        single-state automaton with no transitions (empty language) results.
        """
        forward = self._reachable(self.initials, reverse=False)
        backward = self._reachable(self.finals, reverse=True)
        useful = forward & backward
        if not useful:
            return NFA({0}, self.alphabet, {}, {0}, set())
        transitions = {
            src: {
                label: dsts & useful
                for label, dsts in row.items()
                if dsts & useful
            }
            for src, row in self._delta.items()
            if src in useful
        }
        return NFA(
            states=useful,
            alphabet=self.alphabet,
            transitions=transitions,
            initials=self.initials & useful,
            finals=self.finals & useful,
        )

    def _reachable(self, seeds: Iterable[int], reverse: bool) -> set[int]:
        if reverse:
            pred: dict[int, set[int]] = {}
            for src, _label, dst in self.iter_transitions():
                pred.setdefault(dst, set()).add(src)
            neighbors = lambda s: pred.get(s, set())
        else:
            neighbors = lambda s: {
                dst for dsts in self._delta.get(s, {}).values() for dst in dsts
            }
        seen = set(seeds)
        frontier = list(seen)
        while frontier:
            state = frontier.pop()
            for nxt in neighbors(state):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def without_epsilon(self) -> "NFA":
        """An equivalent epsilon-free NFA (closure-based elimination)."""
        transitions: dict[int, dict[Hashable, set[int]]] = {}
        finals = set(self.finals)
        for state in self.states:
            closure = self.epsilon_closure([state])
            if closure & self.finals:
                finals.add(state)
            row: dict[Hashable, set[int]] = {}
            for closed_state in closure:
                for label, dsts in self._delta.get(closed_state, {}).items():
                    if label is EPS:
                        continue
                    row.setdefault(label, set()).update(
                        self.epsilon_closure(dsts)
                    )
            if row:
                transitions[state] = row
        return NFA(self.states, self.alphabet, transitions, self.initials, finals)

    def __repr__(self) -> str:
        return (
            f"NFA(states={self.num_states}, transitions={self.num_transitions}, "
            f"initials={sorted(self.initials)}, finals={sorted(self.finals)})"
        )


class NFABuilder:
    """Incremental builder for :class:`NFA` instances."""

    def __init__(self, alphabet: Iterable[Hashable] = ()):
        self._alphabet: set[Hashable] = set(alphabet)
        self._transitions: dict[int, dict[Hashable, set[int]]] = {}
        self._initials: set[int] = set()
        self._finals: set[int] = set()
        self._next_state = 0
        self._states: set[int] = set()

    def add_state(self) -> int:
        """Allocate and return a fresh state id."""
        state = self._next_state
        self._next_state += 1
        self._states.add(state)
        return state

    def add_states(self, count: int) -> list[int]:
        return [self.add_state() for _ in range(count)]

    def ensure_state(self, state: int) -> int:
        """Register an externally chosen state id."""
        self._states.add(state)
        self._next_state = max(self._next_state, state + 1)
        return state

    def add_transition(self, src: int, label: Hashable, dst: int) -> None:
        self.ensure_state(src)
        self.ensure_state(dst)
        if label is not EPS:
            self._alphabet.add(label)
        self._transitions.setdefault(src, {}).setdefault(label, set()).add(dst)

    def add_epsilon(self, src: int, dst: int) -> None:
        self.add_transition(src, EPS, dst)

    def set_initial(self, state: int) -> None:
        self.ensure_state(state)
        self._initials.add(state)

    def set_final(self, state: int) -> None:
        self.ensure_state(state)
        self._finals.add(state)

    def add_alphabet(self, symbols: Iterable[Hashable]) -> None:
        self._alphabet.update(symbols)

    def build(self) -> NFA:
        return NFA(
            states=self._states,
            alphabet=self._alphabet,
            transitions=self._transitions,
            initials=self._initials,
            finals=self._finals,
        )
