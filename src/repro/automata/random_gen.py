"""Random automata for tests and scaling benchmarks (seeded, reproducible)."""

from __future__ import annotations

import random
from typing import Hashable, Sequence

from .dfa import DFA
from .nfa import NFA

__all__ = ["random_nfa", "random_dfa"]


def random_nfa(
    rng: random.Random,
    num_states: int,
    alphabet: Sequence[Hashable],
    transition_density: float = 0.2,
    final_fraction: float = 0.3,
) -> NFA:
    """A random NFA with ``num_states`` states over ``alphabet``.

    ``transition_density`` is the probability that a given (state, symbol,
    state) triple is a transition; ``final_fraction`` the expected fraction
    of final states (always at least one when possible).
    """
    if num_states < 1:
        raise ValueError("num_states must be >= 1")
    states = list(range(num_states))
    transitions: dict[int, dict[Hashable, set[int]]] = {}
    for src in states:
        for symbol in alphabet:
            targets = {dst for dst in states if rng.random() < transition_density}
            if targets:
                transitions.setdefault(src, {})[symbol] = targets
    finals = {s for s in states if rng.random() < final_fraction}
    if not finals:
        finals = {rng.choice(states)}
    return NFA(
        states=states,
        alphabet=alphabet,
        transitions=transitions,
        initials={0},
        finals=finals,
    )


def random_dfa(
    rng: random.Random,
    num_states: int,
    alphabet: Sequence[Hashable],
    final_fraction: float = 0.3,
) -> DFA:
    """A random *total* DFA with ``num_states`` states over ``alphabet``."""
    if num_states < 1:
        raise ValueError("num_states must be >= 1")
    states = list(range(num_states))
    transitions = {
        src: {symbol: rng.choice(states) for symbol in alphabet} for src in states
    }
    finals = {s for s in states if rng.random() < final_fraction}
    if not finals:
        finals = {rng.choice(states)}
    return DFA(
        states=states,
        alphabet=alphabet,
        transitions=transitions,
        initial=0,
        finals=finals,
    )
