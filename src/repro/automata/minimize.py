"""DFA minimization (Hopcroft's partition-refinement algorithm).

Minimization is not required for the paper's constructions to be correct,
but applying it to the deterministic automaton ``Ad`` before building ``A'``
keeps the rewriting automaton small (``A'`` inherits ``Ad``'s state set), and
minimizing the final rewriting gives canonical results that the tests can
compare structurally.  The ablation benchmark ``bench_thm31`` measures the
effect.
"""

from __future__ import annotations

from typing import Hashable

from .dfa import DFA

__all__ = ["minimize", "equivalent_dfa_states"]


def minimize(dfa: DFA, trim: bool = True) -> DFA:
    """Return the minimal DFA for ``L(dfa)``.

    The input is completed first (Hopcroft requires a total function); by
    default the result is trimmed back to a partial DFA without a dead state.
    With ``trim=False`` the returned DFA is total (it may retain one sink).
    """
    total = dfa.completed()
    # Restrict to reachable states before refining.
    reachable = total.reachable_states()
    blocks = _hopcroft(total, reachable)
    representative: dict[int, int] = {}
    for block_id, block in enumerate(blocks):
        for state in block:
            representative[state] = block_id
    transitions: dict[int, dict[Hashable, int]] = {}
    finals = set()
    for block_id, block in enumerate(blocks):
        witness = next(iter(block))
        if witness in total.finals:
            finals.add(block_id)
        row = {
            symbol: representative[dst]
            for symbol, dst in total.transitions_from(witness).items()
        }
        if row:
            transitions[block_id] = row
    result = DFA(
        states=range(len(blocks)),
        alphabet=total.alphabet,
        transitions=transitions,
        initial=representative[total.initial],
        finals=finals,
    )
    if trim:
        result = result.trimmed().renumbered()
    return result


def _hopcroft(dfa: DFA, reachable: set[int]) -> list[set[int]]:
    """Hopcroft's algorithm over the reachable part of a total DFA."""
    finals = dfa.finals & reachable
    nonfinals = reachable - finals
    partition: list[set[int]] = [block for block in (finals, nonfinals) if block]
    # Pre-compute the inverse transition relation per symbol.
    inverse: dict[Hashable, dict[int, set[int]]] = {a: {} for a in dfa.alphabet}
    for src in reachable:
        for symbol, dst in dfa.transitions_from(src).items():
            if dst in reachable:
                inverse[symbol].setdefault(dst, set()).add(src)
    worklist: list[tuple[frozenset[int], Hashable]] = [
        (frozenset(block), symbol) for block in partition for symbol in dfa.alphabet
    ]
    while worklist:
        splitter, symbol = worklist.pop()
        # States with a `symbol`-transition into the splitter block.
        predecessors: set[int] = set()
        for dst in splitter:
            predecessors |= inverse[symbol].get(dst, set())
        if not predecessors:
            continue
        new_partition: list[set[int]] = []
        for block in partition:
            inside = block & predecessors
            outside = block - predecessors
            if inside and outside:
                new_partition.extend((inside, outside))
                smaller = inside if len(inside) <= len(outside) else outside
                for sym in dfa.alphabet:
                    worklist.append((frozenset(smaller), sym))
            else:
                new_partition.append(block)
        partition = new_partition
    return partition


def equivalent_dfa_states(dfa: DFA) -> dict[int, int]:
    """Map each reachable state to a canonical representative of its class."""
    total = dfa.completed()
    reachable = total.reachable_states()
    blocks = _hopcroft(total, reachable)
    mapping: dict[int, int] = {}
    for block in blocks:
        canon = min(block)
        for state in block:
            mapping[state] = canon
    return mapping
