"""Boolean and rational operations on automata.

Provides the closure operations the paper's constructions rely on:

* products of DFAs (intersection / union / difference / symmetric
  difference) via the pairing construction;
* intersection of NFAs without determinization (used by step 2 of the
  rewriting algorithm to decide whether some word of a view language drives
  ``Ad`` between two given states);
* union / concatenation / star of NFAs in Thompson style;
* complement of an arbitrary automaton (determinize, complete, swap);
* reachable-pair analysis ``view_transition_relation`` — the workhorse that
  turns a view language into edges of the automaton ``A'``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable, Iterable

from .determinize import determinize
from .dfa import DFA
from .nfa import EPS, NFA, NFABuilder

__all__ = [
    "product_dfa",
    "intersect_dfa",
    "union_dfa",
    "difference_dfa",
    "intersect_nfa",
    "union_nfa",
    "concat_nfa",
    "star_nfa",
    "complement",
    "view_transition_relation",
]


def product_dfa(left: DFA, right: DFA, accept: Callable[[bool, bool], bool]) -> DFA:
    """The product DFA with acceptance decided by ``accept(in_L, in_R)``.

    Both operands are completed over the union of their alphabets first, so
    any boolean combination (including complement-sensitive ones such as
    difference) is correct.
    """
    sigma = left.alphabet | right.alphabet
    lt = left.completed(sigma)
    rt = right.completed(sigma)
    pair_ids: dict[tuple[int, int], int] = {(lt.initial, rt.initial): 0}
    transitions: dict[int, dict[Hashable, int]] = {}
    finals: set[int] = set()
    queue: deque[tuple[int, int]] = deque([(lt.initial, rt.initial)])
    while queue:
        pair = queue.popleft()
        state_id = pair_ids[pair]
        l_state, r_state = pair
        if accept(l_state in lt.finals, r_state in rt.finals):
            finals.add(state_id)
        row: dict[Hashable, int] = {}
        for symbol in sigma:
            successor = (lt.successor(l_state, symbol), rt.successor(r_state, symbol))
            if successor not in pair_ids:
                pair_ids[successor] = len(pair_ids)
                queue.append(successor)
            row[symbol] = pair_ids[successor]
        if row:
            transitions[state_id] = row
    return DFA(
        states=range(len(pair_ids)),
        alphabet=sigma,
        transitions=transitions,
        initial=0,
        finals=finals,
    )


def intersect_dfa(left: DFA, right: DFA) -> DFA:
    return product_dfa(left, right, lambda a, b: a and b)


def union_dfa(left: DFA, right: DFA) -> DFA:
    return product_dfa(left, right, lambda a, b: a or b)


def difference_dfa(left: DFA, right: DFA) -> DFA:
    return product_dfa(left, right, lambda a, b: a and not b)


def intersect_nfa(left: NFA, right: NFA) -> NFA:
    """Product NFA for the intersection (inputs made epsilon-free first)."""
    lf = left.without_epsilon()
    rf = right.without_epsilon()
    sigma = lf.alphabet | rf.alphabet
    pair_ids: dict[tuple[int, int], int] = {}
    builder = NFABuilder(sigma)

    def state_of(pair: tuple[int, int]) -> int:
        if pair not in pair_ids:
            pair_ids[pair] = builder.add_state()
        return pair_ids[pair]

    queue: deque[tuple[int, int]] = deque()
    for li in lf.initials:
        for ri in rf.initials:
            pair = (li, ri)
            builder.set_initial(state_of(pair))
            queue.append(pair)
    visited: set[tuple[int, int]] = set(queue)
    while queue:
        pair = queue.popleft()
        l_state, r_state = pair
        src = state_of(pair)
        if l_state in lf.finals and r_state in rf.finals:
            builder.set_final(src)
        l_row = lf.transitions_from(l_state)
        r_row = rf.transitions_from(r_state)
        for symbol in l_row.keys() & r_row.keys():
            for l_dst in l_row[symbol]:
                for r_dst in r_row[symbol]:
                    successor = (l_dst, r_dst)
                    builder.add_transition(src, symbol, state_of(successor))
                    if successor not in visited:
                        visited.add(successor)
                        queue.append(successor)
    if not pair_ids:
        # No joint initial state: empty language.
        lone = builder.add_state()
        builder.set_initial(lone)
    return builder.build()


def union_nfa(automata: Iterable[NFA]) -> NFA:
    """Disjoint union of NFAs (accepts the union of the languages)."""
    builder = NFABuilder()
    for nfa in automata:
        offset_map = _copy_into(builder, nfa)
        for initial in nfa.initials:
            builder.set_initial(offset_map[initial])
        for final in nfa.finals:
            builder.set_final(offset_map[final])
    return builder.build()


def concat_nfa(automata: Iterable[NFA]) -> NFA:
    """Concatenation of NFAs in the given order."""
    parts = list(automata)
    if not parts:
        builder = NFABuilder()
        only = builder.add_state()
        builder.set_initial(only)
        builder.set_final(only)
        return builder.build()
    builder = NFABuilder()
    previous_finals: list[int] | None = None
    for nfa in parts:
        offset_map = _copy_into(builder, nfa)
        if previous_finals is None:
            for initial in nfa.initials:
                builder.set_initial(offset_map[initial])
        else:
            for final in previous_finals:
                for initial in nfa.initials:
                    builder.add_epsilon(final, offset_map[initial])
        previous_finals = [offset_map[f] for f in nfa.finals]
    for final in previous_finals or []:
        builder.set_final(final)
    return builder.build()


def star_nfa(nfa: NFA) -> NFA:
    """Kleene closure of an NFA."""
    builder = NFABuilder(nfa.alphabet)
    hub = builder.add_state()
    builder.set_initial(hub)
    builder.set_final(hub)
    offset_map = _copy_into(builder, nfa)
    for initial in nfa.initials:
        builder.add_epsilon(hub, offset_map[initial])
    for final in nfa.finals:
        builder.add_epsilon(offset_map[final], hub)
    return builder.build()


def complement(
    automaton: NFA | DFA, alphabet: Iterable[Hashable] | None = None
) -> DFA:
    """Complement over ``alphabet`` (default: the automaton's own).

    NFAs are determinized first, then completed and acceptance-swapped —
    the paper's step 3 (and the second exponential of Theorem 3.1).  DFAs
    skip the determinization.
    """
    sigma = frozenset(alphabet) if alphabet is not None else automaton.alphabet
    dfa = automaton if isinstance(automaton, DFA) else determinize(automaton)
    return dfa.complemented(sigma)


def _copy_into(builder: NFABuilder, nfa: NFA) -> dict[int, int]:
    """Copy ``nfa``'s states/transitions into ``builder`` with fresh ids."""
    builder.add_alphabet(nfa.alphabet)
    mapping = {state: builder.add_state() for state in sorted(nfa.states)}
    for src, label, dst in nfa.iter_transitions():
        if label is EPS:
            builder.add_epsilon(mapping[src], mapping[dst])
        else:
            builder.add_transition(mapping[src], label, mapping[dst])
    return mapping


def view_transition_relation(dfa: DFA, view: NFA) -> dict[int, set[int]]:
    """For each DFA state ``s_i``, the states ``s_j`` reachable by a view word.

    Returns ``{s_i: {s_j | exists w in L(view): dfa runs s_i -> s_j on w}}``.
    This realizes step 2 of the paper's rewriting construction: the relation
    gives exactly the ``e``-labelled edges of ``A'`` for the view ``e``.  The
    paper describes it as a non-emptiness test of the product of
    ``A_d^{i,j}`` with the view automaton for every pair ``(i, j)``; a single
    breadth-first search of the product per source state ``s_i`` computes the
    whole row at once, which is equivalent and a factor ``|S|`` cheaper.

    ``dfa`` must be total (complete it first) so that no view word "falls
    off" the automaton: with a partial DFA, words leading to the implicit
    dead state would be silently dropped and the resulting rewriting would
    not be maximal-with-respect-to rejection (the dead state is where bad
    expansions must land).
    """
    if not dfa.is_total():
        raise ValueError("view_transition_relation requires a total DFA")
    view_free = view.without_epsilon()
    relation: dict[int, set[int]] = {}
    start_subset = frozenset(view_free.initials)
    for source in dfa.states:
        targets: set[int] = set()
        if start_subset & view_free.finals:
            # The empty word is in the view language: s_i -> s_i.
            targets.add(source)
        seen: set[tuple[int, int]] = set()
        queue: deque[tuple[int, int]] = deque(
            (source, q) for q in view_free.initials
        )
        seen.update(queue)
        while queue:
            d_state, v_state = queue.popleft()
            for symbol, v_dsts in view_free.transitions_from(v_state).items():
                d_next = dfa.successor(d_state, symbol)
                if d_next is None:
                    continue  # symbol outside the DFA alphabet
                for v_next in v_dsts:
                    pair = (d_next, v_next)
                    if pair in seen:
                        continue
                    seen.add(pair)
                    if v_next in view_free.finals:
                        targets.add(d_next)
                    queue.append(pair)
        relation[source] = targets
    return relation
