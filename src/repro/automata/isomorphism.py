"""DFA isomorphism and canonical forms.

Minimal DFAs for the same language are unique up to renaming of states
(Myhill–Nerode), so isomorphism of minimized automata is a structural
equivalence check — stronger evidence than language equivalence when
testing the rewriting pipeline's determinism, and the basis of
:func:`canonical_form`, a renumbering by breadth-first discovery order
that makes equal-language minimal DFAs *equal* as data structures.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from .dfa import DFA

__all__ = ["are_isomorphic", "canonical_form"]


def canonical_form(dfa: DFA) -> DFA:
    """Renumber states by BFS discovery order (symbols sorted by repr).

    Two isomorphic DFAs whose transition functions are total on the same
    alphabet produce identical canonical forms; minimal DFAs of the same
    language therefore compare equal after ``canonical_form(minimize(.))``.
    Unreachable states are dropped (they cannot affect the language).
    """
    symbols = sorted(dfa.alphabet, key=repr)
    order: dict[int, int] = {dfa.initial: 0}
    queue: deque[int] = deque([dfa.initial])
    while queue:
        state = queue.popleft()
        for symbol in symbols:
            successor = dfa.successor(state, symbol)
            if successor is not None and successor not in order:
                order[successor] = len(order)
                queue.append(successor)
    transitions: dict[int, dict[Hashable, int]] = {}
    for state, index in order.items():
        row = {
            symbol: order[dst]
            for symbol, dst in dfa.transitions_from(state).items()
            if dst in order
        }
        if row:
            transitions[index] = row
    return DFA(
        states=range(len(order)),
        alphabet=dfa.alphabet,
        transitions=transitions,
        initial=0,
        finals={order[s] for s in dfa.finals if s in order},
    )


def are_isomorphic(left: DFA, right: DFA) -> bool:
    """Are the two DFAs identical up to a renaming of (reachable) states?

    Decided by simultaneous BFS building the unique candidate bijection;
    fails fast on any mismatch of acceptance, alphabet, or out-edges.
    """
    if left.alphabet != right.alphabet:
        return False
    mapping: dict[int, int] = {left.initial: right.initial}
    queue: deque[int] = deque([left.initial])
    seen_right = {right.initial}
    while queue:
        l_state = queue.popleft()
        r_state = mapping[l_state]
        if (l_state in left.finals) != (r_state in right.finals):
            return False
        l_row = left.transitions_from(l_state)
        r_row = right.transitions_from(r_state)
        if set(l_row.keys()) != set(r_row.keys()):
            return False
        for symbol, l_next in l_row.items():
            r_next = r_row[symbol]
            if l_next in mapping:
                if mapping[l_next] != r_next:
                    return False
            else:
                if r_next in seen_right:
                    return False  # not injective
                mapping[l_next] = r_next
                seen_right.add(r_next)
                queue.append(l_next)
    return True
