"""Language containment and equivalence with on-the-fly determinization.

``L(A) subseteq L(B)`` is decided by searching the product of ``A`` with the
lazily determinized complement of ``B`` — the same "construct the complement
on-the-fly, keep at most two states in memory" idea the paper uses to obtain
the 2EXPSPACE upper bound for the exactness test (proof of Theorem 3.2).
Only the reachable part of the subset space of ``B`` is ever expanded, and
a counterexample word is produced when the containment fails.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Union

from .dfa import DFA
from .nfa import NFA

__all__ = ["is_contained", "containment_counterexample", "are_equivalent"]

Automaton = Union[NFA, DFA]


def _as_free_nfa(automaton: Automaton) -> NFA:
    nfa = automaton.to_nfa() if isinstance(automaton, DFA) else automaton
    return nfa.without_epsilon()


def is_contained(left: Automaton, right: Automaton) -> bool:
    """Decide ``L(left) subseteq L(right)``."""
    return containment_counterexample(left, right) is None


def containment_counterexample(
    left: Automaton, right: Automaton
) -> tuple[Hashable, ...] | None:
    """A shortest word in ``L(left) - L(right)``, or ``None`` if contained.

    Runs a breadth-first search over pairs ``(P, S)`` where ``P`` is a set of
    ``left`` states and ``S`` the determinized-subset of ``right`` states; a
    pair with ``P`` accepting and ``S`` non-accepting witnesses the word that
    reached it.
    """
    lf = _as_free_nfa(left)
    rf = _as_free_nfa(right)
    sigma = lf.alphabet  # words outside left's alphabet are never in L(left)
    start = (frozenset(lf.initials), frozenset(rf.initials))
    if _is_counterexample(start, lf, rf):
        return ()
    seen: set[tuple[frozenset[int], frozenset[int]]] = {start}
    queue: deque[
        tuple[tuple[frozenset[int], frozenset[int]], tuple[Hashable, ...]]
    ] = deque([(start, ())])
    while queue:
        (l_subset, r_subset), word = queue.popleft()
        for symbol in sigma:
            l_next: set[int] = set()
            for state in l_subset:
                l_next.update(lf.successors(state, symbol))
            if not l_next:
                continue  # word prefix already left L(left) forever
            r_next: set[int] = set()
            for state in r_subset:
                r_next.update(rf.successors(state, symbol))
            pair = (frozenset(l_next), frozenset(r_next))
            if pair in seen:
                continue
            extended = word + (symbol,)
            if _is_counterexample(pair, lf, rf):
                return extended
            seen.add(pair)
            queue.append((pair, extended))
    return None


def _is_counterexample(
    pair: tuple[frozenset[int], frozenset[int]], lf: NFA, rf: NFA
) -> bool:
    l_subset, r_subset = pair
    return bool(l_subset & lf.finals) and not (r_subset & rf.finals)


def are_equivalent(left: Automaton, right: Automaton) -> bool:
    """Language equivalence via two containment checks."""
    return is_contained(left, right) and is_contained(right, left)
