"""Deterministic finite automata.

A :class:`DFA` has a single initial state and at most one successor per
(state, symbol).  The transition function may be *partial*: missing entries
denote an implicit dead state.  The paper's constructions need *total*
(complete) automata at two points — before building ``A'`` (step 2 of the
rewriting algorithm) and before complementation — which is what
:meth:`DFA.completed` provides.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from .nfa import NFA

__all__ = ["DFA"]


class DFA:
    """A DFA ``(Q, Sigma, delta, s0, F)`` over integer states."""

    __slots__ = ("states", "alphabet", "initial", "finals", "_delta")

    def __init__(
        self,
        states: Iterable[int],
        alphabet: Iterable[Hashable],
        transitions: Mapping[int, Mapping[Hashable, int]],
        initial: int,
        finals: Iterable[int],
    ):
        self.states: frozenset[int] = frozenset(states)
        self.alphabet: frozenset[Hashable] = frozenset(alphabet)
        self.initial: int = initial
        self.finals: frozenset[int] = frozenset(finals)
        self._delta: dict[int, dict[Hashable, int]] = {
            src: dict(row) for src, row in transitions.items() if row
        }
        self._validate()

    def _validate(self) -> None:
        if self.initial not in self.states:
            raise ValueError("initial state must be a state")
        if not self.finals <= self.states:
            raise ValueError("final states must be a subset of states")
        for src, row in self._delta.items():
            if src not in self.states:
                raise ValueError(f"transition source {src} is not a state")
            for label, dst in row.items():
                if label not in self.alphabet:
                    raise ValueError(f"label {label!r} is not in the alphabet")
                if dst not in self.states:
                    raise ValueError(f"transition target {dst} is not a state")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def num_transitions(self) -> int:
        return sum(len(row) for row in self._delta.values())

    def successor(self, state: int, symbol: Hashable) -> int | None:
        """The unique successor, or ``None`` for the implicit dead state."""
        return self._delta.get(state, {}).get(symbol)

    def transitions_from(self, state: int) -> Mapping[Hashable, int]:
        return self._delta.get(state, {})

    def iter_transitions(self) -> Iterator[tuple[int, Hashable, int]]:
        for src, row in self._delta.items():
            for label, dst in row.items():
                yield (src, label, dst)

    def is_total(self) -> bool:
        """Is the transition function defined for every (state, symbol)?"""
        return all(
            len(self._delta.get(state, {})) == len(self.alphabet)
            for state in self.states
        )

    # ------------------------------------------------------------------
    # Language operations
    # ------------------------------------------------------------------
    def run(self, word: Sequence[Hashable]) -> int | None:
        """State reached after ``word``, or ``None`` if the run dies."""
        state: int | None = self.initial
        for symbol in word:
            if state is None:
                return None
            state = self.successor(state, symbol)
        return state

    def accepts(self, word: Sequence[Hashable]) -> bool:
        state = self.run(word)
        return state is not None and state in self.finals

    # ------------------------------------------------------------------
    # Structural transformations
    # ------------------------------------------------------------------
    def completed(self, alphabet: Iterable[Hashable] | None = None) -> "DFA":
        """Return a total DFA over ``alphabet`` (default: own alphabet).

        Adds a non-final sink state (if required) that absorbs all missing
        transitions.  The language is unchanged.
        """
        sigma = frozenset(alphabet) if alphabet is not None else self.alphabet
        if not self.alphabet <= sigma:
            raise ValueError("completion alphabet must contain the DFA alphabet")
        missing = [
            (state, symbol)
            for state in self.states
            for symbol in sigma
            if self._delta.get(state, {}).get(symbol) is None
        ]
        if not missing:
            return self if sigma == self.alphabet else DFA(
                self.states, sigma, self._delta, self.initial, self.finals
            )
        sink = max(self.states) + 1
        transitions = {src: dict(row) for src, row in self._delta.items()}
        for state, symbol in missing:
            transitions.setdefault(state, {})[symbol] = sink
        transitions[sink] = {symbol: sink for symbol in sigma}
        return DFA(
            states=self.states | {sink},
            alphabet=sigma,
            transitions=transitions,
            initial=self.initial,
            finals=self.finals,
        )

    def complemented(self, alphabet: Iterable[Hashable] | None = None) -> "DFA":
        """The complement DFA: complete, then swap final and non-final."""
        total = self.completed(alphabet)
        return DFA(
            states=total.states,
            alphabet=total.alphabet,
            transitions=total._delta,
            initial=total.initial,
            finals=total.states - total.finals,
        )

    def to_nfa(self) -> NFA:
        """View this DFA as an NFA (no epsilon moves)."""
        transitions = {
            src: {label: {dst} for label, dst in row.items()}
            for src, row in self._delta.items()
        }
        return NFA(
            states=self.states,
            alphabet=self.alphabet,
            transitions=transitions,
            initials={self.initial},
            finals=self.finals,
        )

    def renumbered(self, start: int = 0) -> "DFA":
        mapping = {old: start + i for i, old in enumerate(sorted(self.states))}
        transitions = {
            mapping[src]: {label: mapping[dst] for label, dst in row.items()}
            for src, row in self._delta.items()
        }
        return DFA(
            states={mapping[s] for s in self.states},
            alphabet=self.alphabet,
            transitions=transitions,
            initial=mapping[self.initial],
            finals={mapping[s] for s in self.finals},
        )

    def reachable_states(self) -> set[int]:
        """States reachable from the initial state."""
        seen = {self.initial}
        frontier = [self.initial]
        while frontier:
            state = frontier.pop()
            for dst in self._delta.get(state, {}).values():
                if dst not in seen:
                    seen.add(dst)
                    frontier.append(dst)
        return seen

    def trimmed(self) -> "DFA":
        """Keep accessible, co-accessible states (may become partial)."""
        forward = self.reachable_states()
        pred: dict[int, set[int]] = {}
        for src, _label, dst in self.iter_transitions():
            pred.setdefault(dst, set()).add(src)
        backward = set(self.finals)
        frontier = list(backward)
        while frontier:
            state = frontier.pop()
            for nxt in pred.get(state, set()):
                if nxt not in backward:
                    backward.add(nxt)
                    frontier.append(nxt)
        useful = forward & backward
        if self.initial not in useful:
            # Empty language: single non-final initial state.
            return DFA({0}, self.alphabet, {}, 0, set())
        transitions = {
            src: {
                label: dst for label, dst in row.items() if dst in useful
            }
            for src, row in self._delta.items()
            if src in useful
        }
        return DFA(
            states=useful,
            alphabet=self.alphabet,
            transitions=transitions,
            initial=self.initial,
            finals=self.finals & useful,
        )

    def __repr__(self) -> str:
        return (
            f"DFA(states={self.num_states}, transitions={self.num_transitions}, "
            f"initial={self.initial}, finals={sorted(self.finals)})"
        )
