"""Thompson's construction: regular expressions to epsilon-NFAs.

The construction yields, for every regular expression, an NFA with a unique
initial state without incoming edges and a unique final state without
outgoing edges — exactly the normal form the paper assumes when splicing view
automata into the rewriting to build the expansion automaton ``B``
(Section 2, exactness check, step 1).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from ..regex.ast import Concat, EmptySet, Epsilon, Regex, Star, Symbol, Union
from .nfa import EPS, NFA, NFABuilder

__all__ = ["to_nfa", "word_nfa", "universal_nfa"]


def to_nfa(expr: Regex, alphabet: Iterable[Hashable] | None = None) -> NFA:
    """Compile ``expr`` into an epsilon-NFA via Thompson's construction.

    The result has exactly one initial state (no incoming transitions) and
    one final state (no outgoing transitions).  ``alphabet`` may supply extra
    symbols beyond those occurring in ``expr`` (needed when an automaton over
    a larger alphabet is required, e.g. for complementation).
    """
    builder = NFABuilder(alphabet or ())
    builder.add_alphabet(expr.alphabet())
    start, accept = _build(expr, builder)
    builder.set_initial(start)
    builder.set_final(accept)
    return builder.build()


def _build(expr: Regex, builder: NFABuilder) -> tuple[int, int]:
    """Compile ``expr``; return its (start, accept) state pair."""
    if isinstance(expr, EmptySet):
        return builder.add_state(), builder.add_state()
    if isinstance(expr, Epsilon):
        start, accept = builder.add_state(), builder.add_state()
        builder.add_epsilon(start, accept)
        return start, accept
    if isinstance(expr, Symbol):
        start, accept = builder.add_state(), builder.add_state()
        builder.add_transition(start, expr.symbol, accept)
        return start, accept
    if isinstance(expr, Concat):
        start, current = _build(expr.parts[0], builder)
        for part in expr.parts[1:]:
            nxt_start, nxt_accept = _build(part, builder)
            builder.add_epsilon(current, nxt_start)
            current = nxt_accept
        return start, current
    if isinstance(expr, Union):
        start, accept = builder.add_state(), builder.add_state()
        for part in expr.parts:
            p_start, p_accept = _build(part, builder)
            builder.add_epsilon(start, p_start)
            builder.add_epsilon(p_accept, accept)
        return start, accept
    if isinstance(expr, Star):
        start, accept = builder.add_state(), builder.add_state()
        inner_start, inner_accept = _build(expr.inner, builder)
        builder.add_epsilon(start, inner_start)
        builder.add_epsilon(inner_accept, accept)
        builder.add_epsilon(start, accept)
        builder.add_epsilon(inner_accept, inner_start)
        return start, accept
    raise TypeError(f"unknown Regex node: {expr!r}")


def word_nfa(word: Sequence[Hashable], alphabet: Iterable[Hashable] | None = None) -> NFA:
    """An NFA accepting exactly the single word ``word``."""
    builder = NFABuilder(alphabet or ())
    states = builder.add_states(len(word) + 1)
    for i, symbol in enumerate(word):
        builder.add_transition(states[i], symbol, states[i + 1])
    builder.set_initial(states[0])
    builder.set_final(states[-1])
    return builder.build()


def universal_nfa(alphabet: Iterable[Hashable]) -> NFA:
    """An NFA accepting ``Sigma*`` over the given alphabet."""
    symbols = set(alphabet)
    builder = NFABuilder(symbols)
    state = builder.add_state()
    for symbol in symbols:
        builder.add_transition(state, symbol, state)
    builder.set_initial(state)
    builder.set_final(state)
    return builder.build()
