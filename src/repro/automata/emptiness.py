"""Language emptiness, shortest witnesses and bounded enumeration.

Non-emptiness of a finite automaton is graph reachability (NLOGSPACE, cited
by the paper as [RS59, Jon75]); breadth-first search additionally yields a
*shortest* accepted word, which the tests and examples use as witnesses.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterator, Sequence, Union

from .dfa import DFA
from .nfa import EPS, NFA

__all__ = [
    "is_empty",
    "shortest_word",
    "enumerate_words",
    "is_universal",
    "accepts",
]

Automaton = Union[NFA, DFA]


def _as_nfa(automaton: Automaton) -> NFA:
    return automaton.to_nfa() if isinstance(automaton, DFA) else automaton


def accepts(automaton: Automaton, word: Sequence[Hashable]) -> bool:
    """Uniform word-membership helper for NFAs and DFAs."""
    return automaton.accepts(word)


def is_empty(automaton: Automaton) -> bool:
    """Is ``L(automaton)`` empty?"""
    return shortest_word(automaton) is None


def shortest_word(automaton: Automaton) -> tuple[Hashable, ...] | None:
    """A shortest accepted word, or ``None`` if the language is empty.

    Ties between equal-length words are broken by the (arbitrary but fixed)
    iteration order of the transition tables.
    """
    nfa = _as_nfa(automaton)
    start = nfa.epsilon_closure(nfa.initials)
    if start & nfa.finals:
        return ()
    seen: set[frozenset[int]] = {start}
    queue: deque[tuple[frozenset[int], tuple[Hashable, ...]]] = deque([(start, ())])
    while queue:
        subset, word = queue.popleft()
        moves: dict[Hashable, set[int]] = {}
        for state in subset:
            for label, dsts in nfa.transitions_from(state).items():
                if label is EPS:
                    continue
                moves.setdefault(label, set()).update(dsts)
        for label, dsts in moves.items():
            closed = nfa.epsilon_closure(dsts)
            if not closed or closed in seen:
                continue
            extended = word + (label,)
            if closed & nfa.finals:
                return extended
            seen.add(closed)
            queue.append((closed, extended))
    return None


def enumerate_words(
    automaton: Automaton,
    max_length: int,
    max_count: int | None = None,
) -> Iterator[tuple[Hashable, ...]]:
    """Yield accepted words in order of increasing length.

    Enumeration stops after ``max_length`` (inclusive) or after ``max_count``
    words.  Within a length, the order follows a deterministic sort of the
    symbols' ``repr`` so runs are reproducible.
    """
    nfa = _as_nfa(automaton)
    symbols = sorted(nfa.alphabet, key=repr)
    emitted = 0
    start = nfa.epsilon_closure(nfa.initials)
    level: list[tuple[frozenset[int], tuple[Hashable, ...]]] = [(start, ())]
    for length in range(max_length + 1):
        for subset, word in level:
            if subset & nfa.finals:
                yield word
                emitted += 1
                if max_count is not None and emitted >= max_count:
                    return
        if length == max_length:
            break
        next_level: list[tuple[frozenset[int], tuple[Hashable, ...]]] = []
        for subset, word in level:
            for symbol in symbols:
                moved: set[int] = set()
                for state in subset:
                    moved.update(nfa.successors(state, symbol))
                closed = nfa.epsilon_closure(moved)
                if closed:
                    next_level.append((closed, word + (symbol,)))
        level = next_level
        if not level:
            break


def is_universal(automaton: Automaton, alphabet: frozenset | None = None) -> bool:
    """Does the automaton accept all of ``Sigma*``?

    Decided by checking the complement for emptiness with a lazy subset
    construction (no full determinization).
    """
    nfa = _as_nfa(automaton).without_epsilon()
    sigma = alphabet if alphabet is not None else nfa.alphabet
    start = frozenset(nfa.initials)
    if not start & nfa.finals:
        return False
    seen: set[frozenset[int]] = {start}
    queue: deque[frozenset[int]] = deque([start])
    while queue:
        subset = queue.popleft()
        for symbol in sigma:
            moved: set[int] = set()
            for state in subset:
                moved.update(nfa.successors(state, symbol))
            target = frozenset(moved)
            if not target & nfa.finals:
                return False
            if target not in seen:
                seen.add(target)
                queue.append(target)
    return True
