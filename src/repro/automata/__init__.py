"""Finite-automata substrate: NFAs, DFAs and the operations the paper needs.

Everything in Section 2 and Section 4 of the paper reduces to a handful of
automata-theoretic primitives — Thompson construction, subset construction,
completion, complementation, products, emptiness, and containment with
on-the-fly determinization.  This package implements all of them from
scratch over arbitrary hashable alphabets.
"""

from .compiled import (
    DenseDFA,
    DenseNFA,
    dense_from_dfa,
    dense_from_nfa,
    determinize_dense,
    minimize_dense,
    relation_cache_clear,
    relation_cache_info,
    rewrite_sweep,
    view_transition_masks,
)
from .containment import are_equivalent, containment_counterexample, is_contained
from .determinize import determinize, determinize_with_map
from .isomorphism import are_isomorphic, canonical_form
from .dfa import DFA
from .emptiness import enumerate_words, is_empty, is_universal, shortest_word
from .minimize import minimize
from .nfa import EPS, NFA, NFABuilder
from .operations import (
    complement,
    concat_nfa,
    difference_dfa,
    intersect_dfa,
    intersect_nfa,
    product_dfa,
    star_nfa,
    union_dfa,
    union_nfa,
    view_transition_relation,
)
from .serialization import (
    automaton_fingerprint,
    dfa_from_dict,
    dfa_to_dict,
    nfa_from_dict,
    nfa_to_dict,
    to_dot,
)
from .state_elim import to_regex
from .thompson import to_nfa, universal_nfa, word_nfa

__all__ = [
    "EPS",
    "NFA",
    "NFABuilder",
    "DFA",
    "DenseNFA",
    "DenseDFA",
    "dense_from_nfa",
    "dense_from_dfa",
    "determinize_dense",
    "minimize_dense",
    "view_transition_masks",
    "rewrite_sweep",
    "relation_cache_info",
    "relation_cache_clear",
    "to_nfa",
    "word_nfa",
    "universal_nfa",
    "determinize",
    "determinize_with_map",
    "minimize",
    "product_dfa",
    "intersect_dfa",
    "union_dfa",
    "difference_dfa",
    "intersect_nfa",
    "union_nfa",
    "concat_nfa",
    "star_nfa",
    "complement",
    "view_transition_relation",
    "is_empty",
    "shortest_word",
    "enumerate_words",
    "is_universal",
    "is_contained",
    "containment_counterexample",
    "are_equivalent",
    "are_isomorphic",
    "canonical_form",
    "to_regex",
    "nfa_to_dict",
    "nfa_from_dict",
    "dfa_to_dict",
    "dfa_from_dict",
    "automaton_fingerprint",
    "to_dot",
]
