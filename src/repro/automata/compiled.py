"""Compiled automata kernel: dense ids, bitmask tables, fused sweeps.

The rewriting pipeline of Sections 2–3 (``build_ad`` → ``A'`` → complement
→ minimize) originally ran on dict-of-set automata: every (state, symbol)
step allocated Python sets.  This module is the compiled substrate the
pipeline now runs on:

* :class:`DenseNFA` / :class:`DenseDFA` — states are ``0..n-1``, symbols
  are indexed, transition tables are flat per-state arrays, and *sets of
  states are single Python integers used as bitmasks*, so union,
  difference, and emptiness are one C-level big-int operation each.
* :func:`determinize_dense` — the Rabin–Scott subset construction over
  bitmask subsets, producing a *total* dense DFA directly (the dead
  subset ``0`` is materialized on demand and is its own sink).
* :func:`minimize_dense` — Hopcroft's partition refinement where blocks,
  splitters, and predecessor sets are all bitmasks.  Dense masks lose to
  sparse sets once automata reach the 10^5-state scale of the Section 3.2
  reduction instances, so above :data:`DENSE_MINIMIZE_LIMIT` states the
  function transparently switches to ``_minimize_dense_sparse``, the same
  refinement over per-element sets (the dense-array port of
  :func:`repro.automata.minimize.minimize`).
* :func:`view_transition_masks` — the ``A'``-edge workhorse.  Instead of
  one product BFS per ``Ad`` state (the naive
  :func:`~repro.automata.operations.view_transition_relation`), a single
  semi-naive BFS over (view-state, ``Ad``-state) cells carries *bitmasks
  of source states*, computing every row of the relation at once; results
  are memoized per (``Ad`` fingerprint, view automaton) so
  ``maximal_rewriting`` and ``existential_rewriting`` share them.
* :func:`rewrite_sweep` — the paper's step 3 (complement) fused with
  minimization: one subset sweep *directly over the relation masks* with
  complemented acceptance, never materializing the intermediate ``A'``
  NFA, followed by the dense Hopcroft pass.

Everything converts losslessly to and from the dict-based :class:`NFA` /
:class:`DFA` classes, which remain the public interchange types.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterator, Sequence

from .dfa import DFA
from .nfa import NFA

__all__ = [
    "DenseNFA",
    "DenseDFA",
    "dense_from_nfa",
    "dense_from_dfa",
    "determinize_dense",
    "minimize_dense",
    "view_transition_masks",
    "cached_view_transition_masks",
    "rewrite_sweep",
    "relation_cache_info",
    "relation_cache_clear",
    "iter_bits",
    "DENSE_MINIMIZE_LIMIT",
    "DENSE_RELATION_LIMIT",
]

#: Above this many states, mask-based Hopcroft loses to the sparse
#: set-based implementation (OR-ing n/64-word predecessor masks per
#: splitter bit dominates); delegate instead.
DENSE_MINIMIZE_LIMIT = 4096

#: Above this many DFA states, the all-sources relation BFS would carry
#: n-bit source masks per product cell (O(n^2) bits); fall back to the
#: per-source sparse BFS.
DENSE_RELATION_LIMIT = 1 << 14


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask`` (ascending)."""
    while mask:
        low = mask & -mask
        mask ^= low
        yield low.bit_length() - 1


class DenseNFA:
    """An epsilon-free NFA over dense ids with per-state bitmask moves.

    ``moves[state]`` is a tuple of ``(symbol_index, targets_mask)`` pairs;
    ``state_at[i]`` recovers the original :class:`NFA` state id.
    """

    __slots__ = ("symbols", "num_states", "moves", "initials_mask", "finals_mask", "state_at")

    def __init__(
        self,
        symbols: tuple[Hashable, ...],
        num_states: int,
        moves: list[tuple[tuple[int, int], ...]],
        initials_mask: int,
        finals_mask: int,
        state_at: tuple[int, ...],
    ):
        self.symbols = symbols
        self.num_states = num_states
        self.moves = moves
        self.initials_mask = initials_mask
        self.finals_mask = finals_mask
        self.state_at = state_at

    def __repr__(self) -> str:
        return f"DenseNFA(states={self.num_states}, symbols={len(self.symbols)})"


class DenseDFA:
    """A *total* DFA over dense ids: ``delta[state][symbol_index]`` is an int."""

    __slots__ = ("symbols", "num_states", "delta", "initial", "finals_mask")

    def __init__(
        self,
        symbols: tuple[Hashable, ...],
        delta: list[list[int]],
        initial: int,
        finals_mask: int,
    ):
        self.symbols = symbols
        self.num_states = len(delta)
        self.delta = delta
        self.initial = initial
        self.finals_mask = finals_mask

    def key(self) -> tuple:
        """A hashable structural fingerprint (for relation memoization)."""
        return (
            self.symbols,
            self.initial,
            self.finals_mask,
            tuple(tuple(row) for row in self.delta),
        )

    def accepts(self, word: Sequence[Hashable]) -> bool:
        index = {symbol: i for i, symbol in enumerate(self.symbols)}
        state = self.initial
        for symbol in word:
            i = index.get(symbol)
            if i is None:
                return False
            state = self.delta[state][i]
        return bool(self.finals_mask >> state & 1)

    def to_dfa(self) -> DFA:
        """Convert to the dict-based :class:`DFA` (states ``0..n-1``, total)."""
        transitions = {
            state: dict(zip(self.symbols, row)) for state, row in enumerate(self.delta)
        }
        return DFA(
            states=range(self.num_states),
            alphabet=self.symbols,
            transitions=transitions,
            initial=self.initial,
            finals=set(iter_bits(self.finals_mask)),
        )

    def __repr__(self) -> str:
        return (
            f"DenseDFA(states={self.num_states}, symbols={len(self.symbols)}, "
            f"initial={self.initial})"
        )


# ----------------------------------------------------------------------
# Conversions
# ----------------------------------------------------------------------


def dense_from_nfa(nfa: NFA, symbols: tuple[Hashable, ...] | None = None) -> DenseNFA:
    """Compile an :class:`NFA` (epsilon moves eliminated) to dense form."""
    if nfa.has_epsilon_moves():
        nfa = nfa.without_epsilon().trimmed()
    if symbols is None:
        symbols = tuple(sorted(nfa.alphabet, key=repr))
    symbol_index = {symbol: i for i, symbol in enumerate(symbols)}
    state_at = tuple(sorted(nfa.states))
    index_of = {state: i for i, state in enumerate(state_at)}
    moves: list[tuple[tuple[int, int], ...]] = []
    for state in state_at:
        entries = []
        for label, dsts in nfa.transitions_from(state).items():
            mask = 0
            for dst in dsts:
                mask |= 1 << index_of[dst]
            entries.append((symbol_index[label], mask))
        moves.append(tuple(entries))
    initials_mask = 0
    for state in nfa.initials:
        initials_mask |= 1 << index_of[state]
    finals_mask = 0
    for state in nfa.finals:
        finals_mask |= 1 << index_of[state]
    return DenseNFA(symbols, len(state_at), moves, initials_mask, finals_mask, state_at)


def dense_from_dfa(dfa: DFA) -> tuple[DenseDFA, tuple[int, ...]]:
    """Compile a *total* :class:`DFA`; returns ``(dense, state_at)``.

    ``state_at[i]`` is the original state id of dense state ``i``.  Symbols
    are ordered by ``repr`` so that structurally equal DFAs produce equal
    fingerprints.
    """
    if not dfa.is_total():
        raise ValueError("dense_from_dfa requires a total DFA")
    symbols = tuple(sorted(dfa.alphabet, key=repr))
    state_at = tuple(sorted(dfa.states))
    index_of = {state: i for i, state in enumerate(state_at)}
    delta = [
        [index_of[dfa.successor(state, symbol)] for symbol in symbols]
        for state in state_at
    ]
    finals_mask = 0
    for state in dfa.finals:
        finals_mask |= 1 << index_of[state]
    dense = DenseDFA(symbols, delta, index_of[dfa.initial], finals_mask)
    return dense, state_at


# ----------------------------------------------------------------------
# Subset construction (shared by determinization and the rewrite sweep)
# ----------------------------------------------------------------------


def _subset_sweep(
    per_state_moves: Sequence[Sequence[tuple[int, int]]],
    initial_mask: int,
    num_symbols: int,
    accept_mask: int,
    complement: bool,
) -> tuple[list[list[int]], int]:
    """Explore subsets from ``initial_mask``; returns ``(delta, finals_mask)``.

    Acceptance of a subset ``S`` is ``S & accept_mask`` (plain mode) or
    ``not (S & accept_mask)`` (complement mode — used for the fused
    rewriting step, where the dead subset ``0`` is *accepting*).  The
    result is total: the dead subset is materialized iff reachable.
    """
    subset_ids: dict[int, int] = {initial_mask: 0}
    rows: list[list[int] | None] = [None]
    finals_mask_out = 0
    worklist = [initial_mask]
    while worklist:
        subset = worklist.pop()
        state_id = subset_ids[subset]
        hit = bool(subset & accept_mask)
        if hit != complement:
            finals_mask_out |= 1 << state_id
        targets = [0] * num_symbols
        remaining = subset
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            for symbol_index, mask in per_state_moves[low.bit_length() - 1]:
                targets[symbol_index] |= mask
        row = []
        for target in targets:
            target_id = subset_ids.get(target)
            if target_id is None:
                target_id = subset_ids[target] = len(subset_ids)
                rows.append(None)
                worklist.append(target)
            row.append(target_id)
        rows[state_id] = row
    # Every discovered subset was processed, so no row is left None.
    return rows, finals_mask_out  # type: ignore[return-value]


def determinize_dense(nfa: NFA, symbols: tuple[Hashable, ...] | None = None) -> DenseDFA:
    """Subset construction straight to a total :class:`DenseDFA`.

    ``symbols`` may be a superset of the NFA's alphabet (completion over a
    larger Sigma comes for free: absent symbols all lead to the dead
    subset).
    """
    dense = dense_from_nfa(nfa, symbols)
    delta, finals_mask = _subset_sweep(
        dense.moves,
        dense.initials_mask,
        len(dense.symbols),
        dense.finals_mask,
        complement=False,
    )
    return DenseDFA(dense.symbols, delta, 0, finals_mask)


# ----------------------------------------------------------------------
# Hopcroft minimization over bitmask blocks
# ----------------------------------------------------------------------


def minimize_dense(dense: DenseDFA) -> DenseDFA:
    """The minimal total DFA for ``L(dense)`` (reachable part).

    Mask-based Hopcroft below :data:`DENSE_MINIMIZE_LIMIT` states; the
    sparse set-based refinement above it (on 10^5-state subset spaces,
    OR-ing n/64-word predecessor masks per splitter bit is slower than
    per-element set operations).
    """
    if dense.num_states > DENSE_MINIMIZE_LIMIT:
        return _minimize_dense_sparse(dense)

    delta = dense.delta
    num_symbols = len(dense.symbols)
    # Reachable restriction.
    reach_mask = 1 << dense.initial
    frontier = [dense.initial]
    while frontier:
        state = frontier.pop()
        for target in delta[state]:
            bit = 1 << target
            if not reach_mask & bit:
                reach_mask |= bit
                frontier.append(target)

    preds = [[0] * dense.num_states for _ in range(num_symbols)]
    for state in iter_bits(reach_mask):
        row = delta[state]
        bit = 1 << state
        for symbol_index in range(num_symbols):
            preds[symbol_index][row[symbol_index]] |= bit

    finals = dense.finals_mask & reach_mask
    nonfinals = reach_mask & ~dense.finals_mask
    partition = [block for block in (finals, nonfinals) if block]
    worklist = [(block, a) for block in partition for a in range(num_symbols)]
    while worklist:
        splitter, symbol_index = worklist.pop()
        symbol_preds = preds[symbol_index]
        pred_mask = 0
        for target in iter_bits(splitter):
            pred_mask |= symbol_preds[target]
        if not pred_mask:
            continue
        new_partition = []
        for block in partition:
            inside = block & pred_mask
            if inside and inside != block:
                outside = block & ~pred_mask
                new_partition.append(inside)
                new_partition.append(outside)
                smaller = inside if inside.bit_count() <= outside.bit_count() else outside
                for a in range(num_symbols):
                    worklist.append((smaller, a))
            else:
                new_partition.append(block)
        partition = new_partition

    block_of = [0] * dense.num_states
    for block_id, block in enumerate(partition):
        for state in iter_bits(block):
            block_of[state] = block_id
    min_delta = []
    min_finals = 0
    for block_id, block in enumerate(partition):
        witness = (block & -block).bit_length() - 1
        if dense.finals_mask >> witness & 1:
            min_finals |= 1 << block_id
        min_delta.append([block_of[target] for target in delta[witness]])
    return DenseDFA(dense.symbols, min_delta, block_of[dense.initial], min_finals)


def _minimize_dense_sparse(dense: DenseDFA) -> DenseDFA:
    """Set-based Hopcroft over the dense arrays (large-automaton path)."""
    delta = dense.delta
    num_symbols = len(dense.symbols)
    reachable = {dense.initial}
    frontier = [dense.initial]
    while frontier:
        state = frontier.pop()
        for target in delta[state]:
            if target not in reachable:
                reachable.add(target)
                frontier.append(target)

    inverse: list[dict[int, set[int]]] = [{} for _ in range(num_symbols)]
    for state in reachable:
        row = delta[state]
        for symbol_index in range(num_symbols):
            inverse[symbol_index].setdefault(row[symbol_index], set()).add(state)

    finals = {state for state in reachable if dense.finals_mask >> state & 1}
    nonfinals = reachable - finals
    partition = [block for block in (finals, nonfinals) if block]
    worklist: list[tuple[frozenset[int], int]] = [
        (frozenset(block), a) for block in partition for a in range(num_symbols)
    ]
    while worklist:
        splitter, symbol_index = worklist.pop()
        symbol_inverse = inverse[symbol_index]
        predecessors: set[int] = set()
        for target in splitter:
            predecessors |= symbol_inverse.get(target, set())
        if not predecessors:
            continue
        new_partition: list[set[int]] = []
        for block in partition:
            inside = block & predecessors
            outside = block - predecessors
            if inside and outside:
                new_partition.extend((inside, outside))
                smaller = inside if len(inside) <= len(outside) else outside
                for a in range(num_symbols):
                    worklist.append((frozenset(smaller), a))
            else:
                new_partition.append(block)
        partition = new_partition

    block_of = [0] * dense.num_states
    for block_id, block in enumerate(partition):
        for state in block:
            block_of[state] = block_id
    min_delta = []
    min_finals = 0
    for block_id, block in enumerate(partition):
        witness = next(iter(block))
        if dense.finals_mask >> witness & 1:
            min_finals |= 1 << block_id
        min_delta.append([block_of[target] for target in delta[witness]])
    return DenseDFA(dense.symbols, min_delta, block_of[dense.initial], min_finals)


# ----------------------------------------------------------------------
# Product reachability: the A'-edge workhorse
# ----------------------------------------------------------------------


def view_transition_masks(ad: DenseDFA, view: NFA) -> tuple[int, ...]:
    """Per-state target masks of the view-word reachability relation.

    ``result[i]`` has bit ``j`` set iff some word of ``L(view)`` drives the
    total DFA ``ad`` from state ``i`` to state ``j`` — exactly the
    ``e``-edges of the paper's ``A'`` for the view ``e``, computed for
    *all* source states in one semi-naive BFS: each product cell
    (view-state, ``ad``-state) carries the bitmask of source states known
    to reach it, and only newly added sources are propagated.
    """
    n = ad.num_states
    if n > DENSE_RELATION_LIMIT:
        return _view_transition_masks_sparse(ad, view)
    dense_view = _dense_view(view)
    symbol_index = {symbol: i for i, symbol in enumerate(ad.symbols)}
    # Per view state: moves with the symbol resolved to ad's symbol index.
    # Symbols outside ad's alphabet cannot occur (ad is total over the
    # union alphabet) but are skipped defensively, matching the naive code.
    view_moves: list[tuple[tuple[int, int], ...]] = []
    for entries in dense_view.moves:
        resolved = tuple(
            (symbol_index[dense_view.symbols[s]], mask)
            for s, mask in entries
            if dense_view.symbols[s] in symbol_index
        )
        view_moves.append(resolved)

    delta = ad.delta
    reach: dict[int, list[int]] = {}
    pending: dict[tuple[int, int], int] = {}
    for v in iter_bits(dense_view.initials_mask):
        row = reach.setdefault(v, [0] * n)
        for d in range(n):
            bit = 1 << d
            row[d] |= bit
            pending[(v, d)] = bit
    while pending:
        next_pending: dict[tuple[int, int], int] = {}
        for (v, d), sources in pending.items():
            ad_row = delta[d]
            for ad_symbol, view_targets in view_moves[v]:
                d_next = ad_row[ad_symbol]
                targets = view_targets
                while targets:
                    low = targets & -targets
                    targets ^= low
                    v_next = low.bit_length() - 1
                    row = reach.get(v_next)
                    if row is None:
                        row = reach[v_next] = [0] * n
                    new = sources & ~row[d_next]
                    if new:
                        row[d_next] |= new
                        cell = (v_next, d_next)
                        bucket = next_pending.get(cell)
                        next_pending[cell] = new if bucket is None else bucket | new
        pending = next_pending

    relation = [0] * n
    for v in iter_bits(dense_view.finals_mask):
        row = reach.get(v)
        if row is None:
            continue
        for d in range(n):
            sources = row[d]
            bit = 1 << d
            while sources:
                low = sources & -sources
                sources ^= low
                relation[low.bit_length() - 1] |= bit
    return tuple(relation)


def _view_transition_masks_sparse(ad: DenseDFA, view: NFA) -> tuple[int, ...]:
    """Per-source fallback for very large DFAs (bounded memory)."""
    relation = [0] * ad.num_states
    dense_view = _dense_view(view)
    symbol_index = {symbol: i for i, symbol in enumerate(ad.symbols)}
    view_moves = []
    for entries in dense_view.moves:
        view_moves.append(
            tuple(
                (symbol_index[dense_view.symbols[s]], mask)
                for s, mask in entries
                if dense_view.symbols[s] in symbol_index
            )
        )
    delta = ad.delta
    for source in range(ad.num_states):
        # BFS over ad states, carrying per-state masks of view states.
        seen: dict[int, int] = {source: dense_view.initials_mask}
        frontier = [(source, dense_view.initials_mask)]
        targets = 0
        if dense_view.initials_mask & dense_view.finals_mask:
            targets |= 1 << source
        while frontier:
            d, view_states = frontier.pop()
            moved: dict[int, int] = {}
            states = view_states
            while states:
                low = states & -states
                states ^= low
                for ad_symbol, view_targets in view_moves[low.bit_length() - 1]:
                    d_next = delta[d][ad_symbol]
                    moved[d_next] = moved.get(d_next, 0) | view_targets
            for d_next, view_next in moved.items():
                new = view_next & ~seen.get(d_next, 0)
                if new:
                    seen[d_next] = seen.get(d_next, 0) | new
                    if new & dense_view.finals_mask:
                        targets |= 1 << d_next
                    frontier.append((d_next, new))
        relation[source] = targets
    return tuple(relation)


# ----------------------------------------------------------------------
# Memoization: dense views and (Ad, view) relations
# ----------------------------------------------------------------------

_VIEW_CACHE_MAXSIZE = 256
_dense_view_cache: OrderedDict[NFA, DenseNFA] = OrderedDict()

_RELATION_CACHE_MAXSIZE = 128
_relation_cache: OrderedDict[tuple, tuple[int, ...]] = OrderedDict()
_relation_hits = 0
_relation_misses = 0


def _dense_view(view: NFA) -> DenseNFA:
    """Dense form of a view automaton, memoized per NFA identity.

    :class:`NFA` instances are immutable and hash by identity, so keying
    on the object is sound (the same pattern as the RPQ engine's
    compilation cache); :class:`~repro.core.alphabet.ViewSet` caches its
    compiled NFAs, so repeated rewritings against one view set hit here.
    """
    cached = _dense_view_cache.get(view)
    if cached is not None:
        _dense_view_cache.move_to_end(view)
        return cached
    dense = dense_from_nfa(view)
    _dense_view_cache[view] = dense
    if len(_dense_view_cache) > _VIEW_CACHE_MAXSIZE:
        _dense_view_cache.popitem(last=False)
    return dense


def cached_view_transition_masks(
    ad: DenseDFA, view: NFA, ad_key: tuple | None = None
) -> tuple[int, ...]:
    """Memoized :func:`view_transition_masks`.

    Keyed on the *structural* fingerprint of ``ad`` plus the view automaton
    identity, so `maximal_rewriting` and `existential_rewriting` of the
    same query against the same view set — and batched rewritings of
    repeated queries — share one relation computation.  Pass ``ad_key``
    (from :meth:`DenseDFA.key`) to amortize the fingerprint across views.

    Above :data:`DENSE_MINIMIZE_LIMIT` states the fingerprint itself is an
    O(n * |Sigma|) tuple (tens of MB on the Section 3.2 reduction
    instances, and the LRU would pin up to 128 of them), so huge automata
    bypass the cache entirely.
    """
    global _relation_hits, _relation_misses
    if ad.num_states > DENSE_MINIMIZE_LIMIT:
        return view_transition_masks(ad, view)
    key = (ad_key if ad_key is not None else ad.key(), view)
    cached = _relation_cache.get(key)
    if cached is not None:
        _relation_hits += 1
        _relation_cache.move_to_end(key)
        return cached
    _relation_misses += 1
    relation = view_transition_masks(ad, view)
    _relation_cache[key] = relation
    if len(_relation_cache) > _RELATION_CACHE_MAXSIZE:
        _relation_cache.popitem(last=False)
    return relation


def relation_cache_info() -> dict[str, int]:
    """Hit/miss/size counters of the relation cache (for tests/ops)."""
    return {
        "hits": _relation_hits,
        "misses": _relation_misses,
        "size": len(_relation_cache),
        "maxsize": _RELATION_CACHE_MAXSIZE,
    }


def relation_cache_clear() -> None:
    global _relation_hits, _relation_misses
    _relation_cache.clear()
    _dense_view_cache.clear()
    _relation_hits = 0
    _relation_misses = 0


# ----------------------------------------------------------------------
# Fused complement + minimize: the paper's step 3 in one sweep
# ----------------------------------------------------------------------


def rewrite_sweep(
    relations: Sequence[Sequence[int]],
    ad: DenseDFA,
    symbols: tuple[Hashable, ...],
    minimize_result: bool = True,
) -> DenseDFA:
    """Complement of the ``A'`` induced by ``relations``, optionally minimal.

    ``relations[k][i]`` is the target mask of the ``symbols[k]``-edges out
    of ``Ad`` state ``i`` (from :func:`view_transition_masks`).  ``A'``
    itself — initial ``{ad.initial}``, finals = ``Ad``'s *non*-finals — is
    never materialized: the subset construction runs directly over the
    masks with complemented acceptance (a subset is accepting iff it
    contains no ``Ad``-non-final state; the dead subset is accepting, which
    is exactly the paper's vacuous case of a view word with no expansions).
    """
    n = ad.num_states
    per_state_moves: list[tuple[tuple[int, int], ...]] = []
    for state in range(n):
        per_state_moves.append(
            tuple(
                (symbol_index, relation[state])
                for symbol_index, relation in enumerate(relations)
                if relation[state]
            )
        )
    nonfinals_mask = ((1 << n) - 1) & ~ad.finals_mask
    delta, finals_mask = _subset_sweep(
        per_state_moves,
        1 << ad.initial,
        len(symbols),
        nonfinals_mask,
        complement=True,
    )
    result = DenseDFA(symbols, delta, 0, finals_mask)
    if minimize_result:
        result = minimize_dense(result)
    return result
