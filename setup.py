"""Legacy setuptools shim.

The offline build environment lacks the ``wheel`` package, which PEP 517
editable installs require; this shim lets ``pip install -e .`` fall back to
``setup.py develop``.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
