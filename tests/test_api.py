"""Public API surface: exports exist, __all__ is accurate, docs present."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.regex",
    "repro.automata",
    "repro.core",
    "repro.rpq",
    "repro.reductions",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    for entry in module.__all__:
        assert hasattr(module, entry), f"{name}.__all__ lists missing {entry}"


@pytest.mark.parametrize("name", PACKAGES)
def test_package_docstrings(name):
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__.strip()) > 40


@pytest.mark.parametrize(
    "name",
    [
        "repro.regex.ast",
        "repro.regex.parser",
        "repro.regex.printer",
        "repro.regex.derivatives",
        "repro.regex.simplify",
        "repro.automata.nfa",
        "repro.automata.dfa",
        "repro.automata.thompson",
        "repro.automata.determinize",
        "repro.automata.minimize",
        "repro.automata.operations",
        "repro.automata.emptiness",
        "repro.automata.containment",
        "repro.automata.state_elim",
        "repro.automata.isomorphism",
        "repro.core.rewriter",
        "repro.core.exactness",
        "repro.core.expansion",
        "repro.core.emptiness",
        "repro.core.maximality",
        "repro.core.partial",
        "repro.core.preferences",
        "repro.core.containing",
        "repro.core.diagnostics",
        "repro.rpq.graphdb",
        "repro.rpq.query",
        "repro.rpq.evaluation",
        "repro.rpq.theory",
        "repro.rpq.formulas",
        "repro.rpq.views",
        "repro.rpq.rewriting",
        "repro.rpq.answering",
        "repro.rpq.partial",
        "repro.rpq.generalized",
        "repro.reductions.tiling",
        "repro.reductions.blocks",
        "repro.reductions.expspace",
        "repro.reductions.counter",
        "repro.reductions.twoexpspace",
        "repro.cli",
    ],
)
def test_module_docstrings(name):
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__.strip()) > 30, name


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_readme_quickstart_runs():
    from repro import ViewSet, maximal_rewriting

    views = ViewSet({"e1": "a", "e2": "a.c*.b", "e3": "c"})
    result = maximal_rewriting("a.(b.a+c)*", views)
    assert str(result.regex()) == "e2*.e1.e3*"
    assert result.is_exact()


def test_public_functions_have_docstrings():
    import inspect

    import repro.core as core

    for entry in core.__all__:
        obj = getattr(core, entry)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            assert obj.__doc__, f"repro.core.{entry} lacks a docstring"
