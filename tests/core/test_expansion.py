"""Expansion automata: exp_Sigma over automata and single words."""

import pytest

from repro.automata.containment import are_equivalent
from repro.automata.thompson import to_nfa
from repro.core import ViewSet
from repro.core.expansion import expansion_nfa, word_expansion_nfa
from repro.regex.parser import parse


@pytest.fixture
def views():
    return ViewSet({"e1": "a", "e2": "a.c*.b", "e3": "c"})


class TestWordExpansion:
    def test_empty_word_expands_to_epsilon(self, views):
        nfa = word_expansion_nfa((), views)
        assert nfa.accepts(())
        assert not nfa.accepts(("a",))

    def test_single_symbol(self, views):
        nfa = word_expansion_nfa(("e2",), views)
        assert nfa.accepts(tuple("ab"))
        assert nfa.accepts(tuple("acccb"))
        assert not nfa.accepts(tuple("a"))

    def test_concatenation(self, views):
        nfa = word_expansion_nfa(("e2", "e1"), views)
        assert nfa.accepts(tuple("aba"))
        assert nfa.accepts(tuple("acba"))
        assert not nfa.accepts(tuple("ab"))

    def test_unknown_symbol_rejected(self, views):
        with pytest.raises(KeyError):
            word_expansion_nfa(("zz",), views)


class TestAutomatonExpansion:
    def test_matches_definition_on_language(self, views):
        # exp(L(e2*.e1.e3*)) == (a.c*.b)*.a.c*
        rewriting = to_nfa(parse("e2*.e1.e3*"))
        expansion = expansion_nfa(rewriting, views)
        expected = to_nfa(parse("(a.c*.b)*.a.c*"))
        assert are_equivalent(expansion, expected)

    def test_empty_rewriting_expands_to_empty(self, views):
        expansion = expansion_nfa(to_nfa(parse("%empty")), views)
        assert not expansion.accepts(())
        assert not expansion.accepts(("a",))

    def test_epsilon_rewriting_expands_to_epsilon(self, views):
        expansion = expansion_nfa(to_nfa(parse("%eps")), views)
        assert expansion.accepts(())
        assert not expansion.accepts(("a",))

    def test_rejects_non_view_symbols(self, views):
        with pytest.raises(ValueError):
            expansion_nfa(to_nfa(parse("zz")), views)

    def test_dfa_input_accepted(self, views):
        from repro.automata.determinize import determinize

        dfa = determinize(to_nfa(parse("e1+e3")))
        expansion = expansion_nfa(dfa, views)
        assert expansion.accepts(("a",))
        assert expansion.accepts(("c",))
        assert not expansion.accepts(("b",))

    def test_view_automaton_copies_are_fresh(self, views):
        # e1.e1 needs two independent copies of the view automaton.
        expansion = expansion_nfa(to_nfa(parse("e1.e1")), views)
        assert expansion.accepts(("a", "a"))
        assert not expansion.accepts(("a",))


class TestViewSetBasics:
    def test_symbols_order_preserved(self, views):
        assert views.symbols == ("e1", "e2", "e3")

    def test_re_returns_expression(self, views):
        from repro.regex.printer import to_string

        assert to_string(views.re("e2")) == "a.c*.b"

    def test_re_fails_for_automaton_views(self):
        from repro.automata.thompson import word_nfa

        views = ViewSet({"v": word_nfa(("a",))})
        with pytest.raises(ValueError):
            views.re("v")
        assert views.nfa("v").accepts(("a",))

    def test_base_alphabet(self, views):
        assert views.base_alphabet() == frozenset({"a", "b", "c"})

    def test_extended_rejects_duplicates(self, views):
        with pytest.raises(ValueError):
            views.extended({"e1": "a"})

    def test_empty_view_set_rejected(self):
        with pytest.raises(ValueError):
            ViewSet({})

    def test_from_list_autonames(self):
        views = ViewSet.from_list(["a", "b"])
        assert views.symbols == ("e1", "e2")
