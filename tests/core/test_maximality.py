"""Theorem 2.1 and the maximality machinery."""

import random

from repro.automata.containment import is_contained
from repro.automata.thompson import to_nfa
from repro.core import ViewSet, maximal_rewriting
from repro.core.expansion import expansion_nfa
from repro.core.maximality import (
    brute_force_rewriting_words,
    is_rewriting,
    word_expansion_contained,
)
from repro.regex.parser import parse
from repro.regex.random_gen import random_regex


class TestTheorem21:
    """Sigma_E-maximal implies Sigma-maximal: any rewriting's expansion is
    contained in the expansion of the computed one."""

    def test_on_figure1(self, fig1_rewriting):
        views = fig1_rewriting.views
        # Candidate alternative rewritings (all sound, some smaller).
        for candidate_text in ("e1", "e2*.e1", "e1.e3*", "e2.e1"):
            candidate = to_nfa(parse(candidate_text))
            assert is_rewriting(candidate, fig1_rewriting.ad, views)
            assert is_contained(
                expansion_nfa(candidate, views),
                expansion_nfa(fig1_rewriting.automaton, views),
            )

    def test_on_random_instances(self):
        rng = random.Random(0xBEEF)
        for _ in range(10):
            e0 = random_regex(rng, "ab", max_size=5)
            views = ViewSet.from_list(
                [random_regex(rng, "ab", max_size=3) for _ in range(2)]
            )
            result = maximal_rewriting(e0, views)
            # every singleton sound word's expansion is inside the result's
            for word in brute_force_rewriting_words(result.ad, views, 2):
                from repro.core.expansion import word_expansion_nfa

                assert is_contained(
                    word_expansion_nfa(word, views), result.expansion()
                ) or result.is_empty() is False


class TestBruteForceOracle:
    def test_matches_figure1(self, fig1_rewriting):
        words = brute_force_rewriting_words(
            fig1_rewriting.ad, fig1_rewriting.views, 3
        )
        expected = [
            w for w in words if fig1_rewriting.accepts(w)
        ]
        assert words == expected  # every oracle word is accepted
        # and the rewriting accepts nothing else at those lengths
        from itertools import product

        for length in range(4):
            for w in product(fig1_rewriting.views.symbols, repeat=length):
                assert fig1_rewriting.accepts(w) == (w in set(words))

    def test_word_expansion_contained(self, fig1_rewriting):
        views = fig1_rewriting.views
        assert word_expansion_contained(("e1",), views, fig1_rewriting.ad)
        assert word_expansion_contained(("e2", "e1"), views, fig1_rewriting.ad)
        assert not word_expansion_contained(("e3",), views, fig1_rewriting.ad)

    def test_empty_word_expansion(self, fig1_rewriting):
        # eps not in L(a.(b.a+c)*)
        assert not word_expansion_contained((), fig1_rewriting.views, fig1_rewriting.ad)
