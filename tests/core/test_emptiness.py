"""The EXPSPACE non-emptiness test (Theorem 3.3 upper bound)."""

import pytest

from repro.core import (
    ViewSet,
    has_nonempty_rewriting,
    maximal_rewriting,
    nonempty_rewriting_witness,
)


class TestAgainstFullConstruction:
    @pytest.mark.parametrize(
        "e0, views",
        [
            ("a.(b.a+c)*", {"e1": "a", "e2": "a.c*.b", "e3": "c"}),
            ("a", {"e1": "b"}),
            ("a*", {"e1": "a.a"}),
            ("a.b", {"e1": "b.a"}),
            ("(a+b)*", {"e1": "a"}),
            ("a.b.c", {"e1": "a.b", "e2": "c"}),
            ("a.b.c", {"e1": "a", "e2": "b.b", "e3": "c"}),
        ],
    )
    def test_agrees_with_maximal_rewriting(self, e0, views):
        view_set = ViewSet(views)
        expected = not maximal_rewriting(e0, view_set).is_empty()
        assert has_nonempty_rewriting(e0, view_set) == expected

    def test_witness_is_accepted_by_the_rewriting(self):
        views = ViewSet({"e1": "a", "e2": "a.c*.b", "e3": "c"})
        witness = nonempty_rewriting_witness("a.(b.a+c)*", views)
        assert witness is not None
        result = maximal_rewriting("a.(b.a+c)*", views)
        assert result.accepts(witness)

    def test_witness_is_shortest(self):
        views = ViewSet({"e1": "a", "e2": "a.c*.b", "e3": "c"})
        witness = nonempty_rewriting_witness("a.(b.a+c)*", views)
        assert witness == ("e1",)

    def test_epsilon_witness_for_nullable_e0(self):
        # The empty Sigma_E word is a rewriting whenever eps in L(E0).
        assert nonempty_rewriting_witness("a*", {"e1": "b"}) == ()

    def test_no_witness_when_empty(self):
        assert nonempty_rewriting_witness("a", {"e1": "b"}) is None

    def test_empty_view_language_short_circuit(self):
        # A word over an empty-language view expands to nothing: vacuously
        # a rewriting, so non-emptiness must hold even though L(e1) misses.
        assert has_nonempty_rewriting("a", {"e1": "%empty"})


class TestLazyEquivalence:
    """The lazy search must agree with explicit complementation on the
    Theorem 3.3 instances too (covered in tests/reductions), and on a
    couple of adversarial shapes here."""

    def test_rewriting_requires_multiple_views(self):
        views = {"e1": "a.b", "e2": "b.a"}
        # (ab)(ba)(ab)... e0 = a.(b.a)*.b accepts abab...ab
        assert has_nonempty_rewriting("a.(b.a)*.b", views)
        witness = nonempty_rewriting_witness("a.(b.a)*.b", views)
        assert witness is not None

    def test_subtle_emptiness(self):
        # Views can only build even-length a-blocks; E0 demands odd.
        assert not has_nonempty_rewriting("a.(a.a)*", {"e1": "a.a"})
