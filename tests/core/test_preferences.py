"""Preference criteria 1-4 over candidate rewritings (Section 4.3)."""

from repro.core import ViewSet, maximal_rewriting
from repro.core.preferences import (
    RewritingCandidate,
    best_candidates,
    compare_candidates,
    sort_candidates,
)


def candidate(e0, views, elementary=(), nonelementary=()):
    return RewritingCandidate(
        result=maximal_rewriting(e0, ViewSet(views)),
        added_elementary=frozenset(elementary),
        added_nonelementary=frozenset(nonelementary),
    )


class TestCriterion1:
    def test_larger_expansion_wins(self):
        # With view c, the rewriting covers strictly more of E0.
        bigger = candidate("a.(b+c)", {"q1": "a", "q2": "b", "q3": "c"}, elementary={"c"})
        smaller = candidate("a.(b+c)", {"q1": "a", "q2": "b"})
        assert compare_candidates(bigger, smaller) < 0
        assert compare_candidates(smaller, bigger) > 0

    def test_exact_beats_inexact_despite_added_views(self):
        # Criterion 1 precedes the added-view counts.
        exact = candidate(
            "a.(b+c)", {"q1": "a", "q2": "b", "q3": "c"},
            elementary={"c"},
        )
        inexact = candidate("a.(b+c)", {"q1": "a", "q2": "b"})
        assert compare_candidates(exact, inexact) < 0


class TestCriterion2And3:
    def test_fewer_added_atomic_views_wins(self):
        # Same language, different bookkeeping of added views.
        left = candidate("a.b", {"q1": "a", "q2": "b"})
        right = candidate("a.b", {"q1": "a", "q2": "b"}, elementary={"b"})
        assert compare_candidates(left, right) < 0

    def test_fewer_nonelementary_breaks_ties(self):
        left = candidate("a.b", {"q1": "a", "q2": "b"}, elementary={"x"})
        right = candidate("a.b", {"q1": "a", "q2": "b"}, nonelementary={"P"})
        assert compare_candidates(left, right) < 0


class TestCriterion4:
    def test_fewer_used_views_wins(self):
        # Same expansion language a*: one rewriting uses two views, the
        # other a single view.
        lean = candidate("a*", {"q1": "a"})
        redundant = candidate("a*", {"q1": "a", "q2": "a.a"})
        assert lean.used_views() < redundant.used_views()
        assert compare_candidates(lean, redundant) < 0


class TestAggregation:
    def test_best_candidates_singleton(self):
        good = candidate("a.(b+c)", {"q1": "a", "q2": "b", "q3": "c"}, elementary={"c"})
        bad = candidate("a.(b+c)", {"q1": "a", "q2": "b"})
        assert best_candidates([good, bad]) == [good]

    def test_sort_puts_best_first(self):
        good = candidate("a.(b+c)", {"q1": "a", "q2": "b", "q3": "c"}, elementary={"c"})
        bad = candidate("a.(b+c)", {"q1": "a", "q2": "b"})
        ordered = sort_candidates([bad, good])
        assert ordered[0] is good

    def test_incomparable_candidates_both_kept(self):
        # Languages overlap without containment: no preference.
        left = candidate("a+b", {"q1": "a"})
        right = candidate("a+b", {"q2": "b"})
        assert compare_candidates(left, right) == 0
        kept = best_candidates([left, right])
        assert set(map(id, kept)) == {id(left), id(right)}

    def test_empty_input(self):
        assert best_candidates([]) == []
