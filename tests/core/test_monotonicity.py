"""Monotonicity and robustness properties of the rewriting construction.

These are consequences of Theorem 2.2 the paper uses implicitly: adding
views can only grow the (expansion of the) maximal rewriting, and the
rewriting is invariant under replacing ``E0`` or views by equivalent
expressions.
"""

import random

from hypothesis import given, settings

from repro.automata.containment import is_contained
from repro.core import ViewSet, maximal_rewriting
from repro.regex.ast import star, union
from repro.regex.random_gen import random_regex

from ..conftest import regex_strategy


class TestViewMonotonicity:
    def test_adding_a_view_grows_the_expansion(self):
        rng = random.Random(5)
        for _ in range(8):
            e0 = random_regex(rng, "ab", max_size=5)
            base = ViewSet({"e1": random_regex(rng, "ab", max_size=3)})
            extended = base.extended({"e2": random_regex(rng, "ab", max_size=3)})
            small = maximal_rewriting(e0, base)
            large = maximal_rewriting(e0, extended)
            assert is_contained(small.expansion(), large.expansion()), e0

    def test_adding_view_preserves_old_words(self, fig1_rewriting):
        views = fig1_rewriting.views.extended({"e4": "b"})
        larger = maximal_rewriting("a.(b.a+c)*", views)
        for word in fig1_rewriting.words(max_length=3):
            assert larger.accepts(word)


class TestEquivalenceInvariance:
    @given(regex_strategy(alphabet=("a", "b"), max_leaves=4))
    @settings(max_examples=20, deadline=None)
    def test_invariant_under_e0_syntax(self, e0):
        # E0 and E0+E0 denote the same language.
        views = ViewSet({"e1": "a", "e2": "b.a"})
        left = maximal_rewriting(e0, views)
        right = maximal_rewriting(union(e0, e0), views)
        from itertools import product

        for length in range(4):
            for word in product(views.symbols, repeat=length):
                assert left.accepts(word) == right.accepts(word)

    def test_invariant_under_view_syntax(self):
        # a* and (a*)* are the same view language.
        from repro.regex.ast import sym

        left = maximal_rewriting("a*", ViewSet({"e": star(sym("a"))}))
        right = maximal_rewriting("a*", ViewSet({"e": star(star(sym("a")))}))
        for word in [(), ("e",), ("e", "e")]:
            assert left.accepts(word) == right.accepts(word)


class TestQueryMonotonicity:
    def test_larger_query_grows_rewriting(self):
        # L(E0) subseteq L(E0'): every rewriting word remains valid.
        views = ViewSet({"e1": "a", "e2": "b"})
        small = maximal_rewriting("a.b", views)
        large = maximal_rewriting("a.b+a.b.a", views)
        for word in small.words(max_length=3):
            assert large.accepts(word)

    def test_universal_query_accepts_everything(self):
        views = ViewSet({"e1": "a.b", "e2": "b*"})
        result = maximal_rewriting("(a+b)*", views)
        from itertools import product

        for length in range(4):
            for word in product(views.symbols, repeat=length):
                assert result.accepts(word)
        assert result.is_exact() is False  # single 'a' is not expressible

    def test_empty_query_rejects_everything_but_empty_views(self):
        views = ViewSet({"e1": "a"})
        result = maximal_rewriting("%empty", views)
        assert not result.accepts(())
        assert not result.accepts(("e1",))
        assert result.is_empty()
