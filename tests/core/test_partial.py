"""Partial rewritings for regular expressions (Section 4.3, Example 4.1)."""

import pytest

from repro.core import ViewSet, find_partial_rewritings
from repro.core.partial import elementary_symbol_name
from repro.regex.printer import to_string


class TestExample41:
    """Q0 = a.(b+c), Q = {a, b}: adding the elementary view for c yields
    the exact rewriting q1.(q2+q3)."""

    def test_minimal_addition_is_c(self):
        solutions = find_partial_rewritings(
            "a.(b+c)", ViewSet({"q1": "a", "q2": "b"})
        )
        assert len(solutions) == 1
        assert solutions[0].added == ("c",)

    def test_resulting_rewriting_shape(self):
        solutions = find_partial_rewritings(
            "a.(b+c)", ViewSet({"q1": "a", "q2": "b"})
        )
        result = solutions[0].result
        assert result.is_exact()
        rendered = to_string(result.regex())
        name = elementary_symbol_name("c")
        assert rendered in (
            f"q1.(q2+'{name}')",
            f"q1.('{name}'+q2)",
        )


class TestSearch:
    def test_already_exact_returns_empty_addition(self):
        solutions = find_partial_rewritings("a.b", ViewSet({"q1": "a", "q2": "b"}))
        assert solutions[0].added == ()
        assert solutions[0].num_added == 0

    def test_all_minimal_solutions_found(self):
        # Either adding b or adding c fixes a+b+c wrt {a} partially?  No:
        # both are needed; the unique minimal set has size 2.
        solutions = find_partial_rewritings(
            "a+b+c", ViewSet({"q1": "a"}), find_all_minimal=True
        )
        assert len(solutions) == 1
        assert set(solutions[0].added) == {"b", "c"}

    def test_multiple_minimal_solutions(self):
        # a.(b+c) wrt {a, b, c}: exact already; wrt {a} needs {b, c}.
        solutions = find_partial_rewritings(
            "a.b+a.c", ViewSet({"q1": "a.b"}), find_all_minimal=True
        )
        assert solutions
        assert all(sol.result.is_exact() for sol in solutions)

    def test_max_added_bound_respected(self):
        solutions = find_partial_rewritings(
            "a+b+c", ViewSet({"q1": "a"}), max_added=1
        )
        assert solutions == []

    def test_candidates_restriction(self):
        solutions = find_partial_rewritings(
            "a.(b+c)", ViewSet({"q1": "a", "q2": "b"}), candidates=["b"]
        )
        assert solutions == []  # c is not offered, no exact extension exists

    def test_added_views_are_elementary(self):
        solutions = find_partial_rewritings(
            "a.(b+c)", ViewSet({"q1": "a", "q2": "b"})
        )
        extended_views = solutions[0].result.views
        name = elementary_symbol_name("c")
        assert name in extended_views
        assert to_string(extended_views.re(name)) == "c"

    def test_first_solution_mode_stops_early(self):
        all_solutions = find_partial_rewritings(
            "a.b+a.c+b.c", ViewSet({"q1": "a"}), find_all_minimal=True
        )
        first_only = find_partial_rewritings(
            "a.b+a.c+b.c", ViewSet({"q1": "a"}), find_all_minimal=False
        )
        assert len(first_only) == 1
        assert first_only[0].added in {sol.added for sol in all_solutions}
        assert all(
            len(sol.added) == len(first_only[0].added) for sol in all_solutions
        )
