"""Diagnostics as an independent certification of rewriting verdicts."""

from itertools import product

import pytest

from repro.core import ViewSet, maximal_rewriting
from repro.core.diagnostics import explain, explain_rejection, sample_expansion


class TestWitnesses:
    def test_rejection_witness_escapes_e0(self, fig1_rewriting):
        witness = explain_rejection(fig1_rewriting, ("e3",))
        assert witness == ("c",)
        assert not fig1_rewriting.ad.accepts(witness)

    def test_no_witness_for_accepted_words(self, fig1_rewriting):
        assert explain_rejection(fig1_rewriting, ("e2", "e1")) is None

    def test_sample_expansion_inside_e0(self, fig1_rewriting):
        sample = sample_expansion(fig1_rewriting, ("e2", "e1"))
        assert sample is not None
        assert fig1_rewriting.ad.accepts(sample)

    def test_sample_none_for_useless_word(self):
        result = maximal_rewriting("a", ViewSet({"e1": "b"}))
        assert sample_expansion(result, ("e1",)) is None

    def test_witnesses_certify_every_verdict(self, fig1_rewriting):
        """Independent certification: for every short word, the witness
        agrees with the automaton's verdict."""
        for length in range(4):
            for word in product(fig1_rewriting.views.symbols, repeat=length):
                witness = explain_rejection(fig1_rewriting, word)
                assert (witness is None) == fig1_rewriting.accepts(word), word
                if witness is not None:
                    # the witness must be a genuine expansion of the word
                    from repro.core.expansion import word_expansion_nfa

                    expansion = word_expansion_nfa(word, fig1_rewriting.views)
                    assert expansion.accepts(witness)

    def test_empty_word_diagnostics(self, fig1_rewriting):
        # eps expands to eps, which is not in L(a.(b.a+c)*)
        witness = explain_rejection(fig1_rewriting, ())
        assert witness == ()


class TestRendering:
    def test_accepted_message(self, fig1_rewriting):
        message = explain(fig1_rewriting, ("e1",))
        assert "IS in the rewriting" in message
        assert "a" in message

    def test_rejected_message(self, fig1_rewriting):
        message = explain(fig1_rewriting, ("e3",))
        assert "NOT in the rewriting" in message
        assert "c" in message

    def test_empty_word_message(self, fig1_rewriting):
        message = explain(fig1_rewriting, ())
        assert "(empty word)" in message

    def test_vacuous_containment_message(self):
        result = maximal_rewriting("a", ViewSet({"e1": "a", "e2": "%empty"}))
        message = explain(result, ("e2",))
        assert "IS in the rewriting" in message
        assert "vacuously" in message
