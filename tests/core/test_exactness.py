"""Theorem 2.3 / Corollary 2.1: exactness via L(Ad) subseteq L(B).

Both the on-the-fly (paper's 2EXPSPACE) and the explicit implementations
must agree, and exactness must coincide with expansion-equality checked
independently.
"""

import pytest

from repro.automata.containment import are_equivalent
from repro.core import ViewSet, maximal_rewriting
from repro.core.exactness import METHODS, exactness_counterexample, is_exact
from repro.core.expansion import expansion_nfa


EXACT_INSTANCES = [
    ("a.(b.a+c)*", {"e1": "a", "e2": "a.c*.b", "e3": "c"}),
    ("a*", {"e1": "a"}),
    ("a.b", {"e1": "a.b"}),
    ("(a+b)*", {"e1": "a", "e2": "b"}),
    ("a.b+a.c", {"e1": "a.b", "e2": "a.c"}),
    ("a.a*", {"e1": "a", "e2": "a.a"}),
]

INEXACT_INSTANCES = [
    ("a.(b.a+c)*", {"e1": "a", "e2": "a.c*.b"}),
    ("a+b", {"e1": "a"}),
    ("a.(b+c)", {"e1": "a", "e2": "b"}),
    ("(a.a)*", {"e1": "a.a.a"}),
    ("a*", {"e1": "a.a"}),  # only even lengths reachable
]


class TestExactInstances:
    @pytest.mark.parametrize("e0, views", EXACT_INSTANCES)
    def test_exact(self, e0, views):
        result = maximal_rewriting(e0, ViewSet(views))
        assert result.is_exact()

    @pytest.mark.parametrize("e0, views", EXACT_INSTANCES)
    def test_expansion_equals_e0_when_exact(self, e0, views):
        result = maximal_rewriting(e0, ViewSet(views))
        assert are_equivalent(result.expansion(), result.ad)

    @pytest.mark.parametrize("e0, views", EXACT_INSTANCES)
    def test_no_counterexample(self, e0, views):
        result = maximal_rewriting(e0, ViewSet(views))
        assert exactness_counterexample(result) is None


class TestInexactInstances:
    @pytest.mark.parametrize("e0, views", INEXACT_INSTANCES)
    def test_not_exact(self, e0, views):
        result = maximal_rewriting(e0, ViewSet(views))
        assert not result.is_exact()

    @pytest.mark.parametrize("e0, views", INEXACT_INSTANCES)
    def test_counterexample_witnesses_gap(self, e0, views):
        result = maximal_rewriting(e0, ViewSet(views))
        witness = exactness_counterexample(result)
        assert witness is not None
        assert result.ad.accepts(witness)  # in L(E0)
        assert not result.expansion().accepts(witness)  # not expressible


class TestMethodsAgree:
    @pytest.mark.parametrize(
        "e0, views", EXACT_INSTANCES + INEXACT_INSTANCES
    )
    def test_on_the_fly_equals_explicit(self, e0, views):
        result = maximal_rewriting(e0, ViewSet(views))
        verdicts = {is_exact(result, method=m) for m in METHODS}
        assert len(verdicts) == 1

    def test_unknown_method_rejected(self):
        result = maximal_rewriting("a", {"e1": "a"})
        with pytest.raises(ValueError):
            is_exact(result, method="magic")


class TestExpansionAutomaton:
    def test_expansion_contains_only_e0_words(self, fig1_rewriting):
        from repro.automata.containment import is_contained

        # soundness half of Theorem 2.2, at the automaton level
        assert is_contained(fig1_rewriting.expansion(), fig1_rewriting.ad)

    def test_expansion_rejects_view_alphabet(self, fig1_rewriting):
        expansion = fig1_rewriting.expansion()
        assert not expansion.accepts(("e1",))

    def test_expansion_accepts_substituted_words(self, fig1_rewriting):
        expansion = fig1_rewriting.expansion()
        # e2.e1 -> (a.c*.b).(a)
        assert expansion.accepts(tuple("acba"))
        assert expansion.accepts(tuple("aba"))
        assert expansion.accepts(tuple("a"))
