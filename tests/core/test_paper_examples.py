"""The paper's worked examples, reproduced exactly.

* Example 2.1 — Sigma- vs Sigma_E-maximality of rewritings of ``a*``;
* Example 2.2 / Figure 1 — the rewriting of ``a.(b.a+c)*`` wrt
  ``{a, a.c*.b, c}``;
* Example 2.3 — exactness of that rewriting, and non-exactness without
  the view ``c``.
"""

from repro import ViewSet, maximal_rewriting
from repro.automata.thompson import to_nfa
from repro.core.maximality import expansions_equivalent, is_rewriting
from repro.regex.parser import parse
from repro.regex.printer import to_string


class TestExample21:
    """E0 = a*, E = {a*}: both e* and e are Sigma-maximal rewritings, but
    only e* is Sigma_E-maximal."""

    def setup_method(self):
        self.views = ViewSet({"e": "a*"})
        self.result = maximal_rewriting("a*", self.views)

    def test_computed_rewriting_is_e_star(self):
        assert to_string(self.result.regex()) == "e*"

    def test_single_e_is_also_a_rewriting(self):
        assert is_rewriting(to_nfa(parse("e")), self.result.ad, self.views)

    def test_e_and_e_star_have_equal_expansions(self):
        # Both are Sigma-maximal: their expansions define the same language.
        assert expansions_equivalent(
            to_nfa(parse("e")), to_nfa(parse("e*")), self.views
        )

    def test_e_is_not_sigma_e_maximal(self):
        # L(e) is strictly contained in L(e*): the Sigma_E languages differ.
        r1 = to_nfa(parse("e*"))
        assert r1.accepts(("e", "e"))
        assert not to_nfa(parse("e")).accepts(("e", "e"))

    def test_rewriting_is_exact(self):
        assert self.result.is_exact()


class TestExample22Figure1:
    """E0 = a.(b.a+c)*, E = {a, a.c*.b, c} -> R = e2*.e1.e3*."""

    def test_rewriting_regex(self, fig1_rewriting):
        assert to_string(fig1_rewriting.regex()) == "e2*.e1.e3*"

    def test_membership_examples(self, fig1_rewriting):
        assert fig1_rewriting.accepts(("e1",))
        assert fig1_rewriting.accepts(("e2", "e1"))
        assert fig1_rewriting.accepts(("e2", "e2", "e1", "e3", "e3"))
        assert not fig1_rewriting.accepts(())
        assert not fig1_rewriting.accepts(("e1", "e2"))
        assert not fig1_rewriting.accepts(("e3",))

    def test_expansion_soundness_examples(self, fig1_rewriting):
        # e2.e1 expands to a.c^k.b.a subset of L(E0).
        e0 = to_nfa(parse("a.(b.a+c)*"))
        assert e0.accepts(tuple("acb") + ("a",))
        assert e0.accepts(tuple("accb") + ("a",))

    def test_ad_shape_matches_figure(self, fig1_rewriting):
        # Figure 1's Ad has 3 states {s0, s1, s2}; in the minimal *total*
        # DFA s0 and s2 merge (equal residual languages) and a sink is
        # added, so our Ad also has exactly 3 states.
        assert fig1_rewriting.ad.num_states == 3
        assert fig1_rewriting.ad.is_total()

    def test_a_prime_covers_all_states(self, fig1_rewriting):
        a_prime = fig1_rewriting.a_prime
        assert a_prime.states == fig1_rewriting.ad.states
        # A' finals are Ad's non-finals.
        assert a_prime.finals == fig1_rewriting.ad.states - fig1_rewriting.ad.finals


class TestExample23:
    def test_full_view_set_is_exact(self, fig1_rewriting):
        assert fig1_rewriting.is_exact()
        assert fig1_rewriting.is_exact(method="explicit")

    def test_without_c_rewriting_is_e2star_e1(self):
        views = ViewSet({"e1": "a", "e2": "a.c*.b"})
        result = maximal_rewriting("a.(b.a+c)*", views)
        assert to_string(result.regex()) == "e2*.e1"
        assert not result.is_exact()

    def test_without_c_counterexample_uses_c(self):
        from repro.core.exactness import exactness_counterexample

        views = ViewSet({"e1": "a", "e2": "a.c*.b"})
        result = maximal_rewriting("a.(b.a+c)*", views)
        witness = exactness_counterexample(result)
        assert witness is not None
        assert "c" in witness  # the missing view's symbol must appear
