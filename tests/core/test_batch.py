"""Tests for the batch rewriting front end (`repro.core.batch`)."""

import pytest

from repro.automata import are_isomorphic
from repro.automata.compiled import relation_cache_clear, relation_cache_info
from repro.core import (
    BatchRewriter,
    ViewSet,
    maximal_rewriting,
    rewrite_many,
)

FIG1_VIEWS = {"e1": "a", "e2": "a.c*.b", "e3": "c"}
QUERIES = ["a.(b.a+c)*", "(a.c*.b)*", "a", "a.c", "c*"]


class TestRewriteMany:
    def test_matches_individual_rewritings(self):
        views = ViewSet(FIG1_VIEWS)
        batched = rewrite_many(QUERIES, views)
        assert len(batched) == len(QUERIES)
        for query, result in zip(QUERIES, batched):
            solo = maximal_rewriting(query, views)
            assert are_isomorphic(result.automaton, solo.automaton)

    def test_duplicate_queries_share_one_result(self):
        results = rewrite_many(["a.b", "a.b", "a.b"], {"e1": "a", "e2": "b"})
        assert results[0] is results[1] is results[2]

    def test_accepts_plain_view_specs(self):
        results = rewrite_many(["a.b"], ["a", "b"])
        assert results[0].accepts(("e1", "e2"))

    def test_options_forwarded(self):
        unminimized = rewrite_many(
            ["(a+b)*.a"], FIG1_VIEWS, minimize_result=False
        )[0]
        minimized = rewrite_many(["(a+b)*.a"], FIG1_VIEWS)[0]
        assert minimized.automaton.num_states <= unminimized.automaton.num_states


class TestBatchRewriter:
    def test_memoizes_per_query(self):
        rewriter = BatchRewriter(FIG1_VIEWS)
        first = rewriter.rewrite("a.c")
        second = rewriter.rewrite("a.c")
        assert first is second

    def test_existential_shares_relations_with_maximal(self):
        relation_cache_clear()
        rewriter = BatchRewriter(FIG1_VIEWS)
        rewriter.rewrite("a.(b.a+c)*")
        before = relation_cache_info()
        rewriter.rewrite_existential("a.(b.a+c)*")
        after = relation_cache_info()
        # Same Ad, same views: the existential pass recomputes nothing.
        assert after["misses"] == before["misses"]
        assert after["hits"] >= before["hits"] + len(ViewSet(FIG1_VIEWS))

    def test_existential_memoized(self):
        rewriter = BatchRewriter(FIG1_VIEWS)
        assert rewriter.rewrite_existential("a") is rewriter.rewrite_existential("a")

    def test_repeated_queries_hit_relation_cache(self):
        relation_cache_clear()
        rewriter = BatchRewriter(FIG1_VIEWS)
        rewriter.rewrite("a.c")
        first = relation_cache_info()["misses"]
        # A structurally identical query under a different name: the memo
        # key differs but Ad is structurally equal -> relations are shared.
        rewriter.rewrite("a.(c)")
        assert relation_cache_info()["misses"] == first

    def test_unhashable_specs_fall_back_to_identity(self):
        from repro.automata import to_nfa
        from repro.regex.parser import parse

        nfa = to_nfa(parse("a.b"))  # NFAs hash by identity; still fine
        rewriter = BatchRewriter({"e1": "a", "e2": "b"})
        assert rewriter.rewrite(nfa).accepts(("e1", "e2"))

    def test_rewrite_all_preserves_order(self):
        rewriter = BatchRewriter(FIG1_VIEWS)
        results = rewriter.rewrite_all(["a", "c"])
        assert results[0].accepts(("e1",)) and not results[0].accepts(("e3",))
        assert results[1].accepts(("e3",)) and not results[1].accepts(("e1",))


class TestValidation:
    def test_empty_view_set_rejected(self):
        with pytest.raises(ValueError):
            BatchRewriter({})
