"""Existential / containing rewritings (the paper's Section 5 direction)."""

from itertools import product

import pytest

from repro.core import ViewSet, maximal_rewriting
from repro.core.containing import existential_rewriting, naive_existential_rewriting
from repro.core.maximality import word_expansion_contained
from repro.core.expansion import word_expansion_nfa
from repro.automata.containment import is_contained
from repro.automata.emptiness import is_empty
from repro.automata.operations import intersect_nfa
from repro.automata.thompson import to_nfa
from repro.regex.parser import parse


FIG1_VIEWS = {"e1": "a", "e2": "a.c*.b", "e3": "c"}
E0 = "a.(b.a+c)*"


class TestSemantics:
    """R-exists accepts a word iff some expansion meets L(E0)."""

    @pytest.mark.parametrize(
        "e0, views",
        [
            (E0, FIG1_VIEWS),
            ("a+b", {"e1": "a", "e2": "c"}),
            ("(a.b)*", {"e1": "a.b", "e2": "b.a"}),
            ("a*", {"e1": "a.a", "e2": "b"}),
        ],
    )
    def test_word_level_definition(self, e0, views):
        view_set = ViewSet(views)
        result = existential_rewriting(e0, view_set)
        e0_nfa = to_nfa(parse(e0))
        for length in range(4):
            for word in product(view_set.symbols, repeat=length):
                some_expansion_hits = not is_empty(
                    intersect_nfa(word_expansion_nfa(word, view_set), e0_nfa)
                )
                assert result.accepts(word) == some_expansion_hits, word

    def test_contains_the_maximal_contained_rewriting(self):
        views = ViewSet(FIG1_VIEWS)
        contained = maximal_rewriting(E0, views)
        containing = existential_rewriting(E0, views)
        # every word of the contained rewriting has all (hence some)
        # expansions in L(E0) — unless its expansion is empty
        for word in contained.words(max_length=3):
            assert containing.accepts(word) or not word_expansion_contained(
                word, views, contained.ad
            )


class TestCoverage:
    def test_covering_views(self):
        result = existential_rewriting(E0, ViewSet(FIG1_VIEWS))
        assert result.covers()
        assert result.coverage_counterexample() is None

    def test_non_covering_views(self):
        # 'd' words of E0 can never be produced by the views.
        result = existential_rewriting("a+d", ViewSet({"e1": "a"}))
        assert not result.covers()
        assert result.coverage_counterexample() == ("d",)

    def test_exact_maximal_rewriting_implies_coverage(self):
        views = ViewSet({"e1": "a", "e2": "b"})
        contained = maximal_rewriting("(a+b)*", views)
        assert contained.is_exact()
        containing = existential_rewriting("(a+b)*", views)
        assert containing.covers()

    def test_coverage_without_exact_contained_rewriting(self):
        # Views overlap E0 only partially per word, yet cover it jointly:
        # E0 = a.b, views can only produce a.b via e1.e2 with slack.
        views = ViewSet({"e1": "a+a.b", "e2": "b+%eps"})
        contained = maximal_rewriting("a.b", views)
        assert contained.is_empty()  # e1.e2 can also produce a.b.b etc.
        containing = existential_rewriting("a.b", views)
        assert containing.covers()
        assert containing.accepts(("e1", "e2"))

    def test_expansion_superset_when_covering(self):
        views = ViewSet(FIG1_VIEWS)
        result = existential_rewriting(E0, views)
        assert is_contained(result.ad, result.expansion())


class TestCoverageFailures:
    """View sets that *cannot* cover the query — the unhappy paths.

    ``covers()`` false means no containing rewriting exists at all; the
    counterexample must be a genuine query word outside every possible
    expansion, which these tests verify semantically rather than just
    structurally.
    """

    @pytest.mark.parametrize(
        "e0, views",
        [
            ("a+d", {"e1": "a"}),                    # d unreachable
            ("(a+b)*", {"e1": "a"}),                 # b unreachable
            ("a.a.a", {"e1": "a.a"}),                # odd lengths unreachable
            ("a.b", {"e1": "b.a"}),                  # wrong order
            ("a", {"e1": "a.a"}),                    # too long
            ("a*", {"e1": "b"}),                     # disjoint alphabets
        ],
    )
    def test_non_covering_view_sets(self, e0, views):
        result = existential_rewriting(e0, ViewSet(views))
        assert not result.covers()
        witness = result.coverage_counterexample()
        assert witness is not None
        # The witness is a word of L(E0)...
        assert result.ad.accepts(witness)
        # ...that no combination of view expansions can produce.
        assert not result.expansion().accepts(witness)

    def test_counterexample_none_exactly_when_covering(self):
        covering = existential_rewriting(E0, ViewSet(FIG1_VIEWS))
        assert covering.covers()
        assert covering.coverage_counterexample() is None
        failing = existential_rewriting("a.a.a", ViewSet({"e1": "a.a"}))
        assert not failing.covers()
        assert failing.coverage_counterexample() is not None

    def test_odd_length_counterexample_word(self):
        result = existential_rewriting("a.a.a", ViewSet({"e1": "a.a"}))
        witness = result.coverage_counterexample()
        assert witness == ("a", "a", "a")

    def test_nonempty_rewriting_can_still_fail_to_cover(self):
        # e1 contributes answers (covers a.a) yet a.a.a stays unreachable:
        # usefulness of the rewriting does not imply coverage.
        result = existential_rewriting("a.a+a.a.a", ViewSet({"e1": "a.a"}))
        assert not result.is_empty()
        assert result.accepts(("e1",))
        assert not result.covers()
        assert result.coverage_counterexample() == ("a", "a", "a")

    def test_empty_query_is_vacuously_covered(self):
        # L(E0) empty: nothing to cover, even by useless views.
        result = existential_rewriting("%empty", ViewSet({"e1": "a"}))
        assert result.is_empty()
        assert result.covers()
        assert result.coverage_counterexample() is None

    @pytest.mark.parametrize(
        "e0, views",
        [
            ("a+d", {"e1": "a"}),
            ("a.a.a", {"e1": "a.a"}),
            ("a.a+a.a.a", {"e1": "a.a"}),
        ],
    )
    def test_naive_oracle_agrees_on_coverage_failures(self, e0, views):
        compiled = existential_rewriting(e0, ViewSet(views))
        naive = naive_existential_rewriting(e0, ViewSet(views))
        assert compiled.covers() == naive.covers()
        assert compiled.coverage_counterexample() == naive.coverage_counterexample()


class TestMachinery:
    def test_single_exponential_no_complement(self):
        # The automaton lives on Ad's states (no subset blowup).
        views = ViewSet(FIG1_VIEWS)
        result = existential_rewriting(E0, views)
        assert result.automaton.num_states <= result.ad.num_states

    def test_regex_rendering(self):
        result = existential_rewriting("a.b", ViewSet({"e1": "a", "e2": "b"}))
        rendered = str(result.regex())
        assert "e1" in rendered and "e2" in rendered

    def test_empty_when_views_disjoint_from_e0(self):
        result = existential_rewriting("a", ViewSet({"e1": "b"}))
        assert result.is_empty()
        assert not result.covers()

    def test_shortest_word(self):
        result = existential_rewriting(E0, ViewSet(FIG1_VIEWS))
        assert result.shortest_word() == ("e1",)
