"""Differential property tests: compiled rewriting pipeline vs naive oracle.

Mirrors ``tests/rpq/test_engine_differential.py``: the naive pipeline is
the literal dict-of-set transcription of the paper's construction, the
compiled pipeline is the dense bitmask kernel; on random queries x random
view sets both must produce language-equivalent automata.  For the
maximal rewriting both outputs are minimized total DFAs over Sigma_E, so
language equivalence is checked as *isomorphism* (Myhill–Nerode
uniqueness); the existential rewriting returns NFAs, which are minimized
first.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import are_isomorphic, determinize, minimize
from repro.core import (
    ViewSet,
    existential_rewriting,
    maximal_rewriting,
    naive_existential_rewriting,
    naive_maximal_rewriting,
)

from ..conftest import regex_strategy


@st.composite
def view_sets(draw, max_views: int = 3):
    """Random view sets: 1..max_views random regex languages over {a,b,c}."""
    count = draw(st.integers(min_value=1, max_value=max_views))
    specs = [draw(regex_strategy(max_leaves=4)) for _ in range(count)]
    return ViewSet.from_list(specs)


def _canonical(nfa):
    return minimize(determinize(nfa), trim=False)


@settings(max_examples=50, deadline=None)
@given(e0=regex_strategy(max_leaves=5), views=view_sets())
def test_maximal_rewriting_matches_naive(e0, views):
    compiled = maximal_rewriting(e0, views)
    naive = naive_maximal_rewriting(e0, views)
    assert are_isomorphic(compiled.automaton, naive.automaton)


@settings(max_examples=25, deadline=None)
@given(e0=regex_strategy(max_leaves=5), views=view_sets())
def test_unminimized_results_still_equivalent(e0, views):
    compiled = maximal_rewriting(e0, views, minimize_ad=False, minimize_result=False)
    naive = naive_maximal_rewriting(e0, views, minimize_ad=False, minimize_result=False)
    assert are_isomorphic(
        _canonical(compiled.automaton.to_nfa()), _canonical(naive.automaton.to_nfa())
    )


@settings(max_examples=50, deadline=None)
@given(e0=regex_strategy(max_leaves=5), views=view_sets())
def test_existential_rewriting_matches_naive(e0, views):
    compiled = existential_rewriting(e0, views)
    naive = naive_existential_rewriting(e0, views)
    assert are_isomorphic(
        _canonical(compiled.automaton), _canonical(naive.automaton)
    )


@settings(max_examples=30, deadline=None)
@given(e0=regex_strategy(max_leaves=4), views=view_sets(max_views=2))
def test_a_prime_artifacts_language_equivalent(e0, views):
    """The A' attached to the result must match the oracle's, not just R."""
    compiled = maximal_rewriting(e0, views)
    naive = naive_maximal_rewriting(e0, views)
    assert are_isomorphic(
        _canonical(compiled.a_prime), _canonical(naive.a_prime)
    )


@settings(max_examples=30, deadline=None)
@given(e0=regex_strategy(max_leaves=4), views=view_sets(max_views=2))
def test_word_level_agreement(e0, views):
    """Spot-check actual Sigma_E words, independent of automata comparisons."""
    compiled = maximal_rewriting(e0, views)
    naive = naive_maximal_rewriting(e0, views)
    from itertools import product

    for length in range(3):
        for word in product(views.symbols, repeat=length):
            assert compiled.accepts(word) == naive.accepts(word), word
