"""Theorem 2.2: the constructed rewriting is sound and Sigma_E-maximal.

The key oracle is :func:`verify_bounded_maximality`: for every Sigma_E word
up to a length bound, the rewriting must accept the word *iff* the word's
expansion is contained in ``L(E0)`` — this is soundness and maximality in
one check, validated over random and structured instances.
"""

import random

import pytest
from hypothesis import given, settings

from repro.core import ViewSet, maximal_rewriting
from repro.core.maximality import verify_bounded_maximality
from repro.regex.ast import EMPTY
from repro.regex.random_gen import random_regex

from ..conftest import regex_strategy


class TestConstruction:
    def test_accepts_view_symbol_for_view_language_inside_e0(self):
        result = maximal_rewriting("a.b", {"e1": "a.b"})
        assert result.accepts(("e1",))
        assert not result.accepts(("e1", "e1"))

    def test_empty_rewriting_when_views_useless(self):
        result = maximal_rewriting("a", {"e1": "b"})
        assert result.is_empty()

    def test_epsilon_always_in_rewriting_when_e0_nullable(self):
        result = maximal_rewriting("a*", {"e1": "b"})
        # the empty Sigma_E word expands to epsilon, which is in L(a*)
        assert result.accepts(())

    def test_epsilon_not_in_rewriting_when_e0_not_nullable(self):
        result = maximal_rewriting("a.a*", {"e1": "a"})
        assert not result.accepts(())
        assert result.accepts(("e1",))
        assert result.accepts(("e1", "e1"))

    def test_view_with_empty_language_is_vacuously_rewritable(self):
        # exp of any word containing e2 is empty, hence contained in L(E0).
        result = maximal_rewriting("a", {"e1": "a", "e2": "%empty"})
        assert result.accepts(("e1",))
        assert result.accepts(("e2", "e1", "e2"))
        assert result.accepts(("e2",))

    def test_view_identical_to_query(self):
        result = maximal_rewriting("(a.b)*", {"e1": "a.b"})
        assert result.accepts(())
        assert result.accepts(("e1", "e1", "e1"))
        assert result.is_exact()

    def test_views_given_as_plain_iterable_are_autonamed(self):
        result = maximal_rewriting("a.b", ["a", "b"])
        assert result.accepts(("e1", "e2"))

    def test_views_given_as_mapping(self):
        result = maximal_rewriting("a.b", {"x": "a", "y": "b"})
        assert result.accepts(("x", "y"))

    def test_query_with_symbols_absent_from_views(self):
        # d never appears in any view: words reaching d-parts are lost.
        result = maximal_rewriting("a+d", {"e1": "a"})
        assert result.accepts(("e1",))
        assert not result.is_exact()

    def test_view_symbols_outside_query_alphabet(self):
        # The view language leaves L(E0) entirely (z is not in E0's
        # alphabet): using it must be forbidden, not ignored.
        result = maximal_rewriting("a", {"e1": "a", "e2": "z"})
        assert result.accepts(("e1",))
        assert not result.accepts(("e2",))

    def test_overlapping_views(self):
        result = maximal_rewriting("a.b.c", {"e1": "a.b", "e2": "b.c", "e3": "c", "e4": "a"})
        assert result.accepts(("e1", "e3"))
        assert result.accepts(("e4", "e2"))
        assert not result.accepts(("e1", "e2"))


class TestBoundedMaximality:
    """The brute-force oracle agrees with the construction everywhere."""

    def test_figure1_instance(self, fig1_rewriting):
        assert verify_bounded_maximality(fig1_rewriting, 4) == []

    @pytest.mark.parametrize(
        "e0, views",
        [
            ("a*", {"e1": "a.a", "e2": "a"}),
            ("(a+b)*", {"e1": "a.b", "e2": "b.a"}),
            ("a.(b+c)*", {"e1": "a.b", "e2": "b", "e3": "c.c"}),
            ("a.b+b.a", {"e1": "a", "e2": "b"}),
            ("(a.b)*.c", {"e1": "a.b.a.b", "e2": "a.b", "e3": "c"}),
            ("a*.b*", {"e1": "a*", "e2": "b.b"}),
        ],
    )
    def test_structured_instances(self, e0, views):
        result = maximal_rewriting(e0, ViewSet(views))
        assert verify_bounded_maximality(result, 4) == []

    def test_random_instances(self, rng: random.Random):
        for trial in range(15):
            e0 = random_regex(rng, "ab", max_size=6)
            if isinstance(e0, EMPTY.__class__):
                continue
            views = ViewSet.from_list(
                [random_regex(rng, "ab", max_size=4) for _ in range(2)]
            )
            result = maximal_rewriting(e0, views)
            assert verify_bounded_maximality(result, 3) == [], (e0, views)

    @given(regex_strategy(alphabet=("a", "b"), max_leaves=5))
    @settings(max_examples=25, deadline=None)
    def test_hypothesis_queries_with_fixed_views(self, e0):
        views = ViewSet({"e1": "a", "e2": "b.a"})
        result = maximal_rewriting(e0, views)
        assert verify_bounded_maximality(result, 3) == []


class TestMinimizationToggles:
    def test_all_toggle_combinations_agree(self):
        views = ViewSet({"e1": "a", "e2": "a.c*.b", "e3": "c"})
        results = [
            maximal_rewriting(
                "a.(b.a+c)*", views, minimize_ad=ad, minimize_result=res
            )
            for ad in (True, False)
            for res in (True, False)
        ]
        from itertools import product as iproduct

        words = list(iproduct(views.symbols, repeat=3))
        for word in words:
            verdicts = {result.accepts(word) for result in results}
            assert len(verdicts) == 1, word

    def test_stats_recorded(self):
        result = maximal_rewriting("a", {"e1": "a"})
        assert {"ad_states", "a_prime_transitions", "rewriting_states"} <= set(
            result.stats
        )
