"""Fault injection against the serving front end.

Three failure families, each of which must degrade — never corrupt:

* a sharded worker pool dying mid-request drops the tenant to the
  sequential evaluation path, with byte-identical answers;
* a change log too stale to replay (bounded log overrun) triggers a
  full recompute, not an error;
* admission overflow returns 429 without touching the tenant's session
  state, and the tenant serves correct answers as soon as the backlog
  drains;
* malformed or hostile request framing — lie-length or oversized
  bodies, unparseable ``Content-Length``, unbounded header blocks — is
  rejected with 413/400 before any body buffering, and the server keeps
  serving well-formed traffic afterwards.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.rpq import Theory
from repro.rpq.sharded import ParallelEvaluator
from repro.service import RPQServer, TenantConfig, run_in_thread


def _request(url: str, method: str, path: str, payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(url + path, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        body = error.read()
        return error.code, (json.loads(body) if body else {})


def _config(**overrides) -> TenantConfig:
    knobs = dict(
        views={"q1": "a", "q2": "b"},
        theory=Theory.trivial({"a", "b"}),
        extensions={"q1": [("u", "v"), ("w", "v")], "q2": [("v", "z")]},
    )
    knobs.update(overrides)
    return TenantConfig(**knobs)


class TestWorkerPoolDeath:
    def test_dead_worker_degrades_to_sequential_with_correct_answers(self):
        server = RPQServer({"alpha": _config(parallelism=3, workers=2)})
        handle = run_in_thread(server)
        try:
            tenant = server.tenants["alpha"]
            # Plant an evaluator whose shard 1 dies mid-sweep (the same
            # injection tests/service/test_session.py uses), current as
            # of the store's version so the session trusts it.
            tenant.session._evaluator = ParallelEvaluator(
                tenant.store.graph,
                num_shards=3,
                workers=2,
                _fail_shards=[1],
            )
            tenant.session._evaluator_version = tenant.store.version
            status, body = _request(
                handle.url, "POST", "/tenants/alpha/query", {"query": "a.b"}
            )
            assert status == 200, body
            assert body["answers"] == [["u", "z"], ["w", "z"]]
            status, stats = _request(handle.url, "GET", "/tenants/alpha/stats")
            assert stats["session"]["parallel_failures"] >= 1
            assert stats["served"]["errors"] == 0
            # The degraded tenant keeps serving (sequentially) —
            # including through a subsequent write.
            status, _ = _request(
                handle.url,
                "POST",
                "/tenants/alpha/update",
                {"ops": [{"op": "insert", "symbol": "q1", "source": "x", "target": "v"}]},
            )
            assert status == 200
            status, body = _request(
                handle.url, "POST", "/tenants/alpha/query", {"query": "a.b"}
            )
            assert status == 200
            assert body["answers"] == [["u", "z"], ["w", "z"], ["x", "z"]]
        finally:
            handle.stop()


class TestStaleChangeLog:
    def test_log_overrun_triggers_full_recompute_not_error(self):
        # log_limit=3: one 6-op batch is guaranteed to compact away the
        # baseline the retained sweep state reflects.
        server = RPQServer({"alpha": _config(log_limit=3)})
        handle = run_in_thread(server)
        try:
            status, first = _request(
                handle.url, "POST", "/tenants/alpha/query", {"query": "a.b"}
            )
            assert status == 200
            ops = [
                {"op": "insert", "symbol": "q1", "source": f"s{i}", "target": "v"}
                for i in range(6)
            ]
            status, body = _request(
                handle.url, "POST", "/tenants/alpha/update", {"ops": ops}
            )
            assert (status, body["applied"]) == (200, 6)
            status, body = _request(
                handle.url, "POST", "/tenants/alpha/query", {"query": "a.b"}
            )
            assert status == 200, body
            expected = sorted(
                [["u", "z"], ["w", "z"]] + [[f"s{i}", "z"] for i in range(6)]
            )
            assert sorted(body["answers"]) == expected
            status, stats = _request(handle.url, "GET", "/tenants/alpha/stats")
            session = stats["session"]
            # Both sweeps were full recomputes (state built, then rebuilt
            # after the compacted log), never an incremental patch and
            # never a 5xx.
            assert session["full_recomputes"] >= 2
            assert session["incremental_updates"] == 0
            assert stats["served"]["errors"] == 0
            assert stats["log_size"] <= 3
        finally:
            handle.stop()


class TestAdmissionOverflow:
    def test_overflow_returns_429_and_recovers_clean(self):
        server = RPQServer({"alpha": _config(max_queue=2)})
        handle = run_in_thread(server)
        release = threading.Event()
        occupied = threading.Event()
        try:
            tenant = server.tenants["alpha"]

            def blocker():
                occupied.set()
                assert release.wait(timeout=60)

            # Deterministically wedge the tenant thread (below admission:
            # the pending counter is untouched), then fill the queue.
            tenant.executor.submit(blocker)
            assert occupied.wait(timeout=30)

            results: list[tuple[int, dict]] = []

            def queued_query():
                results.append(
                    _request(
                        handle.url,
                        "POST",
                        "/tenants/alpha/query",
                        {"query": "a.b"},
                    )
                )

            stuck = [
                threading.Thread(target=queued_query) for _ in range(2)
            ]
            for thread in stuck:
                thread.start()
            deadline = 30.0
            import time

            start = time.monotonic()
            while tenant.pending < 2:
                assert time.monotonic() - start < deadline, "queue never filled"
                time.sleep(0.01)

            # The queue is full: the next request must be shed with 429,
            # before it touches the tenant thread.
            status, body = _request(
                handle.url, "POST", "/tenants/alpha/query", {"query": "a.b"}
            )
            assert status == 429
            assert body["max_queue"] == 2
            status, body = _request(
                handle.url,
                "POST",
                "/tenants/alpha/update",
                {"ops": [{"op": "insert", "symbol": "q1", "source": "x", "target": "v"}]},
            )
            assert status == 429
            # Overflow corrupted nothing: no write was admitted.
            assert tenant.write_seq == 0

            release.set()
            for thread in stuck:
                thread.join(timeout=60)
                assert not thread.is_alive()
            assert [status for status, _ in results] == [200, 200]
            for _status, body in results:
                assert body["answers"] == [["u", "z"], ["w", "z"]]

            # Recovered: fresh requests are admitted and correct.
            status, body = _request(
                handle.url, "POST", "/tenants/alpha/query", {"query": "a.b"}
            )
            assert status == 200
            assert body["answers"] == [["u", "z"], ["w", "z"]]
            status, stats = _request(handle.url, "GET", "/tenants/alpha/stats")
            assert stats["served"]["rejected"] == 2
            assert stats["served"]["errors"] == 0
            assert stats["pending"] == 0
        finally:
            release.set()
            handle.stop()


def _raw_exchange(server, head: str, body: bytes = b"") -> tuple[int, dict]:
    """Send a hand-framed HTTP request and parse the status + JSON body
    (urllib/http.client refuse to emit the malformed framing under test)."""
    import socket

    with socket.create_connection((server.host, server.port), timeout=30) as sock:
        sock.sendall(head.encode("latin-1") + body)
        sock.shutdown(socket.SHUT_WR)
        blob = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            blob += chunk
    head_blob, _, payload = blob.partition(b"\r\n\r\n")
    status = int(head_blob.split(None, 2)[1])
    return status, (json.loads(payload) if payload else {})


class TestRequestBounds:
    @pytest.fixture()
    def bounded(self):
        server = RPQServer({"alpha": _config()}, max_request_bytes=1024)
        handle = run_in_thread(server)
        try:
            yield server, handle
        finally:
            handle.stop()

    def test_oversized_body_rejected_413_before_buffering(self, bounded):
        server, handle = bounded
        big = json.dumps(
            {"query": "a.b", "padding": "x" * 4096}
        ).encode()
        status, body = _raw_exchange(
            server,
            "POST /tenants/alpha/query HTTP/1.1\r\n"
            "Host: t\r\nContent-Type: application/json\r\n"
            f"Content-Length: {len(big)}\r\n\r\n",
            big,
        )
        assert status == 413
        assert "1024-byte limit" in body["error"]
        assert server.stats["bad_requests"] == 1

    def test_lie_length_header_rejected_without_reading_the_body(self, bounded):
        server, _handle = bounded
        # The header claims 10 MiB; no body ever arrives.  The bound
        # check fires on the declared length alone, so the response is
        # immediate rather than a read-until-timeout stall.
        status, body = _raw_exchange(
            server,
            "POST /tenants/alpha/query HTTP/1.1\r\n"
            "Host: t\r\nContent-Length: 10485760\r\n\r\n",
        )
        assert status == 413

    @pytest.mark.parametrize("raw_length", ["banana", "-5", "0x10", "1e3"])
    def test_malformed_content_length_rejected_400(self, bounded, raw_length):
        server, _handle = bounded
        status, body = _raw_exchange(
            server,
            "POST /tenants/alpha/query HTTP/1.1\r\n"
            f"Host: t\r\nContent-Length: {raw_length}\r\n\r\n",
        )
        assert status == 400
        assert "Content-Length" in body["error"]

    def test_oversized_header_block_rejected_413(self, bounded):
        server, _handle = bounded
        status, body = _raw_exchange(
            server,
            "POST /tenants/alpha/query HTTP/1.1\r\n"
            "Host: t\r\n"
            f"X-Filler: {'y' * 200_000}\r\n\r\n",
        )
        assert status == 413
        assert "head" in body["error"]

    def test_server_keeps_serving_after_rejections(self, bounded):
        server, handle = bounded
        for raw in ("banana", "999999999"):
            _raw_exchange(
                server,
                "POST /tenants/alpha/query HTTP/1.1\r\n"
                f"Host: t\r\nContent-Length: {raw}\r\n\r\n",
            )
        status, body = _request(
            handle.url, "POST", "/tenants/alpha/query", {"query": "a.b"}
        )
        assert status == 200
        assert body["answers"] == [["u", "z"], ["w", "z"]]
        assert server.stats["bad_requests"] == 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
