"""RewritePlanCache: canonical keys, disk persistence, no rebuilding."""

import json

import pytest

from repro.rpq import Pred, RPQViews, Theory, rewrite_rpq
from repro.service import (
    RewritePlanCache,
    plan_from_dict,
    plan_key,
    plan_to_dict,
)


@pytest.fixture
def theory():
    return Theory.trivial({"a", "b", "c"})


@pytest.fixture
def views():
    return RPQViews({"q1": "a", "q2": "b", "q3": "c"})


class TestPlanKey:
    def test_deterministic_across_equal_inputs(self, theory, views):
        other_views = RPQViews({"q1": "a", "q2": "b", "q3": "c"})
        other_theory = Theory.trivial({"c", "b", "a"})
        assert plan_key("a.b", views, theory) == plan_key(
            "a.b", other_views, other_theory
        )

    def test_distinguishes_every_input(self, theory, views):
        base = plan_key("a.b", views, theory)
        assert plan_key("a.c", views, theory) != base
        assert plan_key("a.b", RPQViews({"q1": "a", "q2": "b"}), theory) != base
        assert (
            plan_key("a.b", views, Theory({"a", "b", "c"}, {"P": {"a"}})) != base
        )
        assert plan_key("a.b", views, theory, strategy="ground") != base
        assert plan_key("a.b", views, theory, partition=True) != base

    def test_view_symbol_renaming_changes_key(self, theory, views):
        renamed = RPQViews({"r1": "a", "r2": "b", "r3": "c"})
        assert plan_key("a.b", views, theory) != plan_key("a.b", renamed, theory)


class TestSerialization:
    def test_plan_round_trips_through_dict(self, theory, views):
        result = rewrite_rpq("a.(b+c)*", views, theory)
        clone = plan_from_dict(json.loads(json.dumps(plan_to_dict(result))))
        assert clone.automaton.states == result.automaton.states
        assert clone.automaton.accepts(["q1", "q2", "q3"]) == result.automaton.accepts(
            ["q1", "q2", "q3"]
        )
        assert clone.is_exact() == result.is_exact()
        extensions = {"q1": [("x", "y")], "q2": [("y", "z")], "q3": []}
        from repro.rpq import answer_with_views

        assert answer_with_views(clone, extensions) == answer_with_views(
            result, extensions
        )

    def test_formula_views_are_rejected_by_dict_form(self):
        from repro.regex.ast import sym

        theory = Theory({"a", "b"}, {"P": {"a"}})
        views = RPQViews({"q1": sym(Pred("P")), "q2": "b"})
        result = rewrite_rpq("a.b", views, theory)
        with pytest.raises(TypeError):
            plan_to_dict(result)


class TestCache:
    def test_memory_hit_after_build(self, tmp_path, theory, views):
        cache = RewritePlanCache(tmp_path / "plans")
        first = cache.get_or_build("a.b", views, theory)
        second = cache.get_or_build("a.b", views, theory)
        assert first is second
        assert cache.stats["built"] == 1
        assert cache.stats["hits"] == 1
        assert cache.stats["saved"] == 1
        assert len(cache) == 1

    def test_disk_reload_skips_building(self, tmp_path, theory, views):
        plan_dir = tmp_path / "plans"
        RewritePlanCache(plan_dir).get_or_build("a.(b+c)*", views, theory)

        reloaded = RewritePlanCache(plan_dir)

        def forbid(*args, **kwargs):
            raise AssertionError("must not rebuild")

        reloaded._builder = forbid
        plan = reloaded.get_or_build("a.(b+c)*", views, theory)
        assert reloaded.stats == {
            "hits": 0,
            "loaded": 1,
            "built": 0,
            "saved": 0,
            "unserializable": 0,
            "load_errors": 0,
        }
        assert plan.is_exact()

    def test_corrupt_plan_file_is_rebuilt_not_fatal(self, tmp_path, theory, views):
        plan_dir = tmp_path / "plans"
        cache = RewritePlanCache(plan_dir)
        cache.get_or_build("a.b", views, theory)
        (plan_file,) = plan_dir.glob("*.json")

        for bad in ('{"format": 999}', "{truncated", ""):
            plan_file.write_text(bad)
            fresh = RewritePlanCache(plan_dir)
            plan = fresh.get_or_build("a.b", views, theory)
            assert plan.is_exact()
            assert fresh.stats["load_errors"] == 1
            assert fresh.stats["built"] == 1
            # The rebuild overwrote the bad file: next process loads fine.
            after = RewritePlanCache(plan_dir)
            after.get_or_build("a.b", views, theory)
            assert after.stats["loaded"] == 1

    def test_corrupt_entry_skips_with_a_warning(
        self, tmp_path, theory, views, caplog
    ):
        """Corruption is *diagnosed*, not just survived: every skipped
        entry names the file and the decode failure in a log warning, and
        the wrong-shape payloads that used to escape the narrow except
        clause (a JSON array, a number, an object missing its keys) are
        all caught the same way."""
        import logging

        plan_dir = tmp_path / "plans"
        cache = RewritePlanCache(plan_dir)
        cache.get_or_build("a.b", views, theory)
        (plan_file,) = plan_dir.glob("*.json")

        for bad in ("[1, 2, 3]", "42", '"plan"', '{"views": null}'):
            plan_file.write_text(bad)
            fresh = RewritePlanCache(plan_dir)
            with caplog.at_level(logging.WARNING, "repro.service.plancache"):
                caplog.clear()
                assert fresh.get("a.b", views, theory) is None
            assert fresh.stats["load_errors"] == 1
            (record,) = caplog.records
            assert "skipping corrupt plan-cache entry" in record.getMessage()
            assert plan_file.name in record.getMessage()

    def test_get_never_builds(self, tmp_path, theory, views):
        cache = RewritePlanCache(tmp_path / "plans")
        assert cache.get("a.b", views, theory) is None
        assert cache.stats["built"] == 0

    def test_memory_only_without_directory(self, theory, views):
        cache = RewritePlanCache()
        cache.get_or_build("a.b", views, theory)
        assert cache.stats == {
            "hits": 0,
            "loaded": 0,
            "built": 1,
            "saved": 0,
            "unserializable": 0,
            "load_errors": 0,
        }

    def test_formula_plans_fall_back_to_memory(self, tmp_path):
        theory = Theory({"a", "b"}, {"P": {"a", "b"}})
        views = RPQViews({"q1": "a", "q2": "b"})
        cache = RewritePlanCache(tmp_path / "plans")
        # A formula query makes Ad range over non-string-only alphabets?
        # No — Ad is over D (strings here).  Use a non-string *view
        # symbol* instead, which is genuinely unserializable.
        odd_views = RPQViews({("q", 1): "a"})
        cache.get_or_build("a", odd_views, theory)
        assert cache.stats["built"] == 1
        assert cache.stats["unserializable"] == 1
        assert cache.stats["saved"] == 0
        # Still served from memory afterwards.
        cache.get_or_build("a", odd_views, theory)
        assert cache.stats["hits"] == 1

    def test_strategy_validated(self):
        with pytest.raises(ValueError):
            RewritePlanCache(strategy="zigzag")

    def test_warm_builds_all(self, tmp_path, theory, views):
        cache = RewritePlanCache(tmp_path / "plans")
        plans = cache.warm(["a.b", "b.c", "a.b"], views, theory)
        assert len(plans) == 3
        assert plans[0] is plans[2]
        assert cache.stats["built"] == 2
