"""Regression: the answer memo must never file stale answers.

The defect: :meth:`QuerySession.answer` synced the memo to the store
version *before* evaluating, then wrote its result into the memo
unconditionally.  If the store moved while the evaluation ran — and a
re-entrant request (a progress callback, a nested query issued from
instrumentation) re-synced the memo to the *new* version — the outer
call's answers, computed against the old graph, were filed under the new
version's memo.  Every later request at that version then got a memo hit
on the stale frozenset, with nothing left to invalidate it.

The fix: ``_sync_version`` returns the version it synced against, and
``answer`` memoizes only when both the store version and the memo's
version tag still equal it.  A mutate-during-evaluation request now
simply skips the memo write; the next request re-evaluates.
"""

from repro.rpq import Theory
from repro.service import MaterializedViewStore, QuerySession


def _session():
    store = MaterializedViewStore(
        {"q1": [("u", "v"), ("w", "v")], "q2": [("v", "z")]}
    )
    theory = Theory.trivial({"a", "b"})
    return store, QuerySession(store, {"q1": "a", "q2": "b"}, theory)


class TestMemoWriteGuard:
    def test_mutation_between_sync_and_memo_write(self):
        """A store mutation plus a re-entrant answer() mid-evaluation
        must not leave stale answers memoized at the new version."""
        store, session = _session()
        original = session._evaluate
        state = {"armed": True}

        def mutate_and_reenter(parallel_call, sequential_call):
            result = original(parallel_call, sequential_call)
            if state["armed"]:
                state["armed"] = False
                # The store moves while the outer answer() is in flight...
                store.add("q1", "x", "v")
                # ...and a re-entrant request re-syncs the memo to the
                # new version before the outer call memoizes.
                session.answer("b")
            return result

        session._evaluate = mutate_and_reenter
        first = session.answer("a.b")
        session._evaluate = original

        fresh = QuerySession(
            store, {"q1": "a", "q2": "b"}, Theory.trivial({"a", "b"})
        )
        expected = fresh.answer("a.b")
        assert ("x", "z") in expected
        # The poisoned-memo request itself may legitimately answer for
        # the pre-mutation store; the *next* request must not.
        second = session.answer("a.b")
        assert second == expected

    def test_stale_result_not_memoized(self):
        store, session = _session()
        original = session._evaluate
        state = {"armed": True}

        def mutate_and_reenter(parallel_call, sequential_call):
            result = original(parallel_call, sequential_call)
            if state["armed"]:
                state["armed"] = False
                store.add("q1", "x", "v")
                session.answer("b")
            return result

        session._evaluate = mutate_and_reenter
        session.answer("a.b")
        session._evaluate = original
        key = session._plan_keys["a.b"]
        # Either nothing was memoized for the poisoned request, or what
        # was memoized is correct for the current version.
        cached = session._answers.get(key)
        if cached is not None:
            fresh = QuerySession(
                store, {"q1": "a", "q2": "b"}, Theory.trivial({"a", "b"})
            )
            assert cached == fresh.answer("a.b")

    def test_plain_mutation_between_calls_still_invalidates(self):
        """The ordinary path — mutate between requests — keeps working."""
        store, session = _session()
        before = session.answer("a.b")
        assert before == frozenset({("u", "z"), ("w", "z")})
        store.add("q1", "x", "v")
        after = session.answer("a.b")
        assert after == frozenset({("u", "z"), ("w", "z"), ("x", "z")})

    def test_memo_still_hits_when_store_is_quiet(self):
        _store, session = _session()
        session.answer("a.b")
        hits = session.stats["answer_memo_hits"]
        session.answer("a.b")
        assert session.stats["answer_memo_hits"] == hits + 1
