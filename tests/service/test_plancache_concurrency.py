"""Regression: concurrent plan persists must never interleave scratch bytes.

The defect: ``RewritePlanCache._persist`` staged every plan through the
*same* scratch name, ``path.with_suffix(".tmp")``.  Two writers
persisting the same key concurrently (two server processes warming the
same plan directory, or two sessions sharing one cache) therefore opened
one scratch file: writer B's ``open(..., "w")`` truncated writer A's
half-written JSON, and whichever ``os.replace`` ran first published the
other writer's incomplete bytes as the plan file — corrupt JSON at the
published path, surfacing later as ``load_errors`` (or worse, a rebuild
storm) in every process that trusted the cache.

The fix: each persist stages through a unique ``<name>.<pid>.<serial>.tmp``
scratch file, so concurrent writers each publish a *complete* file and
``os.replace`` keeps the last one — both outcomes valid.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.rpq import RPQViews, Theory
from repro.service import RewritePlanCache

SRC = Path(__file__).resolve().parent.parent.parent / "src"


@pytest.fixture
def views():
    return RPQViews({"q1": "a", "q2": "b"})


@pytest.fixture
def theory():
    return Theory.trivial({"a", "b"})


class TestUniqueScratchNames:
    def _captured_tmp_paths(self, monkeypatch, persist_calls):
        """Run ``persist_calls`` with os.replace capturing scratch paths."""
        import repro.service.plancache as plancache_mod

        real_replace = os.replace
        staged: list[str] = []

        def record(src, dst):
            staged.append(str(src))
            return real_replace(src, dst)

        monkeypatch.setattr(plancache_mod.os, "replace", record)
        persist_calls()
        return staged

    def test_two_persists_of_same_key_use_distinct_scratch_files(
        self, tmp_path, monkeypatch, views, theory
    ):
        """The failing-before property: with the shared ``.tmp`` name two
        persists of one key stage through the same file; now every
        persist must get its own scratch path."""
        cache_a = RewritePlanCache(tmp_path)
        cache_b = RewritePlanCache(tmp_path)

        def persist_twice():
            plan = cache_a.get_or_build("a.b", views, theory)
            key = cache_a.key("a.b", views, theory)
            # A second writer persisting the same key concurrently.
            cache_b._persist(key, plan, "a.b")

        staged = self._captured_tmp_paths(monkeypatch, persist_twice)
        assert len(staged) == 2
        assert staged[0] != staged[1], (
            "two persists of one key shared a scratch file; concurrent "
            "writers would interleave bytes in it"
        )
        for tmp in staged:
            assert f".{os.getpid()}." in tmp, (
                "scratch name must embed the pid so writers in different "
                "processes cannot collide either"
            )
            assert not os.path.exists(tmp), "scratch file left behind"

    def test_scratch_removed_when_publish_fails(
        self, tmp_path, monkeypatch, views, theory
    ):
        import repro.service.plancache as plancache_mod

        def explode(src, dst):
            raise OSError("injected: publish failed")

        monkeypatch.setattr(plancache_mod.os, "replace", explode)
        cache = RewritePlanCache(tmp_path)
        with pytest.raises(OSError, match="injected"):
            cache.get_or_build("a.b", views, theory)
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == [], f"failed persist left files behind: {leftovers}"


_HAMMER_CHILD = """
import sys
from repro.rpq import RPQViews, Theory
from repro.service import RewritePlanCache

plan_dir, rounds = sys.argv[1], int(sys.argv[2])
views = RPQViews({"q1": "a", "q2": "b"})
theory = Theory.trivial({"a", "b"})
plan = RewritePlanCache().get_or_build("a.b", views, theory)
disk_cache = RewritePlanCache(plan_dir)
key = disk_cache.key("a.b", views, theory)
for _ in range(rounds):
    disk_cache._persist(key, plan, "a.b")
print(disk_cache.stats["saved"])
"""


class TestConcurrentWriters:
    def test_parallel_processes_never_publish_corrupt_json(
        self, tmp_path, views, theory
    ):
        """Four processes hammering one key: the published file must be
        valid, loadable JSON afterwards (with the shared scratch name
        this raced; unique names make it deterministic)."""
        plan_dir = tmp_path / "plans"
        plan_dir.mkdir()
        rounds = 10
        children = [
            subprocess.Popen(
                [sys.executable, "-c", _HAMMER_CHILD, str(plan_dir), str(rounds)],
                env={**os.environ, "PYTHONPATH": str(SRC)},
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for _ in range(4)
        ]
        for child in children:
            out, err = child.communicate(timeout=600)
            assert child.returncode == 0, err
            assert out.strip() == str(rounds)

        fresh = RewritePlanCache(plan_dir)
        key = fresh.key("a.b", views, theory)
        with open(plan_dir / f"{key}.json", encoding="utf-8") as handle:
            json.load(handle)  # parses: nobody published a torn file
        loaded = fresh.get("a.b", views, theory)
        assert loaded is not None
        assert fresh.stats["load_errors"] == 0
        assert fresh.stats["loaded"] == 1
        assert loaded.is_exact() == RewritePlanCache().get_or_build(
            "a.b", views, theory
        ).is_exact()
        leftovers = [p for p in plan_dir.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
