"""The write-ahead log: framing, torn tails, fuzzers, fsync policies.

Two property layers back the durability claim.  Hypothesis drives an
encode→decode identity over arbitrary change batches (any record the
log can write, the scanner reads back bit-exactly), and a seeded fuzzer
mangles real log files — bit flips anywhere, truncations at every
length, duplicated tails — asserting the one invariant recovery rests
on: :func:`repro.service.wal.scan_wal` always terminates with a valid
record *prefix* of what was written, never raises, and never invents a
record it was not given.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.wal import (
    FSYNC_POLICIES,
    MAX_RECORD_BYTES,
    WalError,
    WalRecord,
    WriteAheadLog,
    decode_record,
    encode_record,
    scan_wal,
)

# Symbols/endpoints are arbitrary text: the JSON payload must round-trip
# unicode, separators, quotes, and the empty string.
_field = st.text(max_size=20)
_op = st.tuples(
    st.sampled_from(["insert", "delete"]), _field, _field, _field
).map(tuple)
_ops = st.lists(_op, max_size=8).map(tuple)


class TestFraming:
    @given(seq=st.integers(1, 2**63), version=st.integers(1, 2**63), ops=_ops)
    @settings(max_examples=200, deadline=None)
    def test_encode_decode_identity(self, seq, version, ops):
        record = WalRecord(seq=seq, version=version, ops=ops)
        frame = encode_record(record)
        decoded, end = decode_record(frame)
        assert decoded == record
        assert end == len(frame)

    @given(
        records=st.lists(_ops, min_size=1, max_size=6),
        junk=st.binary(max_size=16),
    )
    @settings(max_examples=100, deadline=None)
    def test_concatenated_frames_scan_back(self, tmp_path_factory, records, junk):
        path = tmp_path_factory.mktemp("wal") / "wal.log"
        blob = b"".join(
            encode_record(WalRecord(seq=i + 1, version=i + 1, ops=ops))
            for i, ops in enumerate(records)
        )
        path.write_bytes(blob + junk)
        scan = scan_wal(path)
        assert len(scan.records) == len(records)
        assert [r.ops for r in scan.records] == records
        assert scan.valid_bytes == len(blob)
        # Trailing junk is reported, not parsed (a 0-length CRC fluke
        # cannot occur mid-junk without also matching seq monotonicity).
        assert scan.truncated_bytes == len(junk)

    def test_decode_rejects_short_header_and_truncated_payload(self):
        frame = encode_record(WalRecord(seq=1, version=1, ops=(("insert", "a", "x", "y"),)))
        with pytest.raises(WalError):
            decode_record(frame[:10])
        with pytest.raises(WalError):
            decode_record(frame[:-1])

    def test_decode_rejects_oversized_length(self):
        import struct

        header = struct.pack("<IIQQ", MAX_RECORD_BYTES + 1, 0, 1, 1)
        with pytest.raises(WalError, match="exceeds frame bound"):
            decode_record(header + b"x" * 64)

    def test_decode_rejects_malformed_change_entries(self):
        import json
        import struct
        import zlib

        for payload_obj in ({"not": "a list"}, [["upsert", "a", "x", "y"]], [["insert", "a", "x"]]):
            payload = json.dumps(payload_obj).encode()
            tail = struct.pack("<QQ", 1, 1) + payload
            frame = struct.pack("<IIQQ", len(payload), zlib.crc32(tail), 1, 1) + payload
            with pytest.raises(WalError):
                decode_record(frame)


def _write_log(path, batches, fsync="batch"):
    with WriteAheadLog(path, fsync=fsync) as wal:
        for version, ops in batches:
            wal.append(ops, version)
        wal.commit()
    return scan_wal(path)


_BATCHES = [
    (1, [("insert", "q1", "u", "v")]),
    (2, [("insert", "q1", "w", "v"), ("insert", "q2", "v", "z")]),
    (3, [("delete", "q1", "u", "v")]),
    (5, [("insert", "q2", "a", "b"), ("delete", "q2", "v", "z")]),
]


class TestTornTailFuzz:
    def test_every_truncation_length_recovers_a_prefix(self, tmp_path):
        path = tmp_path / "wal.log"
        clean = _write_log(path, _BATCHES)
        blob = path.read_bytes()
        boundaries = [0]
        offset = 0
        for record in clean.records:
            offset += len(encode_record(record))
            boundaries.append(offset)
        for cut in range(len(blob) + 1):
            path.write_bytes(blob[:cut])
            scan = scan_wal(path)
            # The scan keeps exactly the records whose frames survived.
            kept = sum(1 for b in boundaries[1:] if b <= cut)
            assert len(scan.records) == kept, f"cut at {cut}"
            assert scan.valid_bytes == boundaries[kept]
            assert scan.records == clean.records[:kept]

    def test_bit_flip_anywhere_yields_a_valid_prefix(self, tmp_path):
        path = tmp_path / "wal.log"
        clean = _write_log(path, _BATCHES)
        blob = bytearray(path.read_bytes())
        rng = random.Random("wal-bit-flips")
        for _ in range(300):
            position = rng.randrange(len(blob))
            bit = 1 << rng.randrange(8)
            mangled = bytearray(blob)
            mangled[position] ^= bit
            path.write_bytes(bytes(mangled))
            scan = scan_wal(path)
            # Never raises; whatever survives is a prefix of the truth
            # (the flipped record and everything after it drop out, or —
            # if the flip landed in payload bytes JSON ignores — nothing
            # does; CRC covers the payload so that cannot happen here).
            assert scan.records == clean.records[: len(scan.records)]
            assert scan.valid_bytes <= len(mangled)

    def test_duplicated_tail_is_rejected_by_seq_monotonicity(self, tmp_path):
        path = tmp_path / "wal.log"
        clean = _write_log(path, _BATCHES)
        blob = path.read_bytes()
        last_frame = encode_record(clean.records[-1])
        path.write_bytes(blob + last_frame)  # every byte CRC-valid
        scan = scan_wal(path)
        assert scan.records == clean.records
        assert scan.truncated_bytes == len(last_frame)
        assert "non-monotone seq" in scan.error

    def test_open_truncates_the_torn_tail_and_resumes(self, tmp_path):
        path = tmp_path / "wal.log"
        _write_log(path, _BATCHES)
        blob = path.read_bytes()
        path.write_bytes(blob[:-3])
        wal = WriteAheadLog(path)
        assert wal.truncated_bytes > 0
        assert os.path.getsize(path) == wal.offset
        # The tail record (version 5) was cut; appends resume past the
        # surviving prefix.
        assert wal.last_version == 3
        wal.append([("insert", "q9", "x", "y")], 4)
        wal.commit()
        wal.close()
        scan = scan_wal(path)
        assert [r.version for r in scan.records] == [1, 2, 3, 4]
        assert scan.error is None


class TestWriteAheadLog:
    def test_append_assigns_monotone_seq_and_enforces_versions(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        first = wal.append([("insert", "q1", "a", "b")], 1)
        second = wal.append([("insert", "q1", "c", "d")], 2)
        assert (first.seq, second.seq) == (1, 2)
        with pytest.raises(WalError, match="not past"):
            wal.append([("insert", "q1", "e", "f")], 2)
        wal.close()

    def test_reopen_resumes_counters(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append([("insert", "q1", "a", "b")], 7)
        with WriteAheadLog(path) as wal:
            assert (wal.last_seq, wal.last_version) == (1, 7)
            record = wal.append([("delete", "q1", "a", "b")], 8)
            assert record.seq == 2

    @pytest.mark.parametrize("fsync", FSYNC_POLICIES)
    def test_every_policy_round_trips(self, tmp_path, fsync):
        path = tmp_path / f"{fsync}.log"
        with WriteAheadLog(path, fsync=fsync) as wal:
            for version in range(1, 6):
                wal.append([("insert", "q1", f"n{version}", "v")], version)
            wal.commit()
        assert len(scan_wal(path).records) == 5

    def test_fsync_counters_reflect_policy(self, tmp_path):
        always = WriteAheadLog(tmp_path / "a.log", fsync="always")
        always.append([("insert", "q", "a", "b")], 1)
        assert always.stats["syncs"] == 1
        always.close()
        off = WriteAheadLog(tmp_path / "o.log", fsync="off")
        off.append([("insert", "q", "a", "b")], 1)
        off.commit()
        assert off.stats["syncs"] == 0
        off.close()
        assert off.stats["syncs"] == 0  # close never syncs under "off"

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            WriteAheadLog(tmp_path / "x.log", fsync="sometimes")

    def test_closed_log_rejects_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "x.log")
        wal.close()
        with pytest.raises(ValueError, match="closed"):
            wal.append([("insert", "q", "a", "b")], 1)

    def test_records_iterates_buffered_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "x.log", fsync="batch")
        wal.append([("insert", "q", "a", "b")], 1)
        # No commit yet: records() must still see the buffered append.
        assert [r.version for r in wal.records()] == [1]
        wal.close()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
