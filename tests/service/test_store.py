"""MaterializedViewStore: incremental updates, versioning, view graph,
and the bounded change log behind incremental answer maintenance."""

import pytest

from repro.rpq import GraphDB, RPQViews, Theory
from repro.service import MaterializedViewStore, answer_on_extensions


@pytest.fixture
def store():
    return MaterializedViewStore(
        {"q1": [("u", "v"), ("w", "v")], "q2": [("v", "z")]}
    )


class TestMutation:
    def test_add_is_idempotent_and_versioned(self, store):
        v0 = store.version
        assert store.add("q1", "x", "y")
        assert store.version == v0 + 1
        assert not store.add("q1", "x", "y")  # duplicate: no-op
        assert store.version == v0 + 1

    def test_remove(self, store):
        v0 = store.version
        assert store.remove("q1", "u", "v")
        assert ("u", "v") not in store.extension("q1")
        assert store.version == v0 + 1
        assert not store.remove("q1", "u", "v")
        assert not store.remove("zzz", "u", "v")
        assert store.version == v0 + 1

    def test_bulk_add_bumps_version_once(self, store):
        v0 = store.version
        added = store.add_many("q2", [("a1", "a2"), ("a2", "a3"), ("v", "z")])
        assert added == 2  # ("v","z") already present
        assert store.version == v0 + 1
        assert store.add_many("q2", [("a1", "a2")]) == 0
        assert store.version == v0 + 1

    def test_bulk_remove(self, store):
        v0 = store.version
        removed = store.remove_many("q1", [("u", "v"), ("nope", "nope")])
        assert removed == 1
        assert store.version == v0 + 1

    def test_replace_is_a_view_refresh(self, store):
        store.replace("q1", [("a", "b")])
        assert store.extension("q1") == {("a", "b")}
        assert store.graph.successors("u", "q1") == frozenset()
        version = store.version
        store.replace("q1", [("a", "b")])  # no change: version stable
        assert store.version == version

    def test_graph_mirrors_extensions(self, store):
        store.add("q1", "v", "w")
        store.remove("q2", "v", "z")
        triples = store.graph.to_triples()
        assert ("v", "q1", "w") in triples
        assert ("v", "q2", "z") not in triples
        assert store.graph.num_edges == store.num_tuples

    def test_removed_nodes_stay_in_the_universe(self, store):
        # Node interning is append-only (documented): removing a node's
        # last tuple keeps it a node of the view graph.
        store.remove("q2", "v", "z")
        assert "z" in store.graph.nodes

    def test_load_materializes_views(self):
        theory = Theory.trivial({"a", "b"})
        views = RPQViews({"q1": "a", "q2": "b"})
        db = GraphDB([("x", "a", "y"), ("y", "b", "z")])
        store = MaterializedViewStore()
        store.load(views, db, theory)
        assert store.extension("q1") == {("x", "y")}
        assert store.extension("q2") == {("y", "z")}


class TestBulkGenerators:
    """Bulk mutations fed by one-shot generators: consumed exactly once,
    one version bump, accurate return counts."""

    def test_add_many_from_generator(self, store):
        v0 = store.version
        pairs = ((f"g{i}", f"g{i + 1}") for i in range(4))
        assert store.add_many("q1", pairs) == 4
        assert store.version == v0 + 1
        assert store.extension("q1") >= {("g0", "g1"), ("g3", "g4")}

    def test_add_many_generator_with_duplicates(self, store):
        v0 = store.version
        pairs = (pair for pair in [("u", "v"), ("x", "y"), ("x", "y")])
        # ("u","v") pre-exists, ("x","y") repeats inside the generator.
        assert store.add_many("q1", pairs) == 1
        assert store.version == v0 + 1

    def test_remove_many_from_generator(self, store):
        v0 = store.version
        pairs = (pair for pair in [("u", "v"), ("w", "v"), ("nope", "nope")])
        assert store.remove_many("q1", pairs) == 2
        assert store.version == v0 + 1
        assert "q1" not in store

    def test_replace_from_generator(self, store):
        store.replace("q2", (pair for pair in [("a", "b"), ("c", "d")]))
        assert store.extension("q2") == {("a", "b"), ("c", "d")}

    def test_empty_generator_is_a_versionless_noop(self, store):
        v0 = store.version
        assert store.add_many("q9", (pair for pair in ())) == 0
        assert store.remove_many("q1", (pair for pair in ())) == 0
        assert store.version == v0
        assert "q9" not in store


def _poisoned(good, exc=RuntimeError):
    yield from good
    raise exc("boom mid-iteration")


class TestBulkAtomicity:
    """Bulk mutations validate and materialize their input *before*
    touching the store: a generator that raises (or yields garbage)
    partway through must leave contents, version, and change log exactly
    as they were."""

    def _frozen(self, store):
        version, extensions = store.snapshot()
        log = store.delta_since(0)
        return version, extensions, log and (log.insertions, log.deletions)

    def test_poisoned_add_many_leaves_store_untouched(self, store):
        before = self._frozen(store)
        with pytest.raises(RuntimeError, match="boom"):
            store.add_many("q1", _poisoned([("p1", "p2"), ("p2", "p3")]))
        assert self._frozen(store) == before
        assert ("p1", "p2") not in store.extension("q1")

    def test_poisoned_add_many_on_fresh_symbol_creates_nothing(self, store):
        with pytest.raises(RuntimeError):
            store.add_many("q_new", _poisoned([("p1", "p2")]))
        assert "q_new" not in store

    def test_poisoned_remove_many_leaves_store_untouched(self, store):
        before = self._frozen(store)
        with pytest.raises(RuntimeError, match="boom"):
            store.remove_many("q1", _poisoned([("u", "v"), ("w", "v")]))
        assert self._frozen(store) == before
        assert ("u", "v") in store.extension("q1")

    def test_poisoned_replace_leaves_store_untouched(self, store):
        before = self._frozen(store)
        with pytest.raises(RuntimeError, match="boom"):
            store.replace("q2", _poisoned([("a", "b")]))
        assert self._frozen(store) == before
        assert store.extension("q2") == {("v", "z")}

    def test_bad_shape_rejected_before_mutation(self, store):
        before = self._frozen(store)
        with pytest.raises((TypeError, ValueError)):
            store.add_many("q1", [("p1", "p2"), ("only-one-element",)])
        with pytest.raises((TypeError, ValueError)):
            store.remove_many("q1", [("u", "v"), "not-a-pair-at-all"])
        assert self._frozen(store) == before

    def test_unhashable_pair_rejected_before_mutation(self, store):
        before = self._frozen(store)
        with pytest.raises(TypeError):
            store.add_many("q1", [("p1", "p2"), (["list"], "p3")])
        with pytest.raises(TypeError):
            store.replace("q2", [(["list"], "p3")])
        assert self._frozen(store) == before


class TestChangeLog:
    def test_delta_since_current_version_is_empty(self, store):
        delta = store.delta_since(store.version)
        assert delta is not None
        assert delta.insertions == () and delta.deletions == ()
        assert delta.num_changes == 0 and delta.pure_insertions

    def test_delta_since_collects_inserts_and_deletes_in_order(self, store):
        v0 = store.version
        store.add("q1", "x", "y")
        store.remove("q2", "v", "z")
        delta = store.delta_since(v0)
        assert delta.insertions == (("q1", "x", "y"),)
        assert delta.deletions == (("q2", "v", "z"),)
        assert not delta.pure_insertions
        assert (delta.base_version, delta.version) == (v0, store.version)

    def test_future_version_returns_none(self, store):
        assert store.delta_since(store.version + 1) is None

    def test_bulk_ops_log_per_tuple_under_one_version(self, store):
        v0 = store.version
        store.add_many("q2", [("b1", "b2"), ("b2", "b3")])
        delta = store.delta_since(v0)
        assert set(delta.insertions) == {("q2", "b1", "b2"), ("q2", "b2", "b3")}
        assert store.version == v0 + 1

    def test_compaction_moves_the_replay_horizon(self):
        store = MaterializedViewStore(log_limit=3)
        versions = []
        for i in range(5):
            store.add("q", f"s{i}", f"t{i}")
            versions.append(store.version)
        assert store.log_size == 3
        # Versions 1 and 2 were compacted away: too stale to replay.
        assert store.oldest_replayable_version == versions[1]
        assert store.delta_since(versions[0]) is None
        assert store.delta_since(versions[1]) is not None
        delta = store.delta_since(versions[1])
        assert delta.insertions == (
            ("q", "s2", "t2"), ("q", "s3", "t3"), ("q", "s4", "t4"),
        )

    def test_compaction_inside_a_bulk_group_keeps_the_boundary_safe(self):
        """Trimming part of one bulk version's entries must invalidate
        baselines at or before the *previous* version, while the bulk
        version itself stays replayable-from."""
        store = MaterializedViewStore(log_limit=2)
        store.add("q", "a", "b")                      # version 1
        v1 = store.version
        store.add_many("q", [("c", "d"), ("e", "f"), ("g", "h")])  # version 2
        v2 = store.version
        assert store.log_size == 2  # two of version 2's three entries left
        assert store.delta_since(v1) is None  # would need all three
        delta = store.delta_since(v2)
        assert delta is not None and delta.num_changes == 0

    def test_zero_log_limit_disables_replay(self):
        store = MaterializedViewStore({"q": [("x", "y")]}, log_limit=0)
        assert store.log_size == 0
        v = store.version
        store.add("q", "y", "z")
        assert store.delta_since(v) is None
        assert store.delta_since(store.version) is not None  # empty delta

    def test_negative_log_limit_rejected(self):
        with pytest.raises(ValueError):
            MaterializedViewStore(log_limit=-1)

    def test_replace_logs_the_diff(self, store):
        v0 = store.version
        store.replace("q1", [("u", "v"), ("new", "pair")])
        delta = store.delta_since(v0)
        assert delta.insertions == (("q1", "new", "pair"),)
        assert delta.deletions == (("q1", "w", "v"),)

    def test_ineffective_ops_do_not_log(self, store):
        v0 = store.version
        size = store.log_size
        store.add("q1", "u", "v")          # duplicate
        store.remove("q1", "no", "no")     # absent
        store.add_many("q1", [("u", "v")])
        assert store.version == v0 and store.log_size == size


class TestReads:
    def test_snapshot(self, store):
        version, extensions = store.snapshot()
        assert version == store.version
        assert extensions == {
            "q1": frozenset({("u", "v"), ("w", "v")}),
            "q2": frozenset({("v", "z")}),
        }
        store.add("q1", "x", "y")
        assert extensions["q1"] == {("u", "v"), ("w", "v")}  # copy, not live

    def test_symbols_and_contains(self, store):
        assert store.symbols == {"q1", "q2"}
        assert "q1" in store and "zzz" not in store
        store.remove("q2", "v", "z")
        assert "q2" not in store

    def test_repr_mentions_counts(self, store):
        assert "tuples=3" in repr(store)


class TestSharedHelper:
    def test_answer_on_extensions_matches_result_answer(self):
        theory = Theory.trivial({"a", "b"})
        views = RPQViews({"q1": "a", "q2": "b"})
        from repro.rpq import rewrite_rpq

        result = rewrite_rpq("a.b", views, theory)
        extensions = {"q1": [("u", "v")], "q2": [("v", "z")]}
        direct = answer_on_extensions(result.automaton, extensions)
        assert direct == frozenset({("u", "z")})
        assert direct == result.answer(db=GraphDB(), extensions=extensions)
