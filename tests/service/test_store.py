"""MaterializedViewStore: incremental updates, versioning, view graph."""

import pytest

from repro.rpq import GraphDB, RPQViews, Theory
from repro.service import MaterializedViewStore, answer_on_extensions


@pytest.fixture
def store():
    return MaterializedViewStore(
        {"q1": [("u", "v"), ("w", "v")], "q2": [("v", "z")]}
    )


class TestMutation:
    def test_add_is_idempotent_and_versioned(self, store):
        v0 = store.version
        assert store.add("q1", "x", "y")
        assert store.version == v0 + 1
        assert not store.add("q1", "x", "y")  # duplicate: no-op
        assert store.version == v0 + 1

    def test_remove(self, store):
        v0 = store.version
        assert store.remove("q1", "u", "v")
        assert ("u", "v") not in store.extension("q1")
        assert store.version == v0 + 1
        assert not store.remove("q1", "u", "v")
        assert not store.remove("zzz", "u", "v")
        assert store.version == v0 + 1

    def test_bulk_add_bumps_version_once(self, store):
        v0 = store.version
        added = store.add_many("q2", [("a1", "a2"), ("a2", "a3"), ("v", "z")])
        assert added == 2  # ("v","z") already present
        assert store.version == v0 + 1
        assert store.add_many("q2", [("a1", "a2")]) == 0
        assert store.version == v0 + 1

    def test_bulk_remove(self, store):
        v0 = store.version
        removed = store.remove_many("q1", [("u", "v"), ("nope", "nope")])
        assert removed == 1
        assert store.version == v0 + 1

    def test_replace_is_a_view_refresh(self, store):
        store.replace("q1", [("a", "b")])
        assert store.extension("q1") == {("a", "b")}
        assert store.graph.successors("u", "q1") == frozenset()
        version = store.version
        store.replace("q1", [("a", "b")])  # no change: version stable
        assert store.version == version

    def test_graph_mirrors_extensions(self, store):
        store.add("q1", "v", "w")
        store.remove("q2", "v", "z")
        triples = store.graph.to_triples()
        assert ("v", "q1", "w") in triples
        assert ("v", "q2", "z") not in triples
        assert store.graph.num_edges == store.num_tuples

    def test_removed_nodes_stay_in_the_universe(self, store):
        # Node interning is append-only (documented): removing a node's
        # last tuple keeps it a node of the view graph.
        store.remove("q2", "v", "z")
        assert "z" in store.graph.nodes

    def test_load_materializes_views(self):
        theory = Theory.trivial({"a", "b"})
        views = RPQViews({"q1": "a", "q2": "b"})
        db = GraphDB([("x", "a", "y"), ("y", "b", "z")])
        store = MaterializedViewStore()
        store.load(views, db, theory)
        assert store.extension("q1") == {("x", "y")}
        assert store.extension("q2") == {("y", "z")}


class TestReads:
    def test_snapshot(self, store):
        version, extensions = store.snapshot()
        assert version == store.version
        assert extensions == {
            "q1": frozenset({("u", "v"), ("w", "v")}),
            "q2": frozenset({("v", "z")}),
        }
        store.add("q1", "x", "y")
        assert extensions["q1"] == {("u", "v"), ("w", "v")}  # copy, not live

    def test_symbols_and_contains(self, store):
        assert store.symbols == {"q1", "q2"}
        assert "q1" in store and "zzz" not in store
        store.remove("q2", "v", "z")
        assert "q2" not in store

    def test_repr_mentions_counts(self, store):
        assert "tuples=3" in repr(store)


class TestSharedHelper:
    def test_answer_on_extensions_matches_result_answer(self):
        theory = Theory.trivial({"a", "b"})
        views = RPQViews({"q1": "a", "q2": "b"})
        from repro.rpq import rewrite_rpq

        result = rewrite_rpq("a.b", views, theory)
        extensions = {"q1": [("u", "v")], "q2": [("v", "z")]}
        direct = answer_on_extensions(result.automaton, extensions)
        assert direct == frozenset({("u", "z")})
        assert direct == result.answer(db=GraphDB(), extensions=extensions)
