"""Fault injection: ``kill -9`` a durable server, restart, prove nothing
acknowledged was lost.

This is the tentpole acceptance test for the durability layer.  A real
``repro serve --data-dir`` subprocess takes traffic from a synchronous
writer while a timer thread SIGKILLs it at seeded wall-clock offsets
(:func:`repro.rpq.workload.make_crash_points`) — no drain, no atexit,
the process dies mid-write.  A second process then recovers from the
same data directory and must satisfy the crash oracle
(:func:`repro.service.loadgen.replay_crash_oracle`): the recovered
version accounts for every acknowledged batch plus at most one
unacknowledged in-flight batch, and every workload query answered by
the recovered server is byte-identical to a single-threaded replay
positioned at that version.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.rpq.workload import make_crash_points
from repro.service.loadgen import (
    _expected_payload,
    _query_payload,
    _update_payload,
    make_tenant_workload,
    replay_crash_oracle,
)

_NAME, _FAMILY, _SEED, _EDGES = "alpha", "grid", 7, 120
_SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _workload():
    return make_tenant_workload(_NAME, _FAMILY, _SEED, edges=_EDGES)


def _spawn_server(data_dir, *, fsync="batch"):
    """Start ``repro serve`` on an ephemeral port; return (proc, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--data-dir",
            str(data_dir),
            "--fsync",
            fsync,
            "--workload-tenant",
            f"{_NAME}={_FAMILY}:{_SEED}:{_EDGES}",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 60
    while True:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"server exited before announcing its port "
                f"(rc={proc.poll()})"
            )
        if line.startswith("serving ") and "http://" in line:
            port = int(line.rsplit(":", 1)[1])
            return proc, port
        if time.monotonic() > deadline:
            proc.kill()
            raise AssertionError("server never announced its port")


def _post(port, path, payload, timeout=60):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        connection.request(
            "POST",
            path,
            body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        body = response.read()
        return response.status, json.loads(body) if body else {}
    finally:
        connection.close()


def _get(port, path, timeout=60):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def _drive_writes_until_crash(port, workload, acked):
    """The synchronous writer: send a batch, await the 200, append the
    ack, repeat — until the stream ends or the server dies under us."""
    for op in workload.traffic:
        if op.kind != "update" or not op.updates:
            continue
        while True:
            try:
                status, payload = _post(
                    port, f"/tenants/{workload.name}/update", _update_payload(op)
                )
            except OSError:
                return  # the kill landed mid-request: this batch is unacked
            if status == 200:
                acked.append(payload)
                break
            if status == 429:
                time.sleep(0.005)
                continue
            return  # server is going down (e.g. 503 during shutdown)


def _verify_recovered(port, workload, acked):
    """Restarted-server side of the oracle: version + byte-equal answers."""
    status, stats = _get(port, f"/tenants/{workload.name}/stats")
    assert status == 200
    recovered_version = stats["version"]
    assert stats["durability"]["recoveries"] == 1

    store, session = replay_crash_oracle(workload, acked, recovered_version)
    try:
        for op in workload.traffic:
            if op.kind != "query":
                continue
            status, payload = _post(
                port, f"/tenants/{workload.name}/query", _query_payload(op)
            )
            assert status == 200
            assert payload["version"] == recovered_version
            expected = _expected_payload(session, payload)
            for key, value in expected.items():
                assert payload[key] == value, (
                    f"query {op.query!r} ({payload['mode']}): recovered "
                    f"server and oracle disagree on {key}"
                )
    finally:
        session.close()
    return recovered_version


class TestKillNine:
    def test_sigkill_at_seeded_points_loses_no_acked_write(self, tmp_path):
        """The headline guarantee, three seeded kill points deep: SIGKILL
        mid-traffic, restart, zero acknowledged-write loss, byte-matched
        answers.  Each kill point gets a fresh data directory so the
        acked prefix is exactly 1..k for the oracle."""
        for point, delay in enumerate(
            make_crash_points(_FAMILY, _SEED, count=3)
        ):
            data_dir = tmp_path / f"crash-{point}"
            workload = _workload()
            proc, port = _spawn_server(data_dir)
            acked: list[dict] = []
            try:
                timer = threading.Timer(
                    delay, lambda: os.kill(proc.pid, signal.SIGKILL)
                )
                timer.start()
                _drive_writes_until_crash(port, workload, acked)
                timer.cancel()
                proc.kill()
            finally:
                proc.wait(timeout=60)
                proc.stdout.close()

            survivor, port = _spawn_server(data_dir)
            try:
                # The oracle inside asserts the headline claims: acked
                # seqs form the prefix 1..k, the recovered version covers
                # all of them plus at most one unacked in-flight batch,
                # and every query answer matches byte for byte.
                recovered_version = _verify_recovered(port, workload, acked)
                assert recovered_version >= 1  # at least the seed checkpoint
            finally:
                _post(port, "/shutdown", {})
                survivor.wait(timeout=60)
                survivor.stdout.close()

    def test_post_recovery_writes_keep_working(self, tmp_path):
        """After a kill and recovery the tenant is fully writable: the
        WAL resumes past the truncated tail and new writes ack."""
        workload = _workload()
        proc, port = _spawn_server(tmp_path)
        acked: list[dict] = []
        writer = threading.Thread(
            target=_drive_writes_until_crash, args=(port, workload, acked)
        )
        writer.start()
        time.sleep(0.2)
        os.kill(proc.pid, signal.SIGKILL)
        writer.join(timeout=60)
        proc.wait(timeout=60)
        proc.stdout.close()

        survivor, port = _spawn_server(tmp_path)
        try:
            status, payload = _post(
                port,
                f"/tenants/{_NAME}/update",
                {
                    "ops": [
                        {
                            "op": "insert",
                            "symbol": sorted(workload.config.views.symbols)[0],
                            "source": "phoenix",
                            "target": "phoenix",
                        }
                    ]
                },
            )
            assert status == 200
            assert payload["applied"] == 1
        finally:
            _post(port, "/shutdown", {})
            survivor.wait(timeout=60)
            survivor.stdout.close()


class TestRecoverCli:
    def test_recover_reports_every_tenant_and_exits_clean(self, tmp_path):
        workload = _workload()
        proc, port = _spawn_server(tmp_path)
        acked: list[dict] = []
        _drive_writes_until_crash(port, workload, acked)
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=60)
        proc.stdout.close()

        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "recover",
                "--data-dir",
                str(tmp_path),
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        report = [
            json.loads(line) for line in result.stdout.splitlines() if line
        ]
        assert [entry["tenant"] for entry in report] == [_NAME]
        assert report[0]["quarantined"] == []
        assert report[0]["wal_error"] is None
        assert report[0]["version"] >= len(acked)

    def test_recover_checkpoint_flag_rolls_a_checkpoint(self, tmp_path):
        workload = _workload()
        proc, port = _spawn_server(tmp_path)
        acked: list[dict] = []
        _drive_writes_until_crash(port, workload, acked)
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=60)
        proc.stdout.close()

        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "recover",
                "--data-dir",
                str(tmp_path),
                "--checkpoint",
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        report = [
            json.loads(line) for line in result.stdout.splitlines() if line
        ]
        assert "new_checkpoint" in report[0]
        from repro.service.recovery import list_checkpoints

        versions = [v for v, _ in list_checkpoints(tmp_path / _NAME)]
        assert report[0]["version"] in versions


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
