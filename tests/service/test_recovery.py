"""Checkpoint/recovery: restore fidelity, quarantine, replay, wiring.

The contract under test is the durability equation — *newest valid
checkpoint + WAL suffix = exact acknowledged state* — plus its failure
arms: corrupt checkpoints are quarantined with fallback to the previous
one, WAL suffixes that no longer follow are cut like torn tails, and
recovery never raises on mangled input.  Byte-exactness goes through
the interning table: a recovered store must re-intern nodes in the
original order so the engine's documented answer order is unchanged.
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.rpq import Theory
from repro.service import QuerySession, RPQServer, TenantConfig, run_in_thread
from repro.service.recovery import (
    TenantDurability,
    list_checkpoints,
    load_checkpoint,
    recover_store,
    write_checkpoint,
)
from repro.service.store import MaterializedViewStore
from repro.service.wal import WriteAheadLog, scan_wal


def _populated_store() -> MaterializedViewStore:
    store = MaterializedViewStore(
        {"q1": [("u", "v"), ("w", "v")], "q2": [("v", "z")]}
    )
    store.add("q1", "x", "v")
    store.remove("q1", "w", "v")
    store.replace("q2", [("v", "z"), ("v", "y")])
    return store


class TestStoreRestore:
    def test_restore_is_byte_exact_including_interning_order(self):
        store = _populated_store()
        nodes = [store.graph.node_at(i) for i in range(store.graph.num_nodes)]
        extensions = {s: sorted(store.extension(s)) for s in store.symbols}
        twin = MaterializedViewStore.restore(nodes, extensions, store.version)
        assert twin.snapshot() == store.snapshot()
        assert [
            twin.graph.node_at(i) for i in range(twin.graph.num_nodes)
        ] == nodes
        # The replay horizon sits at the restored version: older
        # baselines must recompute, the current one patches trivially.
        assert twin.delta_since(store.version - 1) is None
        assert twin.delta_since(store.version).num_changes == 0

    def test_apply_wal_changes_is_one_version_bump(self):
        store = MaterializedViewStore({"q1": [("a", "b")]})
        version = store.version
        applied = store.apply_wal_changes(
            [("insert", "q1", "c", "d"), ("delete", "q1", "a", "b")],
            version + 1,
        )
        assert applied == 2
        assert store.version == version + 1
        delta = store.delta_since(version)
        assert delta.num_changes == 2

    def test_apply_wal_changes_rejects_ineffective_records_untouched(self):
        store = MaterializedViewStore({"q1": [("a", "b")]})
        snapshot = store.snapshot()
        with pytest.raises(ValueError, match="insert of present"):
            store.apply_wal_changes([("insert", "q1", "a", "b")], store.version + 1)
        with pytest.raises(ValueError, match="delete of absent"):
            store.apply_wal_changes([("delete", "q1", "zz", "zz")], store.version + 1)
        with pytest.raises(ValueError, match="does not advance"):
            store.apply_wal_changes([("insert", "q1", "c", "d")], store.version)
        assert store.snapshot() == snapshot


class TestCheckpoint:
    def test_write_then_load_round_trips(self, tmp_path):
        store = _populated_store()
        path = write_checkpoint(store, tmp_path)
        nodes, extensions, meta = load_checkpoint(path)
        assert meta["version"] == store.version
        assert nodes == [
            store.graph.node_at(i) for i in range(store.graph.num_nodes)
        ]
        assert {
            symbol: frozenset(pairs) for symbol, pairs in extensions.items()
        } == {symbol: store.extension(symbol) for symbol in store.symbols}

    def test_same_version_checkpoint_is_idempotent(self, tmp_path):
        store = _populated_store()
        assert write_checkpoint(store, tmp_path) == write_checkpoint(
            store, tmp_path
        )
        assert len(list_checkpoints(tmp_path)) == 1

    def test_pruning_keeps_the_newest_two(self, tmp_path):
        store = MaterializedViewStore({"q1": [("a", "b")]})
        for i in range(4):
            store.add("q1", f"n{i}", "b")
            write_checkpoint(store, tmp_path, keep=2)
        versions = [v for v, _ in list_checkpoints(tmp_path)]
        assert versions == [store.version, store.version - 1]

    @pytest.mark.parametrize(
        "mangle",
        [
            lambda p: (p / "meta.json").write_text("{torn"),
            lambda p: (p / "meta.json").write_text(json.dumps([1, 2])),
            lambda p: (p / "meta.json").unlink(),
            lambda p: (p / "graph.csr").write_bytes(b"not a snapshot"),
            lambda p: (p / "graph.csr").write_bytes(
                (p / "graph.csr").read_bytes()[:-20]
            ),
        ],
        ids=["torn-json", "wrong-shape", "missing-meta", "bad-magic", "truncated-csr"],
    )
    def test_every_corruption_class_raises_recovery_error(self, tmp_path, mangle):
        from pathlib import Path

        from repro.service.recovery import RecoveryError

        store = _populated_store()
        path = Path(write_checkpoint(store, tmp_path))
        mangle(path)
        with pytest.raises(RecoveryError):
            load_checkpoint(path)

    def test_flipped_snapshot_bit_fails_the_digest(self, tmp_path):
        from pathlib import Path

        from repro.service.recovery import RecoveryError

        store = _populated_store()
        path = Path(write_checkpoint(store, tmp_path))
        blob = bytearray((path / "graph.csr").read_bytes())
        blob[len(blob) // 2] ^= 0x10
        (path / "graph.csr").write_bytes(bytes(blob))
        with pytest.raises(RecoveryError, match="digest"):
            load_checkpoint(path)


class TestRecoverStore:
    def test_checkpoint_plus_wal_suffix_equals_acknowledged_state(self, tmp_path):
        durability = TenantDurability(tmp_path, checkpoint_every_bytes=200)
        store = durability.open_or_recover({"q1": [("u", "v")]})
        for i in range(20):
            store.add("q1", f"n{i}", "v")
            durability.wal.commit()
            durability.maybe_checkpoint(store)
        expected = store.snapshot()
        durability.close()
        assert len(list_checkpoints(tmp_path)) >= 2  # it actually rolled

        result = recover_store(tmp_path)
        assert result.store.snapshot() == expected
        assert result.replayed > 0 or result.checkpoint_version == expected[0]
        assert result.wal_error is None

    def test_corrupt_newest_checkpoint_quarantined_with_fallback(self, tmp_path):
        durability = TenantDurability(tmp_path, checkpoint_every_bytes=200)
        store = durability.open_or_recover({"q1": [("u", "v")]})
        for i in range(20):
            store.add("q1", f"n{i}", "v")
            durability.wal.commit()
            durability.maybe_checkpoint(store)
        expected = store.snapshot()
        durability.close()

        newest = list_checkpoints(tmp_path)[0][1]
        with open(os.path.join(newest, "meta.json"), "w") as handle:
            handle.write("{garbage")
        result = recover_store(tmp_path)
        # The older checkpoint seeds; the *longer* WAL suffix replays to
        # the same acknowledged state.
        assert result.store.snapshot() == expected
        assert len(result.quarantined) == 1
        assert result.quarantined[0].endswith(".corrupt")
        assert not os.path.exists(newest)
        # Quarantined checkpoints are never retried on the next pass.
        again = recover_store(tmp_path)
        assert again.store.snapshot() == expected
        assert again.quarantined == []

    def test_all_checkpoints_gone_replays_the_wal_from_empty(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append([("insert", "q1", "a", "b")], 1)
        wal.append([("insert", "q1", "c", "d"), ("insert", "q2", "b", "e")], 2)
        wal.close()
        result = recover_store(tmp_path)
        assert result.checkpoint is None
        assert result.replayed == 2
        assert result.store.extension("q1") == frozenset({("a", "b"), ("c", "d")})

    def test_inconsistent_wal_suffix_is_cut_not_fatal(self, tmp_path):
        durability = TenantDurability(tmp_path)
        store = durability.open_or_recover({"q1": [("u", "v")]})
        store.add("q1", "a", "b")
        durability.wal.commit()
        durability.close()
        # Append a CRC-valid record that does not follow from the state
        # (inserts an already-present tuple).
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append([("insert", "q1", "a", "b")], store.version + 1)
        wal.close()
        result = recover_store(tmp_path)
        assert result.store.version == store.version
        assert "does not apply" in result.wal_error
        # Reopening through TenantDurability truncates the cut suffix so
        # serving can append again.
        durability2 = TenantDurability(tmp_path)
        store2 = durability2.open_or_recover()
        assert store2.snapshot() == store.snapshot()
        assert durability2.stats["wal_truncated_bytes"] > 0
        assert store2.add("q1", "c", "d")
        durability2.wal.commit()
        durability2.close()
        assert scan_wal(tmp_path / "wal.log").error is None

    def test_empty_directory_recovers_to_an_empty_store(self, tmp_path):
        result = recover_store(tmp_path / "nothing-here")
        assert result.store.version == 0
        assert result.store.num_tuples == 0
        assert result.checkpoint is None


class TestTenantDurability:
    def test_fresh_directory_seeds_and_checkpoints_initial_extensions(self, tmp_path):
        durability = TenantDurability(tmp_path)
        store = durability.open_or_recover({"q1": [("u", "v"), ("w", "v")]})
        durability.close()
        # The seed never touches the WAL — the initial checkpoint is the
        # durable floor — yet a crash right now must lose nothing.
        assert scan_wal(tmp_path / "wal.log").records == ()
        result = recover_store(tmp_path)
        assert result.store.snapshot() == store.snapshot()

    def test_existing_directory_ignores_config_extensions(self, tmp_path):
        durability = TenantDurability(tmp_path)
        store = durability.open_or_recover({"q1": [("u", "v")]})
        store.add("q1", "x", "y")
        durability.wal.commit()
        durability.close()
        durability2 = TenantDurability(tmp_path)
        store2 = durability2.open_or_recover({"q1": [("DECOY", "DECOY")]})
        assert store2.extension("q1") == frozenset({("u", "v"), ("x", "y")})
        durability2.close()

    def test_recovered_session_answers_match_pre_crash_session(self, tmp_path):
        views = {"q1": "a", "q2": "b"}
        theory = Theory.trivial({"a", "b"})
        durability = TenantDurability(tmp_path)
        store = durability.open_or_recover(
            {"q1": [("u", "v"), ("w", "v")], "q2": [("v", "z")]}
        )
        store.add("q1", "x", "v")
        store.add("q2", "v", "t")
        durability.wal.commit()
        with QuerySession(store, views, theory) as session:
            before = sorted(session.answer("a.b"))
        durability.close()

        result = recover_store(tmp_path)
        with QuerySession(result.store, views, theory) as session:
            after = sorted(session.answer("a.b"))
        assert after == before

    def test_checkpoint_every_bytes_validated(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every_bytes"):
            TenantDurability(tmp_path, checkpoint_every_bytes=0)


class TestRecoveryFuzz:
    def test_random_mangling_always_recovers_consistent(self, tmp_path):
        """The recovery fuzzer of the tentpole acceptance criteria: bit
        flips, truncations, and duplicated tails over the *whole* data
        directory (WAL and checkpoint files alike) must always land in
        a consistent, serveable store — never an exception, and always
        a prefix of the acknowledged history."""
        durability = TenantDurability(tmp_path, checkpoint_every_bytes=300)
        store = durability.open_or_recover({"q1": [("u", "v")]})
        versions = {store.version: store.snapshot()}
        for i in range(25):
            store.add("q1", f"n{i}", "v")
            durability.wal.commit()
            durability.maybe_checkpoint(store)
            versions[store.version] = store.snapshot()
        durability.close()

        wal_path = tmp_path / "wal.log"
        pristine_wal = wal_path.read_bytes()
        pristine_ckpts = {}
        for _version, ckpt in list_checkpoints(tmp_path):
            for name in ("graph.csr", "meta.json"):
                file = os.path.join(ckpt, name)
                with open(file, "rb") as handle:
                    pristine_ckpts[file] = handle.read()

        import shutil

        rng = random.Random("recovery-fuzz")
        for round_number in range(60):
            # Restore the pristine layout (a prior round may have
            # quarantined a checkpoint directory), then mangle one file.
            for stray in list(tmp_path.iterdir()):
                if stray.is_dir() and ".corrupt" in stray.name:
                    shutil.rmtree(stray)
            wal_path.write_bytes(pristine_wal)
            for file, blob in pristine_ckpts.items():
                os.makedirs(os.path.dirname(file), exist_ok=True)
                with open(file, "wb") as handle:
                    handle.write(blob)
            victim = rng.choice([os.fspath(wal_path)] + list(pristine_ckpts))
            blob = bytearray(open(victim, "rb").read())
            mode = rng.randrange(3)
            if mode == 0 and blob:  # bit flip
                blob[rng.randrange(len(blob))] ^= 1 << rng.randrange(8)
            elif mode == 1:  # truncation
                del blob[rng.randrange(len(blob) + 1) :]
            else:  # duplicated tail
                keep = rng.randrange(len(blob) + 1)
                blob = blob + blob[keep:]
            with open(victim, "wb") as handle:
                handle.write(bytes(blob))

            result = recover_store(tmp_path)
            snapshot = result.store.snapshot()
            assert snapshot[0] in versions, f"round {round_number}: {victim}"
            assert snapshot == versions[snapshot[0]], f"round {round_number}"


class TestDurableServer:
    def _config(self) -> TenantConfig:
        return TenantConfig(
            views={"q1": "a", "q2": "b"},
            theory=Theory.trivial({"a", "b"}),
            extensions={"q1": [("u", "v"), ("w", "v")], "q2": [("v", "z")]},
        )

    def _request(self, url, method, path, payload=None):
        import urllib.error
        import urllib.request

        data = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(url + path, data=data, method=method)
        if data is not None:
            request.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.load(response)
        except urllib.error.HTTPError as error:
            body = error.read()
            return error.code, (json.loads(body) if body else {})

    def test_clean_shutdown_then_restart_serves_identical_answers(self, tmp_path):
        server = RPQServer({"alpha": self._config()}, data_dir=tmp_path)
        with run_in_thread(server) as handle:
            status, _ = self._request(
                handle.url,
                "POST",
                "/tenants/alpha/update",
                {"ops": [{"op": "insert", "symbol": "q1", "source": "x", "target": "v"}]},
            )
            assert status == 200
            _, first = self._request(
                handle.url, "POST", "/tenants/alpha/query", {"query": "a.b"}
            )
            _, stats = self._request(handle.url, "GET", "/tenants/alpha/stats")
            assert stats["durability"]["wal"]["commits"] == 1
        # Decoy extensions: a durable restart must ignore them.
        decoy = TenantConfig(
            views={"q1": "a", "q2": "b"},
            theory=Theory.trivial({"a", "b"}),
            extensions={"q1": [("DECOY", "DECOY")]},
        )
        server2 = RPQServer({"alpha": decoy}, data_dir=tmp_path)
        with run_in_thread(server2) as handle:
            _, second = self._request(
                handle.url, "POST", "/tenants/alpha/query", {"query": "a.b"}
            )
            _, stats = self._request(handle.url, "GET", "/tenants/alpha/stats")
            assert stats["durability"]["recoveries"] == 1
        assert second["answers"] == first["answers"]
        assert second["version"] == first["version"]

    def test_shutdown_drains_queued_writes_before_exit(self, tmp_path):
        """The clean-shutdown contract: every write the server accepted
        (admitted past the 429 check) is applied, acknowledged, and
        durable even when /shutdown lands while the queue is full."""
        import http.client
        import threading

        server = RPQServer(
            {"alpha": self._config()}, data_dir=tmp_path, fsync="batch"
        )
        handle = run_in_thread(server)
        url = handle.url
        statuses: list[tuple[int, int]] = []

        def writer(lane: int) -> None:
            connection = http.client.HTTPConnection(
                server.host, server.port, timeout=30
            )
            try:
                for i in range(8):
                    connection.request(
                        "POST",
                        "/tenants/alpha/update",
                        body=json.dumps(
                            {
                                "ops": [
                                    {
                                        "op": "insert",
                                        "symbol": "q1",
                                        "source": f"w{lane}-{i}",
                                        "target": "v",
                                    }
                                ]
                            }
                        ),
                        headers={"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    statuses.append((lane, response.status))
                    response.read()
            except OSError:
                # The listener closed mid-stream: the write in flight was
                # never acknowledged, so it owes the client nothing.
                pass
            finally:
                connection.close()

        threads = [
            threading.Thread(target=writer, args=(lane,)) for lane in range(4)
        ]
        for thread in threads:
            thread.start()
        # Shutdown races the writers: whatever was acknowledged 200 must
        # survive into the recovered store.
        self._request(url, "POST", "/shutdown", {})
        for thread in threads:
            thread.join()
        handle.stop()

        acked = sum(1 for _lane, status in statuses if status == 200)
        result = recover_store(os.path.join(tmp_path, "alpha"))
        recovered = result.store.extension("q1")
        # Every acknowledged write inserted one distinct `w*` tuple, so
        # at least `acked` of them must have survived the shutdown.
        durable_writer_tuples = sum(
            1 for source, _target in recovered if source.startswith("w")
        )
        assert durable_writer_tuples >= acked
        assert result.wal_error is None


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
