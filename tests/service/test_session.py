"""QuerySession: plan reuse, invalidation contract, request shapes."""

import pytest

from repro.rpq import RPQViews, Theory, answer_with_views, rewrite_rpq
from repro.service import MaterializedViewStore, QuerySession, RewritePlanCache


@pytest.fixture
def theory():
    return Theory.trivial({"a", "b"})


@pytest.fixture
def views():
    return RPQViews({"q1": "a", "q2": "b"})


@pytest.fixture
def store():
    return MaterializedViewStore(
        {"q1": [("u", "v"), ("w", "v")], "q2": [("v", "z")]}
    )


@pytest.fixture
def session(store, views, theory):
    return QuerySession(store, views, theory)


class TestAnswering:
    def test_all_pairs(self, session):
        assert session.answer("a.b") == frozenset({("u", "z"), ("w", "z")})

    def test_matches_one_shot_helper(self, session, store, views, theory):
        result = rewrite_rpq("a*", views, theory)
        _, extensions = store.snapshot()
        assert session.answer("a*") == answer_with_views(result, extensions)

    def test_single_source(self, session):
        assert session.answer_from("a.b", "u") == frozenset({"z"})
        assert session.answer_from("a.b", "z") == frozenset()

    def test_single_source_unknown_node_is_empty(self, session):
        assert session.answer_from("a.b", "nope") == frozenset()

    def test_single_pair(self, session):
        assert session.answer_pair("a.b", "u", "z")
        assert not session.answer_pair("a.b", "u", "v")
        assert not session.answer_pair("a.b", "nope", "z")

    def test_answer_many_order(self, session):
        results = session.answer_many(["a.b", "a"])
        assert results[0] == frozenset({("u", "z"), ("w", "z")})
        assert results[1] == frozenset({("u", "v"), ("w", "v")})

    def test_views_as_plain_mapping(self, store, theory):
        session = QuerySession(store, {"q1": "a", "q2": "b"}, theory)
        assert session.answer_pair("a.b", "u", "z")


class TestCaching:
    def test_answer_memo_within_a_version(self, session):
        session.answer("a.b")
        session.answer("a.b")
        assert session.stats["answer_memo_hits"] == 1

    def test_data_change_invalidates_answers_not_plans(self, session, store):
        plans = session.plans
        first = session.answer("a.b")
        store.add("q2", "v", "z2")
        second = session.answer("a.b")
        assert second == first | {("u", "z2"), ("w", "z2")}
        assert session.stats["invalidations"] == 1
        assert plans.stats["built"] == 1  # the plan survived the update

    def test_plan_built_once_across_request_shapes(self, session):
        session.answer("a.b")
        session.answer_from("a.b", "u")
        session.answer_pair("a.b", "u", "z")
        assert session.plans.stats["built"] == 1

    def test_shared_plan_cache_across_sessions(self, store, views, theory):
        plans = RewritePlanCache()
        one = QuerySession(store, views, theory, plans=plans)
        two = QuerySession(store, views, theory, plans=plans)
        one.answer("a.b")
        two.answer("a.b")
        assert plans.stats["built"] == 1
        assert plans.stats["hits"] >= 1

    def test_warm_prebuilds(self, session):
        session.warm(["a.b", "a", "b"])
        assert session.plans.stats["built"] == 3
        session.answer("a.b")
        assert session.plans.stats["built"] == 3


class TestPlans:
    def test_plan_and_exactness(self, session):
        assert session.is_exact("a.b")
        plan = session.plan("a.b")
        assert plan.accepts(["q1", "q2"])

    def test_incomplete_views_still_sound(self, store, theory):
        session = QuerySession(store, {"q1": "a"}, theory)
        assert not session.is_exact("a+b")
        # Only the view-expressible half of the union is answerable.
        assert session.answer("a+b") == frozenset({("u", "v"), ("w", "v")})
