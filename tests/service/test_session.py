"""QuerySession: plan reuse, invalidation contract, request shapes."""

import pytest

from repro.rpq import RPQViews, Theory, answer_with_views, rewrite_rpq
from repro.service import MaterializedViewStore, QuerySession, RewritePlanCache


@pytest.fixture
def theory():
    return Theory.trivial({"a", "b"})


@pytest.fixture
def views():
    return RPQViews({"q1": "a", "q2": "b"})


@pytest.fixture
def store():
    return MaterializedViewStore(
        {"q1": [("u", "v"), ("w", "v")], "q2": [("v", "z")]}
    )


@pytest.fixture
def session(store, views, theory):
    return QuerySession(store, views, theory)


class TestAnswering:
    def test_all_pairs(self, session):
        assert session.answer("a.b") == frozenset({("u", "z"), ("w", "z")})

    def test_matches_one_shot_helper(self, session, store, views, theory):
        result = rewrite_rpq("a*", views, theory)
        _, extensions = store.snapshot()
        assert session.answer("a*") == answer_with_views(result, extensions)

    def test_single_source(self, session):
        assert session.answer_from("a.b", "u") == frozenset({"z"})
        assert session.answer_from("a.b", "z") == frozenset()

    def test_single_source_unknown_node_is_empty(self, session):
        assert session.answer_from("a.b", "nope") == frozenset()

    def test_single_pair(self, session):
        assert session.answer_pair("a.b", "u", "z")
        assert not session.answer_pair("a.b", "u", "v")
        assert not session.answer_pair("a.b", "nope", "z")

    def test_answer_many_order(self, session):
        results = session.answer_many(["a.b", "a"])
        assert results[0] == frozenset({("u", "z"), ("w", "z")})
        assert results[1] == frozenset({("u", "v"), ("w", "v")})

    def test_views_as_plain_mapping(self, store, theory):
        session = QuerySession(store, {"q1": "a", "q2": "b"}, theory)
        assert session.answer_pair("a.b", "u", "z")


class TestCaching:
    def test_answer_memo_within_a_version(self, session):
        session.answer("a.b")
        session.answer("a.b")
        assert session.stats["answer_memo_hits"] == 1

    def test_data_change_invalidates_answers_not_plans(self, session, store):
        plans = session.plans
        first = session.answer("a.b")
        store.add("q2", "v", "z2")
        second = session.answer("a.b")
        assert second == first | {("u", "z2"), ("w", "z2")}
        assert session.stats["invalidations"] == 1
        assert plans.stats["built"] == 1  # the plan survived the update

    def test_plan_built_once_across_request_shapes(self, session):
        session.answer("a.b")
        session.answer_from("a.b", "u")
        session.answer_pair("a.b", "u", "z")
        assert session.plans.stats["built"] == 1

    def test_shared_plan_cache_across_sessions(self, store, views, theory):
        plans = RewritePlanCache()
        one = QuerySession(store, views, theory, plans=plans)
        two = QuerySession(store, views, theory, plans=plans)
        one.answer("a.b")
        two.answer("a.b")
        assert plans.stats["built"] == 1
        assert plans.stats["hits"] >= 1

    def test_warm_prebuilds(self, session):
        session.warm(["a.b", "a", "b"])
        assert session.plans.stats["built"] == 3
        session.answer("a.b")
        assert session.plans.stats["built"] == 3


class TestPlans:
    def test_plan_and_exactness(self, session):
        assert session.is_exact("a.b")
        plan = session.plan("a.b")
        assert plan.accepts(["q1", "q2"])

    def test_incomplete_views_still_sound(self, store, theory):
        session = QuerySession(store, {"q1": "a"}, theory)
        assert not session.is_exact("a+b")
        # Only the view-expressible half of the union is answerable.
        assert session.answer("a+b") == frozenset({("u", "v"), ("w", "v")})


class TestIncrementalMaintenance:
    """Replayable deltas patch the retained sweep state — insertions
    resume the sweep, deletions run delete-rederive; only stale logs and
    the ``incremental=False`` knob pay a full recompute."""

    def test_insert_is_absorbed_incrementally(self, session, store):
        first = session.answer("a.b")
        assert session.stats["full_recomputes"] == 1
        store.add("q2", "v", "z2")
        assert session.answer("a.b") == first | {("u", "z2"), ("w", "z2")}
        assert session.stats["incremental_updates"] == 1
        assert session.stats["full_recomputes"] == 1
        assert session.stats["delta_edges_applied"] == 1

    def test_multi_update_delta_absorbed_in_one_step(self, session, store):
        session.answer("a.b")
        store.add("q1", "u2", "v")
        store.add_many("q2", [("v", "z3"), ("v", "z4")])
        session.answer("a.b")
        assert session.stats["incremental_updates"] == 1
        assert session.stats["delta_edges_applied"] == 3

    def test_deletion_is_absorbed_incrementally(self, session, store):
        session.answer("a.b")
        store.remove("q1", "u", "v")
        assert session.answer("a.b") == frozenset({("w", "z")})
        assert session.stats["incremental_updates"] == 1
        assert session.stats["incremental_deletes"] == 1
        assert session.stats["full_recomputes"] == 1

    def test_mixed_delta_patches_in_one_step(self, session, store):
        session.answer("a.b")
        store.add("q1", "u2", "v")
        store.remove("q2", "v", "z")
        store.add("q2", "v", "z2")
        assert session.answer("a.b") == frozenset(
            {("u", "z2"), ("w", "z2"), ("u2", "z2")}
        )
        assert session.stats["incremental_updates"] == 1
        assert session.stats["incremental_deletes"] == 1
        assert session.stats["delta_edges_applied"] == 3
        assert session.stats["full_recomputes"] == 1

    def test_rederived_bits_are_counted(self, views, theory):
        # ("u","z") is derivable through v and through v2: deleting the
        # v-route over-deletes the answer, which the v2-route re-proves.
        store = MaterializedViewStore(
            {"q1": [("u", "v"), ("u", "v2")], "q2": [("v", "z"), ("v2", "z")]}
        )
        session = QuerySession(store, views, theory)
        assert session.answer("a.b") == frozenset({("u", "z")})
        store.remove("q1", "u", "v")
        assert session.answer("a.b") == frozenset({("u", "z")})
        assert session.stats["incremental_deletes"] == 1
        assert session.stats["rederived_bits"] >= 1
        assert session.stats["full_recomputes"] == 1

    def test_stale_log_forces_full_recompute(self, views, theory):
        store = MaterializedViewStore(
            {"q1": [("u", "v")], "q2": [("v", "z")]}, log_limit=1
        )
        session = QuerySession(store, views, theory)
        session.answer("a.b")
        store.add("q1", "u2", "v")
        store.add("q1", "u3", "v")  # compacts the first insert away
        assert session.answer("a.b") == frozenset(
            {("u", "z"), ("u2", "z"), ("u3", "z")}
        )
        assert session.stats["incremental_updates"] == 0
        assert session.stats["full_recomputes"] == 2

    def test_empty_view_fill_is_absorbed_incrementally(self, theory):
        # The compile domain is pinned to the view alphabet, so q2's
        # first tuple is an ordinary insert delta — not a label-domain
        # change recompiling the automaton and orphaning retained state.
        store = MaterializedViewStore({"q1": [("u", "v")]})
        session = QuerySession(store, {"q1": "a", "q2": "b"}, theory)
        assert session.answer("a.b") == frozenset()
        store.add("q2", "v", "z")
        assert session.answer("a.b") == frozenset({("u", "z")})
        assert session.stats["full_recomputes"] == 1
        assert session.stats["incremental_updates"] == 1

    def test_delete_last_tuple_then_reinsert_keeps_state(self, session, store):
        # Regression: ``GraphDB.remove_edge`` drops emptied label buckets,
        # so deleting a view's last tuple used to shrink
        # ``graph.domain()`` — the old compile-cache key — recompiling
        # every plan and orphaning every retained sweep state over a
        # transient blip.  With the domain pinned to the view alphabet,
        # both the delete and the reinsert are ordinary patches.
        first = session.answer("a.b")
        store.remove("q2", "v", "z")  # q2's only tuple
        assert "q2" not in store
        assert session.answer("a.b") == frozenset()
        store.add("q2", "v", "z")
        assert session.answer("a.b") == first
        assert session.stats["full_recomputes"] == 1
        assert session.stats["incremental_updates"] == 2
        assert session.stats["incremental_deletes"] == 1

    def test_incremental_false_never_retains_state(self, store, views, theory):
        session = QuerySession(store, views, theory, incremental=False)
        session.answer("a.b")
        store.add("q2", "v", "z2")
        session.answer("a.b")
        assert session.stats["full_recomputes"] == 2
        assert session.stats["incremental_updates"] == 0
        assert session._delta_states == {}

    def test_parallel_session_routes_deltas_to_full_sharded_sweeps(
        self, store, views, theory
    ):
        plain = QuerySession(store, views, theory)
        sharded = QuerySession(store, views, theory, parallelism=3)
        sharded.answer("a.b")
        store.add("q2", "v", "z2")
        assert sharded.answer("a.b") == plain.answer("a.b")
        assert sharded.stats["incremental_updates"] == 0
        assert sharded.stats["full_recomputes"] == 2
        assert sharded.stats["parallel_sweeps"] == 2

    def test_answer_sorted_matches_answer(self, session, store):
        store.add("q1", "u2", "v")
        answers = session.answer("a.b")
        sorted_answers = session.answer_sorted("a.b")
        assert frozenset(sorted_answers) == answers
        graph = store.graph
        keys = [
            (graph.node_id(x), graph.node_id(y)) for x, y in sorted_answers
        ]
        assert keys == sorted(keys)

    def test_states_are_per_plan(self, session, store):
        session.answer("a.b")
        session.answer("a")
        store.add("q2", "v", "z2")
        session.answer("a.b")
        session.answer("a")
        # Both plans' states absorbed the same delta independently.
        assert session.stats["incremental_updates"] == 2
        assert session.stats["full_recomputes"] == 2
        assert len(session._delta_states) == 2


class TestParallelism:
    """The ``parallelism`` knob: sharded answers, invalidation, fallback."""

    def _parallel_session(self, store, views, theory, **kwargs):
        kwargs.setdefault("parallelism", 3)
        return QuerySession(store, views, theory, **kwargs)

    def test_sharded_answers_match_sequential(self, store, views, theory):
        plain = QuerySession(store, views, theory)
        sharded = self._parallel_session(store, views, theory)
        for query in ("a.b", "a*", "a+b"):
            assert sharded.answer(query) == plain.answer(query)
        assert sharded.answer_from("a.b", "u") == plain.answer_from("a.b", "u")
        assert sharded.answer_pair("a.b", "u", "z") == plain.answer_pair(
            "a.b", "u", "z"
        )
        assert sharded.stats["parallel_sweeps"] >= 5
        assert "parallel=on" in repr(sharded)

    def test_pool_workers_in_session(self, store, views, theory):
        sharded = self._parallel_session(store, views, theory, workers=2)
        assert sharded.answer("a.b") == frozenset({("u", "z"), ("w", "z")})
        assert sharded.stats["parallel_sweeps"] == 1

    def test_shard_partition_tracks_store_version(self, store, views, theory):
        sharded = self._parallel_session(store, views, theory)
        assert sharded.answer("a.b") == frozenset({("u", "z"), ("w", "z")})
        evaluator = sharded._evaluator
        partition = evaluator.sharded
        store.add("q2", "v", "z2")
        assert sharded.answer("a.b") == frozenset(
            {("u", "z"), ("w", "z"), ("u", "z2"), ("w", "z2")}
        )
        # The partition was recut for the new version, but the evaluator
        # (and with it any worker pool) survived.
        assert sharded._evaluator is evaluator
        assert evaluator.sharded is not partition
        assert evaluator.generation == 1

    def test_pool_survives_version_bumps(self, store, views, theory):
        """A trickle of single-tuple updates must not respawn the worker
        pool per tuple — the partition refreshes, the processes stay."""
        sharded = self._parallel_session(store, views, theory, workers=2)
        assert sharded.answer("a.b") == frozenset({("u", "z"), ("w", "z")})
        pool = sharded._evaluator._pool
        assert pool is not None  # this suite runs where pools spawn
        expected = {("u", "z"), ("w", "z")}
        for i in range(3):
            store.add("q1", f"extra{i}", "v")
            expected.add((f"extra{i}", "z"))
            assert sharded.answer("a.b") == frozenset(expected)
            assert sharded._evaluator._pool is pool
        store.remove("q1", "extra0", "v")
        expected.discard(("extra0", "z"))
        assert sharded.answer("a.b") == frozenset(expected)
        assert sharded._evaluator._pool is pool
        assert sharded.stats["parallel_sweeps"] == 5

    def test_parallelism_below_two_stays_sequential(self, store, views, theory):
        session = QuerySession(store, views, theory, parallelism=1)
        session.answer("a.b")
        assert session.stats["parallel_sweeps"] == 0
        assert "parallel" not in repr(session)

    def test_worker_fault_falls_back_and_session_stays_usable(
        self, store, views, theory
    ):
        """A worker dying mid-sweep (injected through a real process
        pool) must degrade the session to sequential evaluation — same
        answers, no hang, parallelism off for the session's lifetime."""
        from repro.rpq.sharded import ParallelEvaluator

        expected = QuerySession(store, views, theory).answer("a.b")
        sharded = self._parallel_session(store, views, theory, workers=2)
        # Plant a faulty evaluator for the current version, as if the
        # next sweep's worker were about to die.
        sharded._evaluator = ParallelEvaluator(
            store.graph, num_shards=3, workers=2, _fail_shards=[1]
        )
        sharded._evaluator_version = store.version
        assert sharded.answer("a.b") == expected
        assert sharded.stats["parallel_failures"] == 1
        assert sharded.stats["parallel_sweeps"] == 0
        assert "parallel=off" in repr(sharded)
        # Still usable, now on the sequential engine.
        assert sharded.answer_from("a.b", "u") == frozenset({"z"})
        assert sharded.answer_pair("a.b", "u", "z")
        assert sharded.stats["parallel_failures"] == 1

    def test_sequential_path_fault_also_degrades(
        self, store, views, theory, monkeypatch
    ):
        """workers=1 faults travel the same typed-error contract."""
        import repro.rpq.sharded as sharded_mod

        def boom(*args, **kwargs):
            raise RuntimeError("kernel bug")

        monkeypatch.setattr(sharded_mod, "_sweep_shard", boom)
        session = self._parallel_session(store, views, theory, workers=1)
        assert session.answer("a.b") == frozenset({("u", "z"), ("w", "z")})
        assert session.stats["parallel_failures"] == 1

    def test_close_releases_pool_and_session_stays_usable(
        self, store, views, theory
    ):
        with self._parallel_session(store, views, theory, workers=2) as session:
            expected = session.answer("a.b")
            assert session._evaluator is not None
        assert session._evaluator is None  # context exit released it
        assert session.answer_pair("a.b", "u", "z")  # rebuilt on demand
        assert session.answer("a.b") == expected

    def test_single_source_fault_falls_back_too(
        self, store, views, theory, monkeypatch
    ):
        """answer_from/answer_pair honour the same degradation contract
        as answer — a sweep fault never escapes the session."""
        import repro.rpq.sharded as sharded_mod

        def boom(*args, **kwargs):
            raise RuntimeError("kernel bug")

        monkeypatch.setattr(sharded_mod, "_single_source_sweep", boom)
        session = self._parallel_session(store, views, theory)
        assert session.answer_from("a.b", "u") == frozenset({"z"})
        assert session.stats["parallel_failures"] == 1
