"""Regression: QuerySession must survive interleaved answer/mutate threads.

The defect: the session had no internal synchronization, so server
handler threads interleaving ``answer`` with store mutations could tear
its compound state transitions — ``_sync_version`` clearing the memo
while another thread was filling it, two threads racing an evaluator
refresh, or a sweep state being patched while a second reader resumed
the same fixpoint (PR 7's memo-write guard narrowed the memo race but
not the rest).  The fix: one re-entrant per-session lock around every
public request method, exposed as ``session.lock`` so a writer sharing
the store with live reader threads can serialize its mutations too.
"""

from __future__ import annotations

import threading

import pytest

from repro.rpq import Theory
from repro.service import MaterializedViewStore, QuerySession


def _fixture():
    store = MaterializedViewStore(
        {"q1": [("u", "v"), ("w", "v")], "q2": [("v", "z")]}
    )
    theory = Theory.trivial({"a", "b"})
    views = {"q1": "a", "q2": "b"}
    return store, views, theory, QuerySession(store, views, theory)


class TestHammerInterleavings:
    ROUNDS = 120

    def _hammer(self, session, store, *, readers=3):
        """Writer thread mutating under the lock + reader threads issuing
        all three request shapes, as server handlers would."""
        errors: list[BaseException] = []
        stop = threading.Event()

        def writer():
            try:
                for i in range(self.ROUNDS):
                    with session.lock:
                        store.add("q1", f"x{i}", "v")
                    session.answer("a.b")
                    if i % 3 == 0:
                        with session.lock:
                            store.remove("q1", f"x{i}", "v")
                        session.answer("a.b")
            except BaseException as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    answers = session.answer("a.b")
                    assert isinstance(answers, frozenset)
                    assert session.answer_from("a.b", "u") <= {
                        y for _x, y in answers
                    } | {"z"}
                    session.answer_pair("a.b", "u", "z")
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer)]
        threads += [threading.Thread(target=reader) for _ in range(readers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "hammer deadlocked"
        return errors

    def test_concurrent_answer_and_update_threads(self):
        store, views, theory, session = _fixture()
        errors = self._hammer(session, store)
        assert errors == [], f"interleaved threads broke the session: {errors}"
        # Post-hammer state is coherent: answers match a fresh session
        # over the same store, and the memo holds current-version data.
        fresh = QuerySession(store, views, theory)
        assert session.answer("a.b") == fresh.answer("a.b")
        assert session.answer_sorted("a.b") == fresh.answer_sorted("a.b")

    def test_concurrent_threads_with_incremental_states(self):
        """The delta-maintained path (retained sweep states patched by
        every replayable delta) under the same interleavings."""
        store, views, theory, session = _fixture()
        session.answer("a.b")  # retain a sweep state before the hammer
        errors = self._hammer(session, store, readers=2)
        assert errors == [], errors
        fresh = QuerySession(store, views, theory)
        assert session.answer_sorted("a.b") == fresh.answer_sorted("a.b")
        assert session.stats["incremental_updates"] > 0

    def test_lock_is_reentrant_for_nested_requests(self):
        _store, _views, _theory, session = _fixture()
        with session.lock:
            with session.lock:
                assert session.answer_pair("a.b", "u", "z")

    def test_lock_serializes_compound_read_modify_read(self):
        """Holding the lock really excludes other threads' requests."""
        store, _views, _theory, session = _fixture()
        session.answer("a.b")
        observed = []
        entered = threading.Event()

        def other():
            entered.set()
            observed.append(session.answer("a.b"))

        thread = threading.Thread(target=other)
        with session.lock:
            store.add("q1", "locked", "v")
            thread.start()
            entered.wait(timeout=10)
            # The other thread is blocked on the lock: nothing observed
            # until we release, so it can only see the post-mutation set.
            assert observed == []
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert observed and ("locked", "z") in observed[0]


class TestWarmAndCloseUnderLock:
    def test_warm_and_close_are_guarded(self):
        store, _views, _theory, session = _fixture()
        done = []

        def background():
            session.warm(["a.b", "b"])
            session.answer("a.b")
            done.append(True)

        threads = [threading.Thread(target=background) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(done) == 4
        session.close()
        assert session.answer_pair("a.b", "u", "z")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
