"""The async multi-tenant HTTP front end: routes, pinning, admission.

Exercises :mod:`repro.service.server` over real HTTP (the server on a
background thread via ``run_in_thread``, clients on ``http.client`` /
``urllib``), plus the closed-loop load generator and its differential
oracle (:mod:`repro.service.loadgen`) in-loop.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import urllib.error
import urllib.request

import pytest

from repro.rpq import Theory
from repro.service import RPQServer, TenantConfig, run_in_thread
from repro.service.loadgen import (
    make_tenant_workload,
    replay_oracle,
    run_loadgen,
)


def _tenant_config(**overrides) -> TenantConfig:
    knobs = dict(
        views={"q1": "a", "q2": "b"},
        theory=Theory.trivial({"a", "b"}),
        extensions={"q1": [("u", "v"), ("w", "v")], "q2": [("v", "z")]},
    )
    knobs.update(overrides)
    return TenantConfig(**knobs)


def _request(url: str, method: str, path: str, payload=None):
    """One HTTP exchange; returns (status, decoded JSON body)."""
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(url + path, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        body = error.read()
        return error.code, (json.loads(body) if body else {})


@pytest.fixture
def served():
    server = RPQServer({"alpha": _tenant_config()})
    handle = run_in_thread(server)
    try:
        yield server, handle.url
    finally:
        handle.stop()


class TestEndpoints:
    def test_health_reports_every_tenant(self, served):
        _server, url = served
        status, body = _request(url, "GET", "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["tenants"]["alpha"]["version"] >= 1
        assert body["tenants"]["alpha"]["pending"] == 0

    def test_all_pairs_query_with_version_pin(self, served):
        server, url = served
        status, body = _request(url, "POST", "/tenants/alpha/query", {"query": "a.b"})
        assert status == 200
        assert body["mode"] == "all"
        assert body["version"] == server.tenants["alpha"].store.version
        assert body["answers"] == [["u", "z"], ["w", "z"]]

    def test_single_source_and_pair_modes(self, served):
        _server, url = served
        status, body = _request(
            url, "POST", "/tenants/alpha/query", {"query": "a.b", "source": "u"}
        )
        assert (status, body["mode"], body["targets"]) == (200, "single_source", ["z"])
        status, body = _request(
            url,
            "POST",
            "/tenants/alpha/query",
            {"query": "a.b", "source": "u", "target": "z"},
        )
        assert (status, body["mode"], body["found"]) == (200, "pair", True)
        status, body = _request(
            url,
            "POST",
            "/tenants/alpha/query",
            {"query": "a.b", "source": "u", "target": "u"},
        )
        assert (status, body["found"]) == (200, False)

    def test_update_flows_into_answers(self, served):
        server, url = served
        before = server.tenants["alpha"].store.version
        status, body = _request(
            url,
            "POST",
            "/tenants/alpha/update",
            {
                "ops": [
                    {"op": "insert", "symbol": "q1", "source": "x", "target": "v"},
                    {"op": "delete", "symbol": "q1", "source": "w", "target": "v"},
                ]
            },
        )
        assert status == 200
        assert body["applied"] == 2
        assert body["requested"] == 2
        assert body["seq"] == 1
        assert body["version"] == before + 2
        status, body = _request(url, "POST", "/tenants/alpha/query", {"query": "a.b"})
        assert status == 200
        assert body["answers"] == [["u", "z"], ["x", "z"]]
        assert body["version"] == before + 2

    def test_duplicate_insert_applies_nothing_but_succeeds(self, served):
        _server, url = served
        status, body = _request(
            url,
            "POST",
            "/tenants/alpha/update",
            {"ops": [{"op": "insert", "symbol": "q1", "source": "u", "target": "v"}]},
        )
        assert status == 200
        assert body["applied"] == 0

    def test_stats_counts_served_requests(self, served):
        _server, url = served
        _request(url, "POST", "/tenants/alpha/query", {"query": "a.b"})
        _request(
            url,
            "POST",
            "/tenants/alpha/update",
            {"ops": [{"op": "insert", "symbol": "q2", "source": "v", "target": "y"}]},
        )
        status, body = _request(url, "GET", "/stats")
        assert status == 200
        tenant = body["tenants"]["alpha"]
        assert tenant["served"]["queries"] == 1
        assert tenant["served"]["updates"] == 1
        assert tenant["served"]["errors"] == 0
        assert tenant["writes"] == 1
        assert tenant["session"]["requests"] >= 1
        assert body["server"]["requests"] >= 3
        status, alone = _request(url, "GET", "/tenants/alpha/stats")
        assert status == 200
        assert alone["name"] == "alpha"
        assert alone["tuples"] == tenant["tuples"]

    def test_keep_alive_serves_many_requests_per_connection(self, served):
        server, url = served
        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            connections_before = server.stats["connections"]
            for _ in range(3):
                connection.request(
                    "POST",
                    "/tenants/alpha/query",
                    body=json.dumps({"query": "a.b"}),
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                assert response.status == 200
                assert json.load(response)["answers"] == [["u", "z"], ["w", "z"]]
            assert server.stats["connections"] == connections_before + 1
        finally:
            connection.close()

    def test_connection_close_honoured(self, served):
        server, url = served
        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            connection.request(
                "GET", "/health", headers={"Connection": "close"}
            )
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()


class TestRejections:
    def test_unknown_tenant_404(self, served):
        _server, url = served
        status, body = _request(url, "POST", "/tenants/nope/query", {"query": "a"})
        assert status == 404
        assert "unknown tenant" in body["error"]

    def test_unknown_route_404(self, served):
        _server, url = served
        status, _body = _request(url, "GET", "/totally/else")
        assert status == 404

    def test_bad_json_400(self, served):
        server, url = served
        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            connection.request(
                "POST", "/tenants/alpha/query", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert "not valid JSON" in json.load(response)["error"]
        finally:
            connection.close()

    def test_missing_query_400(self, served):
        _server, url = served
        status, body = _request(url, "POST", "/tenants/alpha/query", {"q": "a"})
        assert status == 400
        assert "'query'" in body["error"]

    def test_unparseable_query_400(self, served):
        _server, url = served
        status, body = _request(
            url, "POST", "/tenants/alpha/query", {"query": "a.(b"}
        )
        assert status == 400
        assert "bad query" in body["error"]

    def test_target_without_source_400(self, served):
        _server, url = served
        status, body = _request(
            url, "POST", "/tenants/alpha/query", {"query": "a", "target": "v"}
        )
        assert status == 400

    def test_update_unknown_symbol_400(self, served):
        server, url = served
        before = server.tenants["alpha"].store.version
        status, body = _request(
            url,
            "POST",
            "/tenants/alpha/update",
            {"ops": [{"op": "insert", "symbol": "zz", "source": "a", "target": "b"}]},
        )
        assert status == 400
        assert "unknown view symbol" in body["error"]
        assert body["symbols"] == ["q1", "q2"]
        # Validation happens before admission: nothing was applied.
        assert server.tenants["alpha"].store.version == before

    def test_query_unknown_symbol_400(self, served):
        """A query over symbols outside the tenant's database alphabet
        is rejected up front (400), not evaluated into a 500: the
        compile alphabet is pinned to the view symbols, so such a query
        can never be answered."""
        server, url = served
        for query in ("zz", "a.zz*"):
            status, body = _request(
                url, "POST", "/tenants/alpha/query", {"query": query}
            )
            assert status == 400, query
            assert "outside this tenant's database alphabet" in body["error"]
            assert "zz" in body["error"]
            assert body["symbols"] == ["a", "b"]
        assert server.tenants["alpha"].served["errors"] == 0

    def test_update_bad_shape_400(self, served):
        _server, url = served
        for ops in ([], [{"op": "upsert", "symbol": "q1", "source": "a", "target": "b"}],
                    [{"op": "insert", "symbol": "q1", "source": 3, "target": "b"}],
                    ["nope"]):
            status, _body = _request(
                url, "POST", "/tenants/alpha/update", {"ops": ops}
            )
            assert status == 400, ops

    def test_errors_do_not_kill_the_connection(self, served):
        server, url = served
        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            connection.request("POST", "/tenants/alpha/query", body=b"")
            assert connection.getresponse().read() is not None
            connection.request(
                "POST",
                "/tenants/alpha/query",
                body=json.dumps({"query": "a.b"}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 200
        finally:
            connection.close()


class TestLifecycle:
    def test_shutdown_endpoint_stops_the_server(self):
        server = RPQServer({"alpha": _tenant_config()})
        handle = run_in_thread(server)
        status, body = _request(handle.url, "POST", "/shutdown", {})
        assert (status, body["status"]) == (200, "shutting-down")
        handle._thread.join(timeout=30)
        assert not handle._thread.is_alive()
        handle.stop()  # idempotent after the thread exited

    def test_handle_is_a_context_manager(self):
        server = RPQServer({"alpha": _tenant_config()})
        with run_in_thread(server) as handle:
            status, _body = _request(handle.url, "GET", "/health")
            assert status == 200

    def test_server_requires_tenants(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            RPQServer({})

    def test_max_queue_validated(self):
        with pytest.raises(ValueError, match="max_queue"):
            _tenant_config(max_queue=0)


class TestVersionPinning:
    def test_reads_interleaved_with_writes_pin_consistent_versions(self):
        """A read admitted between write batches reports a version it
        could only hold if it ran at a batch boundary, and its answers
        are exactly the oracle's answers at that version."""
        workload = make_tenant_workload(
            "pin", "grid", 11, edges=60, requests=80, write_fraction=0.3
        )
        server = RPQServer({"pin": workload.config})

        async def drive():
            await server.start()
            try:
                return await run_loadgen(
                    server.host, server.port, [workload], readers_per_tenant=3
                )
            finally:
                await server.aclose()

        records, _wall = asyncio.run(drive())
        checked = replay_oracle(workload, records)
        queries = sum(1 for op in workload.traffic if op.kind == "query")
        rejected = sum(1 for r in records if r["status"] == 429)
        assert checked == queries - rejected
        assert checked > 0
        assert all(r["status"] in (200, 429) for r in records)

    def test_two_tenants_are_isolated(self):
        """Writes to one tenant never move another tenant's versions or
        answers; both oracles hold simultaneously."""
        workloads = [
            make_tenant_workload("iso-a", "grid", 5, edges=60, requests=40),
            make_tenant_workload("iso-b", "chain", 9, edges=50, requests=40),
        ]
        server = RPQServer({w.name: w.config for w in workloads})

        async def drive():
            await server.start()
            try:
                return await run_loadgen(
                    server.host, server.port, workloads, readers_per_tenant=2
                )
            finally:
                await server.aclose()

        records, _wall = asyncio.run(drive())
        for workload in workloads:
            assert replay_oracle(workload, records) > 0
        for workload in workloads:
            expected = len(
                [op for op in workload.traffic if op.kind == "update"]
            )
            assert server.tenants[workload.name].write_seq == expected


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
