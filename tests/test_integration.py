"""End-to-end integration scenarios crossing all packages.

Each scenario exercises a realistic pipeline: parse -> rewrite -> check ->
answer, mixing the regex, automata, core and rpq layers the way a user
would.
"""

import random

from repro import ViewSet, maximal_rewriting
from repro.automata import are_equivalent, to_nfa as compile_nfa
from repro.core import existential_rewriting, find_partial_rewritings
from repro.regex import parse, simplify, to_string
from repro.regex.ast import concat, star, sym
from repro.rpq import (
    RPQ,
    GeneralizedPathQuery,
    GraphDB,
    Pred,
    RPQViews,
    Theory,
    evaluate,
    evaluate_gpq,
    random_graph,
    rewrite_gpq,
    rewrite_rpq,
)


class TestWarehouseScenario:
    """A warehouse materializes views; queries run against them only."""

    def setup_method(self):
        self.theory = Theory.trivial({"part_of", "supplied_by", "located_in"})
        self.db = GraphDB()
        rng = random.Random(99)
        parts = [f"part{i}" for i in range(8)]
        for i, part in enumerate(parts[1:], start=1):
            self.db.add_edge(part, "part_of", parts[rng.randrange(i)])
        for part in parts:
            self.db.add_edge(part, "supplied_by", f"supplier_{rng.randrange(3)}")
        for supplier in range(3):
            self.db.add_edge(
                f"supplier_{supplier}", "located_in", f"city_{supplier % 2}"
            )

    def test_transitive_query_through_views(self):
        q0 = "part_of*.supplied_by.located_in"
        views = RPQViews(
            {
                "vPartChain": "part_of*",
                "vSupplier": "supplied_by",
                "vCity": "located_in",
            }
        )
        result = rewrite_rpq(q0, views, self.theory)
        assert result.is_exact()
        assert result.answer(self.db) == evaluate(self.db, q0, self.theory)

    def test_weaker_views_still_sound(self):
        q0 = "part_of*.supplied_by"
        views = RPQViews({"vHop": "part_of.part_of", "vSupplier": "supplied_by"})
        result = rewrite_rpq(q0, views, self.theory)
        assert not result.is_exact()  # odd-length chains missing
        assert result.answer(self.db) <= evaluate(self.db, q0, self.theory)


class TestContainedVsContaining:
    """The two dual rewritings bracket the query language."""

    def test_bracketing(self):
        views = ViewSet({"e1": "a.b", "e2": "b"})
        e0 = "a.b.b*"
        contained = maximal_rewriting(e0, views)
        containing = existential_rewriting(e0, views)
        e0_nfa = compile_nfa(parse(e0))
        # exp(contained) subseteq L(E0) subseteq exp(containing)
        from repro.automata import is_contained

        assert is_contained(contained.expansion(), e0_nfa)
        assert containing.covers()
        # and the Sigma_E languages nest
        for word in contained.words(max_length=3):
            assert containing.accepts(word)


class TestRegexPipelineRoundTrip:
    def test_rewrite_of_rewriting_expansion_recovers_language(self):
        # Take the rewriting, expand it, and verify the expansion automaton
        # round-trips through regex printing and parsing.
        views = ViewSet({"e1": "a", "e2": "a.c*.b", "e3": "c"})
        result = maximal_rewriting("a.(b.a+c)*", views)
        from repro.automata import to_regex

        expansion_expr = to_regex(result.expansion())
        reparsed = parse(to_string(expansion_expr))
        assert are_equivalent(compile_nfa(reparsed), result.expansion())

    def test_simplify_stable_on_rewriting_output(self):
        views = ViewSet({"e1": "a", "e2": "b"})
        result = maximal_rewriting("(a+b)*", views)
        expr = result.regex()
        assert simplify(expr) == simplify(simplify(expr))


class TestGeneralizedPipeline:
    def test_three_hop_itinerary(self):
        theory = Theory(
            domain={"flight", "train", "hotel"},
            predicates={"Transport": {"flight", "train"}},
        )
        db = GraphDB(
            [
                ("nyc", "flight", "lisbon"),
                ("lisbon", "train", "porto"),
                ("porto", "hotel", "stay1"),
                ("lisbon", "hotel", "stay2"),
            ]
        )
        gpq = GeneralizedPathQuery.of(
            RPQ(star(sym(Pred("Transport")))), RPQ(sym("hotel"))
        )
        direct = evaluate_gpq(db, gpq, theory)
        assert ("nyc", "porto", "stay1") in direct
        assert ("nyc", "lisbon", "stay2") in direct
        views = RPQViews(
            {"vT": RPQ(sym(Pred("Transport"))), "vH": RPQ(sym("hotel"))}
        )
        rewriting = rewrite_gpq(gpq, views, theory)
        assert rewriting.is_exact()
        assert rewriting.answer(db) == direct


class TestPartialRewritingPipeline:
    def test_partial_then_verify_on_database(self):
        # Find the minimal extension, then confirm completeness on a DB.
        views = ViewSet({"q1": "a", "q2": "b"})
        solutions = find_partial_rewritings("a.(b+c)", views)
        extension = solutions[0]
        assert extension.added == ("c",)
        theory = Theory.trivial({"a", "b", "c"})
        db = GraphDB([("x", "a", "y"), ("y", "c", "z")])
        rpq_views = RPQViews(
            {"q1": "a", "q2": "b", "q3": "c"}
        )
        result = rewrite_rpq("a.(b+c)", rpq_views, theory)
        assert result.answer(db) == evaluate(db, "a.(b+c)", theory)


class TestIntroductionQueryFullStack:
    def test_paper_intro_end_to_end(self):
        # _* (rome+jerusalem) _* restaurant over a two-city graph, theory
        # predicates, rewriting over indexes, answers via views.
        from repro.rpq.formulas import TOP

        theory = Theory(
            domain={"rome", "jerusalem", "link", "restaurant"},
            predicates={"Restaurant": {"restaurant"}},
        )
        db = GraphDB(
            [
                ("w0", "link", "w1"),
                ("w1", "rome", "w2"),
                ("w2", "link", "w3"),
                ("w3", "restaurant", "w4"),
                ("w1", "jerusalem", "w5"),
                ("w5", "restaurant", "w6"),
            ]
        )
        q0 = RPQ(
            concat(
                star(sym(TOP)),
                sym("rome") + sym("jerusalem"),
                star(sym(TOP)),
                sym(Pred("Restaurant")),
            )
        )
        direct = evaluate(db, q0, theory)
        assert ("w0", "w4") in direct and ("w0", "w6") in direct
        views = RPQViews(
            {
                "vHoly": RPQ(sym("rome") + sym("jerusalem")),
                "vNav": RPQ(star(sym("link"))),
                "vRest": RPQ(sym(Pred("Restaurant"))),
            }
        )
        result = rewrite_rpq(q0, views, theory)
        assert result.answer(db) <= direct
        assert ("w0", "w4") in result.answer(db)
