"""Hopcroft minimization: language preservation, minimality, canonicity."""

import random

from hypothesis import given, settings

from repro.automata.containment import are_equivalent
from repro.automata.determinize import determinize
from repro.automata.minimize import equivalent_dfa_states, minimize
from repro.automata.random_gen import random_dfa
from repro.automata.thompson import to_nfa
from repro.regex.parser import parse

from ..conftest import ALPHABET, regex_strategy, words_up_to


def dfa_of(text: str):
    return determinize(to_nfa(parse(text)))


class TestCorrectness:
    @given(regex_strategy(max_leaves=7))
    @settings(max_examples=40, deadline=None)
    def test_language_preserved(self, expr):
        dfa = determinize(to_nfa(expr))
        small = minimize(dfa)
        for w in words_up_to(ALPHABET, 3):
            assert dfa.accepts(w) == small.accepts(w)

    def test_random_dfas(self):
        rng = random.Random(11)
        for _ in range(10):
            dfa = random_dfa(rng, 8, ALPHABET)
            small = minimize(dfa)
            assert small.num_states <= dfa.num_states
            for w in words_up_to(ALPHABET, 4):
                assert dfa.accepts(w) == small.accepts(w)


class TestMinimality:
    def test_collapses_equivalent_states(self):
        # a.a + a.b.b* has redundant structure after determinization.
        dfa = dfa_of("a.a+a.a")
        assert minimize(dfa).num_states == 3

    def test_known_minimal_size(self):
        # L = words over {a,b} with an even number of a's: 2 states.
        dfa = dfa_of("(b*.a.b*.a)*.b*")
        assert minimize(dfa).num_states == 2

    def test_idempotent(self):
        dfa = dfa_of("a.(b.a+c)*")
        once = minimize(dfa)
        twice = minimize(once)
        assert twice.num_states == once.num_states

    def test_minimal_dfas_for_same_language_have_same_size(self):
        # Two syntactically different expressions for the same language.
        left = minimize(dfa_of("a.a*"))
        right = minimize(dfa_of("a*.a"))
        assert are_equivalent(left, right)
        assert left.num_states == right.num_states

    def test_untrimmed_keeps_totality(self):
        dfa = dfa_of("a.b")
        total = minimize(dfa, trim=False)
        assert total.is_total()

    def test_trimmed_has_no_dead_states(self):
        small = minimize(dfa_of("a.b"))
        # Every state must reach a final state.
        reachable = small.reachable_states()
        assert all(state in reachable for state in small.states)


class TestEquivalentStates:
    def test_equivalence_classes(self):
        dfa = dfa_of("a.a+a.a")
        mapping = equivalent_dfa_states(dfa)
        assert len(set(mapping.values())) <= dfa.completed().num_states

    def test_all_reachable_mapped(self):
        dfa = dfa_of("a.(b+c)")
        mapping = equivalent_dfa_states(dfa)
        for state in dfa.reachable_states():
            assert state in mapping
