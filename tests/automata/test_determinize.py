"""Subset construction: language preservation and determinism."""

import random

from hypothesis import given, settings

from repro.automata.determinize import determinize, determinize_with_map
from repro.automata.random_gen import random_nfa
from repro.automata.thompson import to_nfa
from repro.regex.parser import parse

from ..conftest import ALPHABET, regex_strategy, words_up_to


class TestCorrectness:
    @given(regex_strategy(max_leaves=7))
    @settings(max_examples=50, deadline=None)
    def test_language_preserved(self, expr):
        nfa = to_nfa(expr)
        dfa = determinize(nfa)
        for w in words_up_to(ALPHABET, 3):
            assert nfa.accepts(w) == dfa.accepts(w), (expr, w)

    def test_on_random_nfas(self):
        rng = random.Random(7)
        for _ in range(10):
            nfa = random_nfa(rng, 5, ALPHABET, transition_density=0.3)
            dfa = determinize(nfa)
            for w in words_up_to(ALPHABET, 4):
                assert nfa.accepts(w) == dfa.accepts(w)

    def test_classic_exponential_case(self):
        # (a+b)*.a.(a+b)^(k): minimal DFA needs 2^(k+1) states.
        k = 4
        expr = parse("(a+b)*.a." + ".".join(["(a+b)"] * k))
        dfa = determinize(to_nfa(expr))
        assert dfa.num_states >= 2 ** k
        assert dfa.accepts(tuple("a" + "b" * k))
        assert not dfa.accepts(tuple("b" + "b" * k))

    def test_result_is_deterministic(self):
        nfa = to_nfa(parse("(a+b)*.a"))
        dfa = determinize(nfa)
        for state in dfa.states:
            row = dfa.transitions_from(state)
            assert len(set(row.keys())) == len(row)

    def test_initial_state_is_zero(self):
        dfa = determinize(to_nfa(parse("a*")))
        assert dfa.initial == 0


class TestSubsetMap:
    def test_map_covers_all_states(self):
        nfa = to_nfa(parse("a.(b+c)*")).without_epsilon().trimmed()
        dfa, mapping = determinize_with_map(nfa)
        assert set(mapping.keys()) == set(dfa.states)
        for subset in mapping.values():
            assert subset <= nfa.states

    def test_initial_subset_is_initials(self):
        nfa = to_nfa(parse("a+b")).without_epsilon().trimmed()
        _dfa, mapping = determinize_with_map(nfa)
        assert mapping[0] == frozenset(nfa.initials)

    def test_final_states_contain_final_subset_members(self):
        nfa = to_nfa(parse("a.b*"))
        dfa, mapping = determinize_with_map(nfa)
        free = nfa.without_epsilon().trimmed()
        for state in dfa.states:
            expected = bool(mapping[state] & free.finals)
            assert (state in dfa.finals) == expected
