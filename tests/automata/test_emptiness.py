"""Emptiness, shortest words, bounded enumeration, universality."""

from repro.automata.determinize import determinize
from repro.automata.emptiness import (
    enumerate_words,
    is_empty,
    is_universal,
    shortest_word,
)
from repro.automata.thompson import to_nfa
from repro.regex.parser import parse


def nfa_of(text: str):
    return to_nfa(parse(text))


class TestEmptiness:
    def test_empty_language(self):
        assert is_empty(nfa_of("%empty"))
        assert is_empty(nfa_of("%empty.a"))
        assert is_empty(nfa_of("a.%empty+%empty"))

    def test_nonempty(self):
        assert not is_empty(nfa_of("a"))
        assert not is_empty(nfa_of("%eps"))
        assert not is_empty(nfa_of("%empty+a*"))

    def test_works_on_dfa(self):
        assert not is_empty(determinize(nfa_of("a.b")))
        assert is_empty(determinize(nfa_of("%empty")))


class TestShortestWord:
    def test_epsilon_is_shortest(self):
        assert shortest_word(nfa_of("a*")) == ()

    def test_single_symbol(self):
        assert shortest_word(nfa_of("a.b+c")) == ("c",)

    def test_length_two(self):
        assert shortest_word(nfa_of("a.b+a.c")) in {("a", "b"), ("a", "c")}

    def test_none_for_empty(self):
        assert shortest_word(nfa_of("%empty")) is None

    def test_long_mandatory_prefix(self):
        assert shortest_word(nfa_of("a.a.a.a.b")) == tuple("aaaab")


class TestEnumeration:
    def test_enumerates_in_length_order(self):
        words = list(enumerate_words(nfa_of("a*"), max_length=3))
        assert words == [(), ("a",), ("a", "a"), ("a", "a", "a")]

    def test_respects_max_count(self):
        words = list(enumerate_words(nfa_of("a*"), max_length=10, max_count=2))
        assert len(words) == 2

    def test_enumerates_all_members_up_to_bound(self):
        nfa = nfa_of("a.(b+c)")
        words = set(enumerate_words(nfa, max_length=2))
        assert words == {("a", "b"), ("a", "c")}

    def test_empty_language_enumerates_nothing(self):
        assert list(enumerate_words(nfa_of("%empty"), max_length=3)) == []

    def test_deterministic_order_within_length(self):
        nfa = nfa_of("b+a+c")
        assert list(enumerate_words(nfa, max_length=1)) == [("a",), ("b",), ("c",)]


class TestUniversality:
    def test_universal(self):
        assert is_universal(nfa_of("(a+b)*"), alphabet=frozenset({"a", "b"}))

    def test_not_universal(self):
        assert not is_universal(nfa_of("a*"), alphabet=frozenset({"a", "b"}))
        assert not is_universal(nfa_of("a.(a+b)*"), alphabet=frozenset({"a", "b"}))

    def test_universal_with_redundancy(self):
        assert is_universal(
            nfa_of("(a+b)*+a.b"), alphabet=frozenset({"a", "b"})
        )
