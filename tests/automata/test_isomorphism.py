"""DFA isomorphism and canonical forms (Myhill-Nerode uniqueness)."""

from hypothesis import given, settings

from repro.automata.determinize import determinize
from repro.automata.dfa import DFA
from repro.automata.isomorphism import are_isomorphic, canonical_form
from repro.automata.minimize import minimize
from repro.automata.thompson import to_nfa
from repro.regex.parser import parse

from ..conftest import regex_strategy


def minimal(text: str) -> DFA:
    return minimize(determinize(to_nfa(parse(text))))


class TestIsomorphism:
    def test_renumbered_is_isomorphic(self):
        dfa = minimal("a.(b+c)*")
        assert are_isomorphic(dfa, dfa.renumbered(start=100))

    def test_same_language_minimal_dfas_isomorphic(self):
        assert are_isomorphic(minimal("a.a*"), minimal("a*.a"))
        assert are_isomorphic(minimal("(a+b)*"), minimal("(a*.b*)*"))

    def test_different_languages_not_isomorphic(self):
        assert not are_isomorphic(minimal("a"), minimal("b"))
        assert not are_isomorphic(minimal("a"), minimal("a.a"))

    def test_same_shape_different_acceptance(self):
        left = DFA({0, 1}, {"a"}, {0: {"a": 1}, 1: {"a": 0}}, 0, {0})
        right = DFA({0, 1}, {"a"}, {0: {"a": 1}, 1: {"a": 0}}, 0, {1})
        assert not are_isomorphic(left, right)

    def test_different_alphabets(self):
        assert not are_isomorphic(minimal("a"), minimal("a").completed({"a", "z"}))

    def test_non_injective_candidate_rejected(self):
        # left has two distinct states mapping onto one right state
        left = DFA(
            {0, 1, 2}, {"a", "b"},
            {0: {"a": 1, "b": 2}, 1: {"a": 1}, 2: {"a": 2}},
            0, {1, 2},
        )
        right = DFA(
            {0, 1}, {"a", "b"}, {0: {"a": 1, "b": 1}, 1: {"a": 1}}, 0, {1}
        )
        assert not are_isomorphic(left, right)

    @given(regex_strategy(max_leaves=6))
    @settings(max_examples=30, deadline=None)
    def test_minimization_canonicity(self, expr):
        # Two pipelines to a minimal DFA must agree structurally.
        direct = minimize(determinize(to_nfa(expr)))
        via_reverse = minimize(
            determinize(to_nfa(expr).reversed().reversed())
        )
        assert are_isomorphic(direct, via_reverse)


class TestCanonicalForm:
    def test_equal_language_gives_equal_canonical_form(self):
        left = canonical_form(minimal("a.a*"))
        right = canonical_form(minimal("a*.a"))
        assert left.states == right.states
        assert left.finals == right.finals
        assert dict(left.iter_transitions() and []) == {}
        assert sorted(left.iter_transitions()) == sorted(right.iter_transitions())

    def test_canonical_form_preserves_language(self):
        dfa = minimal("a.(b.a+c)*")
        canon = canonical_form(dfa)
        for word in [(), ("a",), ("a", "c"), ("a", "b", "a"), ("b",)]:
            assert dfa.accepts(word) == canon.accepts(word)

    def test_drops_unreachable_states(self):
        dfa = DFA(
            {0, 1, 9}, {"a"}, {0: {"a": 1}, 9: {"a": 9}}, 0, {1, 9}
        )
        canon = canonical_form(dfa)
        assert canon.num_states == 2

    def test_initial_is_zero(self):
        canon = canonical_form(minimal("b.a"))
        assert canon.initial == 0
