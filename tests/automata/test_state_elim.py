"""State elimination: automaton -> regex, language-preserving and readable."""

from hypothesis import given, settings

from repro.automata.containment import are_equivalent
from repro.automata.determinize import determinize
from repro.automata.minimize import minimize
from repro.automata.state_elim import to_regex
from repro.automata.thompson import to_nfa
from repro.regex.ast import concat, star, sym
from repro.regex.parser import parse
from repro.regex.printer import to_string

from ..conftest import regex_strategy


class TestRoundTrip:
    @given(regex_strategy(max_leaves=7))
    @settings(max_examples=40, deadline=None)
    def test_regex_to_nfa_to_regex_same_language(self, expr):
        nfa = to_nfa(expr)
        back = to_regex(nfa)
        assert are_equivalent(nfa, to_nfa(back))

    def test_dfa_input(self):
        dfa = minimize(determinize(to_nfa(parse("a.(b+c)*"))))
        back = to_regex(dfa)
        assert are_equivalent(dfa, to_nfa(back))


class TestReadability:
    def test_figure1_shape(self):
        # The minimal DFA of e2*.e1.e3* converts back to exactly that shape.
        dfa = minimize(determinize(to_nfa(parse("e2*.e1.e3*"))))
        assert to_string(to_regex(dfa)) == "e2*.e1.e3*"

    def test_single_state_loop(self):
        dfa = minimize(determinize(to_nfa(parse("a*"))))
        assert to_regex(dfa) == star(sym("a"))

    def test_simple_word(self):
        dfa = minimize(determinize(to_nfa(parse("a.b.c"))))
        assert to_regex(dfa) == concat(sym("a"), sym("b"), sym("c"))

    def test_empty_language(self):
        from repro.regex.ast import EmptySet

        nfa = to_nfa(parse("%empty"))
        assert isinstance(to_regex(nfa), EmptySet)

    def test_epsilon_language(self):
        from repro.regex.ast import Epsilon

        nfa = to_nfa(parse("%eps"))
        assert isinstance(to_regex(nfa), Epsilon)

    def test_unsimplified_still_correct(self):
        nfa = to_nfa(parse("(a+b)*.c"))
        raw = to_regex(nfa, simplify_result=False)
        assert are_equivalent(nfa, to_nfa(raw))
