"""Containment / equivalence with lazy determinization, plus witnesses."""

from hypothesis import given, settings

from repro.automata.containment import (
    are_equivalent,
    containment_counterexample,
    is_contained,
)
from repro.automata.determinize import determinize
from repro.automata.thompson import to_nfa
from repro.regex.parser import parse

from ..conftest import ALPHABET, regex_strategy, words_up_to


def nfa_of(text: str):
    return to_nfa(parse(text))


class TestContainment:
    def test_obvious_containments(self):
        assert is_contained(nfa_of("a"), nfa_of("a+b"))
        assert is_contained(nfa_of("a.b"), nfa_of("a.(b+c)"))
        assert is_contained(nfa_of("%empty"), nfa_of("a"))
        assert is_contained(nfa_of("a.a"), nfa_of("a*"))

    def test_non_containments(self):
        assert not is_contained(nfa_of("a+b"), nfa_of("a"))
        assert not is_contained(nfa_of("a*"), nfa_of("a.a*"))

    def test_mixed_nfa_dfa_inputs(self):
        assert is_contained(determinize(nfa_of("a.b")), nfa_of("a.b+c"))
        assert is_contained(nfa_of("a.b"), determinize(nfa_of("(a+b)*")))

    @given(regex_strategy(max_leaves=5), regex_strategy(max_leaves=5))
    @settings(max_examples=40, deadline=None)
    def test_agrees_with_word_level_check(self, left, right):
        l_nfa, r_nfa = to_nfa(left), to_nfa(right)
        contained = is_contained(l_nfa, r_nfa)
        word_level = all(
            r_nfa.accepts(w)
            for w in words_up_to(ALPHABET, 4)
            if l_nfa.accepts(w)
        )
        if contained:
            assert word_level
        # (word-level containment on short words does not imply full
        # containment, so only the forward implication is checked)

    def test_union_absorption(self):
        assert is_contained(nfa_of("a.b*"), nfa_of("a.b*+c"))


class TestCounterexamples:
    def test_counterexample_is_shortest(self):
        cex = containment_counterexample(nfa_of("a*"), nfa_of("a.a*"))
        assert cex == ()  # epsilon is in a* but not in a.a*

    def test_counterexample_membership(self):
        left, right = nfa_of("(a+b)*"), nfa_of("a*")
        cex = containment_counterexample(left, right)
        assert cex is not None
        assert left.accepts(cex)
        assert not right.accepts(cex)

    def test_none_when_contained(self):
        assert containment_counterexample(nfa_of("a"), nfa_of("a+b")) is None


class TestEquivalence:
    def test_syntactic_variants(self):
        assert are_equivalent(nfa_of("a.a*"), nfa_of("a*.a"))
        assert are_equivalent(nfa_of("(a+b)*"), nfa_of("(a*.b*)*"))
        assert are_equivalent(nfa_of("%eps+a.a*"), nfa_of("a*"))

    def test_inequivalence(self):
        assert not are_equivalent(nfa_of("a*"), nfa_of("a.a*"))

    @given(regex_strategy(max_leaves=6))
    @settings(max_examples=30, deadline=None)
    def test_reflexive(self, expr):
        assert are_equivalent(to_nfa(expr), to_nfa(expr))
