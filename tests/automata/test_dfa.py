"""Unit tests for the DFA class: completion, complement, trimming."""

import pytest

from repro.automata.dfa import DFA


def ab_dfa() -> DFA:
    """Accepts a.b* (partial: no transitions out of state 0 on b)."""
    return DFA(
        states={0, 1},
        alphabet={"a", "b"},
        transitions={0: {"a": 1}, 1: {"b": 1}},
        initial=0,
        finals={1},
    )


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            DFA({0}, {"a"}, {}, 1, set())
        with pytest.raises(ValueError):
            DFA({0}, {"a"}, {}, 0, {3})
        with pytest.raises(ValueError):
            DFA({0}, {"a"}, {0: {"z": 0}}, 0, {0})
        with pytest.raises(ValueError):
            DFA({0}, {"a"}, {0: {"a": 9}}, 0, {0})

    def test_counts(self):
        dfa = ab_dfa()
        assert dfa.num_states == 2
        assert dfa.num_transitions == 2


class TestRuns:
    def test_accepts(self):
        dfa = ab_dfa()
        assert dfa.accepts(("a",))
        assert dfa.accepts(("a", "b", "b"))
        assert not dfa.accepts(())
        assert not dfa.accepts(("b",))

    def test_run_dies_on_missing_transition(self):
        assert ab_dfa().run(("b",)) is None

    def test_successor(self):
        dfa = ab_dfa()
        assert dfa.successor(0, "a") == 1
        assert dfa.successor(0, "b") is None


class TestCompletion:
    def test_completed_is_total(self):
        total = ab_dfa().completed()
        assert total.is_total()
        assert total.num_states == 3  # sink added

    def test_completed_preserves_language(self):
        dfa, total = ab_dfa(), ab_dfa().completed()
        for word in [(), ("a",), ("b",), ("a", "b"), ("b", "a")]:
            assert dfa.accepts(word) == total.accepts(word)

    def test_completed_total_is_identity(self):
        total = ab_dfa().completed()
        assert total.completed() is total

    def test_completed_over_larger_alphabet(self):
        total = ab_dfa().completed({"a", "b", "c"})
        assert total.is_total()
        assert "c" in total.alphabet
        assert not total.accepts(("a", "c"))

    def test_completed_rejects_smaller_alphabet(self):
        with pytest.raises(ValueError):
            ab_dfa().completed({"a"})


class TestComplement:
    def test_complement_swaps_membership(self):
        dfa = ab_dfa()
        comp = dfa.complemented()
        for word in [(), ("a",), ("b",), ("a", "b"), ("b", "b")]:
            assert dfa.accepts(word) != comp.accepts(word)

    def test_double_complement_same_language(self):
        dfa = ab_dfa()
        twice = dfa.complemented().complemented()
        for word in [(), ("a",), ("b",), ("a", "b")]:
            assert dfa.accepts(word) == twice.accepts(word)


class TestTransformations:
    def test_to_nfa_same_language(self):
        dfa = ab_dfa()
        nfa = dfa.to_nfa()
        for word in [(), ("a",), ("a", "b"), ("b",)]:
            assert dfa.accepts(word) == nfa.accepts(word)

    def test_trimmed_drops_sink(self):
        total = ab_dfa().completed()
        trimmed = total.trimmed()
        assert trimmed.num_states == 2
        assert trimmed.accepts(("a",))

    def test_trimmed_empty_language(self):
        dfa = DFA({0, 1}, {"a"}, {0: {"a": 0}}, 0, {1})
        trimmed = dfa.trimmed()
        assert trimmed.num_states == 1
        assert not trimmed.accepts(())

    def test_renumbered(self):
        dfa = ab_dfa().renumbered(start=5)
        assert min(dfa.states) == 5
        assert dfa.accepts(("a", "b"))

    def test_reachable_states(self):
        dfa = DFA(
            states={0, 1, 2},
            alphabet={"a"},
            transitions={0: {"a": 1}},
            initial=0,
            finals={1},
        )
        assert dfa.reachable_states() == {0, 1}
