"""Unit tests for the epsilon-NFA class and builder."""

import pytest

from repro.automata.nfa import EPS, NFA, NFABuilder


def simple_nfa() -> NFA:
    """Accepts a.b* — states 0 --a--> 1 with a b-loop on 1."""
    return NFA(
        states={0, 1},
        alphabet={"a", "b"},
        transitions={0: {"a": {1}}, 1: {"b": {1}}},
        initials={0},
        finals={1},
    )


class TestConstruction:
    def test_validation_initials(self):
        with pytest.raises(ValueError):
            NFA({0}, {"a"}, {}, {1}, set())

    def test_validation_finals(self):
        with pytest.raises(ValueError):
            NFA({0}, {"a"}, {}, {0}, {5})

    def test_validation_labels(self):
        with pytest.raises(ValueError):
            NFA({0}, {"a"}, {0: {"z": {0}}}, {0}, {0})

    def test_validation_targets(self):
        with pytest.raises(ValueError):
            NFA({0}, {"a"}, {0: {"a": {7}}}, {0}, {0})

    def test_empty_target_rows_dropped(self):
        nfa = NFA({0}, {"a"}, {0: {"a": set()}}, {0}, {0})
        assert nfa.num_transitions == 0

    def test_counts(self):
        nfa = simple_nfa()
        assert nfa.num_states == 2
        assert nfa.num_transitions == 2


class TestAcceptance:
    def test_basic_membership(self):
        nfa = simple_nfa()
        assert nfa.accepts(("a",))
        assert nfa.accepts(("a", "b", "b"))
        assert not nfa.accepts(())
        assert not nfa.accepts(("b",))
        assert not nfa.accepts(("a", "a"))

    def test_run_returns_reached_states(self):
        nfa = simple_nfa()
        assert nfa.run(("a",)) == frozenset({1})
        assert nfa.run(("b",)) == frozenset()

    def test_epsilon_closure(self):
        builder = NFABuilder()
        s0, s1, s2 = builder.add_states(3)
        builder.add_epsilon(s0, s1)
        builder.add_epsilon(s1, s2)
        builder.set_initial(s0)
        builder.set_final(s2)
        nfa = builder.build()
        assert nfa.epsilon_closure([s0]) == frozenset({s0, s1, s2})
        assert nfa.accepts(())

    def test_epsilon_cycle(self):
        builder = NFABuilder()
        s0, s1 = builder.add_states(2)
        builder.add_epsilon(s0, s1)
        builder.add_epsilon(s1, s0)
        builder.add_transition(s1, "a", s0)
        builder.set_initial(s0)
        builder.set_final(s0)
        nfa = builder.build()
        assert nfa.accepts(("a",))
        assert nfa.accepts(())


class TestTransformations:
    def test_reversed(self):
        nfa = simple_nfa()
        rev = nfa.reversed()
        assert rev.accepts(("a",))
        assert rev.accepts(("b", "a"))
        assert not rev.accepts(("a", "b"))

    def test_trimmed_removes_useless(self):
        nfa = NFA(
            states={0, 1, 2, 3},
            alphabet={"a"},
            transitions={0: {"a": {1, 2}}, 2: {"a": {2}}},
            initials={0},
            finals={1},
        )
        trimmed = nfa.trimmed()
        assert trimmed.states == frozenset({0, 1})
        assert trimmed.accepts(("a",))

    def test_trimmed_empty_language(self):
        nfa = NFA({0, 1}, {"a"}, {}, {0}, {1})
        trimmed = nfa.trimmed()
        assert not trimmed.accepts(())
        assert trimmed.num_states == 1

    def test_renumbered_is_isomorphic(self):
        nfa = simple_nfa().renumbered(start=10)
        assert nfa.accepts(("a", "b"))
        assert min(nfa.states) == 10

    def test_without_epsilon_preserves_language(self):
        builder = NFABuilder()
        s0, s1, s2 = builder.add_states(3)
        builder.add_epsilon(s0, s1)
        builder.add_transition(s1, "a", s2)
        builder.add_epsilon(s2, s1)
        builder.set_initial(s0)
        builder.set_final(s2)
        nfa = builder.build()
        free = nfa.without_epsilon()
        assert not free.has_epsilon_moves()
        for word in [(), ("a",), ("a", "a"), ("a", "a", "a")]:
            assert free.accepts(word) == nfa.accepts(word)

    def test_with_alphabet_extends(self):
        nfa = simple_nfa().with_alphabet({"a", "b", "c"})
        assert "c" in nfa.alphabet
        with pytest.raises(ValueError):
            simple_nfa().with_alphabet({"a"})  # drops a used label


class TestBuilder:
    def test_add_state_allocates_fresh(self):
        builder = NFABuilder()
        assert builder.add_state() == 0
        assert builder.add_state() == 1

    def test_ensure_state_bumps_counter(self):
        builder = NFABuilder()
        builder.ensure_state(5)
        assert builder.add_state() == 6

    def test_builder_collects_alphabet(self):
        builder = NFABuilder()
        s0, s1 = builder.add_states(2)
        builder.add_transition(s0, "x", s1)
        builder.add_epsilon(s0, s1)
        builder.set_initial(s0)
        builder.set_final(s1)
        nfa = builder.build()
        assert nfa.alphabet == frozenset({"x"})
        assert nfa.has_epsilon_moves()

    def test_eps_label_repr(self):
        assert repr(EPS) == "EPS"
