"""Thompson construction: structure invariants and language correctness."""

from hypothesis import given, settings

from repro.automata.nfa import EPS
from repro.automata.thompson import to_nfa, universal_nfa, word_nfa
from repro.regex.ast import EMPTY, EPSILON, concat, star, sym, union, word
from repro.regex.derivatives import matches
from repro.regex.parser import parse

from ..conftest import ALPHABET, regex_strategy, words_up_to


class TestStructure:
    """The paper's exactness check relies on view automata having a unique
    entry state (no incoming edges) and a unique exit state (no outgoing)."""

    @given(regex_strategy(max_leaves=8))
    @settings(max_examples=50, deadline=None)
    def test_unique_initial_and_final(self, expr):
        nfa = to_nfa(expr)
        assert len(nfa.initials) == 1
        assert len(nfa.finals) == 1

    @given(regex_strategy(max_leaves=8))
    @settings(max_examples=50, deadline=None)
    def test_no_incoming_to_initial_no_outgoing_from_final(self, expr):
        nfa = to_nfa(expr)
        (initial,) = nfa.initials
        (final,) = nfa.finals
        for _src, _label, dst in nfa.iter_transitions():
            assert dst != initial
        assert not nfa.transitions_from(final)


class TestLanguages:
    def test_empty_set(self):
        nfa = to_nfa(EMPTY)
        assert not nfa.accepts(())

    def test_epsilon(self):
        nfa = to_nfa(EPSILON)
        assert nfa.accepts(())
        assert not nfa.accepts(("a",))

    def test_symbol(self):
        nfa = to_nfa(sym("a"))
        assert nfa.accepts(("a",))
        assert not nfa.accepts(())

    def test_concat_union_star(self):
        nfa = to_nfa(parse("a.(b+c)*"))
        assert nfa.accepts(("a",))
        assert nfa.accepts(("a", "b", "c", "b"))
        assert not nfa.accepts(("b",))

    def test_nested_stars(self):
        nfa = to_nfa(parse("(a*.b)*"))
        assert nfa.accepts(())
        assert nfa.accepts(("b", "a", "b"))
        assert not nfa.accepts(("a",))

    @given(regex_strategy(max_leaves=7))
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_derivatives(self, expr):
        nfa = to_nfa(expr)
        for w in words_up_to(ALPHABET, 3):
            assert nfa.accepts(w) == matches(expr, w)

    def test_extra_alphabet(self):
        nfa = to_nfa(sym("a"), alphabet={"a", "z"})
        assert "z" in nfa.alphabet


class TestHelpers:
    def test_word_nfa(self):
        nfa = word_nfa(("x", "y"))
        assert nfa.accepts(("x", "y"))
        assert not nfa.accepts(("x",))
        assert not nfa.accepts(("x", "y", "x"))

    def test_empty_word_nfa(self):
        nfa = word_nfa(())
        assert nfa.accepts(())
        assert not nfa.accepts(("a",))

    def test_universal_nfa(self):
        nfa = universal_nfa({"a", "b"})
        for w in words_up_to(("a", "b"), 3):
            assert nfa.accepts(w)
