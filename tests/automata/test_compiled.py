"""Unit tests for the dense bitmask kernel (`repro.automata.compiled`).

Every kernel primitive has a dict-of-set reference in the existing
modules; these tests pin the kernel to those references on hand-built and
random automata.  The end-to-end pipeline equivalence lives in
``tests/core/test_rewriter_differential.py``.
"""

import pytest
from hypothesis import given, settings

from repro.automata import (
    DFA,
    NFA,
    are_equivalent,
    are_isomorphic,
    determinize,
    minimize,
    to_nfa,
    view_transition_relation,
)
from repro.automata.compiled import (
    DenseDFA,
    cached_view_transition_masks,
    dense_from_dfa,
    dense_from_nfa,
    determinize_dense,
    iter_bits,
    minimize_dense,
    relation_cache_clear,
    relation_cache_info,
    rewrite_sweep,
    view_transition_masks,
)
from repro.automata.compiled import _minimize_dense_sparse
from repro.regex.parser import parse

from ..conftest import regex_strategy, words_up_to


def nfa_of(expr: str) -> NFA:
    return to_nfa(parse(expr))


def total_dfa_of(expr: str, alphabet=("a", "b", "c")) -> DFA:
    return minimize(determinize(nfa_of(expr))).completed(frozenset(alphabet))


class TestDenseConversions:
    def test_dense_dfa_roundtrip_preserves_language(self):
        dfa = total_dfa_of("a.(b+c)*")
        dense, state_at = dense_from_dfa(dfa)
        back = dense.to_dfa()
        assert are_equivalent(dfa, back)
        assert len(state_at) == dfa.num_states

    def test_dense_from_dfa_requires_total(self):
        partial = determinize(nfa_of("a.b"))
        with pytest.raises(ValueError):
            dense_from_dfa(partial)

    def test_dense_accepts_matches_dfa(self):
        dfa = total_dfa_of("(a.b)*+c")
        dense, _ = dense_from_dfa(dfa)
        for word in words_up_to(("a", "b", "c"), 4):
            assert dense.accepts(word) == dfa.accepts(word), word

    def test_dense_nfa_eliminates_epsilon(self):
        dense = dense_from_nfa(nfa_of("(a+%eps).b"))
        # Thompson automata are epsilon-heavy; the dense form never is.
        assert dense.num_states >= 1
        assert all(
            isinstance(entry, tuple) and len(entry) == 2
            for moves in dense.moves
            for entry in moves
        )


class TestDeterminizeDense:
    @settings(max_examples=50, deadline=None)
    @given(expr=regex_strategy(max_leaves=6))
    def test_agrees_with_reference_subset_construction(self, expr):
        nfa = to_nfa(expr)
        dense = determinize_dense(nfa)
        reference = determinize(nfa)
        assert are_equivalent(dense.to_dfa(), reference)

    def test_result_is_total_over_superset_alphabet(self):
        dense = determinize_dense(nfa_of("a"), symbols=("a", "b", "z"))
        dfa = dense.to_dfa()
        assert dfa.is_total()
        assert dfa.alphabet == frozenset({"a", "b", "z"})
        assert dfa.accepts(("a",))
        assert not dfa.accepts(("z",))

    def test_dead_subset_materialized_once(self):
        dense = determinize_dense(nfa_of("a.b"))
        dfa = dense.to_dfa()
        # a.b over {a, b} needs exactly one sink beyond the 3 live states.
        assert dfa.is_total()
        assert dfa.num_states == 4


class TestMinimizeDense:
    @settings(max_examples=50, deadline=None)
    @given(expr=regex_strategy(max_leaves=6))
    def test_agrees_with_reference_hopcroft(self, expr):
        dense = determinize_dense(to_nfa(expr))
        reduced = minimize_dense(dense)
        reference = minimize(dense.to_dfa(), trim=False)
        assert are_isomorphic(reduced.to_dfa(), reference)
        assert reduced.num_states == len(reference.reachable_states())

    @settings(max_examples=25, deadline=None)
    @given(expr=regex_strategy(max_leaves=6))
    def test_sparse_path_matches_mask_path(self, expr):
        dense = determinize_dense(to_nfa(expr))
        assert are_isomorphic(
            minimize_dense(dense).to_dfa(), _minimize_dense_sparse(dense).to_dfa()
        )

    def test_idempotent(self):
        dense = determinize_dense(nfa_of("(a+b)*.a.(a+b)"))
        once = minimize_dense(dense)
        twice = minimize_dense(once)
        assert once.num_states == twice.num_states


class TestViewTransitionMasks:
    @settings(max_examples=40, deadline=None)
    @given(query=regex_strategy(max_leaves=5), view=regex_strategy(max_leaves=5))
    def test_agrees_with_naive_relation(self, query, view):
        dfa = minimize(determinize(to_nfa(query))).completed(
            frozenset({"a", "b", "c"})
        )
        view_nfa = to_nfa(view)
        dense, state_at = dense_from_dfa(dfa)
        masks = view_transition_masks(dense, view_nfa)
        naive = view_transition_relation(dfa, view_nfa)
        compiled = {
            state_at[i]: {state_at[j] for j in iter_bits(mask)}
            for i, mask in enumerate(masks)
        }
        assert compiled == naive

    def test_epsilon_in_view_language_gives_identity_edges(self):
        dfa = total_dfa_of("a.b")
        dense, _ = dense_from_dfa(dfa)
        masks = view_transition_masks(dense, nfa_of("a*"))
        for state, mask in enumerate(masks):
            assert mask >> state & 1  # s -> s via the empty word

    def test_empty_view_language_gives_no_edges(self):
        dfa = total_dfa_of("a")
        dense, _ = dense_from_dfa(dfa)
        assert set(view_transition_masks(dense, nfa_of("%empty"))) == {0}


class TestRelationCache:
    def test_hit_on_identical_ad_and_view(self):
        relation_cache_clear()
        dfa = total_dfa_of("a.b*")
        view = nfa_of("a.b")
        dense, _ = dense_from_dfa(dfa)
        first = cached_view_transition_masks(dense, view)
        again = cached_view_transition_masks(dense, view)
        assert first == again
        info = relation_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_structural_ad_key_shares_across_instances(self):
        relation_cache_clear()
        view = nfa_of("a")
        dense1, _ = dense_from_dfa(total_dfa_of("a+b"))
        dense2, _ = dense_from_dfa(total_dfa_of("a+b"))
        cached_view_transition_masks(dense1, view)
        cached_view_transition_masks(dense2, view)
        assert relation_cache_info()["hits"] == 1

    def test_distinct_views_do_not_collide(self):
        relation_cache_clear()
        dense, _ = dense_from_dfa(total_dfa_of("a.b"))
        first = cached_view_transition_masks(dense, nfa_of("a"))
        second = cached_view_transition_masks(dense, nfa_of("b"))
        assert first != second
        assert relation_cache_info()["misses"] == 2


class TestRewriteSweep:
    def _sweep(self, query: str, views: dict[str, str], minimize_result=True):
        sigma = frozenset().union(
            *(nfa_of(v).alphabet for v in views.values()), nfa_of(query).alphabet
        )
        dfa = minimize(determinize(nfa_of(query))).completed(sigma)
        dense, _ = dense_from_dfa(dfa)
        symbols = tuple(views)
        relations = [
            view_transition_masks(dense, nfa_of(views[s])) for s in symbols
        ]
        return rewrite_sweep(
            relations, dense, symbols, minimize_result=minimize_result
        )

    def test_complemented_acceptance(self):
        # Rewriting of a.b with views a, b: exactly the word e1.e2.
        result = self._sweep("a.b", {"e1": "a", "e2": "b"})
        assert result.accepts(("e1", "e2"))
        assert not result.accepts(("e1",))
        assert not result.accepts(("e2", "e1"))

    def test_dead_subset_is_accepting(self):
        # A view with an empty language has no expansions: vacuously fine.
        result = self._sweep("a", {"e1": "a", "e2": "%empty"})
        assert result.accepts(("e2",))
        assert result.accepts(("e2", "e1", "e2"))

    def test_minimize_flag_only_changes_size(self):
        raw = self._sweep("a.b", {"e1": "a", "e2": "b"}, minimize_result=False)
        reduced = self._sweep("a.b", {"e1": "a", "e2": "b"})
        assert reduced.num_states <= raw.num_states
        assert are_equivalent(raw.to_dfa(), reduced.to_dfa())
