"""Serialization round-trips and DOT export."""

import json

import pytest

from repro.automata.determinize import determinize
from repro.automata.serialization import (
    dfa_from_dict,
    dfa_to_dict,
    nfa_from_dict,
    nfa_to_dict,
    to_dot,
)
from repro.automata.thompson import to_nfa
from repro.regex.parser import parse

from ..conftest import ALPHABET, words_up_to


class TestNFADict:
    def test_roundtrip(self):
        nfa = to_nfa(parse("a.(b+c)*"))
        back = nfa_from_dict(nfa_to_dict(nfa))
        for w in words_up_to(ALPHABET, 3):
            assert nfa.accepts(w) == back.accepts(w)

    def test_epsilon_transitions_roundtrip(self):
        nfa = to_nfa(parse("a*"))
        payload = nfa_to_dict(nfa)
        back = nfa_from_dict(payload)
        assert back.has_epsilon_moves()
        assert back.accepts(())
        assert back.accepts(("a", "a"))

    def test_json_compatible(self):
        payload = nfa_to_dict(to_nfa(parse("a+b")))
        assert json.loads(json.dumps(payload)) == payload

    def test_rejects_wrong_kind(self):
        with pytest.raises(ValueError):
            nfa_from_dict({"kind": "dfa"})

    def test_rejects_non_string_symbols(self):
        from repro.automata.nfa import NFA

        nfa = NFA({0, 1}, {1}, {0: {1: {1}}}, {0}, {1})
        with pytest.raises(TypeError):
            nfa_to_dict(nfa)


class TestDFADict:
    def test_roundtrip(self):
        dfa = determinize(to_nfa(parse("a.b*+c")))
        back = dfa_from_dict(dfa_to_dict(dfa))
        for w in words_up_to(ALPHABET, 3):
            assert dfa.accepts(w) == back.accepts(w)

    def test_rejects_wrong_kind(self):
        with pytest.raises(ValueError):
            dfa_from_dict({"kind": "nfa"})

    def test_payload_is_sorted_and_stable(self):
        dfa = determinize(to_nfa(parse("a+b")))
        assert dfa_to_dict(dfa) == dfa_to_dict(dfa)


class TestDot:
    def test_dfa_dot_mentions_all_states(self):
        dfa = determinize(to_nfa(parse("a.b")))
        dot = to_dot(dfa, name="test")
        assert dot.startswith("digraph test {")
        for state in dfa.states:
            assert f"s{state}" in dot

    def test_nfa_dot_renders_epsilon(self):
        nfa = to_nfa(parse("a*"))
        assert "ε" in to_dot(nfa)

    def test_final_states_doubled(self):
        dfa = determinize(to_nfa(parse("a")))
        dot = to_dot(dfa)
        assert "doublecircle" in dot
