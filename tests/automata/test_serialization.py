"""Serialization round-trips and DOT export."""

import json

import pytest

from repro.automata.determinize import determinize
from repro.automata.serialization import (
    automaton_fingerprint,
    dfa_from_dict,
    dfa_to_dict,
    nfa_from_dict,
    nfa_to_dict,
    to_dot,
)
from repro.automata.thompson import to_nfa
from repro.regex.parser import parse

from ..conftest import ALPHABET, words_up_to


class TestNFADict:
    def test_roundtrip(self):
        nfa = to_nfa(parse("a.(b+c)*"))
        back = nfa_from_dict(nfa_to_dict(nfa))
        for w in words_up_to(ALPHABET, 3):
            assert nfa.accepts(w) == back.accepts(w)

    def test_epsilon_transitions_roundtrip(self):
        nfa = to_nfa(parse("a*"))
        payload = nfa_to_dict(nfa)
        back = nfa_from_dict(payload)
        assert back.has_epsilon_moves()
        assert back.accepts(())
        assert back.accepts(("a", "a"))

    def test_json_compatible(self):
        payload = nfa_to_dict(to_nfa(parse("a+b")))
        assert json.loads(json.dumps(payload)) == payload

    def test_rejects_wrong_kind(self):
        with pytest.raises(ValueError):
            nfa_from_dict({"kind": "dfa"})

    def test_rejects_non_string_symbols(self):
        from repro.automata.nfa import NFA

        nfa = NFA({0, 1}, {1}, {0: {1: {1}}}, {0}, {1})
        with pytest.raises(TypeError):
            nfa_to_dict(nfa)


class TestDFADict:
    def test_roundtrip(self):
        dfa = determinize(to_nfa(parse("a.b*+c")))
        back = dfa_from_dict(dfa_to_dict(dfa))
        for w in words_up_to(ALPHABET, 3):
            assert dfa.accepts(w) == back.accepts(w)

    def test_rejects_wrong_kind(self):
        with pytest.raises(ValueError):
            dfa_from_dict({"kind": "nfa"})

    def test_payload_is_sorted_and_stable(self):
        dfa = determinize(to_nfa(parse("a+b")))
        assert dfa_to_dict(dfa) == dfa_to_dict(dfa)


class TestFingerprint:
    def test_same_spec_same_fingerprint(self):
        # Thompson construction is deterministic, so re-parsing the same
        # regex yields the same digest — the property the plan cache
        # keys rely on across processes.
        one = automaton_fingerprint(to_nfa(parse("a.(b+c)*")))
        two = automaton_fingerprint(to_nfa(parse("a.(b+c)*")))
        assert one == two
        assert len(one) == 64  # sha256 hex

    def test_structural_not_language_identity(self):
        # a+b and b+a denote the same language but different structures.
        assert automaton_fingerprint(to_nfa(parse("a+b"))) != automaton_fingerprint(
            to_nfa(parse("b+a"))
        )

    def test_finals_and_initials_matter(self):
        dfa = determinize(to_nfa(parse("a.b")))
        flipped = dfa_from_dict(
            {**dfa_to_dict(dfa), "finals": sorted(dfa.states - dfa.finals)}
        )
        assert automaton_fingerprint(dfa) != automaton_fingerprint(flipped)

    def test_accepts_non_string_symbols(self):
        from repro.rpq.formulas import TOP

        from repro.regex.ast import star, sym

        nfa = to_nfa(star(sym(TOP)))
        assert len(automaton_fingerprint(nfa)) == 64

    def test_dfa_and_nfa_forms_distinguished(self):
        dfa = determinize(to_nfa(parse("a")))
        assert automaton_fingerprint(dfa) != automaton_fingerprint(dfa.to_nfa())

    def test_epsilon_distinct_from_symbol(self):
        # The epsilon marker must not collide with a same-looking symbol.
        with_eps = to_nfa(parse("a*"))
        assert automaton_fingerprint(with_eps) != automaton_fingerprint(
            with_eps.without_epsilon()
        )


class TestDot:
    def test_dfa_dot_mentions_all_states(self):
        dfa = determinize(to_nfa(parse("a.b")))
        dot = to_dot(dfa, name="test")
        assert dot.startswith("digraph test {")
        for state in dfa.states:
            assert f"s{state}" in dot

    def test_nfa_dot_renders_epsilon(self):
        nfa = to_nfa(parse("a*"))
        assert "ε" in to_dot(nfa)

    def test_final_states_doubled(self):
        dfa = determinize(to_nfa(parse("a")))
        dot = to_dot(dfa)
        assert "doublecircle" in dot
