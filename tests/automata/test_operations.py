"""Boolean/rational operations: products, unions, complement, view relation."""

from hypothesis import given, settings

from repro.automata.determinize import determinize
from repro.automata.dfa import DFA
from repro.automata.operations import (
    complement,
    concat_nfa,
    difference_dfa,
    intersect_dfa,
    intersect_nfa,
    star_nfa,
    union_dfa,
    union_nfa,
    view_transition_relation,
)
from repro.automata.thompson import to_nfa
from repro.regex.parser import parse

from ..conftest import ALPHABET, regex_strategy, words_up_to


def dfa_of(text: str) -> DFA:
    return determinize(to_nfa(parse(text)))


class TestDFABooleans:
    @given(regex_strategy(max_leaves=5), regex_strategy(max_leaves=5))
    @settings(max_examples=40, deadline=None)
    def test_intersection_is_conjunction(self, left, right):
        l_dfa, r_dfa = determinize(to_nfa(left)), determinize(to_nfa(right))
        both = intersect_dfa(l_dfa, r_dfa)
        for w in words_up_to(ALPHABET, 3):
            assert both.accepts(w) == (l_dfa.accepts(w) and r_dfa.accepts(w))

    @given(regex_strategy(max_leaves=5), regex_strategy(max_leaves=5))
    @settings(max_examples=40, deadline=None)
    def test_union_is_disjunction(self, left, right):
        l_dfa, r_dfa = determinize(to_nfa(left)), determinize(to_nfa(right))
        either = union_dfa(l_dfa, r_dfa)
        for w in words_up_to(ALPHABET, 3):
            assert either.accepts(w) == (l_dfa.accepts(w) or r_dfa.accepts(w))

    @given(regex_strategy(max_leaves=5), regex_strategy(max_leaves=5))
    @settings(max_examples=40, deadline=None)
    def test_difference(self, left, right):
        l_dfa, r_dfa = determinize(to_nfa(left)), determinize(to_nfa(right))
        diff = difference_dfa(l_dfa, r_dfa)
        for w in words_up_to(ALPHABET, 3):
            assert diff.accepts(w) == (l_dfa.accepts(w) and not r_dfa.accepts(w))

    def test_different_alphabets_are_united(self):
        left = dfa_of("a")
        right = dfa_of("z")
        either = union_dfa(left, right)
        assert either.accepts(("a",))
        assert either.accepts(("z",))


class TestNFACombinators:
    def test_union_nfa(self):
        nfa = union_nfa([to_nfa(parse("a.b")), to_nfa(parse("c"))])
        assert nfa.accepts(("a", "b"))
        assert nfa.accepts(("c",))
        assert not nfa.accepts(("a",))

    def test_concat_nfa(self):
        nfa = concat_nfa([to_nfa(parse("a+b")), to_nfa(parse("c*"))])
        assert nfa.accepts(("a",))
        assert nfa.accepts(("b", "c", "c"))
        assert not nfa.accepts(("c",))

    def test_concat_nfa_empty_sequence_is_epsilon(self):
        nfa = concat_nfa([])
        assert nfa.accepts(())
        assert not nfa.accepts(("a",))

    def test_star_nfa(self):
        nfa = star_nfa(to_nfa(parse("a.b")))
        assert nfa.accepts(())
        assert nfa.accepts(("a", "b", "a", "b"))
        assert not nfa.accepts(("a",))

    def test_intersect_nfa(self):
        left = to_nfa(parse("(a+b)*.a"))
        right = to_nfa(parse("a.(a+b)*"))
        both = intersect_nfa(left, right)
        assert both.accepts(("a",))
        assert both.accepts(("a", "b", "a"))
        assert not both.accepts(("b", "a", "b"))

    def test_intersect_nfa_disjoint(self):
        both = intersect_nfa(to_nfa(parse("a")), to_nfa(parse("b")))
        for w in words_up_to(ALPHABET, 2):
            assert not both.accepts(w)


class TestComplement:
    @given(regex_strategy(max_leaves=6))
    @settings(max_examples=40, deadline=None)
    def test_complement_flips_membership(self, expr):
        nfa = to_nfa(expr, alphabet=ALPHABET)
        comp = complement(nfa, alphabet=ALPHABET)
        for w in words_up_to(ALPHABET, 3):
            assert nfa.accepts(w) != comp.accepts(w)

    def test_complement_over_explicit_alphabet(self):
        comp = complement(to_nfa(parse("a")), alphabet={"a", "b"})
        assert comp.accepts(("b",))
        assert comp.accepts(())
        assert not comp.accepts(("a",))


class TestViewTransitionRelation:
    def test_requires_total_dfa(self):
        import pytest

        with pytest.raises(ValueError):
            view_transition_relation(dfa_of("a.b"), to_nfa(parse("a")))

    def test_relation_matches_paper_semantics(self):
        # Ad for a.(b.a+c)* completed; view a.c*.b must relate the initial
        # state to the state reached by words a.c^k.b.
        ad = dfa_of("a.(b.a+c)*").completed()
        view = to_nfa(parse("a.c*.b"))
        relation = view_transition_relation(ad, view)
        for source, targets in relation.items():
            for target in targets:
                # verify: some view word takes Ad from source to target
                found = False
                for w in words_up_to(ALPHABET, 4):
                    if view.accepts(w) and ad_run(ad, source, w) == target:
                        found = True
                        break
                assert found, (source, target)

    def test_relation_is_complete_on_short_words(self):
        ad = dfa_of("a.(b.a+c)*").completed()
        view = to_nfa(parse("a.c*.b"))
        relation = view_transition_relation(ad, view)
        for source in ad.states:
            for w in words_up_to(ALPHABET, 3):
                if view.accepts(w):
                    target = ad_run(ad, source, w)
                    assert target in relation[source]

    def test_empty_view_language_gives_empty_relation(self):
        ad = dfa_of("a").completed()
        view = to_nfa(parse("%empty"))
        relation = view_transition_relation(ad, view)
        assert all(not targets for targets in relation.values())

    def test_epsilon_view_relates_states_to_themselves(self):
        ad = dfa_of("a").completed()
        view = to_nfa(parse("%eps"))
        relation = view_transition_relation(ad, view)
        for source in ad.states:
            assert relation[source] == {source}


def ad_run(dfa: DFA, source: int, word) -> int | None:
    state = source
    for symbol in word:
        if state is None:
            return None
        state = dfa.successor(state, symbol)
    return state
