"""Property-based invariants across automata operations (hypothesis)."""

from hypothesis import given, settings

from repro.automata.containment import are_equivalent, is_contained
from repro.automata.determinize import determinize
from repro.automata.minimize import minimize
from repro.automata.operations import (
    complement,
    concat_nfa,
    intersect_dfa,
    intersect_nfa,
    star_nfa,
    union_dfa,
    union_nfa,
)
from repro.automata.thompson import to_nfa
from repro.regex.ast import concat, star, union

from ..conftest import ALPHABET, regex_strategy, words_up_to

SETTINGS = dict(max_examples=30, deadline=None)


class TestAlgebraicLaws:
    """Operations on automata mirror the regex algebra."""

    @given(regex_strategy(max_leaves=5), regex_strategy(max_leaves=5))
    @settings(**SETTINGS)
    def test_union_nfa_matches_regex_union(self, left, right):
        via_automata = union_nfa([to_nfa(left), to_nfa(right)])
        via_regex = to_nfa(union(left, right))
        assert are_equivalent(via_automata, via_regex)

    @given(regex_strategy(max_leaves=5), regex_strategy(max_leaves=5))
    @settings(**SETTINGS)
    def test_concat_nfa_matches_regex_concat(self, left, right):
        via_automata = concat_nfa([to_nfa(left), to_nfa(right)])
        via_regex = to_nfa(concat(left, right))
        assert are_equivalent(via_automata, via_regex)

    @given(regex_strategy(max_leaves=5))
    @settings(**SETTINGS)
    def test_star_nfa_matches_regex_star(self, expr):
        assert are_equivalent(star_nfa(to_nfa(expr)), to_nfa(star(expr)))

    @given(regex_strategy(max_leaves=4), regex_strategy(max_leaves=4))
    @settings(**SETTINGS)
    def test_de_morgan(self, left, right):
        l_nfa = to_nfa(left, alphabet=ALPHABET)
        r_nfa = to_nfa(right, alphabet=ALPHABET)
        lhs = complement(
            union_dfa(determinize(l_nfa), determinize(r_nfa)), ALPHABET
        )
        rhs = intersect_dfa(
            complement(l_nfa, ALPHABET), complement(r_nfa, ALPHABET)
        )
        assert are_equivalent(lhs, rhs)

    @given(regex_strategy(max_leaves=5), regex_strategy(max_leaves=5))
    @settings(**SETTINGS)
    def test_intersection_commutes(self, left, right):
        a, b = to_nfa(left), to_nfa(right)
        assert are_equivalent(intersect_nfa(a, b), intersect_nfa(b, a))


class TestStructuralInvariants:
    @given(regex_strategy(max_leaves=6))
    @settings(**SETTINGS)
    def test_double_reverse_preserves_language(self, expr):
        nfa = to_nfa(expr)
        assert are_equivalent(nfa, nfa.reversed().reversed())

    @given(regex_strategy(max_leaves=6))
    @settings(**SETTINGS)
    def test_trim_preserves_language(self, expr):
        nfa = to_nfa(expr)
        assert are_equivalent(nfa, nfa.trimmed())

    @given(regex_strategy(max_leaves=6))
    @settings(**SETTINGS)
    def test_minimize_lower_bounds_every_equivalent_dfa(self, expr):
        dfa = determinize(to_nfa(expr))
        small = minimize(dfa)
        assert small.num_states <= max(dfa.num_states, 1)
        assert are_equivalent(dfa, small)

    @given(regex_strategy(max_leaves=5))
    @settings(**SETTINGS)
    def test_double_complement_is_identity(self, expr):
        nfa = to_nfa(expr, alphabet=ALPHABET)
        twice = complement(complement(nfa, ALPHABET).to_nfa(), ALPHABET)
        assert are_equivalent(nfa, twice)

    @given(regex_strategy(max_leaves=5))
    @settings(**SETTINGS)
    def test_containment_antisymmetry_on_self(self, expr):
        nfa = to_nfa(expr)
        assert is_contained(nfa, nfa)


class TestWordLevelConsistency:
    @given(regex_strategy(max_leaves=5), regex_strategy(max_leaves=5))
    @settings(max_examples=20, deadline=None)
    def test_intersection_on_words(self, left, right):
        l_nfa, r_nfa = to_nfa(left), to_nfa(right)
        both = intersect_nfa(l_nfa, r_nfa)
        for w in words_up_to(ALPHABET, 3):
            assert both.accepts(w) == (l_nfa.accepts(w) and r_nfa.accepts(w))
